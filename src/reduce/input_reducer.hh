#pragma once

/**
 * @file
 * Witness-input reduction: the AFL-tmin analog, specialized to
 * divergence preservation.
 *
 * Classic delta debugging (ddmin) over the witness bytes: remove
 * chunks at decreasing granularities (half, quarter, ... down to
 * single bytes), then normalize the survivors by zeroing every byte
 * that tolerates it. A candidate is kept only when the Oracle says
 * the divergence signature is unchanged — the reduced input triggers
 * the *same* bug, not merely *a* bug.
 *
 * Properties the tests rely on:
 *   - Determinism: candidate order is a pure function of the input
 *     bytes, and the oracle is deterministic, so the reduction is.
 *   - Idempotence: reducing an already-reduced input accepts no
 *     further candidate (every removal and zeroing was already
 *     tried and rejected at the fixpoint).
 *   - Monotonicity: the result is never larger than the witness.
 *   - Anytime: if the oracle budget runs out mid-way, the current
 *     best is returned and is itself a valid witness.
 */

#include <cstdint>

#include "minic/ast.hh"
#include "reduce/oracle.hh"
#include "support/bytes.hh"

namespace compdiff::reduce
{

/** Outcome of one input reduction. */
struct InputReduction
{
    /** The minimized input (== witness when nothing shrank). */
    support::Bytes reduced;
    std::uint64_t candidatesTried = 0;
    std::uint64_t candidatesAccepted = 0;
    /** Bytes deleted by ddmin chunk removal. */
    std::size_t bytesRemoved = 0;
    /** Surviving bytes canonicalized to zero. */
    std::size_t bytesNormalized = 0;
};

/**
 * Reduce `witness` against `program`, preserving the oracle's target
 * signature. The oracle's budget bounds the number of candidates.
 */
InputReduction reduceInput(Oracle &oracle,
                           const minic::Program &program,
                           const support::Bytes &witness);

} // namespace compdiff::reduce
