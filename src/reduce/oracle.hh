#pragma once

/**
 * @file
 * The reduction oracle: "is this smaller candidate still the same
 * bug?"
 *
 * Every reducer in src/reduce (the byte-level ddmin over the witness
 * input and the AST-level program shrinker) is driven by the same
 * question, and answering it wrong silently turns a Table 5 filing
 * into a report about a *different* bug. The contract is therefore
 * strict:
 *
 *   - The interesting property is the *divergence signature*: the
 *     partition of the implementation set into behavior classes
 *     (which implementations agree with which, derived from the
 *     per-implementation output-hash classes of core::DiffResult).
 *     Outputs may change value during reduction — a shrunken input
 *     usually prints different numbers — but the partition must not:
 *     the same implementations must still disagree in the same
 *     grouping.
 *   - The oracle re-runs the full ImplementationSet through a
 *     core::DiffEngine (and thus core::ExecutionService), with a
 *     fixed nonce so acceptance is deterministic and independent of
 *     scheduling. The process-wide compiler::CompileCache absorbs
 *     the many candidate recompiles of program reduction.
 *   - A candidate budget bounds the total number of oracle
 *     evaluations per reduction (the CI smoke relies on this to keep
 *     wall time bounded); once exhausted, every further candidate is
 *     rejected and the reducers stop where they are. Reduction is
 *     anytime: the current best is always a valid witness.
 */

#include <cstdint>
#include <memory>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "minic/ast.hh"
#include "support/bytes.hh"

namespace compdiff::reduce
{

/**
 * Canonical divergence signature of a diff result: a hash of the
 * behavior-class partition (DiffResult::classOf, which the engine
 * canonicalizes in first-seen order) plus the per-implementation
 * exit classes. Two runs have equal signatures exactly when the same
 * implementations split into the same groups with the same coarse
 * exits — the identity of a bug report, independent of the concrete
 * output bytes.
 */
std::uint64_t divergenceSignature(const core::DiffResult &result);

/** Oracle evaluation counters (per reduction). */
struct OracleStats
{
    std::uint64_t tried = 0;    ///< candidates evaluated
    std::uint64_t accepted = 0; ///< candidates that preserved the bug
};

/**
 * Abstract acceptance test for reduction candidates. Reducers only
 * see this interface; tests substitute instrumented oracles.
 */
class Oracle
{
  public:
    virtual ~Oracle() = default;

    /** The signature every accepted candidate must reproduce. */
    virtual std::uint64_t targetSignature() const = 0;

    /**
     * Evaluate one candidate (program, input) pair. True iff the
     * candidate still diverges with exactly the target signature.
     * Counts against the candidate budget; always false once the
     * budget is exhausted.
     */
    virtual bool preserves(const minic::Program &program,
                           const support::Bytes &input) = 0;

    /** True when no further candidates will be evaluated. */
    virtual bool budgetExhausted() const = 0;

    virtual const OracleStats &stats() const = 0;
};

/**
 * The standard oracle: re-runs the implementation set on every
 * candidate and compares divergence signatures.
 *
 * Construction establishes the target signature by re-running the
 * original witness under the oracle's own deterministic nonce
 * discipline (nonce_base 0, exactly what DiffEngine::runInput uses
 * for single-input diffs). A witness whose divergence does not
 * reproduce deterministically — e.g. one that only diverged under a
 * specific campaign nonce — yields reproduced() == false, and the
 * caller skips reduction instead of minimizing toward a moving
 * target.
 *
 * Not thread-safe: one SignatureOracle drives one reduction. The
 * reduction pipeline runs concurrent reductions with one oracle
 * each.
 */
class SignatureOracle : public Oracle
{
  public:
    /**
     * @param program  The witness program (must outlive the oracle's
     *                 use of it within preserves() calls against this
     *                 same program; candidate programs are
     *                 caller-owned and only borrowed per call).
     * @param impls    The oracle members the divergence partitions.
     * @param witness  The divergence-triggering input.
     * @param options  Diff knobs (limits, normalizer, traitsTweak);
     *                 options.jobs is forced to 1 — parallelism
     *                 belongs to the per-signature fan-out above.
     * @param candidate_budget Max preserves() evaluations (the
     *                 original-witness run does not count).
     */
    SignatureOracle(const minic::Program &program,
                    core::ImplementationSet impls,
                    const support::Bytes &witness,
                    core::DiffOptions options,
                    std::uint64_t candidate_budget);
    ~SignatureOracle() override;

    /** Did the witness reproduce its divergence deterministically? */
    bool reproduced() const { return reproduced_; }

    /** The witness's diff result under the oracle's nonce. */
    const core::DiffResult &witnessResult() const
    {
        return witnessResult_;
    }

    std::uint64_t targetSignature() const override
    {
        return target_;
    }

    bool preserves(const minic::Program &program,
                   const support::Bytes &input) override;

    bool budgetExhausted() const override
    {
        return stats_.tried >= budget_;
    }

    const OracleStats &stats() const override { return stats_; }

  private:
    /**
     * Engine for `program`: the witness program's engine is kept for
     * the oracle's lifetime; any other program is a per-call
     * candidate whose engine is rebuilt every time (candidates are
     * destroyed after the call, and a pointer-keyed cache would be
     * fooled by heap-address reuse into touching a freed AST).
     */
    const core::DiffEngine &engineFor(const minic::Program &program);

    core::ImplementationSet impls_;
    core::DiffOptions options_;
    std::uint64_t budget_;
    std::uint64_t target_ = 0;
    bool reproduced_ = false;
    core::DiffResult witnessResult_;
    OracleStats stats_;

    const minic::Program *witnessProgram_ = nullptr;
    std::unique_ptr<core::DiffEngine> witnessEngine_;
    std::unique_ptr<core::DiffEngine> candidateEngine_;
};

} // namespace compdiff::reduce
