#include "reduce/input_reducer.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace compdiff::reduce
{

using support::Bytes;

namespace
{

/** One full ddmin sweep: chunk removal at decreasing granularity.
 *  Returns true when at least one candidate was accepted. */
bool
ddminSweep(Oracle &oracle, const minic::Program &program,
           Bytes &current, std::size_t &bytes_removed)
{
    bool any = false;
    bool changed = true;
    while (changed && !current.empty() &&
           !oracle.budgetExhausted()) {
        changed = false;
        for (std::size_t chunk =
                 std::max<std::size_t>(current.size() / 2, 1);
             chunk >= 1; chunk /= 2) {
            for (std::size_t pos = 0;
                 pos + chunk <= current.size() &&
                 !oracle.budgetExhausted();) {
                Bytes candidate = current;
                candidate.erase(
                    candidate.begin() +
                        static_cast<std::ptrdiff_t>(pos),
                    candidate.begin() +
                        static_cast<std::ptrdiff_t>(pos + chunk));
                if (oracle.preserves(program, candidate)) {
                    bytes_removed += chunk;
                    current = std::move(candidate);
                    changed = true;
                    any = true;
                    // The next chunk slid into `pos`; retry there.
                } else {
                    pos += chunk;
                }
            }
            if (chunk == 1)
                break;
        }
    }
    return any;
}

/** AFL-tmin-style normalization: canonicalize every byte that
 *  tolerates it to zero, so two reductions of the same bug converge
 *  on the same bytes even when the fuzzer found them via different
 *  mutations. Returns true when at least one byte was zeroed. */
bool
normalizeSweep(Oracle &oracle, const minic::Program &program,
               Bytes &current, std::size_t &bytes_normalized)
{
    bool any = false;
    for (std::size_t pos = 0;
         pos < current.size() && !oracle.budgetExhausted(); pos++) {
        if (current[pos] == 0)
            continue;
        Bytes candidate = current;
        candidate[pos] = 0;
        if (oracle.preserves(program, candidate)) {
            current = std::move(candidate);
            bytes_normalized++;
            any = true;
        }
    }
    return any;
}

} // namespace

InputReduction
reduceInput(Oracle &oracle, const minic::Program &program,
            const Bytes &witness)
{
    obs::Span span("reduce.input");
    InputReduction out;
    out.reduced = witness;
    const std::uint64_t tried_before = oracle.stats().tried;
    const std::uint64_t accepted_before = oracle.stats().accepted;

    // Fixpoint over both phases: zeroing a byte can unlock a removal
    // (and vice versa), and idempotence — reducing a reduced witness
    // accepts nothing — requires stopping only when neither phase
    // makes progress on the final bytes.
    bool progressed = true;
    while (progressed && !oracle.budgetExhausted()) {
        progressed = ddminSweep(oracle, program, out.reduced,
                                out.bytesRemoved);
        progressed |= normalizeSweep(oracle, program, out.reduced,
                                     out.bytesNormalized);
    }

    out.candidatesTried = oracle.stats().tried - tried_before;
    out.candidatesAccepted =
        oracle.stats().accepted - accepted_before;
    obs::counter("reduce.input.bytes_removed").add(out.bytesRemoved);
    obs::counter("reduce.input.bytes_normalized")
        .add(out.bytesNormalized);
    return out;
}

} // namespace compdiff::reduce
