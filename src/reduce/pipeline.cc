#include "reduce/pipeline.hh"

#include "compdiff/localize.hh"
#include "compiler/config.hh"
#include "minic/parser.hh"
#include "minic/printer.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "reduce/input_reducer.hh"
#include "reduce/oracle.hh"
#include "reduce/program_reducer.hh"
#include "sanitizers/sanitizers.hh"
#include "semdiff/canon.hh"
#include "semdiff/slice.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

#include <algorithm>
#include <map>

namespace compdiff::reduce
{

namespace
{

/** Reduce one witness end to end (runs on a pool worker). */
DivergenceReport
reduceOne(const minic::Program &program,
          const core::ImplementationSet &impls,
          const Witness &witness, const ReduceOptions &options)
{
    obs::Span span("reduce.witness");
    DivergenceReport report;
    report.witnessInput = witness.input;

    SignatureOracle oracle(program, impls, witness.input,
                           options.diffOptions,
                           options.candidateBudget);
    report.reproduced = oracle.reproduced();

    if (!oracle.reproduced()) {
        // Campaign-nonce-dependent divergence: don't minimize toward
        // a moving target; file the original witness as-is.
        report.signature = divergenceSignature(witness.diff);
        report.program = minic::printProgram(program);
        report.input = witness.input;
        report.diff = witness.diff;
        report.inputStats.reduced = witness.input;
        report.localization = core::localizeAcross(
            program, impls, report.diff, report.input,
            options.diffOptions.limits);
        report.slice = semdiff::sliceDivergence(
            program, impls, report.localization,
            options.diffOptions);
        report.canonicalFingerprint =
            semdiff::canonicalizeSource(report.program).fingerprint;
        report.semanticKey = semdiff::semanticKeyOf(
            report.canonicalFingerprint, report.signature);
        obs::counter("reduce.witnesses_unreproduced").add();
        return report;
    }

    report.signature = oracle.targetSignature();
    report.inputStats = reduceInput(oracle, program, witness.input);
    report.input = report.inputStats.reduced;
    report.programStats = reduceProgram(
        oracle, minic::printProgram(program), report.input);
    report.program = report.programStats.source;

    // A shrunken program usually reads less input, so one more input
    // pass against the minimized program drops bytes only the
    // original program consumed.
    auto minimized = minic::parseAndCheck(report.program);
    const InputReduction second =
        reduceInput(oracle, *minimized, report.input);
    report.input = second.reduced;
    report.inputStats.reduced = second.reduced;
    report.inputStats.candidatesTried += second.candidatesTried;
    report.inputStats.candidatesAccepted += second.candidatesAccepted;
    report.inputStats.bytesRemoved += second.bytesRemoved;
    report.inputStats.bytesNormalized += second.bytesNormalized;

    // Re-derive the final artifacts from the minimized pair: the
    // diff (for the report's class listing), the localization, and
    // the sanitizer verdicts all describe what is filed, not what
    // was found.
    core::DiffOptions diff_options = options.diffOptions;
    diff_options.jobs = 1;
    core::DiffEngine engine(*minimized, impls, diff_options);
    report.diff = engine.runInput(report.input, 0);
    report.localization = core::localizeAcross(
        *minimized, impls, report.diff, report.input,
        options.diffOptions.limits);
    report.slice = semdiff::sliceDivergence(
        *minimized, impls, report.localization,
        options.diffOptions);

    // Second-tier key: the canonical form of the minimized program
    // crossed with the behavior signature of the minimized diff.
    // Both are pure functions of filed content, so the key (and any
    // merge decision built on it) is identical for any --jobs/
    // --shards split and across resume.
    report.canonicalFingerprint =
        semdiff::canonicalizeSource(report.program).fingerprint;
    report.semanticKey = semdiff::semanticKeyOf(
        report.canonicalFingerprint,
        divergenceSignature(report.diff));

    if (options.checkSanitizers) {
        sanitizers::SanitizerRunner runner(*minimized,
                                           options.diffOptions.limits);
        report.sanitizers.checked = true;
        report.sanitizers.asanFires =
            runner.check(compiler::Sanitizer::ASan, report.input)
                .fired;
        report.sanitizers.ubsanFires =
            runner.check(compiler::Sanitizer::UBSan, report.input)
                .fired;
        report.sanitizers.msanFires =
            runner.check(compiler::Sanitizer::MSan, report.input)
                .fired;
    }
    return report;
}

} // namespace

std::vector<DivergenceReport>
reduceAndReport(const minic::Program &program,
                const core::ImplementationSet &impls,
                const std::vector<Witness> &witnesses,
                const ReduceOptions &options)
{
    obs::Span span("reduce.pipeline");
    std::vector<DivergenceReport> reports(witnesses.size());
    if (witnesses.empty())
        return reports;

    // One oracle per witness, fixed result slots: jobs affects only
    // scheduling, never what any slot contains.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(witnesses.size());
    for (std::size_t i = 0; i < witnesses.size(); i++) {
        tasks.push_back([&, i] {
            reports[i] =
                reduceOne(program, impls, witnesses[i], options);
        });
    }
    if (options.jobs == 1 || witnesses.size() == 1) {
        for (auto &task : tasks)
            task();
    } else {
        support::ThreadPool pool(options.jobs);
        pool.runAll(std::move(tasks));
    }

    obs::counter("reduce.witnesses")
        .add(static_cast<std::uint64_t>(witnesses.size()));
    if (!options.reportsDir.empty()) {
        // Second-tier dedup: reports whose minimized programs
        // canonicalize to the same semantic key file as ONE bundle
        // carrying every witness. std::map orders groups by key and
        // the variant sort below orders members by content, so the
        // bundle tree never depends on discovery or slot order.
        std::map<std::uint64_t,
                 std::vector<const DivergenceReport *>>
            groups;
        for (const auto &report : reports)
            groups[report.semanticKey].push_back(&report);
        for (auto &[key, variants] : groups) {
            std::sort(variants.begin(), variants.end(),
                      [](const DivergenceReport *a,
                         const DivergenceReport *b) {
                          if (a->program != b->program)
                              return a->program < b->program;
                          if (a->input != b->input)
                              return a->input < b->input;
                          if (a->witnessInput != b->witnessInput)
                              return a->witnessInput <
                                     b->witnessInput;
                          return a->signature < b->signature;
                      });
            const std::string dir =
                writeMergedReport(options.reportsDir, variants);
            if (variants.size() > 1)
                support::inform(
                    "reduce: merged " +
                    std::to_string(variants.size()) +
                    " semantically equal witnesses into " + dir);
            support::inform("reduce: wrote " + dir + "/report.md");
            obs::counter("reduce.reports_written").add();
        }
    }
    return reports;
}

std::vector<DivergenceReport>
reduceRecords(const minic::Program &program,
              const core::ImplementationSet &impls,
              const std::vector<session::DivergenceRecord> &records,
              const ReduceOptions &options)
{
    std::vector<Witness> witnesses;
    witnesses.reserve(records.size());
    if (!records.empty()) {
        // One serial engine re-derives every record's campaign-time
        // diff (pure function of input and exec index); the per-
        // witness oracles below then own their reductions.
        core::DiffOptions diff_options = options.diffOptions;
        diff_options.jobs = 1;
        core::DiffEngine engine(program, impls, diff_options);
        for (const auto &record : records) {
            witnesses.push_back(
                {record.input,
                 engine.runInput(record.input, record.execIndex)});
        }
    }
    return reduceAndReport(program, impls, witnesses, options);
}

} // namespace compdiff::reduce
