#pragma once

/**
 * @file
 * The post-campaign reduction pipeline: witnesses in, report
 * bundles out.
 *
 * For each distinct-signature witness a campaign surfaced, the
 * pipeline builds one SignatureOracle, runs input reduction (ddmin
 * over the witness bytes) followed by program reduction (AST
 * shrinking against the already-minimized input), re-localizes the
 * minimized divergence with localizeAcross, slices the aligned pair
 * down to the first divergent instruction (semdiff), checks the
 * three sanitizers on the minimized pair, and bundles everything
 * via writeMergedReport.
 *
 * Bundling is two-tier: the campaign deduplicated witnesses by fuzz
 * signature (tier 1); the write phase here groups the reduced
 * reports by semantic key (canonical form of the minimized program
 * x behavior signature — tier 2) and files each group as ONE
 * merged bundle carrying every witness (`variants/` subdirs).
 *
 * Determinism: witnesses are reduced in input order into indexed
 * result slots on a support::ThreadPool, each reduction owns its own
 * oracle with a fixed nonce, and report writing happens serially
 * afterwards with groups ordered by key and variants sorted by
 * minimized content — so the produced bundles are bit-identical for
 * every `jobs` value, same as the execution fan-out's contract. The
 * process-wide compiler::CompileCache makes the per-candidate
 * engine rebuilds cheap.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "minic/ast.hh"
#include "reduce/report.hh"
#include "session/records.hh"
#include "support/bytes.hh"

namespace compdiff::reduce
{

/** One campaign divergence to reduce. */
struct Witness
{
    /** The divergence-triggering input. */
    support::Bytes input;
    /** The campaign's diff result for it (used as-is when the
     *  divergence does not reproduce under the reduction nonce). */
    core::DiffResult diff;
};

/** Pipeline knobs. */
struct ReduceOptions
{
    /** Diff knobs for the oracle re-runs (limits, normalizer,
     *  traitsTweak). `jobs` inside is ignored — oracles always run
     *  their engine serially. */
    core::DiffOptions diffOptions;
    /** Max oracle evaluations per witness (input + program reduction
     *  combined); bounds CI wall time. */
    std::uint64_t candidateBudget = 4096;
    /** Concurrent reductions (over witnesses): 1 = serial, 0 = one
     *  per hardware thread. Never changes results. */
    std::size_t jobs = 1;
    /** Run ASan/UBSan/MSan on each minimized pair. */
    bool checkSanitizers = true;
    /** When non-empty, write report bundles under this directory. */
    std::string reportsDir;
};

/**
 * Reduce every witness and (optionally) write report bundles.
 *
 * @param program   The witness program (shared by all witnesses of
 *                  one campaign target).
 * @param impls     The oracle that observed the divergences.
 * @param witnesses Distinct-signature divergences to reduce.
 * @return One report per witness, in witness order.
 */
std::vector<DivergenceReport>
reduceAndReport(const minic::Program &program,
                const core::ImplementationSet &impls,
                const std::vector<Witness> &witnesses,
                const ReduceOptions &options);

/**
 * Reduce a session's divergence records (the portable form
 * session::CampaignSession persists and folds). The campaign-time
 * DiffResult each witness needs is re-derived by re-running the
 * record's input under its recorded execution index — deterministic,
 * so the fallback diff for unreproduced witnesses matches what the
 * campaign observed.
 */
std::vector<DivergenceReport>
reduceRecords(const minic::Program &program,
              const core::ImplementationSet &impls,
              const std::vector<session::DivergenceRecord> &records,
              const ReduceOptions &options);

} // namespace compdiff::reduce
