#pragma once

/**
 * @file
 * Witness-program reduction: shrink the MiniC source itself while
 * the divergence signature survives.
 *
 * The reducer works on the AST through the print/reparse round trip
 * the printer tests guarantee: parse the current best source, apply
 * one candidate edit to the tree, pretty-print it, re-run the full
 * frontend (parse + sema) on the printed text, and hand the
 * re-analyzed program to the Oracle. Candidates that no longer parse
 * or type-check (e.g. a pruned function that is still called) are
 * rejected for free, without consuming oracle budget; candidates
 * that change the divergence signature are rejected by the oracle.
 *
 * Edit kinds, tried in order of expected payoff:
 *   - RemoveFunction / RemoveGlobal: drop whole declarations;
 *   - RemoveStmt: delete one statement from a block (or a for-init);
 *   - FoldIfThen / FoldIfElse: replace an `if` by one branch —
 *     dead-branch folding, which also deletes the condition;
 *   - DropElse: keep the `if` but delete its else branch;
 *   - UnwrapLoop: replace a while/for by its body (runs once);
 *   - HoistZero: replace an integer-typed expression by the
 *     constant 0 (expression hoisting to constants).
 *
 * Every accepted edit strictly shrinks (or, for HoistZero on a
 * variable reference, keeps equal and de-eligibilizes) the tree, so
 * the greedy fixpoint terminates. The reduction is deterministic:
 * edits are enumerated in pre-order and the oracle is deterministic.
 */

#include <cstdint>
#include <string>

#include "minic/ast.hh"
#include "reduce/oracle.hh"
#include "support/bytes.hh"

namespace compdiff::reduce
{

/** Statements in a program, blocks excluded (a `{}` is glue, not a
 *  statement of interest; an `if` counts once, not per branch). */
std::size_t countStatements(const minic::Program &program);

/** All AST nodes (statements + expressions), blocks included. */
std::size_t countAstNodes(const minic::Program &program);

/** Outcome of one program reduction. */
struct ProgramReduction
{
    /** Minimized source (pretty-printed canonical form). */
    std::string source;
    std::uint64_t candidatesTried = 0;
    std::uint64_t candidatesAccepted = 0;
    /** Candidates rejected by parse/sema before reaching the
     *  oracle (they cost no oracle budget). */
    std::uint64_t frontendRejected = 0;
    std::size_t stmtsBefore = 0;
    std::size_t stmtsAfter = 0;
    std::size_t nodesBefore = 0;
    std::size_t nodesAfter = 0;
};

/**
 * Reduce `source` against the fixed `input` (typically the already
 * ddmin-reduced witness), preserving the oracle's target signature.
 *
 * @param source A program that parseAndCheck accepts.
 */
ProgramReduction reduceProgram(Oracle &oracle,
                               const std::string &source,
                               const support::Bytes &input);

} // namespace compdiff::reduce
