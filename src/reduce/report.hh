#pragma once

/**
 * @file
 * Bug-report bundling: one directory per divergence, shaped like a
 * Table 5 filing.
 *
 * The paper's 78 reports were filed as (minimized program, minimized
 * input, the pair of implementations that disagree, where they part
 * ways, and whether a sanitizer also sees it). writeReport() emits
 * exactly that shape under `<outDir>/<sig-...>/`:
 *
 *   program.mc   the minimized MiniC program (reparseable)
 *   input.bin    the minimized triggering input (raw bytes)
 *   witness.bin  the original un-reduced witness input
 *   report.md    the human-readable filing: divergence summary,
 *                implementation pair, localization (including the
 *                cross-backend bridging note when trace alignment
 *                substituted a representative), the static
 *                instruction slice, sanitizer verdicts, and the
 *                reduction statistics.
 *   variants/    when semantically equal witnesses merged into this
 *                bundle: one `v<k>/` subdirectory per witness with
 *                its own program.mc/input.bin/witness.bin (v0 is
 *                the primary, duplicated at the bundle root).
 *
 * The directory name is derived from the *semantic key* (canonical
 * form of the minimized program x behavior-class signature — see
 * semdiff/canon.hh), so re-running a campaign overwrites the same
 * report rather than accumulating duplicates, and witnesses that
 * reach the same bug through differently-shaped programs land in
 * one bundle. Merge decisions depend only on minimized content,
 * never on discovery order, so bundles are bit-identical for any
 * --jobs/--shards and across kill-anywhere resume.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "compdiff/engine.hh"
#include "compdiff/localize.hh"
#include "reduce/input_reducer.hh"
#include "reduce/program_reducer.hh"
#include "semdiff/slice.hh"
#include "support/bytes.hh"

namespace compdiff::reduce
{

/** Sanitizer verdicts on the minimized witness (Table 6 columns). */
struct SanVerdicts
{
    bool checked = false;
    bool asanFires = false;
    bool ubsanFires = false;
    bool msanFires = false;
};

/** Everything the bundler writes about one divergence. */
struct DivergenceReport
{
    /** reduce::divergenceSignature of the (reduced) witness. */
    std::uint64_t signature = 0;
    /** Did the witness reproduce deterministically? When false the
     *  original pair is carried through un-reduced. */
    bool reproduced = false;

    /** Minimized program source (== original when not reproduced). */
    std::string program;
    /** Minimized triggering input. */
    support::Bytes input;
    /** The original un-reduced witness input. */
    support::Bytes witnessInput;

    /** Diff result on the minimized (program, input) pair. */
    core::DiffResult diff;
    /** Localization between two class representatives, including
     *  the cross-backend bridging account. */
    core::PairLocalization localization;
    /** Static instruction slice of the aligned pair (semdiff). */
    semdiff::InstructionSlice slice;
    SanVerdicts sanitizers;

    /** Canonical-form fingerprint of the minimized program. */
    std::uint64_t canonicalFingerprint = 0;
    /** Second-tier dedup key: semdiff::semanticKeyOf(canonical
     *  fingerprint, divergence signature of the minimized diff).
     *  Bundles are filed and merged under this key. */
    std::uint64_t semanticKey = 0;

    InputReduction inputStats;
    ProgramReduction programStats;
};

/** Directory basename for a signature ("sig-0123456789abcdef"). */
std::string signatureDirName(std::uint64_t signature);

/** Render the report.md body. */
std::string renderReportMarkdown(const DivergenceReport &report);

/**
 * Write the bundle under `<out_dir>/<signatureDirName(semanticKey)>/`,
 * creating directories as needed.
 *
 * @return The bundle directory path.
 */
std::string writeReport(const std::string &out_dir,
                        const DivergenceReport &report);

/**
 * Write one *merged* bundle for reports sharing a semantic key.
 * `variants` must be non-empty and pre-sorted deterministically
 * (reduceAndReport sorts by minimized program text, then input);
 * variants[0] is the primary whose artifacts sit at the bundle
 * root, and every variant (primary included) gets a
 * `variants/v<k>/` subdirectory when there is more than one. Any
 * stale `variants/` content from a previous run is removed first.
 *
 * @return The bundle directory path.
 */
std::string
writeMergedReport(const std::string &out_dir,
                  const std::vector<const DivergenceReport *> &variants);

} // namespace compdiff::reduce
