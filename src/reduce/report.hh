#pragma once

/**
 * @file
 * Bug-report bundling: one directory per divergence, shaped like a
 * Table 5 filing.
 *
 * The paper's 78 reports were filed as (minimized program, minimized
 * input, the pair of implementations that disagree, where they part
 * ways, and whether a sanitizer also sees it). writeReport() emits
 * exactly that shape under `<outDir>/<sig-...>/`:
 *
 *   program.mc   the minimized MiniC program (reparseable)
 *   input.bin    the minimized triggering input (raw bytes)
 *   witness.bin  the original un-reduced witness input
 *   report.md    the human-readable filing: divergence summary,
 *                implementation pair, localization (including the
 *                cross-backend bridging note when trace alignment
 *                substituted a representative), sanitizer verdicts,
 *                and the reduction statistics.
 *
 * The directory name is derived from the divergence signature, so
 * re-running a campaign overwrites the same report rather than
 * accumulating duplicates.
 */

#include <cstdint>
#include <string>

#include "compdiff/engine.hh"
#include "compdiff/localize.hh"
#include "reduce/input_reducer.hh"
#include "reduce/program_reducer.hh"
#include "support/bytes.hh"

namespace compdiff::reduce
{

/** Sanitizer verdicts on the minimized witness (Table 6 columns). */
struct SanVerdicts
{
    bool checked = false;
    bool asanFires = false;
    bool ubsanFires = false;
    bool msanFires = false;
};

/** Everything the bundler writes about one divergence. */
struct DivergenceReport
{
    /** reduce::divergenceSignature of the (reduced) witness. */
    std::uint64_t signature = 0;
    /** Did the witness reproduce deterministically? When false the
     *  original pair is carried through un-reduced. */
    bool reproduced = false;

    /** Minimized program source (== original when not reproduced). */
    std::string program;
    /** Minimized triggering input. */
    support::Bytes input;
    /** The original un-reduced witness input. */
    support::Bytes witnessInput;

    /** Diff result on the minimized (program, input) pair. */
    core::DiffResult diff;
    /** Localization between two class representatives, including
     *  the cross-backend bridging account. */
    core::PairLocalization localization;
    SanVerdicts sanitizers;

    InputReduction inputStats;
    ProgramReduction programStats;
};

/** Directory basename for a signature ("sig-0123456789abcdef"). */
std::string signatureDirName(std::uint64_t signature);

/** Render the report.md body. */
std::string renderReportMarkdown(const DivergenceReport &report);

/**
 * Write the bundle under `<out_dir>/<signatureDirName(sig)>/`,
 * creating directories as needed.
 *
 * @return The bundle directory path.
 */
std::string writeReport(const std::string &out_dir,
                        const DivergenceReport &report);

} // namespace compdiff::reduce
