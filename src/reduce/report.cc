#include "reduce/report.hh"

#include <filesystem>
#include <iomanip>
#include <sstream>

#include "obs/stats.hh"
#include "support/logging.hh"

namespace compdiff::reduce
{

namespace
{

std::string
hex64(std::uint64_t value)
{
    std::ostringstream os;
    os << std::hex << std::setfill('0') << std::setw(16) << value;
    return os.str();
}

std::string
percent(std::size_t before, std::size_t after)
{
    if (before == 0)
        return "0%";
    const double shrink =
        100.0 * static_cast<double>(before - after) /
        static_cast<double>(before);
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << shrink << "%";
    return os.str();
}

} // namespace

std::string
signatureDirName(std::uint64_t signature)
{
    return "sig-" + hex64(signature);
}

namespace
{

std::string
renderMarkdownBody(const DivergenceReport &report,
                   const std::vector<const DivergenceReport *>
                       &variants);

} // namespace

std::string
renderReportMarkdown(const DivergenceReport &report)
{
    return renderMarkdownBody(report, {});
}

namespace
{

std::string
renderMarkdownBody(const DivergenceReport &report,
                   const std::vector<const DivergenceReport *>
                       &variants)
{
    std::ostringstream os;
    os << "# Divergence report "
       << signatureDirName(report.semanticKey) << "\n\n";

    os << "## Summary\n\n";
    if (!report.reproduced) {
        os << "The campaign witness did not reproduce its divergence "
              "under the deterministic reduction nonce; the bundle "
              "carries the original un-reduced witness. The "
              "divergence below is the campaign observation.\n\n";
    }
    os << "- semantic key: `" << hex64(report.semanticKey)
       << "` (canonical form `"
       << hex64(report.canonicalFingerprint)
       << "` x behavior signature)\n";
    os << "- divergence signature: `" << hex64(report.signature)
       << "`\n";
    os << "- behavior classes: " << report.diff.classCount << " across "
       << report.diff.observations.size() << " implementations\n";
    for (std::size_t cls = 0; cls < report.diff.classCount; cls++) {
        os << "- class " << cls << ":";
        for (std::size_t i = 0; i < report.diff.classOf.size(); i++) {
            if (report.diff.classOf[i] == cls)
                os << " `" << report.diff.observations[i].impl << "`";
        }
        os << "\n";
    }
    os << "\n";

    os << "## Divergent pair\n\n";
    if (!report.localization.requestedA.empty()) {
        os << "`" << report.localization.requestedA << "` vs `"
           << report.localization.requestedB
           << "` (first representatives of the first two behavior "
              "classes)\n\n";
    } else {
        os << "(no divergent pair identified)\n\n";
    }
    for (const auto &obs : report.diff.observations) {
        os << "- `" << obs.impl << "`: exit `" << obs.exitClass
           << "`, output hash `" << hex64(obs.hash) << "`\n";
    }
    os << "\n";

    os << "## Localization\n\n";
    if (report.localization.attempted) {
        os << report.localization.localization.str() << "\n\n";
        if (report.localization.bridged)
            os << "> Note: " << report.localization.note << "\n\n";
    } else {
        os << "not available: " << report.localization.note << "\n\n";
    }

    os << "## Instruction slice\n\n";
    os << report.slice.str() << "\n\n";

    os << "## Sanitizer verdicts\n\n";
    if (report.sanitizers.checked) {
        os << "On the minimized (program, input) pair:\n\n";
        os << "- ASan: "
           << (report.sanitizers.asanFires ? "fires" : "silent")
           << "\n";
        os << "- UBSan: "
           << (report.sanitizers.ubsanFires ? "fires" : "silent")
           << "\n";
        os << "- MSan: "
           << (report.sanitizers.msanFires ? "fires" : "silent")
           << "\n\n";
        if (!report.sanitizers.asanFires &&
            !report.sanitizers.ubsanFires &&
            !report.sanitizers.msanFires) {
            os << "No sanitizer reports on this divergence — the "
                  "differential oracle is the only detector (the "
                  "paper's Table 6 gap).\n\n";
        }
    } else {
        os << "not run\n\n";
    }

    os << "## Reduction\n\n";
    os << "| metric | before | after | shrink |\n";
    os << "|---|---|---|---|\n";
    os << "| input bytes | " << report.witnessInput.size() << " | "
       << report.input.size() << " | "
       << percent(report.witnessInput.size(), report.input.size())
       << " |\n";
    os << "| program statements | " << report.programStats.stmtsBefore
       << " | " << report.programStats.stmtsAfter << " | "
       << percent(report.programStats.stmtsBefore,
                  report.programStats.stmtsAfter)
       << " |\n";
    os << "| program AST nodes | " << report.programStats.nodesBefore
       << " | " << report.programStats.nodesAfter << " | "
       << percent(report.programStats.nodesBefore,
                  report.programStats.nodesAfter)
       << " |\n\n";
    os << "- input reduction: " << report.inputStats.candidatesTried
       << " candidates tried, " << report.inputStats.candidatesAccepted
       << " accepted (" << report.inputStats.bytesRemoved
       << " bytes removed, " << report.inputStats.bytesNormalized
       << " normalized to zero)\n";
    os << "- program reduction: "
       << report.programStats.candidatesTried << " candidates tried, "
       << report.programStats.candidatesAccepted << " accepted, "
       << report.programStats.frontendRejected
       << " rejected by the frontend before reaching the oracle\n\n";

    os << "## Minimized input\n\n```\n"
       << support::hexDump(report.input) << "```\n\n";

    os << "## Minimized program\n\n```c\n" << report.program;
    if (!report.program.empty() && report.program.back() != '\n')
        os << "\n";
    os << "```\n\n";

    if (variants.size() > 1) {
        os << "## Merged variants\n\n";
        os << "This bundle carries " << variants.size()
           << " witness programs whose minimized forms canonicalize "
              "to the same semantic key. Each variant keeps its own "
              "artifacts under `variants/v<k>/`; `v0` is duplicated "
              "at the bundle root.\n\n";
        os << "| variant | divergence signature | program bytes | "
              "input bytes |\n";
        os << "|---|---|---|---|\n";
        for (std::size_t k = 0; k < variants.size(); k++) {
            os << "| v" << k << " | `" << hex64(variants[k]->signature)
               << "` | " << variants[k]->program.size() << " | "
               << variants[k]->input.size() << " |\n";
        }
        os << "\n";
    }

    os << "## Reproduce\n\n```\ncompdiff_cli";
    if (!report.diff.observations.empty()) {
        os << " --impls=";
        for (std::size_t i = 0; i < report.diff.observations.size();
             i++) {
            if (i > 0)
                os << ",";
            os << report.diff.observations[i].impl;
        }
    }
    os << " program.mc input.bin\n```\n\n";
    os << "The CLI exits 1 when the oracle still observes the "
          "divergence.\n";
    return os.str();
}

void
writeVariantArtifacts(const std::string &dir,
                      const DivergenceReport &report)
{
    obs::writeTextFile(dir + "/program.mc", report.program);
    obs::writeTextFile(
        dir + "/input.bin",
        std::string(report.input.begin(), report.input.end()));
    obs::writeTextFile(dir + "/witness.bin",
                       std::string(report.witnessInput.begin(),
                                   report.witnessInput.end()));
}

} // namespace

std::string
writeReport(const std::string &out_dir,
            const DivergenceReport &report)
{
    return writeMergedReport(out_dir, {&report});
}

std::string
writeMergedReport(const std::string &out_dir,
                  const std::vector<const DivergenceReport *>
                      &variants)
{
    const DivergenceReport &primary = *variants.front();
    const std::string dir =
        out_dir + "/" + signatureDirName(primary.semanticKey);

    // A previous (possibly interrupted) run may have filed a
    // different variant set here; clear it so the bundle tree is a
    // pure function of the current merge decision.
    std::error_code ec;
    std::filesystem::remove_all(dir + "/variants", ec);

    writeVariantArtifacts(dir, primary);
    if (variants.size() > 1) {
        for (std::size_t k = 0; k < variants.size(); k++)
            writeVariantArtifacts(dir + "/variants/v" +
                                      std::to_string(k),
                                  *variants[k]);
    }
    obs::writeTextFile(dir + "/report.md",
                       renderMarkdownBody(primary, variants));
    return dir;
}

} // namespace compdiff::reduce
