#include "reduce/program_reducer.hh"

#include <memory>
#include <utility>

#include "minic/parser.hh"
#include "minic/printer.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/diagnostics.hh"

namespace compdiff::reduce
{

using namespace minic;

namespace
{

// ---------------------------------------------------------------
// Node counting
// ---------------------------------------------------------------

struct NodeCounts
{
    std::size_t stmts = 0; ///< non-block statements
    std::size_t nodes = 0; ///< every statement + expression
};

void countExpr(const Expr &expr, NodeCounts &counts);

void
countMaybeExpr(const ExprPtr &expr, NodeCounts &counts)
{
    if (expr)
        countExpr(*expr, counts);
}

void
countExpr(const Expr &expr, NodeCounts &counts)
{
    counts.nodes++;
    switch (expr.kind()) {
    case ExprKind::Unary:
        countExpr(*static_cast<const UnaryExpr &>(expr).operand,
                  counts);
        break;
    case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        countExpr(*bin.lhs, counts);
        countExpr(*bin.rhs, counts);
        break;
    }
    case ExprKind::Assign: {
        const auto &assign = static_cast<const AssignExpr &>(expr);
        countExpr(*assign.target, counts);
        countExpr(*assign.value, counts);
        break;
    }
    case ExprKind::Cond: {
        const auto &cond = static_cast<const CondExpr &>(expr);
        countExpr(*cond.cond, counts);
        countExpr(*cond.thenExpr, counts);
        countExpr(*cond.elseExpr, counts);
        break;
    }
    case ExprKind::Call:
        for (const auto &arg :
             static_cast<const CallExpr &>(expr).args)
            countExpr(*arg, counts);
        break;
    case ExprKind::Index: {
        const auto &index = static_cast<const IndexExpr &>(expr);
        countExpr(*index.base, counts);
        countExpr(*index.index, counts);
        break;
    }
    case ExprKind::Member:
        countExpr(*static_cast<const MemberExpr &>(expr).base,
                  counts);
        break;
    case ExprKind::Cast:
        countExpr(*static_cast<const CastExpr &>(expr).operand,
                  counts);
        break;
    default:
        break;
    }
}

void
countStmt(const Stmt &stmt, NodeCounts &counts)
{
    counts.nodes++;
    switch (stmt.kind()) {
    case StmtKind::Block:
        for (const auto &child :
             static_cast<const BlockStmt &>(stmt).body)
            countStmt(*child, counts);
        return; // blocks are glue, not statements
    case StmtKind::VarDecl:
        counts.stmts++;
        countMaybeExpr(static_cast<const VarDeclStmt &>(stmt).init,
                       counts);
        return;
    case StmtKind::If: {
        counts.stmts++;
        const auto &branch = static_cast<const IfStmt &>(stmt);
        countExpr(*branch.cond, counts);
        countStmt(*branch.thenStmt, counts);
        if (branch.elseStmt)
            countStmt(*branch.elseStmt, counts);
        return;
    }
    case StmtKind::While: {
        counts.stmts++;
        const auto &loop = static_cast<const WhileStmt &>(stmt);
        countExpr(*loop.cond, counts);
        countStmt(*loop.body, counts);
        return;
    }
    case StmtKind::For: {
        counts.stmts++;
        const auto &loop = static_cast<const ForStmt &>(stmt);
        if (loop.init)
            countStmt(*loop.init, counts);
        countMaybeExpr(loop.cond, counts);
        countMaybeExpr(loop.step, counts);
        countStmt(*loop.body, counts);
        return;
    }
    case StmtKind::Return:
        counts.stmts++;
        countMaybeExpr(static_cast<const ReturnStmt &>(stmt).value,
                       counts);
        return;
    case StmtKind::ExprStmt:
        counts.stmts++;
        countExpr(*static_cast<const ExprStmt &>(stmt).expr,
                  counts);
        return;
    case StmtKind::Break:
    case StmtKind::Continue:
        counts.stmts++;
        return;
    }
}

NodeCounts
countProgram(const Program &program)
{
    NodeCounts counts;
    for (const auto &func : program.functions)
        countStmt(*func->body, counts);
    for (const auto &global : program.globals)
        countMaybeExpr(global->init, counts);
    return counts;
}

// ---------------------------------------------------------------
// Edit application
// ---------------------------------------------------------------

enum class EditKind
{
    RemoveFunction,
    RemoveGlobal,
    RemoveStmt,
    FoldIfThen,
    FoldIfElse,
    DropElse,
    UnwrapLoop,
    HoistZero,
};

constexpr EditKind kEditOrder[] = {
    EditKind::RemoveFunction, EditKind::RemoveGlobal,
    EditKind::RemoveStmt,     EditKind::FoldIfThen,
    EditKind::FoldIfElse,     EditKind::DropElse,
    EditKind::UnwrapLoop,     EditKind::HoistZero,
};

/**
 * Applies the `index`-th edit of one kind, locating sites in a
 * deterministic pre-order walk (declaration order, then statement
 * order, then expression operands left to right). apply() returns
 * false when the program has fewer than index+1 sites — the caller's
 * signal that this kind is exhausted.
 */
class EditApplier
{
  public:
    EditApplier(EditKind kind, std::size_t index)
        : kind_(kind), remaining_(index)
    {}

    bool apply(Program &program)
    {
        if (kind_ == EditKind::RemoveFunction) {
            for (std::size_t i = 0; i < program.functions.size();
                 i++) {
                if (program.functions[i]->name == "main")
                    continue;
                if (remaining_-- == 0) {
                    program.functions.erase(
                        program.functions.begin() +
                        static_cast<std::ptrdiff_t>(i));
                    return true;
                }
            }
            return false;
        }
        if (kind_ == EditKind::RemoveGlobal) {
            if (remaining_ < program.globals.size()) {
                program.globals.erase(
                    program.globals.begin() +
                    static_cast<std::ptrdiff_t>(remaining_));
                return true;
            }
            return false;
        }
        for (const auto &func : program.functions) {
            if (visitBlock(*func->body))
                return true;
        }
        return false;
    }

  private:
    /** Is this slot the site the applier is looking for? */
    bool claim() { return remaining_-- == 0; }

    bool visitBlock(BlockStmt &block)
    {
        auto &body = block.body;
        for (std::size_t i = 0; i < body.size(); i++) {
            if (kind_ == EditKind::RemoveStmt && claim()) {
                body.erase(body.begin() +
                           static_cast<std::ptrdiff_t>(i));
                return true;
            }
            if (visitStmtSlot(body[i]))
                return true;
        }
        return false;
    }

    /** Visits one owned statement slot (may replace the slot). */
    bool visitStmtSlot(StmtPtr &slot)
    {
        Stmt &stmt = *slot;
        switch (stmt.kind()) {
        case StmtKind::Block:
            return visitBlock(static_cast<BlockStmt &>(stmt));
        case StmtKind::VarDecl:
            return visitMaybeExpr(
                static_cast<VarDeclStmt &>(stmt).init);
        case StmtKind::If: {
            auto &branch = static_cast<IfStmt &>(stmt);
            if (kind_ == EditKind::FoldIfThen && claim()) {
                slot = std::move(branch.thenStmt);
                return true;
            }
            if (branch.elseStmt) {
                if (kind_ == EditKind::FoldIfElse && claim()) {
                    slot = std::move(branch.elseStmt);
                    return true;
                }
                if (kind_ == EditKind::DropElse && claim()) {
                    branch.elseStmt = nullptr;
                    return true;
                }
            }
            if (visitExprSlot(branch.cond, true))
                return true;
            if (visitStmtSlot(branch.thenStmt))
                return true;
            return branch.elseStmt &&
                   visitStmtSlot(branch.elseStmt);
        }
        case StmtKind::While: {
            auto &loop = static_cast<WhileStmt &>(stmt);
            if (kind_ == EditKind::UnwrapLoop && claim()) {
                slot = std::move(loop.body);
                return true;
            }
            if (visitExprSlot(loop.cond, true))
                return true;
            return visitStmtSlot(loop.body);
        }
        case StmtKind::For: {
            auto &loop = static_cast<ForStmt &>(stmt);
            if (kind_ == EditKind::UnwrapLoop && claim()) {
                // Keep the init clause: the body usually reads the
                // induction variable. `for (init; c; s) b` -> `{
                // init; b }` run once.
                auto block =
                    std::make_unique<BlockStmt>(stmt.loc());
                if (loop.init)
                    block->body.push_back(std::move(loop.init));
                block->body.push_back(std::move(loop.body));
                slot = std::move(block);
                return true;
            }
            if (loop.init) {
                if (kind_ == EditKind::RemoveStmt && claim()) {
                    loop.init = nullptr;
                    return true;
                }
                if (visitStmtSlot(loop.init))
                    return true;
            }
            if (visitMaybeExpr(loop.cond))
                return true;
            if (visitMaybeExpr(loop.step))
                return true;
            return visitStmtSlot(loop.body);
        }
        case StmtKind::Return:
            return visitMaybeExpr(
                static_cast<ReturnStmt &>(stmt).value);
        case StmtKind::ExprStmt:
            return visitExprSlot(
                static_cast<ExprStmt &>(stmt).expr, true);
        case StmtKind::Break:
        case StmtKind::Continue:
            return false;
        }
        return false;
    }

    bool visitMaybeExpr(ExprPtr &slot)
    {
        return slot && visitExprSlot(slot, true);
    }

    /** Visits one owned expression slot; `hoistable` is false for
     *  slots that must stay lvalues (assignment targets). */
    bool visitExprSlot(ExprPtr &slot, bool hoistable)
    {
        Expr &expr = *slot;
        if (kind_ == EditKind::HoistZero && hoistable &&
            hoistEligible(expr) && claim()) {
            slot = std::make_unique<IntLitExpr>(expr.loc(), 0);
            return true;
        }
        switch (expr.kind()) {
        case ExprKind::Unary:
            return visitExprSlot(
                static_cast<UnaryExpr &>(expr).operand, true);
        case ExprKind::Binary: {
            auto &bin = static_cast<BinaryExpr &>(expr);
            return visitExprSlot(bin.lhs, true) ||
                   visitExprSlot(bin.rhs, true);
        }
        case ExprKind::Assign: {
            auto &assign = static_cast<AssignExpr &>(expr);
            return visitExprSlot(assign.target, false) ||
                   visitExprSlot(assign.value, true);
        }
        case ExprKind::Cond: {
            auto &cond = static_cast<CondExpr &>(expr);
            return visitExprSlot(cond.cond, true) ||
                   visitExprSlot(cond.thenExpr, true) ||
                   visitExprSlot(cond.elseExpr, true);
        }
        case ExprKind::Call: {
            for (auto &arg : static_cast<CallExpr &>(expr).args) {
                if (visitExprSlot(arg, true))
                    return true;
            }
            return false;
        }
        case ExprKind::Index: {
            auto &index = static_cast<IndexExpr &>(expr);
            // The base stays an lvalue-ish pointer; hoisting it to 0
            // would only produce sema rejects.
            return visitExprSlot(index.base, false) ||
                   visitExprSlot(index.index, true);
        }
        case ExprKind::Member:
            return visitExprSlot(
                static_cast<MemberExpr &>(expr).base, false);
        case ExprKind::Cast:
            return visitExprSlot(
                static_cast<CastExpr &>(expr).operand, true);
        default:
            return false;
        }
    }

    static bool hoistEligible(const Expr &expr)
    {
        switch (expr.kind()) {
        case ExprKind::IntLit:
        case ExprKind::FloatLit:
        case ExprKind::StrLit:
        case ExprKind::SizeOf:
            return false;
        default:
            break;
        }
        // Only integer-typed expressions become `0`; everything else
        // (pointers, structs, doubles) would just burn frontend
        // rejects. The program came from parseAndCheck, so types are
        // annotated.
        return expr.type && expr.type->isInteger();
    }

    EditKind kind_;
    std::size_t remaining_;
};

/** parseAndCheck that reports failure instead of throwing. */
std::unique_ptr<Program>
tryFrontend(const std::string &source)
{
    try {
        return parseAndCheck(source);
    } catch (const support::CompileError &) {
        return nullptr;
    }
}

} // namespace

std::size_t
countStatements(const Program &program)
{
    return countProgram(program).stmts;
}

std::size_t
countAstNodes(const Program &program)
{
    return countProgram(program).nodes;
}

ProgramReduction
reduceProgram(Oracle &oracle, const std::string &source,
              const support::Bytes &input)
{
    obs::Span span("reduce.program");
    ProgramReduction out;
    const std::uint64_t tried_before = oracle.stats().tried;
    const std::uint64_t accepted_before = oracle.stats().accepted;

    {
        auto program = parseAndCheck(source);
        const NodeCounts counts = countProgram(*program);
        out.stmtsBefore = counts.stmts;
        out.nodesBefore = counts.nodes;
        // Canonicalize immediately: every later candidate is a
        // printProgram rendering, so diffs against the current best
        // stay purely structural.
        out.source = printProgram(*program);
    }

    bool progressed = true;
    while (progressed && !oracle.budgetExhausted()) {
        progressed = false;
        for (EditKind kind : kEditOrder) {
            for (std::size_t index = 0;
                 !oracle.budgetExhausted();) {
                auto working = parseAndCheck(out.source);
                EditApplier applier(kind, index);
                if (!applier.apply(*working))
                    break; // sites of this kind exhausted
                const std::string candidate_source =
                    printProgram(*working);
                auto candidate = tryFrontend(candidate_source);
                if (!candidate) {
                    // E.g. a pruned function that is still called:
                    // rejected by sema, no oracle budget spent.
                    out.frontendRejected++;
                    index++;
                    continue;
                }
                if (oracle.preserves(*candidate, input)) {
                    out.source = candidate_source;
                    progressed = true;
                    // Sites shifted down; the same index now names
                    // the next site, so do not advance it.
                } else {
                    index++;
                }
            }
        }
    }

    {
        auto program = parseAndCheck(out.source);
        const NodeCounts counts = countProgram(*program);
        out.stmtsAfter = counts.stmts;
        out.nodesAfter = counts.nodes;
    }
    out.candidatesTried = oracle.stats().tried - tried_before;
    out.candidatesAccepted =
        oracle.stats().accepted - accepted_before;
    obs::counter("reduce.program.stmts_removed")
        .add(out.stmtsBefore - out.stmtsAfter);
    obs::counter("reduce.program.nodes_removed")
        .add(out.nodesBefore >= out.nodesAfter
                 ? out.nodesBefore - out.nodesAfter
                 : 0);
    obs::counter("reduce.program.frontend_rejected")
        .add(out.frontendRejected);
    return out;
}

} // namespace compdiff::reduce
