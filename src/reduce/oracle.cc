#include "reduce/oracle.hh"

#include "obs/metrics.hh"
#include "support/hash.hh"

namespace compdiff::reduce
{

std::uint64_t
divergenceSignature(const core::DiffResult &result)
{
    support::HashCombiner combiner;
    combiner.add(result.divergent ? 1 : 0);
    combiner.add(result.classCount);
    for (std::size_t cls : result.classOf)
        combiner.add(cls);
    for (const auto &obs : result.observations)
        combiner.addString(obs.exitClass);
    return combiner.digest();
}

SignatureOracle::SignatureOracle(const minic::Program &program,
                                 core::ImplementationSet impls,
                                 const support::Bytes &witness,
                                 core::DiffOptions options,
                                 std::uint64_t candidate_budget)
    : impls_(std::move(impls)), options_(std::move(options)),
      budget_(candidate_budget)
{
    // Parallelism belongs to the reduction pipeline's per-signature
    // fan-out; a serial oracle keeps one reduction = one thread.
    options_.jobs = 1;
    witnessProgram_ = &program;
    witnessEngine_ = std::make_unique<core::DiffEngine>(
        program, impls_, options_);
    witnessResult_ = witnessEngine_->runInput(witness);
    reproduced_ = witnessResult_.divergent;
    target_ = divergenceSignature(witnessResult_);
}

SignatureOracle::~SignatureOracle() = default;

const core::DiffEngine &
SignatureOracle::engineFor(const minic::Program &program)
{
    // The witness program outlives the oracle, so its engine is
    // kept. Any other program is a reduction candidate borrowed for
    // ONE call, so the candidate engine is retargeted on EVERY call —
    // never keyed on &program. (A candidate dies after its call and a
    // later candidate can reuse the same heap address, so an
    // address-keyed cache would silently serve an engine whose
    // artifacts reference the freed AST.) Retargeting recompiles
    // through the process-wide CompileCache (only genuinely new
    // candidate sources compile) and rebinds the resident executors
    // in place, so the per-candidate cost is a cache lookup plus a
    // module rebind — no executor, Vm, or arena reconstruction.
    if (&program == witnessProgram_)
        return *witnessEngine_;
    if (!candidateEngine_) {
        candidateEngine_ = std::make_unique<core::DiffEngine>(
            program, impls_, options_);
    } else {
        candidateEngine_->retarget(program);
    }
    return *candidateEngine_;
}

bool
SignatureOracle::preserves(const minic::Program &program,
                           const support::Bytes &input)
{
    if (budgetExhausted())
        return false;
    stats_.tried++;
    obs::counter("reduce.candidates_tried").add();
    const auto result = engineFor(program).runInput(input);
    if (!result.divergent ||
        divergenceSignature(result) != target_) {
        return false;
    }
    stats_.accepted++;
    obs::counter("reduce.candidates_accepted").add();
    return true;
}

} // namespace compdiff::reduce
