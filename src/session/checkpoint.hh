#pragma once

/**
 * @file
 * Crash-safe on-disk journaling for campaign sessions.
 *
 * A journal is an append-only file of checksummed records:
 *
 *   header:  8-byte magic "CDIFSESJ", u32 format version
 *   record:  u32 record magic, u64 payload length,
 *            u64 MurmurHash3 checksum of the payload, payload bytes
 *
 * Appends are flushed before the writer moves on, so a process
 * killed mid-append loses at most the record being written: readers
 * accept the longest prefix of fully-valid records and silently drop
 * a truncated or checksum-failing tail (the defining property of a
 * write-ahead log). A file whose *header* is wrong is a different
 * situation — that is not a crash artifact but a wrong or corrupted
 * file, and readers reject it with a SessionError diagnostic.
 *
 * Whole-file artifacts (manifest, stats) are written atomically:
 * write to `<path>.tmp`, flush, rename over `<path>` — a crash
 * leaves either the old file or the new one, never a hybrid.
 * Journal compaction (rewriting history as header + last record)
 * uses the same write-then-rename discipline.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "session/serial.hh"
#include "support/bytes.hh"

namespace compdiff::session
{

/** Journal format version (bumped on any layout change). */
constexpr std::uint32_t kJournalVersion = 1;

/** Create (or truncate to) an empty journal: header only. */
void createJournal(const std::string &path);

/** Append one checksummed record and flush. */
void appendRecord(const std::string &path,
                  const support::Bytes &payload);

/**
 * Read every fully-valid record, in append order. A truncated or
 * checksum-failing tail is dropped (crash artifact); everything
 * before it is returned.
 *
 * @throws SessionError when the file is missing, unreadable, or its
 *         header is not a journal header (wrong magic/version).
 */
std::vector<support::Bytes> readRecords(const std::string &path);

/**
 * The last fully-valid record, or nullopt for an empty journal.
 * Same error contract as readRecords.
 */
std::optional<support::Bytes>
readLastRecord(const std::string &path);

/**
 * Rewrite the journal as header + its last valid record (atomic
 * write-then-rename). Bounds journal growth across restarts: every
 * resume compacts before appending new checkpoints.
 */
void compactJournal(const std::string &path);

/** Write a whole journal (header + records) atomically. */
void writeJournal(const std::string &path,
                  const std::vector<support::Bytes> &records);

/** Atomic whole-file write (write `<path>.tmp`, flush, rename).
 *  @throws SessionError on I/O failure. */
void atomicWriteFile(const std::string &path,
                     const std::string &content);

/** Whole-file read; nullopt when the file does not exist.
 *  @throws SessionError when it exists but cannot be read. */
std::optional<std::string> readTextFile(const std::string &path);

} // namespace compdiff::session
