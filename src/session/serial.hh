#pragma once

/**
 * @file
 * Binary serialization for session checkpoints.
 *
 * A deliberately small, versionless wire format: little-endian
 * fixed-width integers, length-prefixed byte strings, and nothing
 * else. Versioning, checksumming, and atomicity live one level up
 * (the journal format in checkpoint.hh); this layer only turns
 * fuzz::FuzzerState and session::DivergenceRecord into bytes and
 * back.
 *
 * Decoding is defensive: every read is bounds-checked and every
 * length is validated against the remaining payload, so a corrupted
 * (but checksum-colliding) record produces a SessionError with a
 * diagnostic instead of undefined behavior.
 */

#include <cstdint>
#include <stdexcept>
#include <string>

#include "fuzz/fuzzer.hh"
#include "session/records.hh"
#include "support/bytes.hh"

namespace compdiff::session
{

/** Any malformed session artifact: journal, manifest, or record. */
class SessionError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Append-only little-endian encoder. */
class Encoder
{
  public:
    void u8(std::uint8_t value) { out_.push_back(value); }
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);
    void i64(std::int64_t value)
    {
        u64(static_cast<std::uint64_t>(value));
    }
    void f64(double value);
    /** Length-prefixed byte string. */
    void bytes(const support::Bytes &value);
    /** Length-prefixed character string. */
    void str(const std::string &value);

    const support::Bytes &data() const { return out_; }
    support::Bytes take() { return std::move(out_); }

  private:
    support::Bytes out_;
};

/** Bounds-checked decoder over one payload. */
class Decoder
{
  public:
    explicit Decoder(const support::Bytes &payload)
        : payload_(payload)
    {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    support::Bytes bytes();
    std::string str();

    /** Read a length prefix for `elem_size`-byte elements, rejecting
     *  lengths the remaining payload cannot possibly hold. */
    std::size_t length(std::size_t elem_size = 1);

    bool atEnd() const { return pos_ == payload_.size(); }
    /** @throws SessionError unless the payload was fully consumed. */
    void expectEnd() const;

  private:
    void need(std::size_t count) const;

    const support::Bytes &payload_;
    std::size_t pos_ = 0;
};

/** Encode a full fuzzer checkpoint (one journal record's payload). */
support::Bytes encodeFuzzerState(const fuzz::FuzzerState &state);

/** @throws SessionError on any malformed payload. */
fuzz::FuzzerState decodeFuzzerState(const support::Bytes &payload);

support::Bytes
encodeDivergenceRecord(const DivergenceRecord &record);

/** @throws SessionError on any malformed payload. */
DivergenceRecord
decodeDivergenceRecord(const support::Bytes &payload);

} // namespace compdiff::session
