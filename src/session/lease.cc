#include "session/lease.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "obs/stats.hh"
#include "session/heartbeat.hh"

namespace compdiff::session
{

std::string
leasePath(const std::string &dir, std::size_t shard)
{
    return dir + "/shard-" + std::to_string(shard) + ".lease";
}

std::string
renderLease(const ShardLease &lease)
{
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "%.3f", lease.acquiredUnix);
    std::ostringstream os;
    os << "shard : " << lease.shard << "\n";
    os << "worker : " << lease.worker << "\n";
    os << "pid : " << lease.pid << "\n";
    os << "generation : " << lease.generation << "\n";
    os << "acquired_unix : " << stamp << "\n";
    return os.str();
}

ShardLease
parseLease(const std::string &text)
{
    const auto kv = obs::parseFuzzerStats(text);
    ShardLease lease;
    const auto u64 = [&](const char *key) -> std::uint64_t {
        const auto it = kv.find(key);
        if (it == kv.end())
            return 0;
        return std::strtoull(it->second.c_str(), nullptr, 10);
    };
    lease.shard = u64("shard");
    lease.worker = u64("worker");
    lease.pid = u64("pid");
    lease.generation = u64("generation");
    if (const auto it = kv.find("acquired_unix"); it != kv.end())
        lease.acquiredUnix = std::strtod(it->second.c_str(), nullptr);
    return lease;
}

namespace
{

/** One O_CREAT|O_EXCL attempt; Held here only means "file exists". */
LeaseOutcome
tryCreate(const std::string &path, const ShardLease &lease)
{
    const int fd = ::open(path.c_str(),
                          O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return errno == EEXIST ? LeaseOutcome::Held
                               : LeaseOutcome::IoError;
    const std::string body = renderLease(lease);
    const bool ok = ::write(fd, body.data(), body.size()) ==
                    static_cast<ssize_t>(body.size());
    ::close(fd);
    if (!ok) {
        ::unlink(path.c_str());
        return LeaseOutcome::IoError;
    }
    return LeaseOutcome::Acquired;
}

} // namespace

LeaseOutcome
acquireShardLease(const std::string &dir, const ShardLease &lease,
                  ShardLease *holder)
{
    const std::string path = leasePath(dir, lease.shard);
    // Two create attempts: the first may find a stale token from a
    // dead holder, which we break and retry; losing the *second*
    // race means another live process just took the shard — Held.
    for (int attempt = 0; attempt < 2; attempt++) {
        const LeaseOutcome created = tryCreate(path, lease);
        if (created != LeaseOutcome::Held)
            return created;
        ShardLease current;
        {
            std::ifstream in(path);
            std::ostringstream body;
            body << in.rdbuf();
            current = parseLease(body.str());
        }
        // pid 0 means a torn/garbage lease file: treat as dead. Our
        // own pid re-acquires in place (a revived worker walking its
        // shard list again).
        if (current.pid == lease.pid && current.pid != 0) {
            ::unlink(path.c_str());
            continue;
        }
        if (current.pid != 0 && pidAlive(current.pid)) {
            if (holder)
                *holder = current;
            return LeaseOutcome::Held;
        }
        ::unlink(path.c_str());
    }
    return LeaseOutcome::Held;
}

std::optional<ShardLease>
readShardLease(const std::string &dir, std::size_t shard)
{
    std::ifstream in(leasePath(dir, shard));
    if (!in)
        return std::nullopt;
    std::ostringstream body;
    body << in.rdbuf();
    return parseLease(body.str());
}

bool
releaseShardLease(const std::string &dir, std::size_t shard,
                  std::uint64_t pid)
{
    const auto current = readShardLease(dir, shard);
    if (!current)
        return true;
    if (current->pid != pid)
        return false;
    return breakShardLease(dir, shard);
}

bool
breakShardLease(const std::string &dir, std::size_t shard)
{
    std::error_code ec;
    std::filesystem::remove(leasePath(dir, shard), ec);
    return !ec;
}

} // namespace compdiff::session
