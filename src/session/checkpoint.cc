#include "session/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/hash.hh"

namespace compdiff::session
{

using support::Bytes;

namespace
{

constexpr char kFileMagic[8] = {'C', 'D', 'I', 'F',
                               'S', 'E', 'S', 'J'};
constexpr std::uint32_t kRecordMagic = 0x43445352; // "CDSR"

void
putU32(std::string &out, std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>(value >> shift));
}

void
putU64(std::string &out, std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>(value >> shift));
}

std::uint32_t
getU32(const std::string &data, std::size_t pos)
{
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8)
        value |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(data[pos++]))
                 << shift;
    return value;
}

std::uint64_t
getU64(const std::string &data, std::size_t pos)
{
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8)
        value |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(data[pos++]))
                 << shift;
    return value;
}

std::string
renderHeader()
{
    std::string header(kFileMagic, sizeof(kFileMagic));
    putU32(header, kJournalVersion);
    return header;
}

constexpr std::size_t kHeaderSize = sizeof(kFileMagic) + 4;
/** Record framing: magic + length + checksum. */
constexpr std::size_t kFrameSize = 4 + 8 + 8;

std::string
renderRecord(const Bytes &payload)
{
    std::string record;
    record.reserve(kFrameSize + payload.size());
    putU32(record, kRecordMagic);
    putU64(record, payload.size());
    putU64(record, support::murmurHash64(payload));
    record.append(payload.begin(), payload.end());
    return record;
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SessionError("cannot open journal " + path);
    std::ostringstream data;
    data << in.rdbuf();
    if (in.bad())
        throw SessionError("cannot read journal " + path);
    return data.str();
}

} // namespace

void
createJournal(const std::string &path)
{
    atomicWriteFile(path, renderHeader());
}

void
appendRecord(const std::string &path, const Bytes &payload)
{
    std::ofstream out(path,
                      std::ios::binary | std::ios::app);
    if (!out)
        throw SessionError("cannot append to journal " + path);
    out << renderRecord(payload);
    out.flush();
    if (!out)
        throw SessionError("short write to journal " + path);
}

std::vector<Bytes>
readRecords(const std::string &path)
{
    const std::string data = readWholeFile(path);
    if (data.size() < kHeaderSize ||
        std::memcmp(data.data(), kFileMagic,
                    sizeof(kFileMagic)) != 0) {
        throw SessionError(
            path + " is not a session journal (bad file header); "
                   "refusing to resume from it");
    }
    const std::uint32_t version =
        getU32(data, sizeof(kFileMagic));
    if (version != kJournalVersion) {
        throw SessionError(
            path + " has journal format version " +
            std::to_string(version) + ", this build reads version " +
            std::to_string(kJournalVersion));
    }

    std::vector<Bytes> records;
    std::size_t pos = kHeaderSize;
    while (pos < data.size()) {
        // Anything invalid from here on is a torn tail: keep what
        // was fully written before it.
        if (data.size() - pos < kFrameSize)
            break;
        if (getU32(data, pos) != kRecordMagic)
            break;
        const std::uint64_t length = getU64(data, pos + 4);
        if (length > data.size() - pos - kFrameSize)
            break;
        const std::uint64_t checksum = getU64(data, pos + 12);
        Bytes payload(
            data.begin() +
                static_cast<std::ptrdiff_t>(pos + kFrameSize),
            data.begin() + static_cast<std::ptrdiff_t>(
                               pos + kFrameSize + length));
        if (support::murmurHash64(payload) != checksum)
            break;
        records.push_back(std::move(payload));
        pos += kFrameSize + length;
    }
    return records;
}

std::optional<Bytes>
readLastRecord(const std::string &path)
{
    auto records = readRecords(path);
    if (records.empty())
        return std::nullopt;
    return std::move(records.back());
}

void
compactJournal(const std::string &path)
{
    const auto last = readLastRecord(path);
    std::string compacted = renderHeader();
    if (last)
        compacted += renderRecord(*last);
    atomicWriteFile(path, compacted);
}

void
writeJournal(const std::string &path,
             const std::vector<Bytes> &records)
{
    std::string data = renderHeader();
    for (const auto &record : records)
        data += renderRecord(record);
    atomicWriteFile(path, data);
}

void
atomicWriteFile(const std::string &path,
                const std::string &content)
{
    const std::filesystem::path target(path);
    std::error_code ec;
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(),
                                            ec);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            throw SessionError("cannot write " + tmp);
        out << content;
        out.flush();
        if (!out)
            throw SessionError("short write to " + tmp);
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        throw SessionError("cannot rename " + tmp + " to " + path +
                           ": " + ec.message());
    }
}

std::optional<std::string>
readTextFile(const std::string &path)
{
    if (!std::filesystem::exists(path))
        return std::nullopt;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SessionError("cannot open " + path);
    std::ostringstream data;
    data << in.rdbuf();
    if (in.bad())
        throw SessionError("cannot read " + path);
    return data.str();
}

} // namespace compdiff::session
