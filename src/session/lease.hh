#pragma once

/**
 * @file
 * Shard lease files: exclusive, crash-tolerant shard ownership for
 * multi-process fleets.
 *
 * A fleet coordinator assigns shards to worker *processes*; two
 * workers fuzzing the same shard would race its checkpoint journal
 * and its event log. The lease file is the mutual-exclusion token:
 * `shard-<N>.lease` in the session directory, created with
 * O_CREAT|O_EXCL so exactly one process can win the shard, and
 * carrying the holder's pid so a reader (another worker, a late
 * coordinator, compdiff_monitor) can distinguish "held by a live
 * process — back off" from "held by a corpse — break it and take
 * over".
 *
 * Leases are *liveness* metadata like heartbeats, never campaign
 * input: they carry pids and wall-clock stamps and are excluded from
 * every deterministic artifact. Losing a lease file costs nothing but
 * a possible duplicate spawn attempt (which the journal discipline
 * tolerates — the second process refuses the shard when the first
 * re-acquires, and checkpoint appends are checksummed).
 *
 * The file body reuses the `key : value` fuzzer_stats syntax, so
 * obs::parseFuzzerStats tooling reads it for free.
 */

#include <cstdint>
#include <optional>
#include <string>

namespace compdiff::session
{

/** One shard's ownership token, as persisted in its lease file. */
struct ShardLease
{
    std::uint64_t shard = 0;
    /** Fleet-local worker index (display/debug only). */
    std::uint64_t worker = 0;
    /** Holder process id — the liveness probe target. */
    std::uint64_t pid = 0;
    /** Coordinator spawn generation (0 = first spawn; revivals
     *  increment it). Display/debug only. */
    std::uint64_t generation = 0;
    /** Seconds since the Unix epoch at acquisition (display only). */
    double acquiredUnix = 0;
};

/** `<dir>/shard-<shard>.lease`. */
std::string leasePath(const std::string &dir, std::size_t shard);

/** Render in `key : value` form (parseFuzzerStats-compatible). */
std::string renderLease(const ShardLease &lease);

/** Parse renderLease output; missing keys keep their zero defaults
 *  (leases are liveness metadata — never throws). */
ShardLease parseLease(const std::string &text);

enum class LeaseOutcome
{
    Acquired, ///< we own the shard now
    Held,     ///< a live process owns it — back off
    IoError,  ///< could not create/read the lease file
};

/**
 * Try to take ownership of `lease.shard` in `dir`.
 *
 * The happy path is an O_CREAT|O_EXCL create. When the file already
 * exists, the holder decides the outcome: a live holder (pid probes
 * alive and differs from ours) yields Held with `*holder` filled in;
 * a dead or unreadable holder is broken (unlink) and the acquisition
 * retried once; our own pid re-acquires in place (a revived worker
 * re-running its shard list).
 */
LeaseOutcome acquireShardLease(const std::string &dir,
                               const ShardLease &lease,
                               ShardLease *holder = nullptr);

/** Read a shard's lease, or nullopt when absent/unreadable. */
std::optional<ShardLease> readShardLease(const std::string &dir,
                                         std::size_t shard);

/**
 * Release a lease we hold: unlink only when the file still records
 * `pid` (never steal a successor's lease). Returns true when the
 * file is gone afterwards.
 */
bool releaseShardLease(const std::string &dir, std::size_t shard,
                       std::uint64_t pid);

/** Unconditionally remove a shard's lease (coordinator breaking a
 *  dead holder's token). Returns true when the file is gone. */
bool breakShardLease(const std::string &dir, std::size_t shard);

} // namespace compdiff::session
