#include "session/session.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include <unistd.h> // getpid for heartbeats

#include "compiler/cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "reduce/pipeline.hh"
#include "session/checkpoint.hh"
#include "session/heartbeat.hh"
#include "support/hash.hh"
#include "support/logging.hh"

namespace compdiff::session
{

using support::Bytes;

namespace
{

constexpr std::uint32_t kSessionFormatVersion = 1;

std::string
hex64(std::uint64_t value)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

// --- shard event derivation -------------------------------------
//
// Campaign events are a pure projection of the fuzzer's corpus/
// diffs/crashes vectors onto the exec-index axis: no wall clock, no
// pid, nothing process-local. That is what makes the per-shard event
// journal replayable — a resumed fuzzer re-derives the identical
// vectors, so re-deriving events from them reproduces the identical
// byte stream.

obs::CampaignEvent
discoveryEvent(const fuzz::Seed &seed)
{
    obs::CampaignEvent event("discovery", seed.foundAtExec);
    event.num("size", seed.data.size())
        .num("cov", seed.coverageBits)
        .num("depth", static_cast<std::uint64_t>(seed.depth));
    return event;
}

obs::CampaignEvent
divergenceEvent(const fuzz::FoundDiff &diff)
{
    obs::CampaignEvent event("divergence", diff.execIndex);
    event.hex("signature", diff.signature)
        .hex("sem", diff.semanticKey)
        .num("size", diff.input.size())
        .num("probes", diff.probes.size());
    return event;
}

obs::CampaignEvent
sanFindingEvent(const fuzz::FoundDiff &diff)
{
    const sancheck::SanFinding &finding = diff.sanFinding;
    obs::CampaignEvent event("san_finding", diff.execIndex);
    event.hex("signature", diff.signature)
        .text("impl", finding.implId)
        .text("ub", refinterp::ubKindName(finding.ubKind))
        .text("class", sancheck::findingKindName(finding.kind))
        .num("size", diff.input.size());
    return event;
}

obs::CampaignEvent
crashEvent(const fuzz::FoundCrash &crash)
{
    obs::CampaignEvent event("crash", crash.execIndex);
    event.text("exit", crash.exitClass)
        .num("size", crash.input.size());
    return event;
}

/**
 * Order a batch the way the fuzz loop discovers things within one
 * execution: crash, then coverage discovery, then divergence (the
 * push order inside Fuzzer::executeOne). With this tiebreak, sorting
 * each incremental safe-point batch yields the same stream as
 * sorting a full derivation — exec indices only grow between safe
 * points, so batches never interleave.
 */
int
eventKindRank(const std::string &kind)
{
    if (kind == "crash")
        return 0;
    if (kind == "discovery")
        return 1;
    return 2;
}

void
sortEventBatch(std::vector<obs::CampaignEvent> &events)
{
    std::stable_sort(events.begin(), events.end(),
                     [](const obs::CampaignEvent &a,
                        const obs::CampaignEvent &b) {
                         if (a.exec != b.exec)
                             return a.exec < b.exec;
                         return eventKindRank(a.kind) <
                                eventKindRank(b.kind);
                     });
}

} // namespace

CampaignSession::CampaignSession(const minic::Program &program,
                                 std::vector<Bytes> seeds,
                                 SessionConfig config)
    : program_(program), seeds_(std::move(seeds)),
      config_(std::move(config))
{
    // Resolve the default sanitizer set up front so the campaign
    // fingerprint and the MANIFEST record the concrete
    // implementation ids rather than "empty means defaults".
    if (config_.fuzz.sancheckMode &&
        config_.fuzz.sancheckImpls.empty()) {
        config_.fuzz.sancheckImpls =
            sancheck::defaultImplementations();
    }
}

CampaignSession::~CampaignSession() = default;

void
CampaignSession::resolveOwnedShards()
{
    owned_.clear();
    if (config_.workerShards.empty()) {
        for (std::size_t s = 0; s < plans_.size(); s++)
            owned_.push_back(s);
        return;
    }
    if (!persistent()) {
        throw SessionError(
            "fleet worker mode requires a session directory");
    }
    bool first = true;
    std::size_t prev = 0;
    for (const std::size_t s : config_.workerShards) {
        if (s >= plans_.size()) {
            throw SessionError(
                "worker shard " + std::to_string(s) +
                " is out of range: the campaign has " +
                std::to_string(plans_.size()) + " shards");
        }
        if (!first && s <= prev) {
            throw SessionError("worker shard list must be strictly "
                               "increasing");
        }
        first = false;
        prev = s;
        owned_.push_back(s);
    }
}

std::string
CampaignSession::shardJournalPath(std::size_t shard) const
{
    return config_.dir + "/shard-" + std::to_string(shard) +
           ".journal";
}

std::string
CampaignSession::shardEventsPath(std::size_t shard) const
{
    return config_.dir + "/shard-" + std::to_string(shard) +
           ".events.jsonl";
}

std::uint64_t
CampaignSession::checkpointCadence(
    const fuzz::FuzzOptions &shard_options) const
{
    if (config_.checkpointEvery)
        return config_.checkpointEvery;
    return std::max<std::uint64_t>(shard_options.maxExecs / 20, 1);
}

std::uint64_t
CampaignSession::campaignFingerprint() const
{
    // Everything that defines the campaign's results. `jobs` and the
    // telemetry paths are deliberately absent (result-neutral), as
    // are the two non-hashable knobs: the output normalizer and the
    // traitsTweak ablation hook — resuming with a different one of
    // those is on the caller.
    const fuzz::FuzzOptions &o = config_.fuzz;
    support::HashCombiner h;
    h.add(compiler::programFingerprint(program_));
    h.add(o.maxExecs);
    h.add(o.rngSeed);
    h.add(o.maxInputSize);
    h.add(o.energyBase);
    h.add(o.plotEvery);
    h.addString(o.fuzzConfig.name());
    h.add(o.enableCompDiff ? 1 : 0);
    h.add(o.divergenceFeedback ? 1 : 0);
    for (const auto &impl : o.diffImpls)
        h.addString(impl->id());
    h.add(o.sancheckMode ? 1 : 0);
    for (const auto &impl : o.sancheckImpls)
        h.addString(impl->id());
    h.add(o.limits.maxInstructions);
    h.add(o.limits.stackSize);
    h.add(o.limits.heapSize);
    h.add(o.limits.maxOutput);
    h.add(o.limits.maxCallDepth);
    h.add(o.diffOptions.retryTimeouts ? 1 : 0);
    h.add(static_cast<std::uint64_t>(o.diffOptions.timeoutRetries));
    h.add(o.diffOptions.timeoutBudgetFactor);
    h.add(std::max<std::size_t>(config_.shards, 1));
    h.add(seeds_.size());
    for (const auto &seed : seeds_)
        h.add(support::murmurHash64(seed));
    return h.digest();
}

std::string
CampaignSession::renderManifest() const
{
    std::ostringstream os;
    os << "format_version : " << kSessionFormatVersion << "\n";
    os << "fingerprint : " << hex64(campaignFingerprint()) << "\n";
    os << "shards : " << std::max<std::size_t>(config_.shards, 1)
       << "\n";
    os << "max_execs : " << config_.fuzz.maxExecs << "\n";
    os << "rng_seed : " << config_.fuzz.rngSeed << "\n";
    std::string impls;
    for (const auto &impl : config_.fuzz.diffImpls) {
        if (!impls.empty())
            impls += ",";
        impls += impl->id();
    }
    os << "impls : " << impls << "\n";
    // Only sancheck sessions carry the mode lines: every manifest a
    // differential campaign ever wrote stays byte-identical.
    if (config_.fuzz.sancheckMode) {
        os << "mode : sancheck\n";
        std::string san;
        for (const auto &impl : config_.fuzz.sancheckImpls) {
            if (!san.empty())
                san += ",";
            san += impl->id();
        }
        os << "sancheck_impls : " << san << "\n";
    }
    return os.str();
}

void
CampaignSession::validateManifest(const std::string &text) const
{
    const auto kv = obs::parseFuzzerStats(text);
    const auto field =
        [&](const std::string &key) -> const std::string & {
        const auto it = kv.find(key);
        if (it == kv.end()) {
            throw SessionError("session manifest in " + config_.dir +
                               " is missing the '" + key +
                               "' field; the directory does not "
                               "hold a valid session");
        }
        return it->second;
    };
    const std::string &version = field("format_version");
    if (version != std::to_string(kSessionFormatVersion)) {
        throw SessionError(
            "session in " + config_.dir + " has format version " +
            version + "; this build reads version " +
            std::to_string(kSessionFormatVersion));
    }
    const auto expect = [&](const std::string &key,
                            const std::string &want) {
        const std::string &got = field(key);
        if (got != want) {
            throw SessionError(
                "cannot resume session in " + config_.dir + ": its " +
                key + " is " + got + " but this campaign's is " +
                want + " — a session must be resumed with the exact "
                       "campaign configuration it was started with");
        }
    };
    expect("shards",
           std::to_string(std::max<std::size_t>(config_.shards, 1)));
    expect("max_execs", std::to_string(config_.fuzz.maxExecs));
    expect("rng_seed", std::to_string(config_.fuzz.rngSeed));
    expect("fingerprint", hex64(campaignFingerprint()));
}

void
CampaignSession::openDir(
    std::vector<std::unique_ptr<fuzz::FuzzerState>> &restored)
{
    if (!persistent()) {
        if (config_.resume) {
            throw SessionError(
                "cannot resume without a session directory");
        }
        return;
    }
    const std::string manifest_path = config_.dir + "/MANIFEST";
    if (workerMode()) {
        // Attach semantics: the fleet coordinator creates the
        // directory (initializeDir) before any worker spawns, so a
        // missing manifest is a protocol error, not a fresh start.
        // Owned shards restore from their journals when checkpoints
        // exist — a revived worker continues bit-exactly — and the
        // session-level bookkeeping (restart counters, final
        // artifacts) stays with the coordinator.
        const auto text = readTextFile(manifest_path);
        if (!text) {
            throw SessionError(
                "no session manifest at " + manifest_path +
                "; the fleet coordinator must initialize the "
                "session before workers attach");
        }
        validateManifest(*text);
        std::size_t resumed_shards = 0;
        for (std::size_t i = 0; i < owned_.size(); i++) {
            const std::size_t s = owned_[i];
            const std::string path = shardJournalPath(s);
            if (!std::filesystem::exists(path)) {
                createJournal(path);
                continue;
            }
            const auto payload = readLastRecord(path);
            if (!payload) {
                compactJournal(path);
                continue;
            }
            restored[i] = std::make_unique<fuzz::FuzzerState>(
                decodeFuzzerState(*payload));
            compactJournal(path);
            resumed_shards++;
        }
        obs::CampaignEvent opened("worker_open", 0);
        opened.num("pid", static_cast<std::uint64_t>(::getpid()))
            .num("shards", owned_.size())
            .num("resumed", resumed_shards);
        appendOpsEvent(std::move(opened));
        return;
    }
    if (config_.resume) {
        const auto text = readTextFile(manifest_path);
        if (!text) {
            throw SessionError(
                "no session manifest at " + manifest_path +
                "; nothing to resume (start without resume to "
                "create a new session)");
        }
        validateManifest(*text);
        if (const auto stats_text =
                readTextFile(config_.dir + "/session_stats")) {
            const auto kv = obs::parseFuzzerStats(*stats_text);
            if (const auto it = kv.find("run_secs");
                it != kv.end()) {
                savedRunSecs_ =
                    std::strtod(it->second.c_str(), nullptr);
            }
            if (const auto it = kv.find("restarts"); it != kv.end()) {
                restarts_ = std::strtoull(it->second.c_str(),
                                          nullptr, 10);
            }
        }
        restarts_++;
        for (std::size_t s = 0; s < plans_.size(); s++) {
            const std::string path = shardJournalPath(s);
            if (!std::filesystem::exists(path)) {
                support::warn("session: " + path +
                              " is missing; shard " +
                              std::to_string(s) +
                              " restarts from scratch");
                createJournal(path);
                continue;
            }
            const auto payload = readLastRecord(path);
            if (!payload) {
                support::warn(
                    "session: " + path +
                    " holds no complete checkpoint; shard " +
                    std::to_string(s) + " restarts from scratch");
                compactJournal(path);
                continue;
            }
            restored[s] = std::make_unique<fuzz::FuzzerState>(
                decodeFuzzerState(*payload));
            // Bound journal growth: history before the checkpoint
            // we restored from is dead weight.
            compactJournal(path);
        }
    } else {
        if (readTextFile(manifest_path)) {
            throw SessionError(
                config_.dir +
                " already contains a campaign session; resume it, "
                "or choose a fresh directory");
        }
        std::error_code ec;
        std::filesystem::create_directories(config_.dir, ec);
        atomicWriteFile(manifest_path, renderManifest());
        for (std::size_t s = 0; s < plans_.size(); s++)
            createJournal(shardJournalPath(s));
    }
    // Persist the restart count up front: a hard kill mid-run must
    // not forget that this incarnation happened. (Wall-clock since
    // this point is lost on a hard kill — display-only data.)
    writeSessionStats(savedRunSecs_);
    // Ops log: process history, append-only across restarts — this
    // stream records what *happened to the session* (restarts,
    // checkpoints, cache traffic) and is deliberately not part of
    // the replay-invariant surface.
    obs::CampaignEvent opened("session_open", 0);
    opened.num("restarts", restarts_)
        .num("resumed", config_.resume ? 1 : 0)
        .num("shards", plans_.size());
    appendOpsEvent(std::move(opened));
}

void
CampaignSession::initializeDir()
{
    if (!persistent()) {
        throw SessionError(
            "cannot initialize a session without a directory");
    }
    plans_ = fuzz::planShards(config_.fuzz, seeds_, config_.shards);
    const std::string manifest_path = config_.dir + "/MANIFEST";
    if (const auto text = readTextFile(manifest_path)) {
        // Idempotent attach: a coordinator restart (or an elastic
        // late joiner) finds its own campaign and proceeds; a
        // different campaign is refused loudly.
        validateManifest(*text);
    } else {
        std::error_code ec;
        std::filesystem::create_directories(config_.dir, ec);
        atomicWriteFile(manifest_path, renderManifest());
    }
    for (std::size_t s = 0; s < plans_.size(); s++) {
        if (!std::filesystem::exists(shardJournalPath(s)))
            createJournal(shardJournalPath(s));
    }
}

void
CampaignSession::initShardObservability()
{
    emitted_.assign(fuzzers_.size(), EmitCursor{});
    lastBeat_.assign(fuzzers_.size(),
                     std::chrono::steady_clock::time_point{});
    lastSync_.assign(fuzzers_.size(),
                     std::chrono::steady_clock::time_point{});
    syncSeen_.assign(fuzzers_.size(), {});
    if (!persistent())
        return;
    for (std::size_t i = 0; i < fuzzers_.size(); i++) {
        // Rewind the event journal to the restored checkpoint: a
        // kill after the last checkpoint left events on disk that
        // the restored fuzzer has not (yet) re-discovered. The
        // wholesale rewrite (write-then-rename) re-derives the
        // stream from restored state, so the re-fuzzed stretch
        // appends the identical bytes again — this is what makes
        // kill-anywhere+resume produce a byte-identical event file.
        obs::writeEventLog(shardEventsPath(globalShard(i)), {});
        emitShardEvents(i, *fuzzers_[i]);
        writeShardHeartbeat(i, *fuzzers_[i], kPhaseRunning,
                            /*force=*/true);
    }
}

void
CampaignSession::emitShardEvents(std::size_t local,
                                 const fuzz::Fuzzer &fuzzer)
{
    EmitCursor &cursor = emitted_[local];
    const auto &corpus = fuzzer.corpus();
    const auto &diffs = fuzzer.diffs();
    const auto &crashes = fuzzer.crashes();
    if (cursor.corpus == corpus.size() &&
        cursor.diffs == diffs.size() &&
        cursor.crashes == crashes.size()) {
        return;
    }
    std::vector<obs::CampaignEvent> batch;
    for (std::size_t i = cursor.corpus; i < corpus.size(); i++) {
        // foundAtExec == 0 marks an initial seed, not a discovery.
        if (corpus[i].foundAtExec)
            batch.push_back(discoveryEvent(corpus[i]));
    }
    for (std::size_t i = cursor.diffs; i < diffs.size(); i++) {
        batch.push_back(config_.fuzz.sancheckMode
                            ? sanFindingEvent(diffs[i])
                            : divergenceEvent(diffs[i]));
    }
    for (std::size_t i = cursor.crashes; i < crashes.size(); i++)
        batch.push_back(crashEvent(crashes[i]));
    sortEventBatch(batch);
    obs::appendEventLines(shardEventsPath(globalShard(local)), batch);
    cursor = {corpus.size(), diffs.size(), crashes.size()};
}

void
CampaignSession::writeShardHeartbeat(std::size_t local,
                                     const fuzz::Fuzzer &fuzzer,
                                     const char *phase, bool force)
{
    if (!persistent())
        return;
    const auto now = std::chrono::steady_clock::now();
    if (!force &&
        lastBeat_[local] !=
            std::chrono::steady_clock::time_point{} &&
        std::chrono::duration<double>(now - lastBeat_[local])
                .count() < config_.heartbeatSecs) {
        return;
    }
    lastBeat_[local] = now;
    const std::size_t shard = globalShard(local);
    Heartbeat heartbeat;
    heartbeat.pid = static_cast<std::uint64_t>(::getpid());
    heartbeat.shard = shard;
    heartbeat.phase = phase;
    heartbeat.execs = fuzzer.stats().execs;
    heartbeat.budget = plans_[shard].options.maxExecs;
    heartbeat.corpus = fuzzer.corpus().size();
    heartbeat.diffs = fuzzer.stats().diffs;
    heartbeat.crashes = fuzzer.stats().crashes;
    // Wall-clock stamps: display/health data for readers, never a
    // campaign input (see heartbeat.hh).
    heartbeat.unixTime =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    heartbeat.runSecs = runSecsNow();
    writeHeartbeat(heartbeatPath(config_.dir, shard), heartbeat);
}

void
CampaignSession::appendOpsEvent(obs::CampaignEvent event) const
{
    if (!persistent())
        return;
    std::lock_guard<std::mutex> lock(opsMu_);
    obs::appendEventLines(config_.dir + "/events.jsonl",
                          {std::move(event)});
}

double
CampaignSession::runSecsNow() const
{
    return savedRunSecs_ +
           std::chrono::duration<double>(
               std::chrono::steady_clock::now() - wallStart_)
               .count();
}

void
CampaignSession::maybeSyncShard(std::size_t local)
{
    if (config_.syncPath.empty() || !persistent())
        return;
    const auto now = std::chrono::steady_clock::now();
    if (lastSync_[local] !=
            std::chrono::steady_clock::time_point{} &&
        std::chrono::duration<double>(now - lastSync_[local])
                .count() < config_.syncSecs) {
        return;
    }
    lastSync_[local] = now;
    std::vector<Bytes> records;
    try {
        records = readRecords(config_.syncPath);
    } catch (const SessionError &) {
        return; // not written yet (or mid-replace) — next round
    }
    if (records.empty())
        return;
    fuzz::Fuzzer &fuzzer = *fuzzers_[local];
    // Never re-execute an input this shard already owns: its own
    // corpus circulates back through the coordinator's sync journal.
    auto &seen = syncSeen_[local];
    for (const auto &entry : fuzzer.corpus())
        seen.insert(support::murmurHash64(entry.data));
    fuzzer.mergeVirginBytes(records[0]);
    std::vector<Bytes> fresh;
    for (std::size_t r = 1; r < records.size(); r++) {
        if (seen.insert(support::murmurHash64(records[r])).second)
            fresh.push_back(records[r]);
    }
    const std::size_t imported = fuzzer.importSeeds(fresh);
    if (imported) {
        obs::CampaignEvent event("sync_import",
                                 fuzzer.stats().execs);
        event.num("shard", globalShard(local))
            .num("inputs", imported);
        appendOpsEvent(std::move(event));
    }
}

void
CampaignSession::installHooks()
{
    const std::uint64_t halt = config_.haltAfterExecs;
    if (!persistent() && halt == 0 && !config_.stopFlag)
        return;
    for (std::size_t i = 0; i < fuzzers_.size(); i++) {
        const std::size_t g = globalShard(i);
        const std::uint64_t every =
            checkpointCadence(plans_[g].options);
        nextCheckpoint_[i] = fuzzers_[i]->stats().execs + every;
        fuzzers_[i]->setIterationHook(
            [this, i, g, halt, every](const fuzz::Fuzzer &fuzzer) {
                if (persistent()) {
                    // Cross-worker import first — anything it finds
                    // lands in the same event batch and checkpoint
                    // as this safe point's own discoveries.
                    maybeSyncShard(i);
                    // Events before the checkpoint: a kill between
                    // the two merely re-appends the identical lines
                    // after resume (the journal is rewound to the
                    // restored checkpoint first).
                    emitShardEvents(i, fuzzer);
                    const std::uint64_t done = fuzzer.stats().execs;
                    if (done >= nextCheckpoint_[i]) {
                        appendRecord(
                            shardJournalPath(g),
                            encodeFuzzerState(fuzzer.captureState()));
                        nextCheckpoint_[i] = done + every;
                        obs::CampaignEvent noted("checkpoint", done);
                        noted.num("shard", g);
                        appendOpsEvent(std::move(noted));
                    }
                    writeShardHeartbeat(i, fuzzer, kPhaseRunning,
                                        /*force=*/false);
                }
                if (config_.stopFlag &&
                    config_.stopFlag->load(
                        std::memory_order_relaxed)) {
                    return false;
                }
                return !(halt && fuzzer.stats().execs >= halt);
            });
    }
}

const fuzz::ShardedResult &
CampaignSession::run()
{
    obs::Span span("session.run");
    wallStart_ = std::chrono::steady_clock::now();

    plans_ = fuzz::planShards(config_.fuzz, seeds_, config_.shards);
    resolveOwnedShards();
    std::vector<std::unique_ptr<fuzz::FuzzerState>> restored(
        owned_.size());
    openDir(restored);

    fuzzers_.clear();
    for (const std::size_t s : owned_) {
        // Serial construction: all shards share the CompileCache
        // warm-up.
        fuzzers_.push_back(std::make_unique<fuzz::Fuzzer>(
            program_, plans_[s].seeds, plans_[s].options));
    }
    for (std::size_t i = 0; i < fuzzers_.size(); i++) {
        if (restored[i])
            fuzzers_[i]->restoreState(*restored[i]);
    }

    nextCheckpoint_.assign(fuzzers_.size(), 0);
    initShardObservability();
    installHooks();

    fuzz::runShardFuzzers(fuzzers_, config_.jobs);

    halted_ = false;
    for (const auto &fuzzer : fuzzers_)
        halted_ = halted_ || fuzzer->haltedByHook();
    completed_ = !halted_;
    result_ = fuzz::foldShards(fuzzers_);
    ran_ = true;

    runSecs_ = runSecsNow();

    if (persistent()) {
        // Shutdown checkpoint for every shard — graceful exits (both
        // completion and a haltAfterExecs stop) never lose work. The
        // event flush comes first: run() can leave the loop without
        // a trailing hook call, so discoveries since the last safe
        // point are still unjournaled here.
        for (std::size_t i = 0; i < fuzzers_.size(); i++) {
            emitShardEvents(i, *fuzzers_[i]);
            appendRecord(
                shardJournalPath(globalShard(i)),
                encodeFuzzerState(fuzzers_[i]->captureState()));
            writeShardHeartbeat(i, *fuzzers_[i],
                                fuzzers_[i]->haltedByHook()
                                    ? kPhaseHalted
                                    : kPhaseComplete,
                                /*force=*/true);
        }
        // In worker mode the coordinator owns the cumulative
        // session_stats (workers come and go; their wall clocks
        // overlap and must not clobber each other).
        if (!workerMode())
            writeSessionStats(runSecs_);
        obs::CampaignEvent finished(halted_ ? "halt" : "complete",
                                    result_.total.execs);
        finished.num("corpus", result_.total.seeds)
            .num("diffs", result_.total.diffs)
            .num("crashes", result_.total.crashes)
            .num("edges", result_.total.edges);
        appendOpsEvent(std::move(finished));
        // Cache traffic is process-history telemetry: the counters
        // depend on thread interleaving and on what else this
        // process compiled, so they live in the ops log, never in
        // the deterministic shard streams.
        const compiler::CompileCache &cache =
            compiler::CompileCache::global();
        obs::CampaignEvent cached("cache", result_.total.execs);
        cached.num("hits", cache.hits())
            .num("misses", cache.misses())
            .num("evictions", cache.evictions());
        appendOpsEvent(std::move(cached));
    }
    writeFinalArtifacts();
    return result_;
}

obs::FuzzerStatsSnapshot
CampaignSession::statsSnapshot() const
{
    auto snapshot = result_.statsSnapshot();
    snapshot.runTimeSecs = runSecs_;
    snapshot.restarts = restarts_;
    if (runSecs_ > 0) {
        snapshot.execsPerSec =
            static_cast<double>(result_.total.execs) / runSecs_;
    }
    return snapshot;
}

std::vector<DivergenceRecord>
CampaignSession::divergenceRecords() const
{
    std::vector<DivergenceRecord> records;
    records.reserve(result_.diffs.size());
    for (const auto &diff : result_.diffs) {
        records.push_back({diff.signature, diff.input,
                           diff.execIndex, diff.probes,
                           diff.result.hashVector(),
                           diff.semanticKey});
    }
    return records;
}

std::vector<reduce::DivergenceReport>
CampaignSession::triage() const
{
    // Sancheck campaigns triage through triageSancheck(): their
    // FoundDiffs carry sanitizer findings, not DiffResults.
    if (config_.fuzz.sancheckMode)
        return {};
    if (!config_.triage.reduceFound || result_.diffs.empty())
        return {};
    obs::Span span("session.triage");
    reduce::ReduceOptions options;
    options.diffOptions = config_.fuzz.diffOptions;
    options.diffOptions.limits = config_.fuzz.limits;
    options.candidateBudget = config_.triage.candidateBudget;
    options.jobs = config_.jobs;
    options.reportsDir = config_.triage.reportsDir;
    const std::vector<DivergenceRecord> records =
        divergenceRecords();
    {
        obs::CampaignEvent started("reduce_start",
                                   result_.total.execs);
        started.num("records", records.size());
        appendOpsEvent(std::move(started));
    }
    auto reports = reduce::reduceRecords(
        program_, config_.fuzz.diffImpls, records, options);
    for (const auto &report : reports) {
        obs::CampaignEvent reduced("reduced", result_.total.execs);
        reduced.hex("signature", report.signature)
            .num("reproduced", report.reproduced ? 1 : 0)
            .num("input_bytes", report.input.size())
            .num("witness_bytes", report.witnessInput.size());
        appendOpsEvent(std::move(reduced));
    }
    {
        obs::CampaignEvent done("reduce_done", result_.total.execs);
        done.num("reports", reports.size());
        appendOpsEvent(std::move(done));
    }
    return reports;
}

std::vector<sancheck::FindingReport>
CampaignSession::triageSancheck() const
{
    if (!config_.fuzz.sancheckMode || !config_.triage.reduceFound ||
        result_.diffs.empty())
        return {};
    obs::Span span("session.triage_sancheck");
    sancheck::FindingReduceOptions options;
    options.limits = config_.fuzz.limits;
    options.candidateBudget = config_.triage.candidateBudget;
    options.jobs = config_.jobs;
    options.reportsDir = config_.triage.reportsDir;
    std::vector<sancheck::FindingWitness> witnesses;
    witnesses.reserve(result_.diffs.size());
    for (const auto &diff : result_.diffs)
        witnesses.push_back({diff.input, diff.sanFinding});
    {
        obs::CampaignEvent started("reduce_start",
                                   result_.total.execs);
        started.num("records", witnesses.size());
        appendOpsEvent(std::move(started));
    }
    auto reports = sancheck::reduceFindings(
        program_, config_.fuzz.sancheckImpls, witnesses, options);
    for (const auto &report : reports) {
        obs::CampaignEvent reduced("reduced", result_.total.execs);
        reduced.hex("signature", report.finding.signatureHash())
            .num("reproduced", report.reproduced ? 1 : 0)
            .num("input_bytes", report.input.size())
            .num("witness_bytes", report.witnessInput.size());
        appendOpsEvent(std::move(reduced));
    }
    {
        obs::CampaignEvent done("reduce_done", result_.total.execs);
        done.num("reports", reports.size());
        appendOpsEvent(std::move(done));
    }
    return reports;
}

void
CampaignSession::writeSessionStats(double run_secs) const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", run_secs);
    std::ostringstream os;
    os << "run_secs : " << buf << "\n";
    os << "restarts : " << restarts_ << "\n";
    atomicWriteFile(config_.dir + "/session_stats", os.str());
}

void
CampaignSession::writeFinalArtifacts()
{
    // Final telemetry describes a *finished* campaign; a halted one
    // leaves only its checkpoints, and the resume that completes the
    // budget writes these files. A fleet worker never writes them at
    // all — it finished only its own shard subset, and the
    // coordinator's finalize pass folds the whole campaign.
    if (!completed_ || workerMode())
        return;
    const std::string stats_text =
        obs::renderFuzzerStats(statsSnapshot());
    if (persistent()) {
        atomicWriteFile(config_.dir + "/fuzzer_stats", stats_text);
        fuzz::writeShardPlots(fuzzers_, config_.dir + "/plot_data");
        std::vector<Bytes> payloads;
        for (const auto &record : divergenceRecords())
            payloads.push_back(encodeDivergenceRecord(record));
        writeJournal(config_.dir + "/divergences.journal", payloads);
        // Metrics snapshot with histogram percentiles — what the
        // monitor surfaces as latency/size digests. Only meaningful
        // when the process had metrics on; an empty registry would
        // just shadow a prior incarnation's dump.
        if (obs::metricsEnabled()) {
            obs::writeTextFile(
                config_.dir + "/metrics.jsonl",
                obs::Registry::global().snapshot().toJsonl());
        }
    }
    if (!config_.fuzz.statsOutPath.empty())
        obs::writeTextFile(config_.fuzz.statsOutPath, stats_text);
    if (!config_.fuzz.plotOutPath.empty())
        fuzz::writeShardPlots(fuzzers_, config_.fuzz.plotOutPath);
}

std::vector<DivergenceRecord>
CampaignSession::loadDivergenceRecords(const std::string &dir)
{
    std::vector<DivergenceRecord> records;
    for (const auto &payload :
         readRecords(dir + "/divergences.journal"))
        records.push_back(decodeDivergenceRecord(payload));
    return records;
}

} // namespace compdiff::session
