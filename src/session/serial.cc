#include "session/serial.hh"

#include <cstring>

namespace compdiff::session
{

using support::Bytes;

void
Encoder::u32(std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out_.push_back(
            static_cast<std::uint8_t>(value >> shift));
}

void
Encoder::u64(std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out_.push_back(
            static_cast<std::uint8_t>(value >> shift));
}

void
Encoder::f64(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
}

void
Encoder::bytes(const Bytes &value)
{
    u64(value.size());
    out_.insert(out_.end(), value.begin(), value.end());
}

void
Encoder::str(const std::string &value)
{
    u64(value.size());
    out_.insert(out_.end(), value.begin(), value.end());
}

void
Decoder::need(std::size_t count) const
{
    if (payload_.size() - pos_ < count) {
        throw SessionError(
            "checkpoint record truncated: need " +
            std::to_string(count) + " bytes at offset " +
            std::to_string(pos_) + ", have " +
            std::to_string(payload_.size() - pos_));
    }
}

std::uint8_t
Decoder::u8()
{
    need(1);
    return payload_[pos_++];
}

std::uint32_t
Decoder::u32()
{
    need(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8)
        value |= static_cast<std::uint32_t>(payload_[pos_++])
                 << shift;
    return value;
}

std::uint64_t
Decoder::u64()
{
    need(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8)
        value |= static_cast<std::uint64_t>(payload_[pos_++])
                 << shift;
    return value;
}

double
Decoder::f64()
{
    const std::uint64_t bits = u64();
    double value = 0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::size_t
Decoder::length(std::size_t elem_size)
{
    const std::uint64_t count = u64();
    const std::size_t remaining = payload_.size() - pos_;
    if (elem_size == 0)
        elem_size = 1;
    if (count > remaining / elem_size) {
        throw SessionError(
            "checkpoint record corrupt: length " +
            std::to_string(count) + " (x" +
            std::to_string(elem_size) + " bytes) exceeds the " +
            std::to_string(remaining) + " bytes remaining");
    }
    return static_cast<std::size_t>(count);
}

Bytes
Decoder::bytes()
{
    const std::size_t count = length(1);
    Bytes value(payload_.begin() +
                    static_cast<std::ptrdiff_t>(pos_),
                payload_.begin() +
                    static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += count;
    return value;
}

std::string
Decoder::str()
{
    const std::size_t count = length(1);
    std::string value(payload_.begin() +
                          static_cast<std::ptrdiff_t>(pos_),
                      payload_.begin() +
                          static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += count;
    return value;
}

void
Decoder::expectEnd() const
{
    if (!atEnd()) {
        throw SessionError(
            "checkpoint record corrupt: " +
            std::to_string(payload_.size() - pos_) +
            " trailing bytes after the last field");
    }
}

namespace
{

void
encodeRngState(Encoder &enc, const support::Rng::State &state)
{
    for (const std::uint64_t lane : state)
        enc.u64(lane);
}

support::Rng::State
decodeRngState(Decoder &dec)
{
    support::Rng::State state{};
    for (auto &lane : state)
        lane = dec.u64();
    return state;
}

void
encodeStats(Encoder &enc, const fuzz::FuzzStats &stats)
{
    enc.u64(stats.execs);
    enc.u64(stats.compdiffExecs);
    enc.u64(stats.seeds);
    enc.u64(stats.crashes);
    enc.u64(stats.diffs);
    enc.u64(stats.edges);
    enc.u64(stats.lastFindExec);
    enc.u64(stats.lastDiffExec);
}

fuzz::FuzzStats
decodeStats(Decoder &dec)
{
    fuzz::FuzzStats stats;
    stats.execs = dec.u64();
    stats.compdiffExecs = dec.u64();
    stats.seeds = dec.u64();
    stats.crashes = dec.u64();
    stats.diffs = dec.u64();
    stats.edges = dec.u64();
    stats.lastFindExec = dec.u64();
    stats.lastDiffExec = dec.u64();
    return stats;
}

} // namespace

Bytes
encodeFuzzerState(const fuzz::FuzzerState &state)
{
    Encoder enc;
    encodeStats(enc, state.stats);
    enc.u64(state.nonceCounter);
    encodeRngState(enc, state.rng);
    encodeRngState(enc, state.mutatorRng);
    enc.u64(state.nextPlot);

    enc.u64(state.corpus.size());
    for (const auto &seed : state.corpus) {
        enc.bytes(seed.data);
        enc.u64(seed.coverageBits);
        enc.u64(seed.foundAtExec);
        enc.i64(seed.depth);
    }

    enc.u64(state.diffs.size());
    for (const auto &diff : state.diffs) {
        enc.bytes(diff.input);
        enc.u64(diff.execIndex);
        enc.u64(diff.signature);
        enc.u64(diff.probes.size());
        for (const int probe : diff.probes)
            enc.i64(probe);
    }

    enc.u64(state.crashes.size());
    for (const auto &crash : state.crashes) {
        enc.bytes(crash.input);
        enc.u64(crash.execIndex);
    }

    enc.u64(state.partitionsSeen.size());
    for (const std::uint64_t partition : state.partitionsSeen)
        enc.u64(partition);

    enc.u64(state.perConfigExecs.size());
    for (const std::uint64_t execs : state.perConfigExecs)
        enc.u64(execs);

    enc.u64(state.plotRows.size());
    for (const auto &row : state.plotRows) {
        enc.u64(row.execs);
        enc.u64(row.corpusSize);
        enc.u64(row.crashes);
        enc.u64(row.diffs);
        enc.u64(row.edges);
        enc.u64(row.compdiffExecs);
    }

    enc.bytes(state.virginMap);
    return enc.take();
}

fuzz::FuzzerState
decodeFuzzerState(const Bytes &payload)
{
    Decoder dec(payload);
    fuzz::FuzzerState state;
    state.stats = decodeStats(dec);
    state.nonceCounter = dec.u64();
    state.rng = decodeRngState(dec);
    state.mutatorRng = decodeRngState(dec);
    state.nextPlot = dec.u64();

    std::size_t count = dec.length(8);
    state.corpus.reserve(count);
    for (std::size_t i = 0; i < count; i++) {
        fuzz::Seed seed;
        seed.data = dec.bytes();
        seed.coverageBits = dec.u64();
        seed.foundAtExec = dec.u64();
        seed.depth = static_cast<int>(dec.i64());
        state.corpus.push_back(std::move(seed));
    }

    count = dec.length(8);
    state.diffs.reserve(count);
    for (std::size_t i = 0; i < count; i++) {
        fuzz::FuzzerState::DiffRecord diff;
        diff.input = dec.bytes();
        diff.execIndex = dec.u64();
        diff.signature = dec.u64();
        const std::size_t probes = dec.length(8);
        diff.probes.reserve(probes);
        for (std::size_t p = 0; p < probes; p++)
            diff.probes.push_back(static_cast<int>(dec.i64()));
        state.diffs.push_back(std::move(diff));
    }

    count = dec.length(8);
    state.crashes.reserve(count);
    for (std::size_t i = 0; i < count; i++) {
        fuzz::FuzzerState::CrashRecord crash;
        crash.input = dec.bytes();
        crash.execIndex = dec.u64();
        state.crashes.push_back(std::move(crash));
    }

    count = dec.length(8);
    state.partitionsSeen.reserve(count);
    for (std::size_t i = 0; i < count; i++)
        state.partitionsSeen.push_back(dec.u64());

    count = dec.length(8);
    state.perConfigExecs.reserve(count);
    for (std::size_t i = 0; i < count; i++)
        state.perConfigExecs.push_back(dec.u64());

    count = dec.length(48);
    state.plotRows.reserve(count);
    for (std::size_t i = 0; i < count; i++) {
        obs::PlotWriter::Row row;
        row.execs = dec.u64();
        row.corpusSize = dec.u64();
        row.crashes = dec.u64();
        row.diffs = dec.u64();
        row.edges = dec.u64();
        row.compdiffExecs = dec.u64();
        state.plotRows.push_back(row);
    }

    state.virginMap = dec.bytes();
    dec.expectEnd();
    return state;
}

Bytes
encodeDivergenceRecord(const DivergenceRecord &record)
{
    Encoder enc;
    enc.u64(record.signature);
    enc.bytes(record.input);
    enc.u64(record.execIndex);
    enc.u64(record.probes.size());
    for (const int probe : record.probes)
        enc.i64(probe);
    enc.u64(record.hashVector.size());
    for (const std::uint64_t hash : record.hashVector)
        enc.u64(hash);
    enc.u64(record.semanticKey);
    return enc.take();
}

DivergenceRecord
decodeDivergenceRecord(const Bytes &payload)
{
    Decoder dec(payload);
    DivergenceRecord record;
    record.signature = dec.u64();
    record.input = dec.bytes();
    record.execIndex = dec.u64();
    std::size_t count = dec.length(8);
    record.probes.reserve(count);
    for (std::size_t i = 0; i < count; i++)
        record.probes.push_back(static_cast<int>(dec.i64()));
    count = dec.length(8);
    record.hashVector.reserve(count);
    for (std::size_t i = 0; i < count; i++)
        record.hashVector.push_back(dec.u64());
    // Optional trailing field: journals written before semantic
    // dedup end here, and their records decode with semanticKey 0.
    if (!dec.atEnd())
        record.semanticKey = dec.u64();
    dec.expectEnd();
    return record;
}

} // namespace compdiff::session
