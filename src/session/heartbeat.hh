#pragma once

/**
 * @file
 * Shard heartbeat/health files.
 *
 * Every shard of a persistent campaign session periodically rewrites
 * a tiny `heartbeat-<N>` file (atomic write-then-rename) carrying
 * its pid, lifecycle phase, last safe-point execution index, and
 * wall-clock stamps. Heartbeats are the *liveness* channel — the
 * checkpoint journals answer "what work is saved", heartbeats answer
 * "is anyone still working".
 *
 * Two deliberate asymmetries:
 *
 *   - Writers record facts only (pid, phase, stamps). Stall/dead
 *     *classification* is evaluated by readers (compdiff_monitor)
 *     against their own clock and policy — a writer cannot know it
 *     is about to be SIGKILLed, and baking thresholds into the file
 *     would freeze policy into the format.
 *   - Every wall-clock field here is display/health-only. Campaign
 *     results are a pure function of (program, seeds, options,
 *     shards); nothing in a heartbeat ever feeds back into fuzzing
 *     decisions (asserted by test_session.cc's wall-clock hygiene
 *     test).
 *
 * The file body reuses the `key : value` fuzzer_stats syntax, so
 * obs::parseFuzzerStats tooling reads it for free.
 */

#include <cstdint>
#include <string>

namespace compdiff::session
{

/** Shard lifecycle phases a heartbeat can report. */
extern const char kPhaseRunning[];  ///< "running"
extern const char kPhaseHalted[];   ///< "halted" (haltAfterExecs)
extern const char kPhaseComplete[]; ///< "complete" (budget reached)

/** One shard's liveness snapshot, as written at safe points. */
struct Heartbeat
{
    std::uint64_t pid = 0;
    std::uint64_t shard = 0;
    std::string phase = kPhaseRunning;
    /** Last safe-point execution index (deterministic axis). */
    std::uint64_t execs = 0;
    /** Shard-local execution budget. */
    std::uint64_t budget = 0;
    std::uint64_t corpus = 0;
    std::uint64_t diffs = 0;
    std::uint64_t crashes = 0;
    /** Seconds since the Unix epoch at write time (display/health
     *  only — never a campaign input). */
    double unixTime = 0;
    /** Cumulative campaign wall-clock seconds across restarts
     *  (display only). */
    double runSecs = 0;
};

/** `<dir>/heartbeat-<shard>`. */
std::string heartbeatPath(const std::string &dir, std::size_t shard);

/** Render in `key : value` form (parseFuzzerStats-compatible). */
std::string renderHeartbeat(const Heartbeat &heartbeat);

/** Parse renderHeartbeat output; missing keys keep their zero
 *  defaults (heartbeats are telemetry — never throws). */
Heartbeat parseHeartbeat(const std::string &text);

/** Atomic write-then-rename; returns false after a warn() on I/O
 *  failure instead of throwing. */
bool writeHeartbeat(const std::string &path,
                    const Heartbeat &heartbeat);

/** Reader-side shard health verdict. */
enum class ShardHealth
{
    Running,  ///< fresh heartbeat from a live process
    Stalled,  ///< live process, but no heartbeat for stallAfterSecs
    Dead,     ///< process gone, or silent past deadAfterSecs
    Halted,   ///< shard stopped at a haltAfterExecs safe point
    Complete, ///< shard finished its budget
};

const char *shardHealthName(ShardHealth health);

/** Reader-side classification policy (compdiff_monitor flags). */
struct HealthPolicy
{
    double stallAfterSecs = 30.0;
    double deadAfterSecs = 300.0;
    /** Probe the recorded pid with kill(pid, 0); disable when
     *  reading another host's session tree. */
    bool checkPid = true;
};

/** Is `pid` a live process on this host? (signal-0 probe; a pid we
 *  may not signal still counts as alive.) */
bool pidAlive(std::uint64_t pid);

/**
 * Classify one heartbeat as of `now_unix`. Terminal phases win
 * outright; for a running shard the verdict degrades from Running
 * through Stalled to Dead as the heartbeat ages, and a vanished pid
 * is Dead immediately.
 */
ShardHealth classifyHeartbeat(const Heartbeat &heartbeat,
                              double now_unix,
                              const HealthPolicy &policy);

} // namespace compdiff::session
