#include "session/heartbeat.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include <signal.h>    // kill(pid, 0) liveness probe (POSIX)
#include <sys/types.h> // pid_t

#include "obs/stats.hh"
#include "session/checkpoint.hh"
#include "support/logging.hh"

namespace compdiff::session
{

const char kPhaseRunning[] = "running";
const char kPhaseHalted[] = "halted";
const char kPhaseComplete[] = "complete";

namespace
{

std::string
fmtSecs(double secs)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", secs);
    return buf;
}

std::uint64_t
toU64(const std::map<std::string, std::string> &kv,
      const std::string &key)
{
    const auto it = kv.find(key);
    if (it == kv.end())
        return 0;
    return std::strtoull(it->second.c_str(), nullptr, 10);
}

double
toDouble(const std::map<std::string, std::string> &kv,
         const std::string &key)
{
    const auto it = kv.find(key);
    if (it == kv.end())
        return 0;
    return std::strtod(it->second.c_str(), nullptr);
}

} // namespace

std::string
heartbeatPath(const std::string &dir, std::size_t shard)
{
    return dir + "/heartbeat-" + std::to_string(shard);
}

std::string
renderHeartbeat(const Heartbeat &heartbeat)
{
    std::ostringstream os;
    os << "pid : " << heartbeat.pid << "\n";
    os << "shard : " << heartbeat.shard << "\n";
    os << "phase : " << heartbeat.phase << "\n";
    os << "execs : " << heartbeat.execs << "\n";
    os << "budget : " << heartbeat.budget << "\n";
    os << "corpus : " << heartbeat.corpus << "\n";
    os << "diffs : " << heartbeat.diffs << "\n";
    os << "crashes : " << heartbeat.crashes << "\n";
    os << "unix_time : " << fmtSecs(heartbeat.unixTime) << "\n";
    os << "run_secs : " << fmtSecs(heartbeat.runSecs) << "\n";
    return os.str();
}

Heartbeat
parseHeartbeat(const std::string &text)
{
    const auto kv = obs::parseFuzzerStats(text);
    Heartbeat heartbeat;
    heartbeat.pid = toU64(kv, "pid");
    heartbeat.shard = toU64(kv, "shard");
    if (const auto it = kv.find("phase"); it != kv.end())
        heartbeat.phase = it->second;
    heartbeat.execs = toU64(kv, "execs");
    heartbeat.budget = toU64(kv, "budget");
    heartbeat.corpus = toU64(kv, "corpus");
    heartbeat.diffs = toU64(kv, "diffs");
    heartbeat.crashes = toU64(kv, "crashes");
    heartbeat.unixTime = toDouble(kv, "unix_time");
    heartbeat.runSecs = toDouble(kv, "run_secs");
    return heartbeat;
}

bool
writeHeartbeat(const std::string &path, const Heartbeat &heartbeat)
{
    try {
        atomicWriteFile(path, renderHeartbeat(heartbeat));
        return true;
    } catch (const SessionError &e) {
        // Heartbeats are telemetry: report, never kill the campaign.
        support::warn(std::string("heartbeat: ") + e.what());
        return false;
    }
}

const char *
shardHealthName(ShardHealth health)
{
    switch (health) {
      case ShardHealth::Running:
        return "running";
      case ShardHealth::Stalled:
        return "stalled";
      case ShardHealth::Dead:
        return "dead";
      case ShardHealth::Halted:
        return "halted";
      case ShardHealth::Complete:
        return "complete";
    }
    return "unknown";
}

bool
pidAlive(std::uint64_t pid)
{
    if (pid == 0)
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return true;
    // EPERM: the process exists but is not ours — still alive.
    return errno == EPERM;
}

ShardHealth
classifyHeartbeat(const Heartbeat &heartbeat, double now_unix,
                  const HealthPolicy &policy)
{
    if (heartbeat.phase == kPhaseComplete)
        return ShardHealth::Complete;
    if (heartbeat.phase == kPhaseHalted)
        return ShardHealth::Halted;
    if (policy.checkPid && !pidAlive(heartbeat.pid))
        return ShardHealth::Dead;
    const double age = now_unix - heartbeat.unixTime;
    // A negative age (clock skew, copied tree) reads as fresh.
    if (age >= policy.deadAfterSecs)
        return ShardHealth::Dead;
    if (age >= policy.stallAfterSecs)
        return ShardHealth::Stalled;
    return ShardHealth::Running;
}

} // namespace compdiff::session
