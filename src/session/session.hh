#pragma once

/**
 * @file
 * Campaign sessions: the single owner of a fuzzing campaign's
 * lifecycle — configure → run → checkpoint → resume → triage →
 * report.
 *
 * Before this layer existed, every driver (targets::runCampaign, the
 * CLI, the bench programs) hand-wired the same flow: plan shards,
 * construct fuzzers, run them, fold results, maybe reduce, maybe
 * write telemetry — and none of it survived a killed process.
 * CampaignSession centralizes the flow and adds crash-safe
 * persistence on top of the determinism contract the lower layers
 * already guarantee:
 *
 *   - The campaign is a pure function of (program, seeds, options,
 *     shards). `jobs` is thread count only.
 *   - Every shard checkpoints its complete fuzz::FuzzerState to an
 *     append-only checksummed journal (`shard-<N>.journal`) every
 *     `checkpointEvery` executions and at shutdown, only ever at
 *     safe points of the fuzz loop.
 *   - Resume restores each shard from its last valid checkpoint and
 *     continues. A campaign killed at ANY point and resumed produces
 *     bit-identical corpus, diff set, and signature set to an
 *     uninterrupted run with the same budget — a kill between
 *     checkpoints merely re-does the work since the last one.
 *
 * Session directory layout:
 *
 *   MANIFEST             campaign identity: format version, option
 *                        fingerprint, shards, budget, seed (atomic
 *                        write-then-rename; resume validates it)
 *   shard-<N>.journal    per-shard checkpoint journal (compacted to
 *                        header + last checkpoint on every resume)
 *   shard-<N>.events.jsonl
 *                        per-shard campaign event journal
 *                        (discoveries/divergences/crashes on the
 *                        exec-index axis; deterministic — rewound to
 *                        the restored checkpoint on resume, so kill
 *                        +resume replays an identical byte prefix)
 *   events.jsonl         session-scope ops log (same line format):
 *                        session_open/checkpoint/halt/complete/
 *                        cache/reduce_* process history — append-
 *                        only across restarts, deliberately NOT
 *                        replay-invariant
 *   heartbeat-<N>        per-shard liveness snapshot (atomic
 *                        rewrite at safe points; display/health only
 *                        — see session/heartbeat.hh)
 *   session_stats        cumulative wall-clock seconds and restart
 *                        count (AFL++-style: survives restarts)
 *   fuzzer_stats         merged final snapshot (completed runs)
 *   plot_data[.shardN]   per-shard plot series (completed runs)
 *   divergences.journal  folded unique DivergenceRecords (completed
 *                        runs) — what triage and reduction consume
 *   metrics.jsonl        obs registry snapshot with histogram
 *                        percentiles (completed runs, only when
 *                        metrics are enabled)
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "fuzz/sharded.hh"
#include "minic/ast.hh"
#include "obs/events.hh"
#include "reduce/report.hh"
#include "sancheck/report.hh"
#include "session/records.hh"
#include "session/serial.hh"

namespace compdiff::session
{

/** Everything that defines a session. */
struct SessionConfig
{
    /**
     * Session directory. Empty runs the campaign ephemerally — same
     * lifecycle, no persistence (and resume/checkpointEvery are
     * ignored).
     */
    std::string dir;
    /**
     * Reopen an existing session and continue it. The manifest must
     * match this config's campaign identity (fingerprint, shards,
     * budget, seed); a mismatch is a SessionError, not a silent
     * restart.
     */
    bool resume = false;
    /**
     * Per-shard executions between cadence checkpoints; 0 picks
     * maxExecs/20 (at least one). Checkpoints also happen at
     * shutdown regardless of cadence.
     */
    std::uint64_t checkpointEvery = 0;
    /**
     * Testing/interrupt hook: stop every shard at its first safe
     * point at or beyond this many shard-local executions (0 = run
     * to completion). The halted state is checkpointed, so a
     * subsequent resume finishes the campaign.
     */
    std::uint64_t haltAfterExecs = 0;
    /**
     * Minimum wall-clock seconds between heartbeat rewrites per
     * shard (<= 0 writes at every safe point). Display/health
     * cadence only — heartbeats never influence campaign results,
     * so this knob is absent from the campaign fingerprint.
     */
    double heartbeatSecs = 1.0;

    /** The campaign itself (see the determinism contract above). */
    fuzz::FuzzOptions fuzz;
    std::size_t shards = 1;
    /** Worker threads; never changes results. */
    std::size_t jobs = 1;

    /** Post-campaign triage (the single carrier of these knobs). */
    TriageOptions triage;

    // --- fleet-worker mode (src/fleet) ---

    /**
     * Run only these shards of the campaign (global shard indices,
     * strictly increasing). Empty = run every shard (the default).
     * Worker mode *attaches* to an existing session directory — the
     * fleet coordinator creates it first (initializeDir()): the
     * MANIFEST must be present and match, each owned shard restores
     * from its journal when a checkpoint exists (a revived worker
     * continues bit-exactly) and starts fresh otherwise, and the
     * session-level bookkeeping (session_stats, final artifacts) is
     * left to the coordinator's finalize pass. `resume` is ignored
     * in worker mode.
     */
    std::vector<std::size_t> workerShards;
    /**
     * Cooperative stop: when non-null and set, every shard halts at
     * its next safe point exactly like haltAfterExecs — checkpointed
     * and resumable. Fleet workers wire SIGTERM to this so a
     * coordinator deadline is a graceful, work-preserving shutdown.
     */
    const std::atomic<bool> *stopFlag = nullptr;
    /**
     * Cross-worker corpus/coverage sync: when non-empty, each shard
     * imports from this journal (record 0 = merged VirginMap bytes,
     * records 1.. = corpus inputs; the coordinator rewrites it with
     * writeJournal's write-then-rename) at safe points, at most once
     * per syncSecs. Imported inputs are executed at the safe point
     * and count against the shard's budget — sync is wall-clock
     * driven and therefore deliberately NONDETERMINISTIC; leave the
     * path empty (the default) to keep the bit-identity contract.
     */
    std::string syncPath;
    double syncSecs = 5.0;
};

/**
 * One campaign's lifecycle owner. Construct, run(), then read
 * results / triage(). The program and the session config must
 * outlive the session.
 */
class CampaignSession
{
  public:
    /**
     * @param program Analyzed target program (must outlive the
     *                session).
     * @param seeds   Initial corpus, distributed round-robin across
     *                shards.
     * @param config  Session configuration.
     */
    CampaignSession(const minic::Program &program,
                    std::vector<support::Bytes> seeds,
                    SessionConfig config);
    ~CampaignSession();

    CampaignSession(const CampaignSession &) = delete;
    CampaignSession &operator=(const CampaignSession &) = delete;

    /**
     * Open (or resume) the session and drive the campaign to
     * completion or to the haltAfterExecs point. Returns the folded
     * result (partial when halted()).
     *
     * @throws SessionError on an invalid session directory: missing
     *         or mismatching manifest, corrupt journal header, or a
     *         config that contradicts the persisted campaign.
     */
    const fuzz::ShardedResult &run();

    /** Folded campaign outcome (valid after run()). */
    const fuzz::ShardedResult &result() const { return result_; }

    /** Did run() stop at the haltAfterExecs safe point? */
    bool halted() const { return halted_; }

    /** Did the campaign reach its full budget? */
    bool completed() const { return completed_; }

    /** Times this session has been resumed (0 on the first run). */
    std::uint64_t restarts() const { return restarts_; }

    /** Cumulative campaign wall-clock seconds across restarts. */
    double runTimeSecs() const { return runSecs_; }

    /**
     * Merged AFL++-style snapshot with the cumulative session
     * fields (run_time, session_restarts, execs_per_sec over the
     * cumulative time) filled in.
     */
    obs::FuzzerStatsSnapshot statsSnapshot() const;

    /**
     * The campaign's unique divergences as portable records (valid
     * after run()): fold order, signature-deduplicated.
     */
    std::vector<DivergenceRecord> divergenceRecords() const;

    /**
     * Post-campaign triage: run the reduction pipeline over every
     * divergence record and (when triage.reportsDir is set) write
     * one report bundle per divergence. Returns an empty vector
     * unless config.triage.reduceFound.
     */
    std::vector<reduce::DivergenceReport> triage() const;

    /**
     * Sancheck-mode analog of triage(): reduce every unique
     * sanitizer finding into a `sig-<hex>/` bundle whose report
     * names the certified UB site and the silent or mis-firing
     * sanitizer. Returns an empty vector unless the campaign ran
     * with fuzz.sancheckMode and config.triage.reduceFound.
     */
    std::vector<sancheck::FindingReport> triageSancheck() const;

    const SessionConfig &config() const { return config_; }

    /**
     * Coordinator entry point: create the session directory with its
     * MANIFEST and (empty) shard journals without fuzzing anything,
     * so fleet workers can attach (workerShards mode). Idempotent: a
     * directory already holding a *matching* manifest validates and
     * returns (an elastic coordinator restart); a mismatching one is
     * a SessionError. Missing journals are created either way.
     */
    void initializeDir();

    /**
     * Load the divergence records a completed session persisted
     * (`<dir>/divergences.journal`) without re-running anything.
     *
     * @throws SessionError when the journal is missing or corrupt.
     */
    static std::vector<DivergenceRecord>
    loadDivergenceRecords(const std::string &dir);

  private:
    bool persistent() const { return !config_.dir.empty(); }
    bool workerMode() const { return !config_.workerShards.empty(); }
    /** Global shard id of local fuzzer slot `local`. */
    std::size_t globalShard(std::size_t local) const
    {
        return owned_[local];
    }
    /** Resolve workerShards (or all shards) into owned_. */
    void resolveOwnedShards();
    std::string shardJournalPath(std::size_t shard) const;
    std::string shardEventsPath(std::size_t shard) const;
    std::uint64_t checkpointCadence(
        const fuzz::FuzzOptions &shard_options) const;
    std::uint64_t campaignFingerprint() const;
    std::string renderManifest() const;
    /** Validate an existing MANIFEST against this config. */
    void validateManifest(const std::string &text) const;
    /** Create or reopen the session directory. */
    void openDir(
        std::vector<std::unique_ptr<fuzz::FuzzerState>> &restored);
    void installHooks();
    void writeSessionStats(double run_secs) const;
    void writeFinalArtifacts();
    /** Rewind/initialize event logs + heartbeats after restore. */
    void initShardObservability();
    /** Append campaign events discovered since the last safe point
     *  to shard `s`'s event journal. */
    void emitShardEvents(std::size_t shard,
                         const fuzz::Fuzzer &fuzzer);
    /** Rewrite shard `s`'s heartbeat (throttled unless `force`). */
    void writeShardHeartbeat(std::size_t shard,
                             const fuzz::Fuzzer &fuzzer,
                             const char *phase, bool force);
    /** Append one event to the session-scope ops log (thread-safe;
     *  shard threads log their checkpoints through this). */
    void appendOpsEvent(obs::CampaignEvent event) const;
    /** Safe-point cross-worker import from config.syncPath (throttled
     *  by syncSecs; see the SessionConfig field comment). */
    void maybeSyncShard(std::size_t local);
    /** Display-only: cumulative wall-clock seconds right now. */
    double runSecsNow() const;

    const minic::Program &program_;
    std::vector<support::Bytes> seeds_;
    SessionConfig config_;

    std::vector<fuzz::ShardPlan> plans_;
    /** Global shard ids this session runs, local slot order (all
     *  shards outside worker mode). Every on-disk per-shard path is
     *  keyed by the *global* id; every in-memory vector below is
     *  indexed by the *local* slot. */
    std::vector<std::size_t> owned_;
    std::vector<std::unique_ptr<fuzz::Fuzzer>> fuzzers_;
    /** Next cadence-checkpoint threshold, per shard (each slot is
     *  touched only by its shard's thread). */
    std::vector<std::uint64_t> nextCheckpoint_;
    /** How much of each shard's corpus/diffs/crashes vectors has
     *  already been written to its event journal (per-shard slots,
     *  each touched only by its shard's thread). */
    struct EmitCursor
    {
        std::size_t corpus = 0;
        std::size_t diffs = 0;
        std::size_t crashes = 0;
    };
    std::vector<EmitCursor> emitted_;
    /** Last heartbeat write time, per shard (throttling only). */
    std::vector<std::chrono::steady_clock::time_point> lastBeat_;
    /** Last sync-import time, per shard (throttling only). */
    std::vector<std::chrono::steady_clock::time_point> lastSync_;
    /** Input hashes already imported (or owned) per shard, so sync
     *  rounds never re-execute the same foreign input. */
    std::vector<std::set<std::uint64_t>> syncSeen_;
    /** Serializes ops-log appends across shard threads. */
    mutable std::mutex opsMu_;
    /** This incarnation's start (display-only wall clock). */
    std::chrono::steady_clock::time_point wallStart_;

    fuzz::ShardedResult result_;
    bool ran_ = false;
    bool halted_ = false;
    bool completed_ = false;
    std::uint64_t restarts_ = 0;
    /** Wall-clock seconds from previous incarnations. */
    double savedRunSecs_ = 0;
    double runSecs_ = 0;
};

} // namespace compdiff::session
