#pragma once

/**
 * @file
 * Session-level record types shared across layers.
 *
 * Header-only on purpose: reduce::reduceRecords consumes
 * DivergenceRecords without linking against compdiff_session (which
 * itself links compdiff_reduce — a .cc dependency here would be a
 * cycle). The types carry plain data only.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hh"

namespace compdiff::session
{

/**
 * One unique divergence a campaign surfaced, in the portable form
 * the session persists and the triage/reduction layers consume:
 * the witness input plus the evidence needed to dedup (signature),
 * to triage against planted bugs (probes), and to display (the
 * per-implementation output hash vector). The heavyweight
 * core::DiffResult is *not* carried — consumers re-derive it by
 * re-running the witness, which is deterministic.
 */
struct DivergenceRecord
{
    /** The fuzzer's triage signature (fuzz::FoundDiff::signature). */
    std::uint64_t signature = 0;
    /** The divergence-triggering input. */
    support::Bytes input;
    /** Shard-local execution index the divergence was found at. */
    std::uint64_t execIndex = 0;
    /** Ground-truth probes the witness fired on B_fuzz (un-deduped,
     *  in firing order — targets-level triage keys on these). */
    std::vector<int> probes;
    /** Per-implementation output hashes on the witness. */
    std::vector<std::uint64_t> hashVector;
    /** Second-tier semantic key (fuzz::FoundDiff::semanticKey);
     *  0 when the journal predates semantic dedup. */
    std::uint64_t semanticKey = 0;
};

/**
 * Post-campaign triage knobs — the single carrier for "what happens
 * to what the campaign found". FuzzOptions and CampaignOptions no
 * longer grow per-consumer copies of these fields; every driver
 * hands a TriageOptions to the session (or to reduce::reduceRecords
 * directly).
 */
struct TriageOptions
{
    /** Run the reduction pipeline over every unique divergence. */
    bool reduceFound = false;
    /** When non-empty, write one report bundle per divergence under
     *  this directory (reduce::writeReport layout). */
    std::string reportsDir;
    /** Oracle-candidate budget per reduced divergence. */
    std::uint64_t candidateBudget = 4096;
};

} // namespace compdiff::session
