#include "monitor/monitor.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>

#include "obs/events.hh"
#include "obs/json.hh"
#include "session/checkpoint.hh"
#include "session/serial.hh"
#include "support/table.hh"

namespace compdiff::monitor
{

namespace
{

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
fmtSecs1(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

double
resolveNow(const MonitorOptions &options)
{
    if (options.nowUnix != 0)
        return options.nowUnix;
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
kvU64(const std::map<std::string, std::string> &kv,
      const std::string &key)
{
    const auto it = kv.find(key);
    if (it == kv.end())
        return 0;
    return std::strtoull(it->second.c_str(), nullptr, 10);
}

/**
 * Minimal field extraction from our own flat metrics.jsonl lines
 * (obs::MetricsSnapshot::toJsonl — one object per line, no nesting
 * before the arrays). There is deliberately no JSON DOM parser in
 * this codebase; the emitter's fixed layout makes a keyed substring
 * scan exact.
 */
bool
extractJsonField(const std::string &line, const std::string &key,
                 std::string *out)
{
    const std::string marker = "\"" + key + "\":";
    const std::size_t at = line.find(marker);
    if (at == std::string::npos)
        return false;
    std::size_t pos = at + marker.size();
    if (pos >= line.size())
        return false;
    if (line[pos] == '"') {
        const std::size_t end = line.find('"', pos + 1);
        if (end == std::string::npos)
            return false;
        *out = line.substr(pos + 1, end - pos - 1);
        return true;
    }
    std::size_t end = pos;
    while (end < line.size() && line[end] != ',' &&
           line[end] != '}') {
        end++;
    }
    *out = line.substr(pos, end - pos);
    return true;
}

/** Prometheus label-value escaping (backslash, quote, newline). */
std::string
promEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

struct HealthCounts
{
    std::size_t running = 0;
    std::size_t stalled = 0;
    std::size_t dead = 0;
    std::size_t halted = 0;
    std::size_t complete = 0;

    void add(session::ShardHealth health)
    {
        switch (health) {
          case session::ShardHealth::Running:
            running++;
            break;
          case session::ShardHealth::Stalled:
            stalled++;
            break;
          case session::ShardHealth::Dead:
            dead++;
            break;
          case session::ShardHealth::Halted:
            halted++;
            break;
          case session::ShardHealth::Complete:
            complete++;
            break;
        }
    }
};

std::vector<HistogramView>
readHistogramDigests(const std::string &path)
{
    std::vector<HistogramView> digests;
    const auto text = [&]() -> std::string {
        try {
            if (const auto content = session::readTextFile(path))
                return *content;
        } catch (const session::SessionError &) {
            // Unreadable telemetry is a skip, not a failure.
        }
        return "";
    }();
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        std::string kind;
        if (!extractJsonField(line, "kind", &kind) ||
            kind != "histogram") {
            continue;
        }
        HistogramView digest;
        std::string field;
        if (!extractJsonField(line, "name", &digest.name))
            continue;
        if (extractJsonField(line, "count", &field))
            digest.count = std::strtoull(field.c_str(), nullptr, 10);
        if (digest.count == 0)
            continue; // empty histograms add noise, not signal
        if (extractJsonField(line, "p50", &field))
            digest.p50 = std::strtod(field.c_str(), nullptr);
        if (extractJsonField(line, "p90", &field))
            digest.p90 = std::strtod(field.c_str(), nullptr);
        if (extractJsonField(line, "p99", &field))
            digest.p99 = std::strtod(field.c_str(), nullptr);
        digests.push_back(std::move(digest));
    }
    return digests;
}

} // namespace

std::vector<std::string>
findSessionDirs(const std::string &root)
{
    namespace fs = std::filesystem;
    std::vector<std::string> dirs;
    std::error_code ec;
    const auto is_session = [](const fs::path &dir) {
        std::error_code probe;
        return fs::is_regular_file(dir / "MANIFEST", probe);
    };
    if (is_session(root))
        dirs.push_back(root);
    fs::recursive_directory_iterator it(
        root, fs::directory_options::skip_permission_denied, ec);
    if (!ec) {
        for (const auto &entry : it) {
            std::error_code probe;
            if (entry.is_directory(probe) &&
                is_session(entry.path())) {
                dirs.push_back(entry.path().string());
            }
        }
    }
    std::sort(dirs.begin(), dirs.end());
    dirs.erase(std::unique(dirs.begin(), dirs.end()), dirs.end());
    return dirs;
}

SessionView
inspectSession(const std::string &dir, const MonitorOptions &options)
{
    const double now = resolveNow(options);
    SessionView view;
    view.dir = dir;
    view.label = dir;

    std::string manifest_text;
    try {
        const auto manifest =
            session::readTextFile(dir + "/MANIFEST");
        if (!manifest)
            return view;
        manifest_text = *manifest;
    } catch (const session::SessionError &) {
        return view;
    }
    const auto manifest_kv = obs::parseFuzzerStats(manifest_text);
    view.valid = manifest_kv.count("format_version") > 0;
    if (!view.valid)
        return view;
    view.shards =
        std::max<std::size_t>(kvU64(manifest_kv, "shards"), 1);
    view.maxExecs = kvU64(manifest_kv, "max_execs");
    if (const auto it = manifest_kv.find("impls");
        it != manifest_kv.end()) {
        view.impls = it->second;
    }
    if (const auto it = manifest_kv.find("fingerprint");
        it != manifest_kv.end()) {
        view.fingerprint = it->second;
    }
    if (const auto it = manifest_kv.find("mode");
        it != manifest_kv.end()) {
        view.sancheck = it->second == "sancheck";
    }

    try {
        if (const auto stats_text =
                session::readTextFile(dir + "/session_stats")) {
            const auto kv = obs::parseFuzzerStats(*stats_text);
            view.restarts = kvU64(kv, "restarts");
            if (const auto it = kv.find("run_secs"); it != kv.end())
                view.runSecs =
                    std::strtod(it->second.c_str(), nullptr);
        }
    } catch (const session::SessionError &) {
    }

    try {
        if (const auto final_text =
                session::readTextFile(dir + "/fuzzer_stats")) {
            view.finished = true;
            view.finalStats =
                obs::snapshotFromFuzzerStats(*final_text);
        }
    } catch (const session::SessionError &) {
    }

    std::set<std::string> diff_signatures;
    std::set<std::string> semantic_keys;
    std::set<std::string> san_fn_signatures;
    std::set<std::string> san_fp_signatures;
    for (std::size_t s = 0; s < view.shards; s++) {
        ShardView shard;
        shard.shard = s;

        try {
            if (const auto beat_text = session::readTextFile(
                    session::heartbeatPath(dir, s))) {
                shard.hasHeartbeat = true;
                shard.heartbeat =
                    session::parseHeartbeat(*beat_text);
                shard.ageSecs = now - shard.heartbeat.unixTime;
                shard.health = session::classifyHeartbeat(
                    shard.heartbeat, now, options.health);
            }
        } catch (const session::SessionError &) {
        }
        if (!shard.hasHeartbeat) {
            // No liveness channel (killed before the first safe
            // point, or a pre-heartbeat session): a finished session
            // is trivially complete, anything else counts as dead.
            shard.health = view.finished
                               ? session::ShardHealth::Complete
                               : session::ShardHealth::Dead;
        }
        shard.budget = shard.hasHeartbeat ? shard.heartbeat.budget
                                          : view.maxExecs;

        // The checkpoint journal answers "what work is saved" even
        // for a dead shard — a SIGKILLed worker still reports the
        // stats of its last checkpoint here.
        try {
            if (const auto payload = session::readLastRecord(
                    dir + "/shard-" + std::to_string(s) +
                    ".journal")) {
                shard.hasCheckpoint = true;
                shard.checkpoint =
                    session::decodeFuzzerState(*payload).stats;
            }
        } catch (const session::SessionError &) {
        }

        if (const auto lease = session::readShardLease(dir, s)) {
            shard.hasLease = true;
            shard.lease = *lease;
            shard.leaseAlive = lease->pid != 0 &&
                               options.health.checkPid &&
                               session::pidAlive(lease->pid);
        }

        const obs::EventLog events = obs::readEventLog(
            dir + "/shard-" + std::to_string(s) + ".events.jsonl");
        shard.eventCount = events.events.size();
        if (!events.events.empty()) {
            shard.lastEventKind = events.events.back().kind;
            shard.lastEventExec = events.events.back().exec;
        }
        std::set<std::string> shard_sems;
        for (const auto &event : events.events) {
            if (event.kind == "divergence") {
                if (const auto *sig = event.find("signature"))
                    diff_signatures.insert(sig->value);
                // Second-tier key: present only in sessions
                // journaled since semantic dedup. Its absence keeps
                // old sessions' renders byte-identical.
                if (const auto *sem = event.find("sem")) {
                    view.hasSemanticKeys = true;
                    semantic_keys.insert(sem->value);
                    shard_sems.insert(sem->value);
                }
                continue;
            }
            if (event.kind != "san_finding")
                continue;
            // Sancheck campaigns journal sanitizer FN/FP findings
            // where differential ones journal divergences; the same
            // signature currency dedups them across shards.
            const auto *cls = event.find("class");
            const bool fn = cls == nullptr || cls->value != "FP";
            if (fn)
                shard.sanFn++;
            else
                shard.sanFp++;
            if (const auto *sig = event.find("signature")) {
                diff_signatures.insert(sig->value);
                (fn ? san_fn_signatures : san_fp_signatures)
                    .insert(sig->value);
            }
        }

        shard.uniqSem = shard_sems.size();
        view.shardViews.push_back(std::move(shard));
    }

    if (view.finished) {
        view.execs = view.finalStats.execsDone;
        view.corpus = view.finalStats.corpusSize;
        view.crashes = view.finalStats.crashes;
        view.diffs = view.finalStats.diffs;
        view.uniqueDiffs = view.finalStats.diffs;
        view.edges = view.finalStats.edges;
    } else {
        for (const auto &shard : view.shardViews) {
            if (!shard.hasCheckpoint)
                continue;
            view.execs += shard.checkpoint.execs;
            view.corpus += shard.checkpoint.seeds;
            view.crashes += shard.checkpoint.crashes;
            view.diffs += shard.checkpoint.diffs;
            view.edges += shard.checkpoint.edges;
        }
        view.uniqueDiffs = diff_signatures.size();
    }
    // Unique FN/FP counts come from the event streams either way:
    // they are replay-invariant, complete once the campaign ends,
    // and the final fuzzer_stats snapshot has no per-class split.
    view.sanFn = san_fn_signatures.size();
    view.sanFp = san_fp_signatures.size();
    // Likewise the semantic-key count: event files persist after
    // the campaign finishes, so finished sessions report it too.
    view.uniqSem = semantic_keys.size();

    {
        const obs::EventLog fleet_log =
            obs::readEventLog(dir + "/fleet.jsonl");
        view.fleet = !fleet_log.events.empty();
        for (const auto &event : fleet_log.events) {
            if (event.kind == "fleet_spawn" ||
                event.kind == "fleet_revive") {
                view.fleetSpawns++;
                if (event.kind == "fleet_revive")
                    view.fleetRevivals++;
            } else if (event.kind == "fleet_dead" ||
                       event.kind == "fleet_hung") {
                view.fleetDeaths++;
            }
        }
    }

    view.histograms = readHistogramDigests(dir + "/metrics.jsonl");
    return view;
}

std::vector<SessionView>
scanTree(const std::string &root, const MonitorOptions &options)
{
    // Resolve the reader clock once so every session in one scan is
    // classified against the same instant.
    MonitorOptions scan_options = options;
    scan_options.nowUnix = resolveNow(options);

    std::vector<SessionView> sessions;
    for (const auto &dir : findSessionDirs(root)) {
        SessionView view = inspectSession(dir, scan_options);
        if (!view.valid)
            continue;
        if (dir == root) {
            view.label =
                std::filesystem::path(dir).filename().string();
            if (view.label.empty())
                view.label = dir;
        } else if (dir.size() > root.size() &&
                   dir.compare(0, root.size(), root) == 0) {
            std::size_t cut = root.size();
            while (cut < dir.size() && dir[cut] == '/')
                cut++;
            view.label = dir.substr(cut);
        }
        sessions.push_back(std::move(view));
    }
    return sessions;
}

std::string
renderTable(const std::vector<SessionView> &sessions,
            const MonitorOptions &options)
{
    // The san_fn/san_fp columns appear only when a sancheck session
    // is in view, and the uniq_sem column only when some divergence
    // event carries a semantic key: every pre-existing campaign
    // renders byte-identical.
    bool any_sancheck = false;
    bool any_sem = false;
    for (const auto &session : sessions) {
        any_sancheck = any_sancheck || session.sancheck;
        any_sem = any_sem || session.hasSemanticKeys;
    }

    support::TextTable table;
    std::vector<std::string> header = {
        "session", "shard", "health", "execs", "budget", "corpus",
        "diffs", "crashes", "edges", "last event", "age"};
    std::vector<support::Align> align = {
        support::Align::Left,  support::Align::Right,
        support::Align::Left,  support::Align::Right,
        support::Align::Right, support::Align::Right,
        support::Align::Right, support::Align::Right,
        support::Align::Right, support::Align::Left,
        support::Align::Right};
    if (any_sancheck) {
        header.insert(header.begin() + 7, {"san_fn", "san_fp"});
        align.insert(align.begin() + 7, 2, support::Align::Right);
    }
    if (any_sem) {
        header.insert(header.begin() + 7, "uniq_sem");
        align.insert(align.begin() + 7, support::Align::Right);
    }
    table.setHeader(std::move(header));
    table.setAlign(std::move(align));
    HealthCounts counts;
    std::uint64_t total_execs = 0, total_diffs = 0,
                  total_crashes = 0;
    std::size_t finished = 0;
    double run_secs = 0;
    for (const auto &session : sessions) {
        total_execs += session.execs;
        total_diffs += session.uniqueDiffs;
        total_crashes += session.crashes;
        run_secs = std::max(run_secs, session.runSecs);
        if (session.finished)
            finished++;
        for (const auto &shard : session.shardViews) {
            counts.add(shard.health);
            const std::string last =
                shard.lastEventKind.empty()
                    ? "-"
                    : shard.lastEventKind + "@" +
                          std::to_string(shard.lastEventExec);
            std::vector<std::string> row = {
                session.label, std::to_string(shard.shard),
                session::shardHealthName(shard.health),
                shard.hasCheckpoint
                    ? std::to_string(shard.checkpoint.execs)
                    : "-",
                std::to_string(shard.budget),
                shard.hasCheckpoint
                    ? std::to_string(shard.checkpoint.seeds)
                    : "-",
                shard.hasCheckpoint
                    ? std::to_string(shard.checkpoint.diffs)
                    : "-",
                shard.hasCheckpoint
                    ? std::to_string(shard.checkpoint.crashes)
                    : "-",
                shard.hasCheckpoint
                    ? std::to_string(shard.checkpoint.edges)
                    : "-",
                last,
                options.stable || !shard.hasHeartbeat
                    ? "-"
                    : fmtSecs1(shard.ageSecs) + "s"};
            if (any_sancheck) {
                row.insert(
                    row.begin() + 7,
                    {session.sancheck ? std::to_string(shard.sanFn)
                                      : "-",
                     session.sancheck ? std::to_string(shard.sanFp)
                                      : "-"});
            }
            if (any_sem) {
                row.insert(row.begin() + 7,
                           session.hasSemanticKeys
                               ? std::to_string(shard.uniqSem)
                               : "-");
            }
            table.addRow(std::move(row));
        }
    }

    std::ostringstream os;
    os << table.str();
    os << "\n";
    os << "sessions : " << sessions.size() << " (" << finished
       << " finished)\n";
    os << "shards : " << counts.running << " running, "
       << counts.stalled << " stalled, " << counts.dead << " dead, "
       << counts.halted << " halted, " << counts.complete
       << " complete\n";
    os << "total execs : " << total_execs << "\n";
    os << "unique diffs : " << total_diffs << "\n";
    if (any_sem) {
        std::uint64_t total_sem = 0;
        for (const auto &session : sessions)
            total_sem += session.uniqSem;
        os << "unique sem : " << total_sem << "\n";
    }
    os << "crashes : " << total_crashes << "\n";
    if (any_sancheck) {
        std::uint64_t total_fn = 0, total_fp = 0;
        for (const auto &session : sessions) {
            total_fn += session.sanFn;
            total_fp += session.sanFp;
        }
        os << "san findings : " << total_fn << " FN, " << total_fp
           << " FP\n";
    }
    if (!options.stable) {
        os << "run time : " << fmtSecs1(run_secs) << "s\n";
        for (const auto &session : sessions) {
            if (!session.fleet)
                continue;
            os << "fleet " << session.label << " : "
               << session.fleetSpawns << " spawns, "
               << session.fleetRevivals << " revivals, "
               << session.fleetDeaths << " worker deaths\n";
        }
    }

    bool digest_header = false;
    for (const auto &session : sessions) {
        for (const auto &digest : session.histograms) {
            if (!digest_header) {
                os << "\nhistogram percentiles (p50/p90/p99):\n";
                digest_header = true;
            }
            os << "  " << session.label << " " << digest.name
               << " : " << fmtDouble(digest.p50) << " / "
               << fmtDouble(digest.p90) << " / "
               << fmtDouble(digest.p99) << "  (n="
               << digest.count << ")\n";
        }
    }
    return os.str();
}

std::string
renderJson(const std::vector<SessionView> &sessions,
           const MonitorOptions &options)
{
    std::ostringstream os;
    os << "{\"sessions\":[";
    for (std::size_t i = 0; i < sessions.size(); i++) {
        const SessionView &session = sessions[i];
        if (i)
            os << ",";
        os << "{\"session\":\"" << obs::jsonEscape(session.label)
           << "\"";
        if (!options.stable)
            os << ",\"dir\":\"" << obs::jsonEscape(session.dir)
               << "\"";
        os << ",\"finished\":"
           << (session.finished ? "true" : "false")
           << ",\"shards\":" << session.shards
           << ",\"max_execs\":" << session.maxExecs
           << ",\"restarts\":" << session.restarts
           << ",\"execs\":" << session.execs
           << ",\"corpus\":" << session.corpus
           << ",\"unique_diffs\":" << session.uniqueDiffs
           << ",\"crashes\":" << session.crashes
           << ",\"edges\":" << session.edges;
        if (session.hasSemanticKeys)
            os << ",\"uniq_sem\":" << session.uniqSem;
        if (session.sancheck) {
            os << ",\"mode\":\"sancheck\",\"san_fn\":"
               << session.sanFn << ",\"san_fp\":" << session.sanFp;
        }
        if (!options.stable)
            os << ",\"run_secs\":" << fmtDouble(session.runSecs);
        if (!options.stable && session.fleet) {
            os << ",\"fleet\":{\"spawns\":" << session.fleetSpawns
               << ",\"revivals\":" << session.fleetRevivals
               << ",\"worker_deaths\":" << session.fleetDeaths
               << "}";
        }
        os << ",\"shard_status\":[";
        for (std::size_t s = 0; s < session.shardViews.size();
             s++) {
            const ShardView &shard = session.shardViews[s];
            if (s)
                os << ",";
            os << "{\"shard\":" << shard.shard << ",\"health\":\""
               << session::shardHealthName(shard.health) << "\""
               << ",\"budget\":" << shard.budget;
            if (shard.hasCheckpoint) {
                os << ",\"execs\":" << shard.checkpoint.execs
                   << ",\"corpus\":" << shard.checkpoint.seeds
                   << ",\"diffs\":" << shard.checkpoint.diffs
                   << ",\"crashes\":" << shard.checkpoint.crashes
                   << ",\"edges\":" << shard.checkpoint.edges;
            }
            os << ",\"events\":" << shard.eventCount;
            if (session.hasSemanticKeys)
                os << ",\"uniq_sem\":" << shard.uniqSem;
            if (session.sancheck) {
                os << ",\"san_fn\":" << shard.sanFn
                   << ",\"san_fp\":" << shard.sanFp;
            }
            if (!shard.lastEventKind.empty()) {
                os << ",\"last_event\":\""
                   << obs::jsonEscape(shard.lastEventKind)
                   << "\",\"last_event_exec\":"
                   << shard.lastEventExec;
            }
            if (!options.stable && shard.hasHeartbeat) {
                os << ",\"pid\":" << shard.heartbeat.pid
                   << ",\"age_secs\":" << fmtDouble(shard.ageSecs);
            }
            if (!options.stable && shard.hasLease) {
                os << ",\"lease\":{\"pid\":" << shard.lease.pid
                   << ",\"worker\":" << shard.lease.worker
                   << ",\"generation\":" << shard.lease.generation
                   << ",\"alive\":"
                   << (shard.leaseAlive ? "true" : "false") << "}";
            }
            os << "}";
        }
        os << "],\"histograms\":[";
        for (std::size_t h = 0; h < session.histograms.size();
             h++) {
            const HistogramView &digest = session.histograms[h];
            if (h)
                os << ",";
            os << "{\"name\":\"" << obs::jsonEscape(digest.name)
               << "\",\"count\":" << digest.count
               << ",\"p50\":" << fmtDouble(digest.p50)
               << ",\"p90\":" << fmtDouble(digest.p90)
               << ",\"p99\":" << fmtDouble(digest.p99) << "}";
        }
        os << "]}";
    }
    os << "],\"totals\":{";
    HealthCounts counts;
    std::uint64_t execs = 0, diffs = 0, crashes = 0;
    std::uint64_t san_fn = 0, san_fp = 0, uniq_sem = 0;
    bool any_sancheck = false;
    bool any_sem = false;
    for (const auto &session : sessions) {
        execs += session.execs;
        diffs += session.uniqueDiffs;
        crashes += session.crashes;
        san_fn += session.sanFn;
        san_fp += session.sanFp;
        uniq_sem += session.uniqSem;
        any_sancheck = any_sancheck || session.sancheck;
        any_sem = any_sem || session.hasSemanticKeys;
        for (const auto &shard : session.shardViews)
            counts.add(shard.health);
    }
    os << "\"sessions\":" << sessions.size()
       << ",\"execs\":" << execs << ",\"unique_diffs\":" << diffs
       << ",\"crashes\":" << crashes;
    if (any_sem)
        os << ",\"uniq_sem\":" << uniq_sem;
    if (any_sancheck)
        os << ",\"san_fn\":" << san_fn << ",\"san_fp\":" << san_fp;
    os
       << ",\"running\":" << counts.running
       << ",\"stalled\":" << counts.stalled
       << ",\"dead\":" << counts.dead
       << ",\"halted\":" << counts.halted
       << ",\"complete\":" << counts.complete << "}}";
    return os.str();
}

std::string
renderProm(const std::vector<SessionView> &sessions,
           const MonitorOptions &options)
{
    std::ostringstream os;
    os << "# TYPE compdiff_session_finished gauge\n"
       << "# TYPE compdiff_campaign_execs gauge\n"
       << "# TYPE compdiff_shard_execs gauge\n"
       << "# TYPE compdiff_shard_health gauge\n"
       << "# TYPE compdiff_histogram_quantile gauge\n";
    // San and semantic-dedup metrics exist only when a session in
    // view carries them, so scrapes of pre-existing campaigns stay
    // byte-identical.
    bool any_sancheck = false;
    bool any_sem = false;
    for (const auto &session : sessions) {
        any_sancheck = any_sancheck || session.sancheck;
        any_sem = any_sem || session.hasSemanticKeys;
    }
    if (any_sem)
        os << "# TYPE compdiff_campaign_uniq_sem gauge\n";
    if (any_sancheck) {
        os << "# TYPE compdiff_campaign_san_fn gauge\n"
           << "# TYPE compdiff_campaign_san_fp gauge\n";
    }
    for (const auto &session : sessions) {
        const std::string label =
            "session=\"" + promEscape(session.label) + "\"";
        os << "compdiff_session_info{" << label
           << ",fingerprint=\"" << promEscape(session.fingerprint)
           << "\",impls=\"" << promEscape(session.impls)
           << "\"} 1\n";
        os << "compdiff_session_finished{" << label << "} "
           << (session.finished ? 1 : 0) << "\n";
        os << "compdiff_session_restarts{" << label << "} "
           << session.restarts << "\n";
        if (!options.stable) {
            os << "compdiff_session_run_seconds{" << label << "} "
               << fmtDouble(session.runSecs) << "\n";
        }
        os << "compdiff_campaign_budget{" << label << "} "
           << session.maxExecs << "\n";
        os << "compdiff_campaign_execs{" << label << "} "
           << session.execs << "\n";
        os << "compdiff_campaign_corpus{" << label << "} "
           << session.corpus << "\n";
        os << "compdiff_campaign_unique_diffs{" << label << "} "
           << session.uniqueDiffs << "\n";
        if (session.hasSemanticKeys) {
            os << "compdiff_campaign_uniq_sem{" << label << "} "
               << session.uniqSem << "\n";
        }
        os << "compdiff_campaign_crashes{" << label << "} "
           << session.crashes << "\n";
        os << "compdiff_campaign_edges{" << label << "} "
           << session.edges << "\n";
        if (session.sancheck) {
            os << "compdiff_campaign_san_fn{" << label << "} "
               << session.sanFn << "\n";
            os << "compdiff_campaign_san_fp{" << label << "} "
               << session.sanFp << "\n";
        }
        if (!options.stable && session.fleet) {
            os << "compdiff_fleet_spawns{" << label << "} "
               << session.fleetSpawns << "\n";
            os << "compdiff_fleet_revivals{" << label << "} "
               << session.fleetRevivals << "\n";
            os << "compdiff_fleet_worker_deaths{" << label << "} "
               << session.fleetDeaths << "\n";
        }
        for (const auto &shard : session.shardViews) {
            const std::string shard_label =
                label + ",shard=\"" + std::to_string(shard.shard) +
                "\"";
            os << "compdiff_shard_health{" << shard_label
               << ",state=\""
               << session::shardHealthName(shard.health)
               << "\"} 1\n";
            if (shard.hasCheckpoint) {
                os << "compdiff_shard_execs{" << shard_label
                   << "} " << shard.checkpoint.execs << "\n";
                os << "compdiff_shard_corpus{" << shard_label
                   << "} " << shard.checkpoint.seeds << "\n";
                os << "compdiff_shard_diffs{" << shard_label
                   << "} " << shard.checkpoint.diffs << "\n";
                os << "compdiff_shard_crashes{" << shard_label
                   << "} " << shard.checkpoint.crashes << "\n";
                os << "compdiff_shard_edges{" << shard_label
                   << "} " << shard.checkpoint.edges << "\n";
            }
            os << "compdiff_shard_events{" << shard_label << "} "
               << shard.eventCount << "\n";
            if (session.sancheck) {
                os << "compdiff_shard_san_fn{" << shard_label
                   << "} " << shard.sanFn << "\n";
                os << "compdiff_shard_san_fp{" << shard_label
                   << "} " << shard.sanFp << "\n";
            }
            if (!options.stable && shard.hasHeartbeat) {
                os << "compdiff_shard_heartbeat_age_seconds{"
                   << shard_label << "} "
                   << fmtDouble(shard.ageSecs) << "\n";
            }
        }
        for (const auto &digest : session.histograms) {
            const std::string metric_label =
                label + ",metric=\"" + promEscape(digest.name) +
                "\"";
            os << "compdiff_histogram_count{" << metric_label
               << "} " << digest.count << "\n";
            const std::pair<const char *, double> quantiles[] = {
                {"0.5", digest.p50},
                {"0.9", digest.p90},
                {"0.99", digest.p99}};
            for (const auto &[q, v] : quantiles) {
                os << "compdiff_histogram_quantile{"
                   << metric_label << ",quantile=\"" << q
                   << "\"} " << fmtDouble(v) << "\n";
            }
        }
    }
    return os.str();
}

} // namespace compdiff::monitor
