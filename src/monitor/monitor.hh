#pragma once

/**
 * @file
 * Campaign monitor: the afl-whatsup analog over session directories.
 *
 * A session directory tree (one CampaignSession per leaf — e.g.
 * `--session=DIR` runs, or targets-mode trees with one session per
 * target) is scanned for MANIFEST files; every session found is
 * merged into one campaign snapshot from the artifacts the session
 * layer maintains:
 *
 *   - heartbeat-<N>     liveness + phase (reader-side stall/dead
 *                       classification — session/heartbeat.hh)
 *   - shard-<N>.journal last checkpointed FuzzStats, so a dead
 *                       shard still reports the work it saved
 *   - shard-<N>.events.jsonl
 *                       discovery/divergence/crash stream; unique
 *                       divergence signatures dedup across shards
 *   - fuzzer_stats      merged final snapshot (finished sessions)
 *   - metrics.jsonl     histogram percentile digests
 *
 * Everything here is read-only and crash-tolerant: a live campaign
 * is scanned while it writes (atomic renames and write-ahead tails
 * make every read either old or new, never garbage), and a killed
 * campaign reports its last checkpoint. Renders as an aligned text
 * table, one JSON document, or Prometheus text exposition.
 *
 * Output is byte-stable: scanning a *finished* session yields
 * identical bytes on every invocation (and regardless of the
 * --jobs the campaign ran with); `stable` additionally omits the
 * wall-clock-derived fields (ages, rates, run time, pids) so tests
 * can byte-compare snapshots across runs and machines.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "obs/stats.hh"
#include "session/heartbeat.hh"
#include "session/lease.hh"

namespace compdiff::monitor
{

/** Scan/render knobs (compdiff_monitor flags map 1:1 onto these). */
struct MonitorOptions
{
    session::HealthPolicy health;
    /** Omit wall-clock-derived output (ages, rates, run time, pids)
     *  for byte-comparable snapshots. */
    bool stable = false;
    /** Reader clock as seconds since the Unix epoch; 0 = read the
     *  system clock at scan time. */
    double nowUnix = 0;
};

/** One shard's merged view. */
struct ShardView
{
    std::size_t shard = 0;

    bool hasHeartbeat = false;
    session::Heartbeat heartbeat;
    session::ShardHealth health = session::ShardHealth::Dead;
    /** now - heartbeat stamp (0 without a heartbeat). */
    double ageSecs = 0;

    /** Last checkpointed stats (survives a killed worker). */
    bool hasCheckpoint = false;
    fuzz::FuzzStats checkpoint;
    /** Shard-local execution budget (from the session manifest). */
    std::uint64_t budget = 0;

    std::size_t eventCount = 0;
    std::string lastEventKind;
    std::uint64_t lastEventExec = 0;

    /** Sanitizer-checking events this shard journaled (sancheck
     *  sessions only; raw per-shard counts, pre-dedup). */
    std::uint64_t sanFn = 0;
    std::uint64_t sanFp = 0;

    /** Distinct semantic keys in this shard's divergence events
     *  (shard-local; the session-level uniqSem dedups across
     *  shards). 0 for pre-semantic-dedup journals. */
    std::uint64_t uniqSem = 0;

    /** Fleet shard lease (src/fleet), when one is on disk. Liveness
     *  metadata — reported only outside `stable` mode. */
    bool hasLease = false;
    session::ShardLease lease;
    /** Lease holder probes alive (false without a lease). */
    bool leaseAlive = false;
};

/** One histogram's percentile digest (from metrics.jsonl). */
struct HistogramView
{
    std::string name;
    std::uint64_t count = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
};

/** One session directory's merged view. */
struct SessionView
{
    std::string dir;
    /** Display name (dir relative to the scan root). */
    std::string label;
    bool valid = false; ///< MANIFEST present and parsable

    // Manifest identity.
    std::size_t shards = 1;
    std::uint64_t maxExecs = 0;
    std::string impls;
    std::string fingerprint;
    /** MANIFEST carries `mode : sancheck` (sanitizer-checking
     *  campaign — findings are sanitizer FN/FP verdicts, not
     *  divergences). */
    bool sancheck = false;

    // session_stats (cumulative across restarts; display only).
    std::uint64_t restarts = 0;
    double runSecs = 0;

    // Fleet coordinator history (`fleet.jsonl`, when the session is
    // fleet-run). Process history — reported only outside `stable`.
    bool fleet = false;
    std::uint64_t fleetSpawns = 0;
    std::uint64_t fleetRevivals = 0;
    /** Workers that died abnormally (signal) or were SIGKILLed as
     *  hung by the coordinator. */
    std::uint64_t fleetDeaths = 0;

    /** True when the final fuzzer_stats snapshot exists. */
    bool finished = false;
    obs::FuzzerStatsSnapshot finalStats;

    std::vector<ShardView> shardViews;

    // Campaign aggregates: the final snapshot when finished, else
    // sums over the shards' last checkpoints. For a live campaign
    // `edges` is a per-shard sum (shard maps overlap), while
    // `uniqueDiffs` is exact either way — divergence signatures
    // dedup across the shards' event streams.
    std::uint64_t execs = 0;
    std::uint64_t corpus = 0;
    std::uint64_t crashes = 0;
    std::uint64_t diffs = 0; ///< per-shard sum (pre-dedup)
    std::uint64_t uniqueDiffs = 0;
    /** Unique *semantic* keys across the shards' divergence events
     *  (second-tier dedup: canonical form x behavior signature).
     *  Predicts the post-reduction merged bundle count. Only
     *  meaningful when hasSemanticKeys — sessions journaled before
     *  semantic dedup have no `sem` event field, and the monitor
     *  stays byte-stable for them by omitting the column. */
    std::uint64_t uniqSem = 0;
    /** Any divergence event carried a `sem` field. */
    bool hasSemanticKeys = false;
    std::uint64_t edges = 0;
    /** Unique sanitizer false-negative / false-positive signatures
     *  across the shards' event streams (sancheck sessions only —
     *  0/0 elsewhere). */
    std::uint64_t sanFn = 0;
    std::uint64_t sanFp = 0;

    std::vector<HistogramView> histograms;
};

/**
 * Directories under (or at) `root` holding a MANIFEST, sorted.
 * Unreadable subtrees are skipped, not fatal.
 */
std::vector<std::string> findSessionDirs(const std::string &root);

/** Merge one session directory (label defaults to the dir). */
SessionView inspectSession(const std::string &dir,
                           const MonitorOptions &options);

/** Scan a whole tree: find + inspect + root-relative labels. */
std::vector<SessionView> scanTree(const std::string &root,
                                  const MonitorOptions &options);

/** Aligned text table + campaign summary block. */
std::string renderTable(const std::vector<SessionView> &sessions,
                        const MonitorOptions &options);

/** One JSON document (obs::jsonWellFormed-clean). */
std::string renderJson(const std::vector<SessionView> &sessions,
                       const MonitorOptions &options);

/** Prometheus text-exposition format. */
std::string renderProm(const std::vector<SessionView> &sessions,
                       const MonitorOptions &options);

} // namespace compdiff::monitor
