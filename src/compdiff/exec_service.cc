#include "compdiff/exec_service.hh"

#include "obs/trace.hh"
#include "support/hash.hh"

namespace compdiff::core
{

using support::Bytes;

ExecutionService::ExecutionService(
    ImplementationSet impls,
    std::vector<std::shared_ptr<const Artifact>> artifacts,
    vm::VmLimits limits, std::size_t jobs)
    : jobs_(jobs == 0 ? support::ThreadPool::hardwareWorkers()
                      : jobs)
{
    ids_.reserve(impls.size());
    executors_.reserve(impls.size());
    for (std::size_t i = 0; i < impls.size(); i++) {
        ids_.push_back(impls[i]->id());
        executors_.push_back(
            impls[i]->makeExecutor(artifacts[i], limits));
    }
    if (jobs_ > 1)
        pool_ = std::make_unique<support::ThreadPool>(jobs_);
}

void
ExecutionService::executeOne(std::size_t index, const Bytes &input,
                             std::uint64_t nonce_base,
                             std::uint64_t budget,
                             const OutputNormalizer &normalizer,
                             Observation &out)
{
    obs::Span exec_span(obs::tracingEnabled()
                            ? "exec." + ids_[index]
                            : std::string());
    const RawObservation raw = executors_[index]->execute(
        input, nonce_base * executors_.size() + index + 1, budget);

    out.impl = ids_[index];
    out.timedOut = raw.timedOut;
    out.instructions = raw.instructions;
    out.normalizedOutput = normalizer.normalize(raw.output);
    out.exitClass = raw.exitClass;
    support::HashCombiner combiner;
    combiner.addString(out.normalizedOutput);
    combiner.addString(out.exitClass);
    out.hash = combiner.digest();
}

void
ExecutionService::runRound(const Bytes &input,
                           std::uint64_t nonce_base,
                           std::uint64_t budget,
                           const OutputNormalizer &normalizer,
                           std::vector<Observation> &out)
{
    out.resize(executors_.size());
    if (!pool_) {
        for (std::size_t i = 0; i < executors_.size(); i++)
            executeOne(i, input, nonce_base, budget, normalizer,
                       out[i]);
        return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(executors_.size());
    for (std::size_t i = 0; i < executors_.size(); i++) {
        tasks.push_back([this, i, &input, nonce_base, budget,
                         &normalizer, &out] {
            executeOne(i, input, nonce_base, budget, normalizer,
                       out[i]);
        });
    }
    pool_->runAll(std::move(tasks));
}

} // namespace compdiff::core
