#include "compdiff/exec_service.hh"

#include "obs/trace.hh"
#include "support/hash.hh"

namespace compdiff::core
{

using support::Bytes;

ExecutionService::ExecutionService(
    std::vector<std::shared_ptr<const bytecode::Module>> modules,
    std::vector<compiler::CompilerConfig> configs,
    vm::VmLimits limits, std::size_t jobs)
    : modules_(std::move(modules)), configs_(std::move(configs)),
      jobs_(jobs == 0 ? support::ThreadPool::hardwareWorkers()
                      : jobs)
{
    vms_.reserve(configs_.size());
    for (std::size_t i = 0; i < configs_.size(); i++)
        vms_.emplace_back(*modules_[i], configs_[i], limits);
    if (jobs_ > 1)
        pool_ = std::make_unique<support::ThreadPool>(jobs_);
}

void
ExecutionService::executeOne(std::size_t index, const Bytes &input,
                             std::uint64_t nonce_base,
                             std::uint64_t budget,
                             const OutputNormalizer &normalizer,
                             Observation &out)
{
    obs::Span exec_span(obs::tracingEnabled()
                            ? "exec." + configs_[index].name()
                            : std::string());
    vms_[index].setMaxInstructions(budget);
    auto run = vms_[index].run(
        input, nullptr, nonce_base * configs_.size() + index + 1);

    out.config = configs_[index];
    out.timedOut = run.timedOut();
    out.instructions = run.instructions;
    out.normalizedOutput = normalizer.normalize(run.output);
    out.exitClass = run.exitClass();
    support::HashCombiner combiner;
    combiner.addString(out.normalizedOutput);
    combiner.addString(out.exitClass);
    out.hash = combiner.digest();
}

void
ExecutionService::runRound(const Bytes &input,
                           std::uint64_t nonce_base,
                           std::uint64_t budget,
                           const OutputNormalizer &normalizer,
                           std::vector<Observation> &out)
{
    out.resize(configs_.size());
    if (!pool_) {
        for (std::size_t i = 0; i < configs_.size(); i++)
            executeOne(i, input, nonce_base, budget, normalizer,
                       out[i]);
        return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(configs_.size());
    for (std::size_t i = 0; i < configs_.size(); i++) {
        tasks.push_back([this, i, &input, nonce_base, budget,
                         &normalizer, &out] {
            executeOne(i, input, nonce_base, budget, normalizer,
                       out[i]);
        });
    }
    pool_->runAll(std::move(tasks));
}

} // namespace compdiff::core
