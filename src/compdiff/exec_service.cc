#include "compdiff/exec_service.hh"

#include "obs/trace.hh"
#include "support/hash.hh"

namespace compdiff::core
{

using support::Bytes;

ExecutionService::ExecutionService(
    ImplementationSet impls,
    std::vector<std::shared_ptr<const Artifact>> artifacts,
    vm::VmLimits limits, std::size_t jobs)
    : impls_(std::move(impls)), limits_(limits),
      jobs_(jobs == 0 ? support::ThreadPool::hardwareWorkers()
                      : jobs)
{
    ids_.reserve(impls_.size());
    executors_.reserve(impls_.size());
    for (std::size_t i = 0; i < impls_.size(); i++) {
        ids_.push_back(impls_[i]->id());
        executors_.push_back(
            impls_[i]->makeExecutor(artifacts[i], limits_));
    }
    if (jobs_ > 1)
        pool_ = std::make_unique<support::ThreadPool>(jobs_);
}

void
ExecutionService::rebindArtifacts(
    const std::vector<std::shared_ptr<const Artifact>> &artifacts)
{
    for (std::size_t i = 0; i < executors_.size(); i++) {
        if (!executors_[i]->rebind(artifacts[i])) {
            executors_[i] =
                impls_[i]->makeExecutor(artifacts[i], limits_);
        }
    }
}

void
ExecutionService::executeOne(std::size_t index, const Bytes &input,
                             std::uint64_t nonce_base,
                             std::uint64_t budget,
                             const OutputNormalizer &normalizer,
                             Observation &out)
{
    obs::Span exec_span(obs::tracingEnabled()
                            ? "exec." + ids_[index]
                            : std::string());
    const RawObservation raw = executors_[index]->execute(
        input, nonce_base * executors_.size() + index + 1, budget);

    out.impl = ids_[index];
    out.timedOut = raw.timedOut;
    out.instructions = raw.instructions;
    out.normalizedOutput = normalizer.normalize(raw.output);
    out.exitClass = raw.exitClass;
    support::HashCombiner combiner;
    combiner.addString(out.normalizedOutput);
    combiner.addString(out.exitClass);
    out.hash = combiner.digest();
}

void
ExecutionService::runRound(const Bytes &input,
                           std::uint64_t nonce_base,
                           std::uint64_t budget,
                           const OutputNormalizer &normalizer,
                           std::vector<Observation> &out)
{
    out.resize(executors_.size());
    if (!pool_) {
        for (std::size_t i = 0; i < executors_.size(); i++)
            executeOne(i, input, nonce_base, budget, normalizer,
                       out[i]);
        return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(executors_.size());
    for (std::size_t i = 0; i < executors_.size(); i++) {
        tasks.push_back([this, i, &input, nonce_base, budget,
                         &normalizer, &out] {
            executeOne(i, input, nonce_base, budget, normalizer,
                       out[i]);
        });
    }
    pool_->runAll(std::move(tasks));
}

void
ExecutionService::runBatch(const std::vector<Bytes> &inputs,
                           const std::vector<std::uint64_t> &nonce_bases,
                           std::uint64_t budget,
                           const OutputNormalizer &normalizer,
                           std::vector<std::vector<Observation>> &out)
{
    out.resize(inputs.size());
    for (auto &row : out)
        row.resize(executors_.size());

    // Implementation-major: one executor runs the whole input batch
    // before the next implementation starts. Every (i, b) cell is a
    // pure function of (implementation, input, nonce_base, budget),
    // so this order — and the jobs > 1 fan-out below — reproduces
    // per-input rounds bit for bit.
    if (!pool_) {
        for (std::size_t i = 0; i < executors_.size(); i++) {
            for (std::size_t b = 0; b < inputs.size(); b++) {
                executeOne(i, inputs[b], nonce_bases[b], budget,
                           normalizer, out[b][i]);
            }
        }
        return;
    }
    // One task per implementation (an executor is single-threaded);
    // each task walks the batch serially.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(executors_.size());
    for (std::size_t i = 0; i < executors_.size(); i++) {
        tasks.push_back([this, i, &inputs, &nonce_bases, budget,
                         &normalizer, &out] {
            for (std::size_t b = 0; b < inputs.size(); b++) {
                executeOne(i, inputs[b], nonce_bases[b], budget,
                           normalizer, out[b][i]);
            }
        });
    }
    pool_->runAll(std::move(tasks));
}

} // namespace compdiff::core
