#include "compdiff/subset.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace compdiff::core
{

std::string
SubsetResult::name(const ImplementationSet &impls) const
{
    std::string out = "{";
    for (std::size_t i = 0; i < members.size(); i++) {
        if (i)
            out += ", ";
        out += impls[members[i]]->id();
    }
    return out + "}";
}

SubsetAnalysis::SubsetAnalysis(std::size_t num_impls)
    : numImpls_(num_impls)
{
    if (num_impls < 2 || num_impls > 16)
        support::fatal("SubsetAnalysis supports 2..16 implementations");
}

void
SubsetAnalysis::addCase(const std::vector<std::uint64_t> &hashes)
{
    if (hashes.size() != numImpls_)
        support::fatal("hash vector size mismatch in SubsetAnalysis");
    std::map<std::uint64_t, std::uint32_t> classes;
    for (std::size_t i = 0; i < hashes.size(); i++)
        classes[hashes[i]] |= 1u << i;
    std::vector<std::uint32_t> masks;
    masks.reserve(classes.size());
    for (const auto &[hash, mask] : classes)
        masks.push_back(mask);
    cases_.push_back(std::move(masks));
}

std::vector<SubsetResult>
SubsetAnalysis::enumerateSize(std::size_t size) const
{
    std::vector<SubsetResult> results;
    const std::uint32_t limit = 1u << numImpls_;
    for (std::uint32_t subset = 0; subset < limit; subset++) {
        if (static_cast<std::size_t>(__builtin_popcount(subset)) !=
            size) {
            continue;
        }
        SubsetResult result;
        for (std::size_t i = 0; i < numImpls_; i++)
            if (subset & (1u << i))
                result.members.push_back(i);

        for (const auto &masks : cases_) {
            // Detected iff the subset spans >= 2 behavior classes,
            // i.e. it is not contained in any single class mask.
            bool contained = false;
            for (const std::uint32_t mask : masks) {
                if ((subset & ~mask) == 0) {
                    contained = true;
                    break;
                }
            }
            if (!contained)
                result.detected++;
        }
        results.push_back(std::move(result));
    }
    return results;
}

std::vector<std::vector<SubsetResult>>
SubsetAnalysis::enumerateAll() const
{
    std::vector<std::vector<SubsetResult>> all;
    for (std::size_t size = 2; size <= numImpls_; size++)
        all.push_back(enumerateSize(size));
    return all;
}

const SubsetResult &
SubsetAnalysis::best(const std::vector<SubsetResult> &results)
{
    return *std::max_element(results.begin(), results.end(),
                             [](const auto &a, const auto &b) {
                                 return a.detected < b.detected;
                             });
}

const SubsetResult &
SubsetAnalysis::worst(const std::vector<SubsetResult> &results)
{
    return *std::min_element(results.begin(), results.end(),
                             [](const auto &a, const auto &b) {
                                 return a.detected < b.detected;
                             });
}

support::BoxStats
SubsetAnalysis::stats(const std::vector<SubsetResult> &results)
{
    std::vector<double> values;
    values.reserve(results.size());
    for (const auto &r : results)
        values.push_back(static_cast<double>(r.detected));
    return support::boxStats(values);
}

} // namespace compdiff::core
