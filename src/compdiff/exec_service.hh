#pragma once

/**
 * @file
 * Parallel k-way execution for the differential oracle.
 *
 * The paper's Section 5 overhead discussion reports ~10x run-time
 * cost for the full ten-implementation set because every input is
 * executed k times *serially*. Those k executions are independent by
 * construction (each implementation has its own address space and
 * the oracle only compares their finished observations), so the
 * fan-out is embarrassingly parallel.
 *
 * ExecutionService is the forkserver analog one level up: it keeps
 * one resident Executor per implementation (a warm Vm for the
 * simulated family, a warm tree-walker for the reference
 * interpreter — whatever the backend builds) and dispatches each
 * round of k executions over a support::ThreadPool. Determinism is
 * preserved structurally:
 *   - observation i is written to slot i of the output vector, so
 *     completion order is invisible;
 *   - per-execution nonces are computed from (nonce_base, i), not
 *     from scheduling;
 *   - the RQ6 timeout-retry loop stays in DiffEngine, which sees
 *     exactly the same observation vector a serial run produces.
 * A service with jobs == 1 runs the round inline on the caller's
 * thread with the same code path, which is how the bit-identity of
 * `--jobs 1` and `--jobs N` is enforced by design rather than by
 * testing alone (the test exists too).
 *
 * Concurrency contract: one ExecutionService belongs to one
 * DiffEngine, and runRound() may be called by one thread at a time
 * (the per-implementation Executors are reused across rounds).
 * Sharded campaigns get one engine (and service) per shard.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "support/thread_pool.hh"

namespace compdiff::core
{

class ExecutionService
{
  public:
    /**
     * @param impls     The oracle members, in observation order.
     * @param artifacts One compiled artifact per implementation
     *                  (same order).
     * @param limits    Per-execution limits; the instruction budget
     *                  is overridden per round (RQ6 retries).
     * @param jobs      Worker threads; 1 = inline serial execution,
     *                  0 = ThreadPool::hardwareWorkers().
     */
    ExecutionService(
        ImplementationSet impls,
        std::vector<std::shared_ptr<const Artifact>> artifacts,
        vm::VmLimits limits, std::size_t jobs);

    /**
     * Execute every implementation on `input` with the given
     * instruction budget and fill `out` (resized to size()) in
     * implementation order.
     */
    void runRound(const support::Bytes &input,
                  std::uint64_t nonce_base, std::uint64_t budget,
                  const OutputNormalizer &normalizer,
                  std::vector<Observation> &out);

    /**
     * Execute every implementation on every input (one first round
     * per input) and fill `out[b][i]` with input b's observation of
     * implementation i — exactly what runRound(inputs[b],
     * nonce_bases[b], ...) would have produced, since each
     * observation depends only on (implementation, input,
     * nonce_base, budget).
     *
     * The iteration order is the batch win: implementation-major, so
     * each resident executor (and its decoded module, warm arena, and
     * branch-predictor state) runs the whole input batch back to back
     * instead of being interleaved k ways per input. With jobs > 1
     * the batch becomes k tasks — one per implementation, each
     * serial over the inputs — one pool dispatch instead of one per
     * input.
     */
    void runBatch(const std::vector<support::Bytes> &inputs,
                  const std::vector<std::uint64_t> &nonce_bases,
                  std::uint64_t budget,
                  const OutputNormalizer &normalizer,
                  std::vector<std::vector<Observation>> &out);

    /**
     * Retarget every resident executor at a new per-implementation
     * artifact vector (same implementation order as construction).
     * Executors whose backend cannot rebind in place are rebuilt via
     * makeExecutor. This is what keeps one service (and its warm
     * Vm arenas) alive across the thousands of candidate programs a
     * reduction or fuzzing campaign compiles.
     */
    void rebindArtifacts(
        const std::vector<std::shared_ptr<const Artifact>> &artifacts);

    /** Number of implementations (k). */
    std::size_t size() const { return executors_.size(); }

    /** Resolved worker count (>= 1). */
    std::size_t jobs() const { return jobs_; }

  private:
    void executeOne(std::size_t index, const support::Bytes &input,
                    std::uint64_t nonce_base, std::uint64_t budget,
                    const OutputNormalizer &normalizer,
                    Observation &out);

    /** The oracle members (kept for rebind fallbacks). */
    ImplementationSet impls_;
    /** Implementation ids, observation order (summaries/spans). */
    std::vector<std::string> ids_;
    /** Resident per-implementation workers (forkserver reuse). */
    std::vector<std::unique_ptr<Executor>> executors_;
    vm::VmLimits limits_;
    std::size_t jobs_;
    /** Present only when jobs_ > 1. */
    std::unique_ptr<support::ThreadPool> pool_;
};

} // namespace compdiff::core
