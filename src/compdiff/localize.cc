#include "compdiff/localize.hh"

#include <sstream>

#include "compiler/compiler.hh"

namespace compdiff::core
{

std::string
Localization::str() const
{
    std::ostringstream os;
    if (!divergent) {
        os << "no divergence on this input";
        return os.str();
    }
    if (controlDivergence) {
        os << "control divergence after " << commonPrefix
           << " common blocks: executions part ways after "
           << lastCommonFunction << ":" << lastCommonLine
           << " (one continues at line " << lineA
           << ", the other at line " << lineB << ")";
    } else if (dataDivergence) {
        os << "data divergence: both executions follow the same "
           << commonPrefix
           << "-block path but produce different output "
              "(value-only instability, e.g. an uninitialized or "
              "layout-dependent read)";
    } else {
        os << "outputs agree but exit classes differ";
    }
    return os.str();
}

Localization
localizeDivergence(const minic::Program &program,
                   const compiler::CompilerConfig &a,
                   const compiler::CompilerConfig &b,
                   const support::Bytes &input, vm::VmLimits limits)
{
    compiler::Compiler comp(program);
    auto module_a = comp.compile(a);
    auto module_b = comp.compile(b);

    std::vector<vm::TraceEntry> trace_a;
    std::vector<vm::TraceEntry> trace_b;
    vm::Vm vm_a(module_a, a, limits);
    vm::Vm vm_b(module_b, b, limits);
    auto result_a = vm_a.run(input, nullptr, 1, &trace_a);
    auto result_b = vm_b.run(input, nullptr, 2, &trace_b);

    Localization loc;
    loc.divergent = result_a.output != result_b.output ||
                    result_a.exitClass() != result_b.exitClass();

    std::size_t prefix = 0;
    while (prefix < trace_a.size() && prefix < trace_b.size() &&
           trace_a[prefix] == trace_b[prefix]) {
        prefix++;
    }
    loc.commonPrefix = prefix;
    if (prefix > 0) {
        const auto &last = trace_a[prefix - 1];
        loc.lastCommonLine = last.line;
        if (last.func >= 0 &&
            static_cast<std::size_t>(last.func) <
                program.functions.size()) {
            loc.lastCommonFunction =
                program.functions[static_cast<std::size_t>(
                                      last.func)]
                    ->name;
        }
    }
    loc.controlDivergence =
        prefix < trace_a.size() || prefix < trace_b.size();
    if (prefix < trace_a.size())
        loc.lineA = trace_a[prefix].line;
    if (prefix < trace_b.size())
        loc.lineB = trace_b[prefix].line;

    if (!loc.controlDivergence && loc.divergent)
        loc.dataDivergence = true;
    if (!loc.divergent)
        loc.controlDivergence = false;
    return loc;
}

namespace
{

/** Index of a simulated member of class `cls`, or npos. */
std::size_t
simulatedMemberOf(const ImplementationSet &impls,
                  const DiffResult &diff, std::size_t cls)
{
    for (std::size_t i = 0; i < diff.classOf.size(); i++) {
        if (diff.classOf[i] == cls &&
            impls[i]->simulatedConfig() != nullptr) {
            return i;
        }
    }
    return static_cast<std::size_t>(-1);
}

} // namespace

PairLocalization
localizeAcross(const minic::Program &program,
               const ImplementationSet &impls,
               const DiffResult &diff, const support::Bytes &input,
               vm::VmLimits limits)
{
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    PairLocalization pair;
    if (!diff.divergent || diff.classCount < 2 ||
        impls.size() != diff.classOf.size()) {
        pair.note = "no divergence to localize";
        return pair;
    }

    // The natural representatives: the first member of class 0 and
    // the first member of any other class (the pair the summary
    // prints).
    const std::size_t rep_a = 0;
    std::size_t rep_b = npos;
    for (std::size_t i = 1; i < diff.classOf.size(); i++) {
        if (diff.classOf[i] != diff.classOf[rep_a]) {
            rep_b = i;
            break;
        }
    }
    pair.requestedA = impls[rep_a]->id();
    pair.requestedB = impls[rep_b]->id();

    // Trace alignment needs the simulated pipeline on both sides;
    // bridge each class to a same-class simulated member when the
    // natural representative is an independent backend.
    const std::size_t use_a =
        impls[rep_a]->simulatedConfig()
            ? rep_a
            : simulatedMemberOf(impls, diff, diff.classOf[rep_a]);
    const std::size_t use_b =
        impls[rep_b]->simulatedConfig()
            ? rep_b
            : simulatedMemberOf(impls, diff, diff.classOf[rep_b]);
    if (use_a == npos || use_b == npos) {
        const std::size_t blocked = use_a == npos ? rep_a : rep_b;
        pair.note =
            "trace-alignment localization unavailable: behavior "
            "class " +
            std::to_string(diff.classOf[blocked]) +
            " (representative " + impls[blocked]->id() +
            ") contains no simulated compiler implementation to "
            "replay with tracing";
        return pair;
    }

    pair.attempted = true;
    pair.implA = impls[use_a]->id();
    pair.implB = impls[use_b]->id();
    pair.bridged = use_a != rep_a || use_b != rep_b;
    if (pair.bridged) {
        std::string bridges;
        if (use_a != rep_a) {
            bridges += pair.requestedA + " -> " + pair.implA;
        }
        if (use_b != rep_b) {
            if (!bridges.empty())
                bridges += ", ";
            bridges += pair.requestedB + " -> " + pair.implB;
        }
        pair.note =
            "trace alignment replays the simulated pipeline, so "
            "the cross-backend representative was bridged to a "
            "same-behavior-class simulated member (" +
            bridges +
            "); the substituted implementation produced the same "
            "normalized behavior on this input, so the aligned "
            "divergence is the same divergence";
    } else {
        pair.note = "direct trace alignment of " + pair.implA +
                    " vs " + pair.implB;
    }
    pair.localization = localizeDivergence(
        program, *impls[use_a]->simulatedConfig(),
        *impls[use_b]->simulatedConfig(), input, limits);
    return pair;
}

} // namespace compdiff::core
