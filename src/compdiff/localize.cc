#include "compdiff/localize.hh"

#include <sstream>

#include "compiler/compiler.hh"

namespace compdiff::core
{

std::string
Localization::str() const
{
    std::ostringstream os;
    if (!divergent) {
        os << "no divergence on this input";
        return os.str();
    }
    if (controlDivergence) {
        os << "control divergence after " << commonPrefix
           << " common blocks: executions part ways after "
           << lastCommonFunction << ":" << lastCommonLine
           << " (one continues at line " << lineA
           << ", the other at line " << lineB << ")";
    } else if (dataDivergence) {
        os << "data divergence: both executions follow the same "
           << commonPrefix
           << "-block path but produce different output "
              "(value-only instability, e.g. an uninitialized or "
              "layout-dependent read)";
    } else {
        os << "outputs agree but exit classes differ";
    }
    return os.str();
}

Localization
localizeDivergence(const minic::Program &program,
                   const compiler::CompilerConfig &a,
                   const compiler::CompilerConfig &b,
                   const support::Bytes &input, vm::VmLimits limits)
{
    compiler::Compiler comp(program);
    auto module_a = comp.compile(a);
    auto module_b = comp.compile(b);

    std::vector<vm::TraceEntry> trace_a;
    std::vector<vm::TraceEntry> trace_b;
    vm::Vm vm_a(module_a, a, limits);
    vm::Vm vm_b(module_b, b, limits);
    auto result_a = vm_a.run(input, nullptr, 1, &trace_a);
    auto result_b = vm_b.run(input, nullptr, 2, &trace_b);

    Localization loc;
    loc.divergent = result_a.output != result_b.output ||
                    result_a.exitClass() != result_b.exitClass();

    std::size_t prefix = 0;
    while (prefix < trace_a.size() && prefix < trace_b.size() &&
           trace_a[prefix] == trace_b[prefix]) {
        prefix++;
    }
    loc.commonPrefix = prefix;
    if (prefix > 0) {
        const auto &last = trace_a[prefix - 1];
        loc.lastCommonLine = last.line;
        if (last.func >= 0 &&
            static_cast<std::size_t>(last.func) <
                program.functions.size()) {
            loc.lastCommonFunction =
                program.functions[static_cast<std::size_t>(
                                      last.func)]
                    ->name;
        }
    }
    loc.controlDivergence =
        prefix < trace_a.size() || prefix < trace_b.size();
    if (prefix < trace_a.size())
        loc.lineA = trace_a[prefix].line;
    if (prefix < trace_b.size())
        loc.lineB = trace_b[prefix].line;

    if (!loc.controlDivergence && loc.divergent)
        loc.dataDivergence = true;
    if (!loc.divergent)
        loc.controlDivergence = false;
    return loc;
}

} // namespace compdiff::core
