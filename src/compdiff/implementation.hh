#pragma once

/**
 * @file
 * The open implementation abstraction behind the k-way oracle.
 *
 * The paper's oracle is "compile P with k compiler implementations
 * and diff the outputs" (§3.1, Alg. 1). Until this layer existed the
 * reproduction hardwired "implementation" to Vendor × OptLevel — an
 * enum product threaded through every consumer, and a shared-fate
 * blind spot: every member of the oracle ran on the same
 * lowering + bytecode-VM pipeline, so a defect in that pipeline was
 * invisible to the diff. `core::Implementation` turns "an
 * implementation" into an interface — compile a program once into an
 * opaque Artifact, then execute it many times — so the oracle can mix
 * backends that share no code:
 *
 *   - SimulatedCompilerImpl: the existing Vendor×OptLevel+Traits
 *     pipeline (one instance per CompilerConfig; ids like "gcc-O2",
 *     "clang-O1+asan" are unchanged, so paper10 outputs stay
 *     byte-identical).
 *   - RefInterpImpl ("ref"): a direct AST tree-walking reference
 *     interpreter with no lowering, no bytecode, and no
 *     Traits-derived codegen choices (src/refinterp/).
 *
 * ImplementationRegistry builds ImplementationSets from spec
 * strings:
 *
 *   spec      := family [ ":" arg ]*   | legacy-name
 *   specs     := spec ("," spec)*      aliases: "paper10", "all"
 *
 *   "gcc:-O2"           simulated gcc at -O2
 *   "clang:-Os:ubsan"   simulated clang at -Os with simulated UBSan
 *   "ref"               the reference interpreter
 *   "gcc-O2"            legacy CompilerConfig::name() form
 *   "paper10"           the paper's 10-implementation set
 *   "all"               paper10 plus the reference interpreter
 *
 * Adding a backend is one registerFamily() call — no enum widening,
 * no DiffEngine/ExecutionService changes.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/config.hh"
#include "minic/ast.hh"
#include "support/bytes.hh"
#include "vm/vm.hh"

namespace compdiff::core
{

/**
 * What one implementation observed for one (input, budget) run —
 * the raw currency the diff engine normalizes, hashes, and compares.
 */
struct RawObservation
{
    /** Raw program output (pre-normalization). */
    std::string output;
    /** Coarse exit classification ("exit:0", "crash:segv", ...). */
    std::string exitClass;
    /** True when the step budget ran out (the timeout analog). */
    bool timedOut = false;
    /** Steps consumed (telemetry; never compared). */
    std::uint64_t instructions = 0;
};

/**
 * An implementation's compiled form of one program. Opaque to
 * callers; each Implementation downcasts its own artifacts.
 */
class Artifact
{
  public:
    virtual ~Artifact() = default;
};

/**
 * A reusable execution worker for one artifact — the forkserver
 * analog. Executors hold per-worker mutable state (a Vm, an
 * interpreter), so one executor must not be driven from two threads
 * at once; ExecutionService keeps one per implementation.
 */
class Executor
{
  public:
    virtual ~Executor() = default;

    /**
     * Run the artifact on one input.
     *
     * @param nonce  Per-execution time_stamp() value.
     * @param budget Step budget for this run (RQ6 retries raise it).
     */
    virtual RawObservation execute(const support::Bytes &input,
                                   std::uint64_t nonce,
                                   std::uint64_t budget) = 0;

    /**
     * Retarget this executor at a new artifact from the same
     * implementation, keeping warm per-worker state (a Vm's arena, a
     * tree-walker's layout caches). Returns false when the backend
     * does not support in-place rebinding; the caller then falls back
     * to Implementation::makeExecutor. The resident-executor campaign
     * path: reduction and fuzzing retarget one executor set across
     * thousands of candidate programs.
     */
    virtual bool rebind(std::shared_ptr<const Artifact> /*artifact*/)
    {
        return false;
    }
};

/** Options threaded into Implementation::compile. */
struct CompileContext
{
    /**
     * compiler::programFingerprint(program), if the caller already
     * computed it (one pretty-print covers a k-implementation
     * batch); 0 means "compute it yourself if you need it".
     */
    std::uint64_t programHash = 0;
    /**
     * Ablation hook: mutates the expanded Traits before compilation
     * (simulated family only; backends without Traits ignore it).
     */
    std::function<void(compiler::Traits &)> traitsTweak;
    /**
     * Compile benches set this false to measure real compiles
     * instead of CompileCache hits.
     */
    bool useCache = true;
};

/**
 * One member of the k-way oracle: a way to compile and execute a
 * MiniC program. Implementations are immutable and shareable; all
 * per-run state lives in Executors and Artifacts.
 */
class Implementation
{
  public:
    virtual ~Implementation() = default;

    /**
     * Stable identifier used in summaries, subset names, telemetry
     * metric names, and the compile-cache key ("gcc-O2", "ref").
     */
    virtual const std::string &id() const = 0;

    /** One-line human description ("simulated gcc at -O2"). */
    virtual std::string describe() const = 0;

    /**
     * Compile `program` (which must outlive the artifact) into this
     * implementation's executable form.
     */
    virtual std::shared_ptr<const Artifact>
    compile(const minic::Program &program,
            const CompileContext &ctx = {}) const = 0;

    /** Build a reusable executor for a compiled artifact. */
    virtual std::unique_ptr<Executor>
    makeExecutor(std::shared_ptr<const Artifact> artifact,
                 const vm::VmLimits &limits) const = 0;

    /** One-shot convenience: makeExecutor + execute. */
    RawObservation execute(std::shared_ptr<const Artifact> artifact,
                           const support::Bytes &input,
                           const vm::VmLimits &limits,
                           std::uint64_t nonce = 0) const;

    /**
     * The CompilerConfig behind this implementation, when it is a
     * member of the simulated family — nullptr for independent
     * backends. Consumers that genuinely need config-level detail
     * (UB localization replays traits-specific pipelines) use this
     * and degrade gracefully on nullptr.
     */
    virtual const compiler::CompilerConfig *simulatedConfig() const
    {
        return nullptr;
    }
};

/** An ordered oracle: the k implementations to diff. */
using ImplementationSet =
    std::vector<std::shared_ptr<const Implementation>>;

/**
 * Process-wide factory mapping spec strings to implementations (see
 * the file comment for the grammar).
 */
class ImplementationRegistry
{
  public:
    static ImplementationRegistry &global();

    /**
     * A family factory: receives the ":"-separated args after the
     * family name ("gcc:-O2" → {"-O2"}) and returns the
     * implementation, or calls support::fatal on a bad spec.
     */
    using Factory =
        std::function<std::shared_ptr<const Implementation>(
            const std::vector<std::string> &args)>;

    /** Register (or replace) a family. */
    void registerFamily(const std::string &family, Factory factory);

    /** Registered family names, sorted (diagnostics/--help). */
    std::vector<std::string> families() const;

    /**
     * Build one implementation from a single spec ("gcc:-O2",
     * "ref", legacy "clang-O1+asan"). Fatal on unknown specs.
     */
    std::shared_ptr<const Implementation>
    make(const std::string &spec) const;

    /**
     * Build an ordered set from a comma-separated spec list,
     * expanding the "paper10" and "all" aliases in place.
     */
    ImplementationSet parse(const std::string &specs) const;

  private:
    ImplementationRegistry();
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** The simulated implementation for one CompilerConfig. */
std::shared_ptr<const Implementation>
simulatedImplementation(const compiler::CompilerConfig &config);

/** Simulated implementations for an explicit config list. */
ImplementationSet implementationsFor(
    const std::vector<compiler::CompilerConfig> &configs);

/**
 * The paper's 10-implementation oracle ({gcc,clang} × {O0..O3,Os}),
 * in the canonical order every table and figure uses.
 */
ImplementationSet paper10Implementations();

} // namespace compdiff::core
