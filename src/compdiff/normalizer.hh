#pragma once

/**
 * @file
 * Output normalization (paper RQ5).
 *
 * Some targets legitimately embed per-run values (timestamps, PIDs)
 * in their output; comparing raw outputs across binaries would flag
 * every such program. CompDiff-AFL++ strips these with regular
 * expressions before checksumming — e.g. the wireshark
 * "10:44:23.405830 [Epan WARNING]" case in the paper. This class is
 * that filter stage.
 */

#include <regex>
#include <string>
#include <vector>

namespace compdiff::core
{

/**
 * A list of regex filters applied to program output before hashing.
 */
class OutputNormalizer
{
  public:
    /** No filters: raw output comparison. */
    OutputNormalizer() = default;

    /**
     * The default filter set used by CompDiff-AFL++ in this repo:
     * strips `[ts:<digits>]` timestamps (the time_stamp() builtin's
     * conventional rendering).
     */
    static OutputNormalizer withDefaultFilters();

    /** Add a filter; every match is replaced with `replacement`. */
    void addPattern(const std::string &regex,
                    const std::string &replacement = "");

    /** Apply all filters in order. */
    std::string normalize(std::string output) const;

    /** Number of installed filters. */
    std::size_t patternCount() const { return patterns_.size(); }

  private:
    struct Filter
    {
        std::regex regex;
        std::string replacement;
    };
    std::vector<Filter> patterns_;
};

} // namespace compdiff::core
