#pragma once

/**
 * @file
 * Subset-of-implementations analysis (paper Section 4.2 / RQ4,
 * Figures 1 and 2).
 *
 * Given the per-implementation output-hash vectors of a corpus of
 * known bugs, this module answers: for every subset S of the
 * implementations (|S| in [2, k]), how many bugs would CompDiff
 * restricted to S still detect? A bug is detected by S iff at least
 * two members of S observed different outputs.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "compdiff/implementation.hh"
#include "support/table.hh"

namespace compdiff::core
{

/** Detection count of one subset. */
struct SubsetResult
{
    std::vector<std::size_t> members; ///< implementation indices
    std::size_t detected = 0;

    /** "{gcc-O0, clang-O3}" given the implementation set. */
    std::string name(const ImplementationSet &impls) const;
};

/**
 * Accumulates hash vectors and enumerates subset detection counts.
 */
class SubsetAnalysis
{
  public:
    /** @param num_impls Number of implementations k (2..16). */
    explicit SubsetAnalysis(std::size_t num_impls);

    /**
     * Record one known bug's per-implementation hash vector (from
     * DiffResult::hashVector()); it must have k entries.
     */
    void addCase(const std::vector<std::uint64_t> &hashes);

    std::size_t caseCount() const { return cases_.size(); }

    /**
     * Enumerate every subset of size `size` and return its detection
     * count, in subset-bitmask order.
     */
    std::vector<SubsetResult> enumerateSize(std::size_t size) const;

    /** All sizes 2..k (the paper's Figure 1/2 X axis). */
    std::vector<std::vector<SubsetResult>> enumerateAll() const;

    /** Best- and worst-performing subsets of one size. */
    static const SubsetResult &
    best(const std::vector<SubsetResult> &results);
    static const SubsetResult &
    worst(const std::vector<SubsetResult> &results);

    /** Five-number summary of detection counts of one size. */
    static support::BoxStats
    stats(const std::vector<SubsetResult> &results);

  private:
    /**
     * For one case, the partition of implementations into equal-
     * output classes, encoded as bitmasks. A subset detects the case
     * iff it is NOT fully contained in any single class.
     */
    std::vector<std::vector<std::uint32_t>> cases_;
    std::size_t numImpls_;
};

} // namespace compdiff::core
