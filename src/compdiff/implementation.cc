#include "compdiff/implementation.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <mutex>
#include <optional>

#include "compiler/cache.hh"
#include "compiler/compiler.hh"
#include "refinterp/refinterp.hh"
#include "support/logging.hh"

namespace compdiff::core
{

RawObservation
Implementation::execute(std::shared_ptr<const Artifact> artifact,
                        const support::Bytes &input,
                        const vm::VmLimits &limits,
                        std::uint64_t nonce) const
{
    return makeExecutor(std::move(artifact), limits)
        ->execute(input, nonce, limits.maxInstructions);
}

namespace
{

// --- the simulated Vendor×OptLevel family --------------------------

struct SimulatedArtifact : Artifact
{
    explicit SimulatedArtifact(
        std::shared_ptr<const bytecode::Module> module)
        : module(std::move(module))
    {
    }

    std::shared_ptr<const bytecode::Module> module;
};

class SimulatedExecutor : public Executor
{
  public:
    SimulatedExecutor(std::shared_ptr<const SimulatedArtifact> art,
                      const compiler::CompilerConfig &config,
                      const vm::VmLimits &limits)
        : artifact_(std::move(art)),
          vm_(*artifact_->module, config, limits)
    {
    }

    RawObservation
    execute(const support::Bytes &input, std::uint64_t nonce,
            std::uint64_t budget) override
    {
        vm_.setMaxInstructions(budget);
        vm::ExecutionResult run =
            vm_.run(input, /*coverage=*/nullptr, nonce);
        RawObservation out;
        out.output = std::move(run.output);
        out.exitClass = run.exitClass();
        out.timedOut = run.timedOut();
        out.instructions = run.instructions;
        return out;
    }

    bool
    rebind(std::shared_ptr<const Artifact> artifact) override
    {
        auto art = std::dynamic_pointer_cast<const SimulatedArtifact>(
            std::move(artifact));
        if (!art)
            return false;
        // Keep the old artifact alive until the Vm points at the new
        // module; the arena (address space, heap, stacks) survives.
        vm_.rebind(*art->module);
        artifact_ = std::move(art);
        return true;
    }

  private:
    std::shared_ptr<const SimulatedArtifact> artifact_;
    vm::Vm vm_;
};

class SimulatedCompilerImpl : public Implementation
{
  public:
    explicit SimulatedCompilerImpl(compiler::CompilerConfig config)
        : config_(config), id_(config.name())
    {
    }

    const std::string &id() const override { return id_; }

    std::string
    describe() const override
    {
        return "simulated " + id_ +
               " (traits-driven lowering on the bytecode VM)";
    }

    std::shared_ptr<const Artifact>
    compile(const minic::Program &program,
            const CompileContext &ctx) const override
    {
        compiler::Traits traits = compiler::traitsFor(config_);
        if (ctx.traitsTweak)
            ctx.traitsTweak(traits);
        std::shared_ptr<const bytecode::Module> module;
        if (ctx.useCache) {
            const std::uint64_t hash =
                ctx.programHash
                    ? ctx.programHash
                    : compiler::programFingerprint(program);
            module = compiler::CompileCache::global().compile(
                program, hash, id_, config_, traits);
        } else {
            module = std::make_shared<const bytecode::Module>(
                compiler::Compiler(program).compileWithTraits(
                    config_, traits));
        }
        return std::make_shared<SimulatedArtifact>(
            std::move(module));
    }

    std::unique_ptr<Executor>
    makeExecutor(std::shared_ptr<const Artifact> artifact,
                 const vm::VmLimits &limits) const override
    {
        auto art =
            std::dynamic_pointer_cast<const SimulatedArtifact>(
                std::move(artifact));
        if (!art)
            support::panic("SimulatedCompilerImpl: foreign artifact");
        return std::make_unique<SimulatedExecutor>(std::move(art),
                                                   config_, limits);
    }

    const compiler::CompilerConfig *
    simulatedConfig() const override
    {
        return &config_;
    }

  private:
    compiler::CompilerConfig config_;
    std::string id_;
};

// --- the reference-interpreter backend -----------------------------

struct RefArtifact : Artifact
{
    explicit RefArtifact(const minic::Program &program)
        : program(&program)
    {
    }

    const minic::Program *program;
};

class RefExecutor : public Executor
{
  public:
    RefExecutor(std::shared_ptr<const RefArtifact> art,
                const vm::VmLimits &limits)
        : artifact_(std::move(art)), limits_(limits)
    {
        interp_.emplace(*artifact_->program, limits_);
    }

    RawObservation
    execute(const support::Bytes &input, std::uint64_t nonce,
            std::uint64_t budget) override
    {
        interp_->setMaxInstructions(budget);
        vm::ExecutionResult run = interp_->run(input, nonce);
        RawObservation out;
        out.output = std::move(run.output);
        out.exitClass = run.exitClass();
        out.timedOut = run.timedOut();
        out.instructions = run.instructions;
        return out;
    }

    bool
    rebind(std::shared_ptr<const Artifact> artifact) override
    {
        auto art = std::dynamic_pointer_cast<const RefArtifact>(
            std::move(artifact));
        if (!art)
            return false;
        // The tree-walker precomputes per-program layout at
        // construction; rebuild it in place for the new AST.
        artifact_ = std::move(art);
        interp_.emplace(*artifact_->program, limits_);
        return true;
    }

  private:
    std::shared_ptr<const RefArtifact> artifact_;
    vm::VmLimits limits_;
    std::optional<refinterp::RefInterpreter> interp_;
};

class RefInterpImpl : public Implementation
{
  public:
    const std::string &
    id() const override
    {
        static const std::string id = "ref";
        return id;
    }

    std::string
    describe() const override
    {
        return "AST tree-walking reference interpreter "
               "(no lowering, no bytecode, no traits)";
    }

    std::shared_ptr<const Artifact>
    compile(const minic::Program &program,
            const CompileContext &) const override
    {
        // Nothing to compile: the AST is the executable. Frame and
        // rodata layouts are precomputed per executor.
        return std::make_shared<RefArtifact>(program);
    }

    std::unique_ptr<Executor>
    makeExecutor(std::shared_ptr<const Artifact> artifact,
                 const vm::VmLimits &limits) const override
    {
        auto art = std::dynamic_pointer_cast<const RefArtifact>(
            std::move(artifact));
        if (!art)
            support::panic("RefInterpImpl: foreign artifact");
        return std::make_unique<RefExecutor>(std::move(art), limits);
    }
};

// --- spec parsing --------------------------------------------------

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t at = text.find(sep, start);
        if (at == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, at - start));
        start = at + 1;
    }
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(
                              static_cast<unsigned char>(text[begin])))
        begin++;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        end--;
    return text.substr(begin, end - begin);
}

compiler::OptLevel
optFromArg(const std::string &family, const std::string &arg)
{
    if (arg == "-O0")
        return compiler::OptLevel::O0;
    if (arg == "-O1")
        return compiler::OptLevel::O1;
    if (arg == "-O2")
        return compiler::OptLevel::O2;
    if (arg == "-O3")
        return compiler::OptLevel::O3;
    if (arg == "-Os")
        return compiler::OptLevel::Os;
    support::fatal("implementation spec '" + family +
                   "': unknown optimization level '" + arg +
                   "' (expected -O0, -O1, -O2, -O3, or -Os)");
}

compiler::Sanitizer
sanitizerFromArg(const std::string &family, const std::string &arg)
{
    if (arg == "asan")
        return compiler::Sanitizer::ASan;
    if (arg == "ubsan")
        return compiler::Sanitizer::UBSan;
    if (arg == "msan")
        return compiler::Sanitizer::MSan;
    support::fatal("implementation spec '" + family +
                   "': unknown sanitizer '" + arg +
                   "' (expected asan, ubsan, or msan)");
}

ImplementationRegistry::Factory
simulatedFamily(compiler::Vendor vendor, const std::string &family)
{
    return [vendor,
            family](const std::vector<std::string> &args)
               -> std::shared_ptr<const Implementation> {
        if (args.empty() || args.size() > 2) {
            support::fatal(
                "implementation spec '" + family +
                "' takes an optimization level and an optional "
                "sanitizer, e.g. '" +
                family + ":-O2' or '" + family + ":-Os:ubsan'");
        }
        compiler::CompilerConfig config;
        config.vendor = vendor;
        config.opt = optFromArg(family, args[0]);
        config.sanitizer =
            args.size() == 2
                ? sanitizerFromArg(family, args[1])
                : compiler::Sanitizer::None;
        return simulatedImplementation(config);
    };
}

} // namespace

// --- registry ------------------------------------------------------

struct ImplementationRegistry::Impl
{
    mutable std::mutex mu;
    std::map<std::string, Factory> families;
};

ImplementationRegistry::ImplementationRegistry()
    : impl_(std::make_unique<Impl>())
{
    registerFamily("gcc",
                   simulatedFamily(compiler::Vendor::Gcc, "gcc"));
    registerFamily("clang",
                   simulatedFamily(compiler::Vendor::Clang, "clang"));
    registerFamily(
        "ref",
        [](const std::vector<std::string> &args)
            -> std::shared_ptr<const Implementation> {
            if (!args.empty())
                support::fatal(
                    "implementation spec 'ref' takes no arguments");
            return std::make_shared<RefInterpImpl>();
        });
}

ImplementationRegistry &
ImplementationRegistry::global()
{
    static ImplementationRegistry instance;
    return instance;
}

void
ImplementationRegistry::registerFamily(const std::string &family,
                                       Factory factory)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->families[family] = std::move(factory);
}

std::vector<std::string>
ImplementationRegistry::families() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    std::vector<std::string> names;
    names.reserve(impl_->families.size());
    for (const auto &[name, factory] : impl_->families)
        names.push_back(name);
    return names;
}

std::shared_ptr<const Implementation>
ImplementationRegistry::make(const std::string &spec) const
{
    const std::string text = trim(spec);
    if (text.empty())
        support::fatal("empty implementation spec");

    std::vector<std::string> parts = splitOn(text, ':');
    const std::string family = parts[0];
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        auto it = impl_->families.find(family);
        if (it != impl_->families.end())
            factory = it->second;
    }
    if (factory) {
        return factory(std::vector<std::string>(parts.begin() + 1,
                                                parts.end()));
    }
    // Legacy CompilerConfig::name() forms ("gcc-O2",
    // "clang-O1+asan") keep working for scripts and saved repros.
    if (parts.size() == 1 &&
        text.find('-') != std::string::npos) {
        return simulatedImplementation(
            compiler::configFromName(text));
    }
    std::string known;
    for (const std::string &name : families())
        known += (known.empty() ? "" : ", ") + name;
    support::fatal("unknown implementation family '" + family +
                   "' in spec '" + spec + "' (known: " + known +
                   ")");
}

ImplementationSet
ImplementationRegistry::parse(const std::string &specs) const
{
    ImplementationSet set;
    for (const std::string &raw : splitOn(specs, ',')) {
        const std::string spec = trim(raw);
        if (spec.empty())
            support::fatal("empty implementation spec in '" + specs +
                           "'");
        if (spec == "paper10") {
            ImplementationSet paper = paper10Implementations();
            set.insert(set.end(), paper.begin(), paper.end());
        } else if (spec == "all") {
            ImplementationSet paper = paper10Implementations();
            set.insert(set.end(), paper.begin(), paper.end());
            set.push_back(make("ref"));
        } else {
            set.push_back(make(spec));
        }
    }
    if (set.empty())
        support::fatal("implementation spec list '" + specs +
                       "' names no implementations");
    return set;
}

// --- convenience constructors --------------------------------------

std::shared_ptr<const Implementation>
simulatedImplementation(const compiler::CompilerConfig &config)
{
    return std::make_shared<SimulatedCompilerImpl>(config);
}

ImplementationSet
implementationsFor(
    const std::vector<compiler::CompilerConfig> &configs)
{
    ImplementationSet set;
    set.reserve(configs.size());
    for (const compiler::CompilerConfig &config : configs)
        set.push_back(simulatedImplementation(config));
    return set;
}

ImplementationSet
paper10Implementations()
{
    return implementationsFor(compiler::standardImplementations());
}

} // namespace compdiff::core
