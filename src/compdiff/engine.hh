#pragma once

/**
 * @file
 * The CompDiff differential engine (paper Section 3.1).
 *
 * Workflow, exactly as the paper states it:
 *   1) fix a set of compiler implementations C_i,
 *   2) compile the program with each C_i into binaries B_i,
 *   3) run every B_i on the same input,
 *   4) compare the (normalized) output checksums; any mismatch makes
 *      the input bug-triggering.
 *
 * The engine also implements the RQ6 timeout discipline: when only
 * *some* binaries exceed the execution budget, the budget is raised
 * and the run repeated, so that truncated outputs are never reported
 * as divergence.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compdiff/implementation.hh"
#include "compdiff/normalizer.hh"
#include "compiler/config.hh"
#include "support/bytes.hh"
#include "vm/vm.hh"

namespace compdiff::core
{

class ExecutionService;

/** Engine knobs. */
struct DiffOptions
{
    vm::VmLimits limits;
    OutputNormalizer normalizer = OutputNormalizer::withDefaultFilters();
    /** RQ6: re-run partial timeouts with a larger budget. */
    bool retryTimeouts = true;
    int timeoutRetries = 3;
    std::uint64_t timeoutBudgetFactor = 4;
    /**
     * Worker threads for the k-way execution fan-out: 1 = serial
     * (the seed behavior), 0 = one per hardware thread. Results are
     * bit-identical for every value — the ExecutionService fills the
     * observation vector in configuration order and nonces depend
     * only on (nonce_base, config index), never on scheduling.
     */
    std::size_t jobs = 1;
    /**
     * Ablation hook: mutate each simulated configuration's derived
     * traits before compilation (e.g. disable one UB-exploiting pass
     * across the whole implementation set). Compile-time knobs only;
     * backends without Traits (the reference interpreter) ignore it.
     */
    std::function<void(compiler::Traits &)> traitsTweak;
};

/** One implementation's observation for an input. */
struct Observation
{
    /** Implementation::id() of the implementation that ran. */
    std::string impl;
    std::string normalizedOutput;
    std::string exitClass;
    std::uint64_t hash = 0;
    bool timedOut = false;
    /** Instructions executed in the final (kept) attempt — the
     *  deterministic per-implementation "timing" axis. */
    std::uint64_t instructions = 0;
};

/** Outcome of one differential run. */
struct DiffResult
{
    bool divergent = false;
    /**
     * Set when the run still contained partial timeouts after all
     * retries; such inputs are never reported as divergent (they are
     * the only would-be false-positive source, RQ6).
     */
    bool unresolvedTimeout = false;
    /** Budget rounds executed (1 = no timeout retry was needed);
     *  every implementation ran this many times (RQ6 accounting). */
    int attempts = 0;
    std::vector<Observation> observations;
    /** Distinct behavior classes; classOf[i] indexes them. */
    std::vector<std::size_t> classOf;
    std::size_t classCount = 0;

    /** Per-implementation output hashes, in implementation order. */
    std::vector<std::uint64_t> hashVector() const;

    /** Would the subset (indices into observations) still diverge? */
    bool divergesWithin(const std::vector<std::size_t> &subset) const;

    /**
     * Human-readable report: classes, members, and their outputs.
     * When metrics are enabled (obs::metricsEnabled()), each class
     * line additionally carries per-observation instruction-count
     * telemetry and the report ends with the retry accounting.
     */
    std::string summary(std::size_t max_output_bytes = 160) const;
};

/**
 * Compiles a program under a set of implementations and runs the
 * output-comparison oracle on inputs.
 *
 * Compilation happens once, in the constructor, into one Artifact
 * per implementation (the simulated family memoizes modules in the
 * process-wide compiler::CompileCache, so rebuilding an engine for
 * the same (program, impl, traits) skips recompilation entirely);
 * runInput() then only executes (the forkserver-style reuse from
 * Section 3.2), dispatching the k executions over the engine's
 * ExecutionService (serially when options.jobs == 1).
 *
 * Concurrency: a DiffEngine may be driven by one thread at a time
 * (its ExecutionService reuses per-implementation Executor state
 * between rounds). Sharded campaigns construct one engine per shard;
 * the compile cache makes those k-way compilations nearly free.
 */
class DiffEngine
{
  public:
    /**
     * Diff against the paper's ten-implementation oracle.
     *
     * @param program  Analyzed program (must outlive the engine).
     * @param options  Engine knobs.
     */
    explicit DiffEngine(const minic::Program &program,
                        DiffOptions options = {});

    /**
     * Diff against an explicit implementation set (e.g. from
     * ImplementationRegistry::parse).
     */
    DiffEngine(const minic::Program &program, ImplementationSet impls,
               DiffOptions options = {});

    /**
     * Convenience: an all-simulated oracle from a config list
     * (wraps each CompilerConfig in its simulated implementation).
     */
    DiffEngine(const minic::Program &program,
               std::vector<compiler::CompilerConfig> configs,
               DiffOptions options = {});

    ~DiffEngine();

    /**
     * Run every binary on one input and compare normalized outputs.
     *
     * @param input      The test input.
     * @param nonce_base Seed for per-execution nonces (timestamps);
     *                   every binary execution gets a distinct nonce,
     *                   as wall-clock time would.
     */
    DiffResult runInput(const support::Bytes &input,
                        std::uint64_t nonce_base = 0) const;

    /**
     * Run a batch of inputs against the resident binaries — one
     * DiffResult per input, each bit-identical to
     * runInput(inputs[b], nonce_bases[b]). The first execution round
     * of the whole batch is dispatched implementation-major through
     * the ExecutionService (each resident executor runs every input
     * back to back); the rare RQ6 timeout-retry rounds then complete
     * per input. `nonce_bases` must have one entry per input.
     */
    std::vector<DiffResult>
    runBatch(const std::vector<support::Bytes> &inputs,
             const std::vector<std::uint64_t> &nonce_bases) const;

    /**
     * Recompile the oracle for a new program and retarget the
     * resident executors at the fresh artifacts in place (falling
     * back to executor rebuilds for backends that cannot rebind).
     * Equivalent to constructing a new engine with the same
     * implementations and options, minus the per-program setup cost —
     * the reduction oracle retargets one engine across thousands of
     * candidate programs.
     */
    void retarget(const minic::Program &program);

    /** First divergence-triggering input among `inputs`, if any. */
    std::optional<DiffResult>
    findDivergence(const std::vector<support::Bytes> &inputs) const;

    /** The oracle members, in observation order. */
    const ImplementationSet &implementations() const
    {
        return impls_;
    }

    /** Number of implementations (k in the paper). */
    std::size_t size() const { return impls_.size(); }

    const DiffOptions &options() const { return options_; }

  private:
    /**
     * Complete a result whose observations hold the first round
     * (result.attempts == 1): run the RQ6 timeout-retry loop, assign
     * behavior classes, and record metrics. Shared by runInput and
     * runBatch so the two paths cannot drift.
     */
    void finishInput(DiffResult &result, const support::Bytes &input,
                     std::uint64_t nonce_base) const;

    void compileAll(const minic::Program &program);

    ImplementationSet impls_;
    DiffOptions options_;
    std::vector<std::shared_ptr<const Artifact>> artifacts_;
    std::unique_ptr<ExecutionService> service_;
};

} // namespace compdiff::core
