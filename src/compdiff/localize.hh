#pragma once

/**
 * @file
 * Trace-based fault localization (the paper's Section 5 outlook).
 *
 * CompDiff's reports say *that* two binaries disagree, not *where*.
 * The paper sketches the remedy: since all binaries come from the
 * same source, their execution traces can be aligned and compared.
 * This module implements that sketch — both binaries run with a
 * (function, source line) control-flow trace, the longest common
 * prefix is computed, and the first disagreement is reported as the
 * root-cause candidate:
 *
 *  - a *control divergence* names the line where the two binaries
 *    first take different paths (e.g. the folded overflow guard of
 *    Listing 1);
 *  - a *data divergence* (identical paths, different output) points
 *    at value-only instability such as an uninitialized read whose
 *    value is printed.
 */

#include <string>

#include "compiler/config.hh"
#include "minic/ast.hh"
#include "support/bytes.hh"
#include "vm/vm.hh"

namespace compdiff::core
{

/** Localization verdict for one (input, pair-of-binaries). */
struct Localization
{
    /** The two binaries disagreed on this input at all. */
    bool divergent = false;
    /** Their control-flow traces disagree. */
    bool controlDivergence = false;
    /** Outputs disagree while the traces match (value instability). */
    bool dataDivergence = false;

    /** Blocks shared before the first disagreement. */
    std::size_t commonPrefix = 0;
    /** Last source line both executions agree on. */
    std::uint32_t lastCommonLine = 0;
    std::string lastCommonFunction;
    /** First differing block per binary (0 = trace ended). */
    std::uint32_t lineA = 0;
    std::uint32_t lineB = 0;

    /** Human-readable one-paragraph report. */
    std::string str() const;
};

/**
 * Run one input under two implementations with tracing and localize
 * their first disagreement.
 *
 * @param program Analyzed program.
 * @param a,b     The two implementations to align.
 * @param input   The (typically divergence-triggering) input.
 * @param limits  Execution limits.
 */
Localization
localizeDivergence(const minic::Program &program,
                   const compiler::CompilerConfig &a,
                   const compiler::CompilerConfig &b,
                   const support::Bytes &input,
                   vm::VmLimits limits = {});

} // namespace compdiff::core
