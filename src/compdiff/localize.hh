#pragma once

/**
 * @file
 * Trace-based fault localization (the paper's Section 5 outlook).
 *
 * CompDiff's reports say *that* two binaries disagree, not *where*.
 * The paper sketches the remedy: since all binaries come from the
 * same source, their execution traces can be aligned and compared.
 * This module implements that sketch — both binaries run with a
 * (function, source line) control-flow trace, the longest common
 * prefix is computed, and the first disagreement is reported as the
 * root-cause candidate:
 *
 *  - a *control divergence* names the line where the two binaries
 *    first take different paths (e.g. the folded overflow guard of
 *    Listing 1);
 *  - a *data divergence* (identical paths, different output) points
 *    at value-only instability such as an uninitialized read whose
 *    value is printed.
 */

#include <string>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "compiler/config.hh"
#include "minic/ast.hh"
#include "support/bytes.hh"
#include "vm/vm.hh"

namespace compdiff::core
{

/** Localization verdict for one (input, pair-of-binaries). */
struct Localization
{
    /** The two binaries disagreed on this input at all. */
    bool divergent = false;
    /** Their control-flow traces disagree. */
    bool controlDivergence = false;
    /** Outputs disagree while the traces match (value instability). */
    bool dataDivergence = false;

    /** Blocks shared before the first disagreement. */
    std::size_t commonPrefix = 0;
    /** Last source line both executions agree on. */
    std::uint32_t lastCommonLine = 0;
    std::string lastCommonFunction;
    /** First differing block per binary (0 = trace ended). */
    std::uint32_t lineA = 0;
    std::uint32_t lineB = 0;

    /** Human-readable one-paragraph report. */
    std::string str() const;
};

/**
 * Run one input under two implementations with tracing and localize
 * their first disagreement.
 *
 * @param program Analyzed program.
 * @param a,b     The two implementations to align.
 * @param input   The (typically divergence-triggering) input.
 * @param limits  Execution limits.
 */
Localization
localizeDivergence(const minic::Program &program,
                   const compiler::CompilerConfig &a,
                   const compiler::CompilerConfig &b,
                   const support::Bytes &input,
                   vm::VmLimits limits = {});

/**
 * Localization across an arbitrary implementation set.
 *
 * Trace alignment replays the traits-specific *simulated* pipelines,
 * so it needs a CompilerConfig on both sides. With open backends in
 * the oracle (the reference interpreter, any future backend) the
 * natural two-class representatives may cross backends; instead of
 * silently giving up, this wrapper *bridges*: it substitutes, for
 * each behavior class, a same-class simulated member — legitimate
 * because every member of a class produced the same (normalized)
 * behavior on this input — and records exactly which pair it
 * aligned and why. When a divergent class contains no simulated
 * member at all, no alignment is possible and the note says which
 * class blocked it. Reports (reduce::writeReport) and the CLI print
 * the note verbatim so a filed bug never hides the substitution.
 */
struct PairLocalization
{
    /** Trace alignment ran (localization below is meaningful). */
    bool attempted = false;
    /** Representatives were substituted with same-class simulated
     *  members (cross-backend bridge). */
    bool bridged = false;
    /** The natural representatives of the first two classes. */
    std::string requestedA;
    std::string requestedB;
    /** The pair actually aligned (empty when !attempted). */
    std::string implA;
    std::string implB;
    /** Human-readable account of what was aligned/bridged and why. */
    std::string note;
    /** Valid when attempted. */
    Localization localization;
};

/**
 * Pick two representatives of different behavior classes from a
 * divergent DiffResult and localize between them, bridging
 * cross-backend pairs as described above.
 *
 * @param impls The implementation set that produced `diff`, in
 *              observation order.
 */
PairLocalization
localizeAcross(const minic::Program &program,
               const ImplementationSet &impls,
               const DiffResult &diff, const support::Bytes &input,
               vm::VmLimits limits = {});

} // namespace compdiff::core
