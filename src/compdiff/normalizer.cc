#include "compdiff/normalizer.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace compdiff::core
{

OutputNormalizer
OutputNormalizer::withDefaultFilters()
{
    OutputNormalizer normalizer;
    normalizer.addPattern(R"(\[ts:[0-9]+\])");
    return normalizer;
}

void
OutputNormalizer::addPattern(const std::string &regex,
                             const std::string &replacement)
{
    patterns_.push_back({std::regex(regex), replacement});
}

std::string
OutputNormalizer::normalize(std::string output) const
{
    obs::Span span("normalize");
    obs::counter("normalizer.calls").add();
    obs::counter("normalizer.bytes_in").add(output.size());
    for (const auto &filter : patterns_) {
        output = std::regex_replace(output, filter.regex,
                                    filter.replacement);
    }
    obs::counter("normalizer.bytes_out").add(output.size());
    return output;
}

} // namespace compdiff::core
