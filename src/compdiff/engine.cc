#include "compdiff/engine.hh"

#include <sstream>

#include "compdiff/exec_service.hh"
#include "compiler/cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace compdiff::core
{

using support::Bytes;

std::vector<std::uint64_t>
DiffResult::hashVector() const
{
    std::vector<std::uint64_t> hashes;
    hashes.reserve(observations.size());
    for (const auto &obs : observations)
        hashes.push_back(obs.hash);
    return hashes;
}

bool
DiffResult::divergesWithin(const std::vector<std::size_t> &subset) const
{
    if (subset.size() < 2)
        return false;
    const std::uint64_t first = observations[subset[0]].hash;
    for (std::size_t i = 1; i < subset.size(); i++)
        if (observations[subset[i]].hash != first)
            return true;
    return false;
}

std::string
DiffResult::summary(std::size_t max_output_bytes) const
{
    std::ostringstream os;
    os << (divergent ? "DIVERGENT" : "consistent") << " across "
       << observations.size() << " implementations ("
       << classCount << " behavior class"
       << (classCount == 1 ? "" : "es") << ")\n";
    for (std::size_t cls = 0; cls < classCount; cls++) {
        os << "  class " << cls << ":";
        const Observation *sample = nullptr;
        for (std::size_t i = 0; i < observations.size(); i++) {
            if (classOf[i] == cls) {
                os << " " << observations[i].impl;
                sample = &observations[i];
            }
        }
        if (sample) {
            std::string text = sample->normalizedOutput;
            if (text.size() > max_output_bytes) {
                text.resize(max_output_bytes);
                text += "...";
            }
            for (auto &c : text)
                if (c == '\n')
                    c = ' ';
            os << "\n    [" << sample->exitClass << "] \"" << text
               << "\"\n";
        }
    }
    if (obs::metricsEnabled()) {
        // Per-observation telemetry: the instruction count is the
        // deterministic stand-in for per-binary timing.
        os << "  telemetry (instructions per implementation):\n";
        for (const auto &obs_entry : observations) {
            os << "    " << obs_entry.impl << ": "
               << obs_entry.instructions
               << (obs_entry.timedOut ? " (timed out)" : "") << "\n";
        }
        os << "  budget rounds: " << (attempts > 0 ? attempts : 1)
           << (unresolvedTimeout ? " (timeout unresolved)" : "")
           << "\n";
    }
    return os.str();
}

DiffEngine::DiffEngine(const minic::Program &program,
                       DiffOptions options)
    : DiffEngine(program, paper10Implementations(),
                 std::move(options))
{
}

DiffEngine::DiffEngine(const minic::Program &program,
                       std::vector<compiler::CompilerConfig> configs,
                       DiffOptions options)
    : DiffEngine(program, implementationsFor(configs),
                 std::move(options))
{
}

DiffEngine::DiffEngine(const minic::Program &program,
                       ImplementationSet impls, DiffOptions options)
    : impls_(std::move(impls)), options_(std::move(options))
{
    compileAll(program);
    service_ = std::make_unique<ExecutionService>(
        impls_, artifacts_, options_.limits, options_.jobs);
}

DiffEngine::~DiffEngine() = default;

void
DiffEngine::compileAll(const minic::Program &program)
{
    obs::Span span("compdiff.compileAll");
    // One pretty-print fingerprints the program for the whole
    // k-implementation batch; each simulated compile is then a
    // cache lookup.
    CompileContext ctx;
    ctx.programHash = compiler::programFingerprint(program);
    ctx.traitsTweak = options_.traitsTweak;
    artifacts_.clear();
    artifacts_.reserve(impls_.size());
    for (const auto &impl : impls_)
        artifacts_.push_back(impl->compile(program, ctx));
}

void
DiffEngine::retarget(const minic::Program &program)
{
    obs::Span span("compdiff.retarget");
    compileAll(program);
    service_->rebindArtifacts(artifacts_);
}

DiffResult
DiffEngine::runInput(const Bytes &input, std::uint64_t nonce_base) const
{
    obs::Span run_span("compdiff.runInput");
    DiffResult result;
    result.observations.resize(impls_.size());
    result.attempts = 1;
    // The k executions of a round run on the engine's
    // ExecutionService (in parallel when options_.jobs > 1);
    // observations land in configuration order either way.
    service_->runRound(input, nonce_base,
                       options_.limits.maxInstructions,
                       options_.normalizer, result.observations);
    finishInput(result, input, nonce_base);
    return result;
}

std::vector<DiffResult>
DiffEngine::runBatch(const std::vector<Bytes> &inputs,
                     const std::vector<std::uint64_t> &nonce_bases) const
{
    obs::Span run_span("compdiff.runBatch");
    std::vector<DiffResult> results(inputs.size());
    if (inputs.empty())
        return results;

    // First round for the whole batch, implementation-major: each
    // resident executor (warm decoded module + arena) runs every
    // input back to back.
    std::vector<std::vector<Observation>> rounds;
    service_->runBatch(inputs, nonce_bases,
                       options_.limits.maxInstructions,
                       options_.normalizer, rounds);
    for (std::size_t b = 0; b < inputs.size(); b++) {
        results[b].attempts = 1;
        results[b].observations = std::move(rounds[b]);
        // RQ6 retries (rare) and classification complete per input.
        finishInput(results[b], inputs[b], nonce_bases[b]);
    }
    return results;
}

void
DiffEngine::finishInput(DiffResult &result, const Bytes &input,
                        std::uint64_t nonce_base) const
{
    // result.observations holds the first round; the loop below
    // continues the budget schedule exactly where a serial
    // runInput's round loop would be after its first iteration.
    std::uint64_t budget = options_.limits.maxInstructions;
    int attempts_left = (options_.retryTimeouts
                             ? options_.timeoutRetries + 1
                             : 1) -
                        1;

    while (true) {
        bool any_timeout = false;
        bool all_timeout = true;
        for (const Observation &obs : result.observations) {
            any_timeout |= obs.timedOut;
            all_timeout &= obs.timedOut;
        }
        if (!any_timeout || all_timeout) {
            result.unresolvedTimeout = false;
            break;
        }
        // Partial timeout: the truncated outputs are not comparable.
        // Raise the budget and try again (RQ6).
        result.unresolvedTimeout = true;
        budget *= options_.timeoutBudgetFactor;
        obs::counter("compdiff.timeout_retries").add();
        if (attempts_left-- <= 0)
            break;
        result.attempts++;
        service_->runRound(input, nonce_base, budget,
                           options_.normalizer, result.observations);
    }

    // Assign behavior classes.
    obs::Span compare_span("compdiff.compare");
    result.classOf.assign(impls_.size(), 0);
    std::vector<std::uint64_t> class_hash;
    for (std::size_t i = 0; i < result.observations.size(); i++) {
        const std::uint64_t h = result.observations[i].hash;
        std::size_t cls = class_hash.size();
        for (std::size_t c = 0; c < class_hash.size(); c++) {
            if (class_hash[c] == h) {
                cls = c;
                break;
            }
        }
        if (cls == class_hash.size())
            class_hash.push_back(h);
        result.classOf[i] = cls;
    }
    result.classCount = class_hash.size();
    result.divergent = !result.unresolvedTimeout &&
                       result.classCount > 1;

    if (obs::metricsEnabled()) {
        obs::counter("compdiff.runs").add();
        obs::counter("compdiff.impl_execs")
            .add(static_cast<std::uint64_t>(result.attempts) *
                 impls_.size());
        if (result.divergent)
            obs::counter("compdiff.divergent").add();
        if (result.unresolvedTimeout)
            obs::counter("compdiff.unresolved_timeouts").add();
        obs::histogram("compdiff.classes_per_run")
            .observe(result.classCount);
    }
}

std::optional<DiffResult>
DiffEngine::findDivergence(const std::vector<Bytes> &inputs) const
{
    std::uint64_t nonce = 0;
    for (const auto &input : inputs) {
        auto result = runInput(input, nonce++);
        if (result.divergent)
            return result;
    }
    return std::nullopt;
}

} // namespace compdiff::core
