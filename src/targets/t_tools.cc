/**
 * @file
 * Tool-style targets: arczip (archive tool), jsonq (JSON query
 * filter), floatpack (float-state compressor, brotli-like).
 */

#include "targets/build.hh"

namespace compdiff::targets::detail
{

TargetProgram
makeArczip()
{
    TargetProgram t;
    t.name = "arczip";
    t.inputType = "Compress tool";
    t.version = "1.8.0";
    t.source = R"SRC(
// arczip - toy archive extractor.
void entry_record() {
    int small = read_byte();
    int len = read_byte();
    if (small < 0 || len < 0) { return; }
    int offset = 2147483647 - small;
    // BUG(500) IntError: the wrap guard `offset + len < offset` is
    // the paper's Listing 1; optimizers fold it away.
    if (len > small) { probe(500); }
    if (offset + len < offset) {
        print_str("entry rejected");
    } else {
        print_str("entry spans ");
        print_int(len - small);
    }
    newline();
}

void index_record() {
    int c1 = read_byte();
    int c2 = read_byte();
    if (c1 < 0 || c2 < 0) { return; }
    int count = c1 * 1000;
    int blocksize = c2 * 1000;
    // BUG(501) IntError: 32-bit product feeding a 64-bit total;
    // widening implementations keep the full value.
    if ((long)count * (long)blocksize > 2147483647L) { probe(501); }
    long total = 1L + count * blocksize;
    print_str("index bytes ");
    print_long(total);
    newline();
}

void chunk_record() {
    int bits = read_byte();
    if (bits < 0) { return; }
    // BUG(502) IntError: shift count taken straight from the file.
    if (bits > 31) { probe(502); }
    int chunk = 1 << bits;
    print_str("chunk ");
    print_int(chunk);
    newline();
}

void backref_record() {
    char *win = malloc(64L);
    if (win == 0) { return; }
    for (int i = 0; i < 64; i += 1) {
        win[i] = (char)(32 + (i & 63));
    }
    int dist = read_byte();
    if (dist < 0) { free(win); return; }
    // BUG(503) MemError: distance 0 reads one past the window.
    if (dist <= 64) {
        if (dist == 0) { probe(503); }
        print_str("backref ");
        print_int(win[64 - dist]);
        newline();
    } else {
        print_str("backref too far");
        newline();
    }
    free(win);
}

void dict_record() {
    char *dict = malloc(48L);
    if (dict == 0) { return; }
    dict[0] = 'D';
    int reset = read_byte();
    if (reset < 0) { free(dict); return; }
    if (reset > 200) {
        // BUG(504) MemError: the reset path releases the dictionary
        // but keeps decoding with it.
        free(dict);
        probe(504);
        print_str("dict byte ");
        print_int(dict[0]);
        newline();
        return;
    }
    print_str("dict ok ");
    print_int(dict[0]);
    newline();
    free(dict);
}

int main() {
    if (read_byte() != 90) {
        print_str("arczip: bad archive");
        newline();
        return 1;
    }
    int members = 0;
    while (members < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        members += 1;
        if (tag == 1) { entry_record(); }
        else if (tag == 2) { index_record(); }
        else if (tag == 3) { chunk_record(); }
        else if (tag == 4) { backref_record(); }
        else if (tag == 5) { dict_record(); }
        else { print_str("?"); newline(); }
    }
    print_str("members ");
    print_int(members);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {90, 1, 20, 5, 2, 10, 10, 3, 8, 4, 4, 5, 9},
        {90, 1, 3, 200, 3, 40, 4, 0},
        {90, 2, 60, 60, 5, 250},
    };
    t.bugs = {
        {500, BugCategory::IntError,
         "archive-entry wrap guard folded away (Listing 1)", true,
         true, true},
        {501, BugCategory::IntError,
         "index size product widened inconsistently", true, true,
         true},
        {502, BugCategory::IntError,
         "chunk shift count taken from the file unchecked", true,
         true, false},
        {503, BugCategory::MemError,
         "zero back-reference distance reads past the window", true,
         true, true},
        {504, BugCategory::MemError,
         "dictionary reset path keeps using freed memory", true,
         true, true},
    };
    return t;
}

TargetProgram
makeJsonq()
{
    TargetProgram t;
    t.name = "jsonq";
    t.inputType = "json";
    t.version = "1.6";
    t.source = R"SRC(
// jsonq - toy JSON-ish field filter.
void number_record() {
    int len = read_byte();
    if (len < 0) { return; }
    int value;
    int digits = 0;
    for (int i = 0; i < len && i < 8; i += 1) {
        int c = read_byte();
        if (c < 0) { break; }
        if (c >= 48 && c <= 57) {
            if (digits == 0) { value = 0; }
            value = value * 10 + (c - 48);
            digits += 1;
        }
    }
    // BUG(1100) UninitMem: a field with no digits never initializes
    // value (the exiv2 `is >> l` shape, paper Listing 4).
    if (digits == 0) { probe(1100); }
    if (value < 0) { print_str("odd "); }
    print_str("num ");
    print_int(value);
    newline();
}

void bool_record() {
    int c = read_byte();
    int truth;
    if (c == 't') { truth = 1; }
    if (c == 'f') { truth = 0; }
    // BUG(1101) UninitMem: anything else leaves truth unset.
    if (c != 't' && c != 'f') { probe(1101); }
    if (truth < 0) { print_str("odd "); }
    print_str("bool ");
    print_int(truth);
    newline();
}

void pair_record() {
    int klen = read_byte();
    if (klen < 0) { return; }
    char key[8];
    int filled = 0;
    for (int i = 0; i < klen && i < 8; i += 1) {
        int c = read_byte();
        if (c < 0) { break; }
        key[i] = (char)c;
        filled += 1;
    }
    // BUG(1102) UninitMem: the separator byte after a short key is
    // read from uninitialized buffer tail.
    if (filled < 8) { probe(1102); }
    print_str("key tail ");
    print_int(key[7]);
    newline();
}

void slice_record() {
    char text[12];
    for (int i = 0; i < 12; i += 1) {
        text[i] = (char)(97 + i);
    }
    int from = read_byte();
    if (from < 0) { return; }
    // BUG(1103) MemError: the slice start admits index 12.
    if (from > 12) { from = 12; }
    if (from == 12) { probe(1103); }
    print_str("slice ");
    print_int(text[from]);
    newline();
}

void intern_record() {
    char *s = malloc(24L);
    if (s == 0) { return; }
    s[0] = 'k';
    int mode = read_byte();
    if (mode < 0) { free(s); return; }
    if (mode > 220) {
        // BUG(1104) MemError: interning frees through an interior
        // pointer.
        probe(1104);
        free(s + 8);
        print_str("interned");
        newline();
        return;
    }
    print_str("plain ");
    print_int(s[0]);
    newline();
    free(s);
}

void hash_record() {
    int which = read_byte();
    if (which < 0) { return; }
    if (which > 128) {
        // BUG(1105) Misc: "randomized" hash seed comes from an
        // uninitialized-allocation read (libtiff-style bad random).
        probe(1105);
        print_str("seed ");
        print_int(bad_rand());
        newline();
    } else {
        print_str("seed 0");
        newline();
    }
}

void shuffle_record() {
    int n = read_byte();
    if (n < 0) { return; }
    // BUG(1106) Misc: the shuffle "entropy" mixes bad_rand() into
    // the printed order.
    if (n > 100) {
        probe(1106);
        print_str("order ");
        print_int((bad_rand() + n) & 1023);
        newline();
    } else {
        print_str("order stable");
        newline();
    }
}

int main() {
    if (read_byte() != 74) {
        print_str("jsonq: parse error");
        newline();
        return 1;
    }
    int fields = 0;
    while (fields < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        fields += 1;
        if (tag == 1) { number_record(); }
        else if (tag == 2) { bool_record(); }
        else if (tag == 3) { pair_record(); }
        else if (tag == 4) { slice_record(); }
        else if (tag == 5) { intern_record(); }
        else if (tag == 6) { hash_record(); }
        else if (tag == 7) { shuffle_record(); }
        else { print_str("?"); newline(); }
    }
    print_str("fields ");
    print_int(fields);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {74, 1, 2, 49, 50, 2, 't', 3, 3, 'a', 'b', 'c', 4, 5},
        {74, 6, 30, 7, 20, 5, 10, 1, 0},
        {74, 2, 'x', 4, 20, 6, 200, 7, 150},
    };
    t.bugs = {
        {1100, BugCategory::UninitMem,
         "digit-free number field leaves value uninitialized "
         "(Listing 4)",
         true, true, false},
        {1101, BugCategory::UninitMem,
         "non-boolean byte leaves truth uninitialized", true, true,
         false},
        {1102, BugCategory::UninitMem,
         "short key prints uninitialized buffer tail", true, false,
         false},
        {1103, BugCategory::MemError,
         "slice start bound admits one-past-the-end", true, true,
         true},
        {1104, BugCategory::MemError,
         "interning frees an interior pointer", true, true, true},
        {1105, BugCategory::MiscOther,
         "hash seed read from uninitialized allocation", true, true,
         false},
        {1106, BugCategory::MiscOther,
         "shuffle order mixes undefined entropy", true, false,
         false},
    };
    return t;
}

TargetProgram
makeFloatpack()
{
    TargetProgram t;
    t.name = "floatpack";
    t.inputType = "Compress tool";
    t.version = "1.0.9";
    t.source = R"SRC(
// floatpack - toy compressor whose rate model uses libm, like
// brotli's float-driven internal state (paper RQ2).
void rate_record() {
    int q = read_byte();
    if (q < 0) { return; }
    // BUG(1000) FloatImprecision: pow() lowering differs in the
    // last ulps, and the full-precision rate is printed.
    probe(1000);
    double rate = pow_f(1.0 + (double)q / 7.0, 11.5);
    print_str("rate ");
    print_f(rate);
    newline();
}

void budget_record() {
    int q = read_byte();
    if (q < 0) { return; }
    // BUG(1001) FloatImprecision: the float state feeds an integer
    // decision, so imprecision changes the emitted plan.
    probe(1001);
    double cost = pow_f(2.1 + (double)q, 3.3);
    long plan = (long)(cost * 1000000.0);
    print_str("plan ");
    print_long(plan % 1000L);
    newline();
}

void blocksize_record() {
    int small = read_byte();
    int extra = read_byte();
    if (small < 0 || extra < 0) { return; }
    int base = 2147483647 - small;
    // BUG(1002) IntError: wrap guard on the block budget.
    if (extra > small) { probe(1002); }
    if (base + extra < base) {
        print_str("block clamped");
    } else {
        print_str("block ok");
    }
    newline();
}

void trace_record() {
    int level = read_byte();
    if (level < 0) { return; }
    char window[32];
    window[0] = (char)level;
    if (level > 6) {
        // BUG(1003) Misc: trace mode prints the window address.
        probe(1003);
        print_str("window at ");
        print_ptr(window);
        newline();
    } else {
        print_str("trace ");
        print_int(window[0]);
        newline();
    }
}

int main() {
    if (read_byte() != 70) {
        print_str("floatpack: bad stream");
        newline();
        return 1;
    }
    int blocks = 0;
    while (blocks < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        blocks += 1;
        if (tag == 1) { rate_record(); }
        else if (tag == 2) { budget_record(); }
        else if (tag == 3) { blocksize_record(); }
        else if (tag == 4) { trace_record(); }
        else { print_str("?"); newline(); }
    }
    print_str("blocks ");
    print_int(blocks);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {70, 1, 9, 2, 4, 3, 30, 5, 4, 2},
        {70, 3, 2, 100, 4, 9},
        {70, 2, 33, 1, 50},
    };
    t.bugs = {
        {1000, BugCategory::FloatImprecision,
         "printed rate differs in the last ulps across libm "
         "strategies",
         true, true, false},
        {1001, BugCategory::FloatImprecision,
         "float imprecision flips the integer plan decision", true,
         true, true},
        {1002, BugCategory::IntError,
         "block budget wrap guard folded away", true, true, false},
        {1003, BugCategory::MiscOther,
         "trace mode prints the window address", true, false, false},
    };
    return t;
}

} // namespace compdiff::targets::detail
