/**
 * @file
 * Network-packet targets: pktdump (tcpdump-like) and netshark
 * (wireshark-like, with per-run timestamps in its output).
 */

#include "targets/build.hh"

namespace compdiff::targets::detail
{

TargetProgram
makePktdump()
{
    TargetProgram t;
    t.name = "pktdump";
    t.inputType = "Network packet";
    t.version = "4.99.1";
    t.source = R"SRC(
// pktdump - toy packet dumper in the spirit of tcpdump.
// Formatters share static buffers, exactly like tcpdump's
// GET_LINKADDR_STRING (paper Listing 3).
char linkbuf[16];
char namebuf[16];

char *link_str(int addr) {
    linkbuf[0] = (char)(65 + (addr & 15));
    linkbuf[1] = (char)(97 + ((addr / 16) & 15));
    linkbuf[2] = 0;
    return linkbuf;
}

char *name_str(int id) {
    namebuf[0] = (char)(48 + (id & 7));
    namebuf[1] = (char)(48 + ((id / 8) & 7));
    namebuf[2] = 0;
    return namebuf;
}

void show_pair(char *who, char *tell) {
    print_str("who-is ");
    print_str(who);
    print_str(" tell ");
    print_str(tell);
    newline();
}

void show_route(char *from, char *dest) {
    print_str("route ");
    print_str(from);
    print_str(" -> ");
    print_str(dest);
    newline();
}

void arp_record() {
    int a = read_byte();
    int b = read_byte();
    if (a < 0 || b < 0) { return; }
    // BUG(100) EvalOrder: both arguments run through the shared
    // static buffer; the argument evaluation order decides which
    // address both columns show.
    probe(100);
    show_pair(link_str(a), link_str(b));
}

void route_record() {
    int a = read_byte();
    int b = read_byte();
    if (a < 0 || b < 0) { return; }
    // BUG(101) EvalOrder: second instance of the same pattern,
    // via the name formatter.
    probe(101);
    show_route(name_str(a), name_str(b));
}

void option_record() {
    int count = read_byte();
    int ttl;
    if (count > 0) {
        ttl = read_byte() & 255;
        for (int i = 1; i < count && i < 8; i += 1) {
            int skip = read_byte();
            if (skip < 0) { break; }
        }
    }
    // BUG(102) UninitMem: an empty option list leaves ttl unset.
    if (count <= 0) { probe(102); }
    if (ttl < 0) { print_str("bad "); }
    print_str("ttl=");
    print_int(ttl);
    newline();
}

void addr_record() {
    int hi = read_byte();
    int lo = read_byte();
    int port;
    if (lo >= 0) { port = hi * 256 + lo; }
    // BUG(103) UninitMem: a truncated record leaves port unset.
    if (lo < 0) { probe(103); }
    if (port < 0) { print_str("bad "); }
    print_str("port ");
    print_int(port);
    newline();
}

void label_record() {
    char label[8];
    for (int i = 0; i < 8; i += 1) {
        label[i] = (char)(65 + i);
    }
    int idx = read_byte();
    if (idx < 0) { return; }
    // BUG(104) MemError: off-by-one bound admits idx == 8.
    if (idx <= 8) {
        if (idx == 8) { probe(104); }
        print_str("label ");
        print_int(label[idx]);
        newline();
    } else {
        print_str("label out of range");
        newline();
    }
}

int main() {
    if (read_byte() != 80) {
        print_str("pktdump: not a capture");
        newline();
        return 1;
    }
    int packets = 0;
    while (packets < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        packets += 1;
        if (tag == 1) { arp_record(); }
        else if (tag == 2) { route_record(); }
        else if (tag == 3) { option_record(); }
        else if (tag == 4) { addr_record(); }
        else if (tag == 5) { label_record(); }
        else { print_str("?"); newline(); }
    }
    print_str("packets ");
    print_int(packets);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {80, 1, 17, 34, 2, 3, 4, 3, 2, 60, 9, 4, 1, 200, 5, 3},
        {80, 3, 1, 64, 4, 2, 48, 5, 7, 1, 5, 5},
        {80, 5, 2, 3, 0, 4, 1},
    };
    t.bugs = {
        {100, BugCategory::EvalOrder,
         "ARP who-is/tell columns share a static formatter buffer",
         true, true, false},
        {101, BugCategory::EvalOrder,
         "route columns share a static formatter buffer", true, true,
         false},
        {102, BugCategory::UninitMem,
         "empty option list leaves ttl uninitialized", true, true,
         false},
        {103, BugCategory::UninitMem,
         "truncated address record leaves port uninitialized", true,
         true, false},
        {104, BugCategory::MemError,
         "label index bound check is off by one", true, true, true},
    };
    return t;
}

TargetProgram
makeNetshark()
{
    TargetProgram t;
    t.name = "netshark";
    t.inputType = "Network packet";
    t.version = "3.4.5";
    t.nonDeterministicOutput = true;
    t.source = R"SRC(
// netshark - dissector that stamps warnings with a wall-clock
// value, like wireshark's Epan log lines (paper RQ5).
struct frame_hdr {
    char kind;
    int seq;
};

void frame_record() {
    int seq = read_byte();
    if (seq < 0) { return; }
    print_str("[ts:");
    print_long(time_stamp());
    print_str("] frame ");
    print_int(seq);
    newline();
}

void proto_record() {
    int proto = read_byte();
    char pname[8];
    if (proto == 6) { strcpy(pname, "tcp"); }
    if (proto == 17) { strcpy(pname, "udp"); }
    // BUG(200) UninitMem: unknown protocol numbers never fill the
    // name buffer, and its first byte is printed anyway.
    if (proto != 6 && proto != 17) { probe(200); }
    if (pname[0] < 0) { print_str("odd "); }
    print_str("proto ");
    print_int(pname[0]);
    newline();
}

void checksum_record() {
    int len = read_byte();
    int check;
    if (len >= 2) {
        int c1 = read_byte();
        int c2 = read_byte();
        if (c1 < 0 || c2 < 0) { return; }
        check = c1 * 256 + c2;
    }
    // BUG(201) UninitMem: short payloads skip the checksum read.
    if (len >= 0 && len < 2) { probe(201); }
    if (len < 0) { return; }
    if (check < 0) { print_str("bad "); }
    print_str("crc=");
    print_int(check);
    newline();
}

void rawdump_record() {
    struct frame_hdr h;
    int kind = read_byte();
    int seq = read_byte();
    if (kind < 0 || seq < 0) { return; }
    h.kind = (char)kind;
    h.seq = seq;
    // BUG(202) Misc: the raw dump walks sizeof(struct) bytes and
    // sums the padding between the fields, which holds whatever the
    // frame held before ("unknown reason" divergence).
    probe(202);
    char *raw = (char *)&h;
    int acc = 0;
    for (int i = 0; i < 8; i += 1) {
        acc += raw[i];
    }
    print_str("dumpsum=");
    print_int(acc);
    newline();
}

void warn_record() {
    int code = read_byte();
    if (code < 0) { return; }
    // BUG(203) LINE: the diagnostic line number is taken from a
    // statement that spans several lines; implementations disagree
    // on which line __LINE__ means here.
    int where = 0 +
                0 +
                cur_line();
    probe(203);
    print_str("[Epan WARNING] code ");
    print_int(code);
    print_str(" at ");
    print_int(where);
    newline();
}

int main() {
    if (read_byte() != 87) {
        print_str("netshark: bad capture");
        newline();
        return 1;
    }
    int frames = 0;
    while (frames < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        frames += 1;
        if (tag == 1) { frame_record(); }
        else if (tag == 2) { proto_record(); }
        else if (tag == 3) { checksum_record(); }
        else if (tag == 4) { rawdump_record(); }
        else if (tag == 5) { warn_record(); }
        else { print_str("."); }
    }
    newline();
    print_str("frames ");
    print_int(frames);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {87, 1, 9, 2, 6, 3, 4, 7, 7, 5, 3},
        {87, 2, 17, 3, 0, 4, 1, 2},
        {87, 5, 100, 1, 3},
    };
    t.bugs = {
        {200, BugCategory::UninitMem,
         "unknown protocol leaves name buffer uninitialized", true,
         true, false},
        {201, BugCategory::UninitMem,
         "short payload skips the checksum initialization", true,
         false, false},
        {202, BugCategory::MiscOther,
         "raw dump includes struct padding bytes", true, false,
         false},
        {203, BugCategory::Line,
         "warning line number differs across implementations", true,
         true, false},
    };
    return t;
}

} // namespace compdiff::targets::detail
