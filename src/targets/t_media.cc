/**
 * @file
 * Multimedia targets: sndconv (audio), imgmeta (exiv2-like metadata
 * reader), pixmagick (image transformer), vidmux (video muxer).
 */

#include "targets/build.hh"

namespace compdiff::targets::detail
{

TargetProgram
makeSndconv()
{
    TargetProgram t;
    t.name = "sndconv";
    t.inputType = "Audio";
    t.version = "1.0.31";
    t.source = R"SRC(
// sndconv - toy audio metadata converter.
void rate_chunk() {
    int present = read_byte();
    int rate;
    if (present == 1) {
        rate = read_byte() * 256;
        if (rate < 0) { return; }
    }
    // BUG(600) UninitMem: optional rate field left unset.
    if (present != 1) { probe(600); }
    if (rate < 0) { print_str("odd "); }
    print_str("rate ");
    print_int(rate);
    newline();
}

void chanmap_chunk() {
    int chans = read_byte();
    if (chans < 0) { return; }
    char map[8];
    int n = chans & 7;
    for (int i = 0; i < n; i += 1) {
        map[i] = (char)(48 + i);
    }
    // BUG(601) UninitMem: the map is consumed for all 8 slots even
    // when fewer channels were initialized.
    if (n < 8) { probe(601); }
    int acc = 0;
    for (int j = 0; j < 8; j += 1) {
        acc += map[j];
    }
    if (acc < 0) { print_str("odd "); }
    print_str("chansum ");
    print_int(acc);
    newline();
}

void gain_chunk() {
    int marker = read_byte();
    int gain;
    if (marker == 71) { gain = read_byte(); }
    // BUG(602) UninitMem: missing gain marker.
    if (marker != 71) { probe(602); }
    if (gain < 0) { print_str("odd "); }
    print_str("gain ");
    print_int(gain);
    newline();
}

void cue_chunk() {
    int count = read_byte();
    long cue;
    if (count > 0) { cue = (long)read_byte() * 1000L; }
    // BUG(603) UninitMem: empty cue list.
    if (count <= 0) { probe(603); }
    if (cue < 0L) { print_str("odd "); }
    print_str("cue ");
    print_long(cue);
    newline();
}

void sample_chunk() {
    char frame[16];
    for (int i = 0; i < 16; i += 1) {
        frame[i] = (char)(i * 3);
    }
    int n = read_byte();
    if (n < 0) { return; }
    // BUG(604) MemError: the smoothing window reads frame[n+1]
    // with n allowed to reach 15.
    if (n > 15) { n = 15; }
    if (n == 15) { probe(604); }
    print_str("smooth ");
    print_int(frame[n] + frame[n + 1]);
    newline();
}

void resample_chunk() {
    char *buf = malloc(32L);
    if (buf == 0) { return; }
    for (int i = 0; i < 32; i += 1) { buf[i] = (char)i; }
    int stride = read_byte();
    if (stride < 1) { free(buf); return; }
    // BUG(605) MemError: the last tap of the filter reads one
    // stride past the buffer for stride > 16.
    if (stride > 16) { probe(605); }
    if (stride <= 31) {
        print_str("tap ");
        print_int(buf[stride * 2 - 1]);
        newline();
    } else {
        print_str("stride too big");
        newline();
    }
    free(buf);
}

int main() {
    if (read_byte() != 83) {
        print_str("sndconv: bad header");
        newline();
        return 1;
    }
    int chunks = 0;
    while (chunks < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        chunks += 1;
        if (tag == 1) { rate_chunk(); }
        else if (tag == 2) { chanmap_chunk(); }
        else if (tag == 3) { gain_chunk(); }
        else if (tag == 4) { cue_chunk(); }
        else if (tag == 5) { sample_chunk(); }
        else if (tag == 6) { resample_chunk(); }
        else { print_str("?"); newline(); }
    }
    print_str("chunks ");
    print_int(chunks);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {83, 1, 1, 100, 2, 3, 3, 71, 9, 4, 2, 8, 5, 4, 6, 8},
        {83, 1, 0, 3, 0, 4, 0, 2, 8},
        {83, 5, 15, 6, 20},
    };
    t.bugs = {
        {600, BugCategory::UninitMem,
         "optional sample-rate field left unset", true, true, true},
        {601, BugCategory::UninitMem,
         "channel map consumed beyond initialized slots", true, true,
         false},
        {602, BugCategory::UninitMem,
         "missing gain marker leaves gain unset", true, true, false},
        {603, BugCategory::UninitMem,
         "empty cue list leaves cue offset unset", true, false,
         false},
        {604, BugCategory::MemError,
         "smoothing window reads frame[16]", true, true, true},
        {605, BugCategory::MemError,
         "resample tap reads past the buffer for large strides",
         true, true, true},
    };
    return t;
}

TargetProgram
makeImgmeta()
{
    TargetProgram t;
    t.name = "imgmeta";
    t.inputType = "Exiv2 image";
    t.version = "0.27.5";
    t.source = R"SRC(
// imgmeta - toy EXIF-style metadata printer. Six numeric fields
// share the Listing 4 flaw: an empty ASCII field never overwrites
// the uninitialized accumulator.
int parse_digits(int len, int *got) {
    int value;
    int digits = 0;
    for (int i = 0; i < len && i < 6; i += 1) {
        int c = read_byte();
        if (c < 0) { break; }
        if (c >= 48 && c <= 57) {
            if (digits == 0) { value = 0; }
            value = value * 10 + (c - 48);
            digits += 1;
        }
    }
    *got = digits;
    return value;
}

void exposure_field() {
    int len = read_byte();
    if (len < 0) { return; }
    int got = 0;
    int v = parse_digits(len, &got);
    // BUG(700) UninitMem.
    if (got == 0) { probe(700); }
    if (v < 0) { print_str("raw "); }
    print_str("exposure ");
    print_int((v / 77) & 65535);
    newline();
}

void iso_field() {
    int len = read_byte();
    if (len < 0) { return; }
    int got = 0;
    int v = parse_digits(len, &got);
    // BUG(701) UninitMem.
    if (got == 0) { probe(701); }
    if (v < 0) { print_str("raw "); }
    print_str("iso ");
    print_int(v & 16383);
    newline();
}

void fnumber_field() {
    int len = read_byte();
    if (len < 0) { return; }
    int got = 0;
    int v = parse_digits(len, &got);
    // BUG(702) UninitMem.
    if (got == 0) { probe(702); }
    if (v < 0) { print_str("raw "); }
    print_str("f/");
    print_int(v % 97);
    newline();
}

void date_field() {
    int len = read_byte();
    if (len < 0) { return; }
    int got = 0;
    int v = parse_digits(len, &got);
    // BUG(703) UninitMem.
    if (got == 0) { probe(703); }
    if (v < 0) { print_str("raw "); }
    print_str("year ");
    print_int(1900 + (v & 255));
    newline();
}

void gps_field() {
    int len = read_byte();
    if (len < 0) { return; }
    int got = 0;
    int v = parse_digits(len, &got);
    // BUG(704) UninitMem.
    if (got == 0) { probe(704); }
    if (v < 0) { print_str("raw "); }
    print_str("lat ");
    print_int(v % 181);
    newline();
}

void maker_field() {
    int len = read_byte();
    if (len < 0) { return; }
    int got = 0;
    int v = parse_digits(len, &got);
    // BUG(705) UninitMem: the maker note is printed in hex halves,
    // like CanonMakerNote::print0x000c (paper Listing 4).
    if (got == 0) { probe(705); }
    if (v < 0) { print_str("raw "); }
    print_str("serial ");
    print_hex((ulong)((uint)v / 65536U));
    newline();
}

void thumb_field() {
    char thumb[16];
    for (int i = 0; i < 16; i += 1) { thumb[i] = (char)(i + 1); }
    int off = read_byte();
    if (off < 0) { return; }
    // BUG(706) MemError: offset check allows 16.
    if (off > 16) { off = 16; }
    if (off == 16) { probe(706); }
    print_str("thumb ");
    print_int(thumb[off]);
    newline();
}

void strip_field() {
    char *strip = malloc(20L);
    if (strip == 0) { return; }
    for (int i = 0; i < 20; i += 1) { strip[i] = (char)(64 + i); }
    int n = read_byte();
    if (n < 0) { free(strip); return; }
    // BUG(707) MemError: the strip checksum walks n+2 entries.
    if (n > 20) { n = 20; }
    if (n > 17) { probe(707); }
    int acc = 0;
    for (int j = 0; j < n + 2; j += 1) {
        acc += strip[j];
    }
    print_str("stripsum ");
    print_int(acc);
    newline();
    free(strip);
}

int main() {
    if (read_byte() != 73) {
        print_str("imgmeta: no exif");
        newline();
        return 1;
    }
    int fields = 0;
    while (fields < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        fields += 1;
        if (tag == 1) { exposure_field(); }
        else if (tag == 2) { iso_field(); }
        else if (tag == 3) { fnumber_field(); }
        else if (tag == 4) { date_field(); }
        else if (tag == 5) { gps_field(); }
        else if (tag == 6) { maker_field(); }
        else if (tag == 7) { thumb_field(); }
        else if (tag == 8) { strip_field(); }
        else { print_str("?"); newline(); }
    }
    print_str("fields ");
    print_int(fields);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {73, 1, 2, 49, 50, 2, 3, 49, 48, 48, 3, 1, 56, 4, 4, 50, 48,
         50, 50},
        {73, 5, 2, 52, 53, 6, 3, 49, 50, 51, 7, 5, 8, 10},
        {73, 1, 0, 2, 0, 6, 1, 65, 8, 21},
    };
    t.bugs = {
        {700, BugCategory::UninitMem,
         "empty exposure field leaves value unset", true, true,
         true},
        {701, BugCategory::UninitMem,
         "empty ISO field leaves value unset", true, true, true},
        {702, BugCategory::UninitMem,
         "empty f-number field leaves value unset", true, true,
         false},
        {703, BugCategory::UninitMem,
         "empty date field leaves value unset", true, false, false},
        {704, BugCategory::UninitMem,
         "empty GPS field leaves value unset", true, false, false},
        {705, BugCategory::UninitMem,
         "empty maker note printed in hex (Listing 4)", true, true,
         true},
        {706, BugCategory::MemError,
         "thumbnail offset check allows one-past-the-end", true,
         true, true},
        {707, BugCategory::MemError,
         "strip checksum walks two entries past the data", true,
         true, true},
    };
    return t;
}

TargetProgram
makePixmagick()
{
    TargetProgram t;
    t.name = "pixmagick";
    t.inputType = "Image";
    t.version = "7.1.0-23";
    t.source = R"SRC(
// pixmagick - toy image transformer.
void resize_op() {
    int w = read_byte();
    if (w < 0) { return; }
    // BUG(800) LINE: the assertion message takes its line from a
    // statement spanning several lines.
    int mark = w +
               0 +
               cur_line();
    probe(800);
    print_str("resize assert ");
    print_int(mark);
    newline();
}

void annotate_op() {
    int code = read_byte();
    if (code < 0) { return; }
    // BUG(801) LINE: second multi-line diagnostic site.
    int where = 0 +
                code +
                0 +
                cur_line();
    probe(801);
    print_str("annotate at ");
    print_int(where);
    newline();
}

void palette_op() {
    int entries = read_byte();
    if (entries < 0) { return; }
    int background;
    if (entries > 0) { background = read_byte() & 255; }
    // BUG(802) UninitMem: empty palettes leave the background unset.
    if (entries == 0) { probe(802); }
    if (background < 0) { print_str("odd "); }
    print_str("bg ");
    print_int(background);
    newline();
}

void gamma_op() {
    int marker = read_byte();
    int gamma;
    if (marker == 42) { gamma = read_byte(); }
    // BUG(803) UninitMem: missing gamma marker.
    if (marker != 42) { probe(803); }
    if (gamma < 0) { print_str("odd "); }
    print_str("gamma ");
    print_int(gamma);
    newline();
}

void comment_op() {
    int len = read_byte();
    if (len < 0) { return; }
    char text[8];
    int filled = 0;
    for (int i = 0; i < len && i < 8; i += 1) {
        int c = read_byte();
        if (c < 0) { break; }
        text[i] = (char)c;
        filled += 1;
    }
    // BUG(804) UninitMem: the comment trailer prints text[7] even
    // for short comments.
    if (filled < 8) { probe(804); }
    print_str("comment end ");
    print_int(text[7]);
    newline();
}

void crop_op() {
    char row[16];
    for (int i = 0; i < 16; i += 1) { row[i] = (char)(i * 5); }
    int x = read_byte();
    if (x < 0) { return; }
    // BUG(805) MemError: crop origin check allows x == 16.
    if (x > 16) { x = 16; }
    if (x == 16) { probe(805); }
    print_str("crop ");
    print_int(row[x]);
    newline();
}

int main() {
    if (read_byte() != 77) {
        print_str("pixmagick: bad image");
        newline();
        return 1;
    }
    int ops = 0;
    while (ops < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        ops += 1;
        if (tag == 1) { resize_op(); }
        else if (tag == 2) { annotate_op(); }
        else if (tag == 3) { palette_op(); }
        else if (tag == 4) { gamma_op(); }
        else if (tag == 5) { comment_op(); }
        else if (tag == 6) { crop_op(); }
        else { print_str("?"); newline(); }
    }
    print_str("ops ");
    print_int(ops);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {77, 3, 2, 9, 4, 42, 8, 5, 3, 97, 98, 99, 6, 4},
        {77, 1, 5, 2, 7, 3, 0},
        {77, 4, 1, 5, 9, 120, 6, 15},
    };
    t.bugs = {
        {800, BugCategory::Line,
         "resize assertion line is implementation-defined", true,
         true, false},
        {801, BugCategory::Line,
         "annotate diagnostic line is implementation-defined", true,
         true, false},
        {802, BugCategory::UninitMem,
         "empty palette leaves background unset", true, true, true},
        {803, BugCategory::UninitMem,
         "missing gamma marker leaves gamma unset", true, false,
         false},
        {804, BugCategory::UninitMem,
         "short comment prints uninitialized trailer", true, true,
         false},
        {805, BugCategory::MemError,
         "crop origin bound admits one-past-the-end", true, true,
         true},
    };
    return t;
}

TargetProgram
makeVidmux()
{
    TargetProgram t;
    t.name = "vidmux";
    t.inputType = "Video";
    t.version = "2.0.0";
    t.source = R"SRC(
// vidmux - toy container muxer.
void fps_box() {
    int num = read_byte();
    if (num < 0) { return; }
    // BUG(1300) FloatImprecision: frame pacing uses pow().
    probe(1300);
    double pace = pow_f(1.001, (double)(num + 2));
    print_str("pace ");
    print_f(pace);
    newline();
}

void bitrate_box() {
    int q = read_byte();
    if (q < 0) { return; }
    // BUG(1301) FloatImprecision: the rounded kbps decision flips
    // with the libm strategy.
    probe(1301);
    double kbps = pow_f(3.7, 1.0 + (double)q / 11.0);
    print_str("kbps ");
    print_long((long)(kbps * 100000.0) % 100L);
    newline();
}

void index_box() {
    int n = read_byte();
    if (n < 0) { return; }
    char table[24];
    table[0] = (char)n;
    if (n > 7) {
        // BUG(1302) Misc: verbose index prints the table address.
        probe(1302);
        print_str("index at ");
        print_ptr(table);
        newline();
    } else {
        print_str("index ");
        print_int(table[0]);
        newline();
    }
}

void track_box() {
    int id = read_byte();
    if (id < 0) { return; }
    if (id > 9) {
        // BUG(1303) Misc: the track handle column is an address.
        probe(1303);
        print_str("track handle ");
        print_ptr("trk");
        newline();
    } else {
        print_str("track ");
        print_int(id);
        newline();
    }
}

void jitter_box() {
    int mode = read_byte();
    if (mode < 0) { return; }
    if (mode > 50) {
        // BUG(1304) Misc: jitter compensation seeds from undefined
        // memory.
        probe(1304);
        print_str("jitter ");
        print_int(bad_rand() & 255);
        newline();
    } else {
        print_str("jitter 0");
        newline();
    }
}

int main() {
    if (read_byte() != 86) {
        print_str("vidmux: bad container");
        newline();
        return 1;
    }
    int boxes = 0;
    while (boxes < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        boxes += 1;
        if (tag == 1) { fps_box(); }
        else if (tag == 2) { bitrate_box(); }
        else if (tag == 3) { index_box(); }
        else if (tag == 4) { track_box(); }
        else if (tag == 5) { jitter_box(); }
        else { print_str("?"); newline(); }
    }
    print_str("boxes ");
    print_int(boxes);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {86, 1, 24, 2, 5, 3, 2, 4, 3, 5, 10},
        {86, 3, 20, 4, 30, 5, 90},
        {86, 2, 40, 1, 200},
    };
    t.bugs = {
        {1300, BugCategory::FloatImprecision,
         "frame pacing printed at full float precision", true, true,
         false},
        {1301, BugCategory::FloatImprecision,
         "bitrate decision flips with libm strategy", true, false,
         false},
        {1302, BugCategory::MiscOther,
         "verbose index prints the table address", true, false,
         false},
        {1303, BugCategory::MiscOther,
         "track handle column prints an address", true, false,
         false},
        {1304, BugCategory::MiscOther,
         "jitter compensation seeds from undefined memory", true,
         true, false},
    };
    return t;
}

} // namespace compdiff::targets::detail
