/**
 * @file
 * Binary-file targets: elfread (readelf-like) and objview
 * (objdump-like).
 */

#include "targets/build.hh"

namespace compdiff::targets::detail
{

TargetProgram
makeElfread()
{
    TargetProgram t;
    t.name = "elfread";
    t.inputType = "Binary file";
    t.version = "2.36.1";
    t.source = R"SRC(
// elfread - toy object-file information dumper.
char sections[32];
char symbols[48];

void scan_record() {
    int which = read_byte();
    if (which < 0) { return; }
    char *saved_start = &sections[0];
    char *look_for = &sections[0];
    if (which > 100) { look_for = &symbols[0]; }
    // BUG(300) PointerCmp: when the cursor moves to the symbol
    // table, the relational comparison spans two distinct objects
    // (paper Listing 2) and its result is layout-dependent.
    if (which > 100) { probe(300); }
    if (look_for <= saved_start) {
        print_str("scan backward");
    } else {
        print_str("scan forward");
    }
    newline();
}

void diag_record() {
    int code = read_byte();
    if (code < 0) { return; }
    // BUG(301) LINE: multi-line diagnostic statement.
    int mark = code +
               0 +
               cur_line();
    probe(301);
    print_str("readelf: warning ");
    print_int(mark);
    newline();
}

void class_record() {
    int klass = read_byte();
    long entry;
    if (klass == 1) { entry = 65536L; }
    if (klass == 2) { entry = 4294967296L; }
    // BUG(302) UninitMem: unknown ELF class leaves the entry-point
    // base unset.
    if (klass != 1 && klass != 2) { probe(302); }
    if (entry < 0L) { print_str("odd "); }
    print_str("entry base ");
    print_long(entry);
    newline();
}

void version_record() {
    int len = read_byte();
    int major;
    int minor = 0;
    if (len >= 1) {
        major = read_byte();
        if (major < 0) { return; }
    }
    if (len >= 2) {
        minor = read_byte();
        if (minor < 0) { return; }
    }
    // BUG(303) UninitMem: a zero-length version blob leaves major
    // unset.
    if (len == 0) { probe(303); }
    if (len < 0) { return; }
    if (major < 0) { print_str("odd "); }
    print_str("version ");
    print_int(major);
    print_str(".");
    print_int(minor);
    newline();
}

void strtab_record() {
    char strtab[16];
    for (int i = 0; i < 16; i += 1) {
        strtab[i] = (char)(97 + (i & 7));
    }
    int off = read_byte();
    if (off < 0) { return; }
    // BUG(304) MemError: the offset is narrowed to a signed char, so
    // bytes above 127 index *before* the table.
    char noff = (char)off;
    if (noff > 15) {
        print_str("name offset out of range");
        newline();
        return;
    }
    if (off > 127) { probe(304); }
    print_str("name byte ");
    print_int(strtab[noff]);
    newline();
}

int main() {
    if (read_byte() != 69) {
        print_str("elfread: not an object file");
        newline();
        return 1;
    }
    int records = 0;
    while (records < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        records += 1;
        if (tag == 1) { scan_record(); }
        else if (tag == 2) { diag_record(); }
        else if (tag == 3) { class_record(); }
        else if (tag == 4) { version_record(); }
        else if (tag == 5) { strtab_record(); }
        else { print_str("?"); newline(); }
    }
    print_str("records ");
    print_int(records);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {69, 1, 50, 2, 9, 3, 1, 4, 2, 7, 7, 5, 12},
        {69, 3, 2, 5, 120, 1, 99},
        {69, 4, 0, 2, 1},
    };
    t.bugs = {
        {300, BugCategory::PointerCmp,
         "relational comparison between section and symbol tables",
         true, true, false},
        {301, BugCategory::Line,
         "diagnostic line spans multiple source lines", true, true,
         false},
        {302, BugCategory::UninitMem,
         "unknown ELF class leaves entry base uninitialized", true,
         true, false},
        {303, BugCategory::UninitMem,
         "zero-length version blob leaves major uninitialized", true,
         true, false},
        {304, BugCategory::MemError,
         "string-table offset narrowed to signed char", true, true,
         true},
    };
    return t;
}

TargetProgram
makeObjview()
{
    TargetProgram t;
    t.name = "objview";
    t.inputType = "Binary file";
    t.version = "2.36.1";
    t.source = R"SRC(
// objview - toy disassembler front-end.
char symtab[24];

void debug_record() {
    int level = read_byte();
    if (level < 0) { return; }
    char scratch[16];
    scratch[0] = (char)level;
    // BUG(400) Misc: debug output prints the buffer *address*
    // instead of its contents (the objdump %p mixup).
    if (level > 4) {
        probe(400);
        print_str("buf at ");
        print_ptr(scratch);
        newline();
    } else {
        print_str("buf[0]=");
        print_int(scratch[0]);
        newline();
    }
}

void symaddr_record() {
    int idx = read_byte();
    if (idx < 0) { return; }
    symtab[idx & 15] = 'S';
    // BUG(401) Misc: the "symbol value" column leaks the in-memory
    // table address.
    probe(401);
    print_str("sym value ");
    print_ptr(symtab);
    newline();
}

void copy_record() {
    char insn[16];
    int sentinel = 31337;
    int n = read_byte();
    if (n < 0) { return; }
    // BUG(402) MemError: the bound admits n == 17 (<= instead of <).
    if (n > 17) { n = 17; }
    for (int i = 0; i < n; i += 1) {
        int b = read_byte();
        if (b < 0) { break; }
        if (i == 16) { probe(402); }
        insn[i] = (char)b;
    }
    print_str("opcode ");
    print_int(insn[0]);
    print_str(" guard ");
    print_int(sentinel);
    newline();
}

void section_record() {
    char *sec = malloc(32L);
    if (sec == 0) { return; }
    sec[0] = 'T';
    int flags = read_byte();
    if (flags < 0) { free(sec); return; }
    if (flags > 240) {
        // Error path releases the buffer...
        free(sec);
        probe(403);
    }
    print_str("section ");
    print_int(sec[0]);
    newline();
    // BUG(403) MemError: ...and the common cleanup frees it again.
    free(sec);
}

int main() {
    if (read_byte() != 79) {
        print_str("objview: unrecognized format");
        newline();
        return 1;
    }
    int entries = 0;
    while (entries < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        entries += 1;
        if (tag == 1) { debug_record(); }
        else if (tag == 2) { symaddr_record(); }
        else if (tag == 3) { copy_record(); }
        else if (tag == 4) { section_record(); }
        else { print_str("?"); newline(); }
    }
    print_str("entries ");
    print_int(entries);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {79, 1, 2, 3, 4, 10, 20, 30, 40, 4, 9},
        {79, 1, 9, 4, 100, 3, 2, 5, 6},
        {79, 2, 7, 4, 99},
    };
    t.bugs = {
        {400, BugCategory::MiscOther,
         "verbose mode prints buffer address instead of contents",
         true, true, false},
        {401, BugCategory::MiscOther,
         "symbol column leaks the table address", true, false,
         false},
        {402, BugCategory::MemError,
         "instruction copy bound admits 17 bytes into insn[16]",
         true, true, true},
        {403, BugCategory::MemError,
         "error path double-frees the section buffer", true, true,
         true},
    };
    return t;
}

} // namespace compdiff::targets::detail
