#pragma once

/**
 * @file
 * Real-world-style target programs (paper Section 4.3, Table 4).
 *
 * The paper fuzzes 23 open-source projects; this repository ships a
 * representative set of thirteen MiniC targets covering the same
 * input-format families (network packets, binary files, multimedia,
 * language implementations, compression, JSON/XML-style data). Each
 * target is a record-oriented parser/processor with *planted bugs*
 * whose categories and counts reproduce Table 5 exactly:
 *
 *   EvalOrder 2, UninitMem 27, IntError 8, MemError 13,
 *   PointerCmp 1, LINE 6, Misc 21 (3 compiler bugs, 4 floating-
 *   point imprecision, 14 other) — 78 bugs in total.
 *
 * Every bug site fires a `probe(id)` ground-truth marker exactly on
 * the path where the flaw manifests, which is what the campaign
 * harness uses to triage fuzzer-found divergences back to planted
 * bugs (replacing the paper's manual triage + developer feedback).
 * The confirmed/fixed flags model the developer responses reported
 * in Table 5.
 */

#include <string>
#include <vector>

#include "support/bytes.hh"

namespace compdiff::targets
{

/** Root-cause category (Table 5 columns). */
enum class BugCategory
{
    EvalOrder,
    UninitMem,
    IntError,
    MemError,
    PointerCmp,
    Line,
    CompilerBug,      ///< part of the Misc column (RQ2)
    FloatImprecision, ///< part of the Misc column (RQ2)
    MiscOther,        ///< part of the Misc column
};

/** Table 5 column for a category ("EvalOrder", ..., "Misc."). */
const char *categoryColumn(BugCategory category);

/** One planted bug. */
struct PlantedBug
{
    int probeId = 0;
    BugCategory category = BugCategory::UninitMem;
    std::string description;
    bool confirmed = false; ///< simulated developer response
    bool fixed = false;
    /** Expected to also be caught by a sanitizer (Table 6 prior). */
    bool sanitizerExpected = false;
};

/** One fuzz target. */
struct TargetProgram
{
    std::string name;
    std::string inputType; ///< Table 4 "Input type"
    std::string version;   ///< Table 4 "Version"
    std::string source;    ///< MiniC source
    std::vector<support::Bytes> seeds;
    std::vector<PlantedBug> bugs;
    /** Output embeds per-run values needing normalization (RQ5). */
    bool nonDeterministicOutput = false;

    /** Lines of MiniC code (Table 4 "Size"). */
    std::size_t linesOfCode() const;

    const PlantedBug *findBug(int probe_id) const;
};

/** All targets, in presentation order. */
const std::vector<TargetProgram> &allTargets();

/** Find a target by name; nullptr when absent. */
const TargetProgram *findTarget(const std::string &name);

/** Sum of planted bugs per Table 5 column across all targets. */
std::size_t totalPlantedBugs();

} // namespace compdiff::targets
