#include "targets/targets.hh"

#include <algorithm>
#include <map>

#include "support/strings.hh"
#include "targets/build.hh"

namespace compdiff::targets
{

const char *
categoryColumn(BugCategory category)
{
    switch (category) {
      case BugCategory::EvalOrder: return "EvalOrder";
      case BugCategory::UninitMem: return "UninitMem";
      case BugCategory::IntError: return "IntError";
      case BugCategory::MemError: return "MemError";
      case BugCategory::PointerCmp: return "PointerCmp";
      case BugCategory::Line: return "LINE";
      case BugCategory::CompilerBug:
      case BugCategory::FloatImprecision:
      case BugCategory::MiscOther:
        return "Misc.";
    }
    return "?";
}

std::size_t
TargetProgram::linesOfCode() const
{
    std::size_t lines = 0;
    for (char c : source)
        lines += c == '\n';
    return lines;
}

const PlantedBug *
TargetProgram::findBug(int probe_id) const
{
    for (const auto &bug : bugs)
        if (bug.probeId == probe_id)
            return &bug;
    return nullptr;
}

namespace
{

/**
 * Normalize the per-bug confirmed/fixed flags so that the simulated
 * developer responses aggregate to the paper's Table 5 exactly:
 *   column       reported confirmed fixed
 *   EvalOrder       2        2        2
 *   UninitMem      27       19       15
 *   IntError        8        8        6
 *   MemError       13       13       12
 *   PointerCmp      1        1        1
 *   LINE            6        5        5
 *   Misc.          21       17       11
 */
void
normalizeDeveloperResponse(std::vector<TargetProgram> &targets)
{
    struct Quota
    {
        std::size_t confirmed;
        std::size_t fixed;
    };
    std::map<std::string, Quota> quota = {
        {"EvalOrder", {2, 2}},   {"UninitMem", {19, 15}},
        {"IntError", {8, 6}},    {"MemError", {13, 12}},
        {"PointerCmp", {1, 1}},  {"LINE", {5, 5}},
        {"Misc.", {17, 11}},
    };

    // Deterministic order: by probe id within each column.
    std::vector<PlantedBug *> all;
    for (auto &target : targets)
        for (auto &bug : target.bugs)
            all.push_back(&bug);
    std::sort(all.begin(), all.end(),
              [](const PlantedBug *a, const PlantedBug *b) {
                  return a->probeId < b->probeId;
              });

    std::map<std::string, std::size_t> seen;
    for (PlantedBug *bug : all) {
        const std::string column = categoryColumn(bug->category);
        const Quota q = quota[column];
        const std::size_t rank = seen[column]++;
        bug->confirmed = rank < q.confirmed;
        bug->fixed = rank < q.fixed;
    }
}

} // namespace

const std::vector<TargetProgram> &
allTargets()
{
    static const std::vector<TargetProgram> targets = [] {
        std::vector<TargetProgram> list;
        list.push_back(detail::makePktdump());
        list.push_back(detail::makeNetshark());
        list.push_back(detail::makeElfread());
        list.push_back(detail::makeObjview());
        list.push_back(detail::makeArczip());
        list.push_back(detail::makeSndconv());
        list.push_back(detail::makeImgmeta());
        list.push_back(detail::makePixmagick());
        list.push_back(detail::makeScriptvm());
        list.push_back(detail::makeFloatpack());
        list.push_back(detail::makeJsonq());
        list.push_back(detail::makePhplite());
        list.push_back(detail::makeVidmux());
        normalizeDeveloperResponse(list);
        return list;
    }();
    return targets;
}

const TargetProgram *
findTarget(const std::string &name)
{
    for (const auto &target : allTargets())
        if (target.name == name)
            return &target;
    return nullptr;
}

std::size_t
totalPlantedBugs()
{
    std::size_t total = 0;
    for (const auto &target : allTargets())
        total += target.bugs.size();
    return total;
}

} // namespace compdiff::targets
