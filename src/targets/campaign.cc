#include "targets/campaign.hh"

#include <algorithm>

#include "compiler/compiler.hh"
#include "minic/parser.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sanitizers/sanitizers.hh"
#include "session/session.hh"
#include "support/logging.hh"

namespace compdiff::targets
{

namespace
{

/**
 * AFL-tmin-style witness reduction: shrink the input while it still
 * fires the bug's probe and still diverges. This is the automatic
 * counterpart of the paper's manual triage — without it, a witness
 * carrying several records would attribute *other* records' sanitizer
 * reports to this bug (Table 6 would be contaminated).
 */
support::Bytes
minimizeWitness(const core::DiffEngine &engine, vm::Vm &probe_vm,
                const support::Bytes &input, int probe)
{
    auto still_good = [&](const support::Bytes &candidate) {
        auto run = probe_vm.run(candidate);
        if (std::find(run.probes.begin(), run.probes.end(), probe) ==
            run.probes.end()) {
            return false;
        }
        return engine.runInput(candidate).divergent;
    };

    support::Bytes current = input;
    bool changed = true;
    for (int round = 0; round < 4 && changed; round++) {
        changed = false;
        for (std::size_t chunk = std::max<std::size_t>(
                 current.size() / 2, 1);
             chunk >= 1; chunk /= 2) {
            for (std::size_t pos = 0;
                 pos + chunk <= current.size();) {
                support::Bytes candidate = current;
                candidate.erase(
                    candidate.begin() +
                        static_cast<std::ptrdiff_t>(pos),
                    candidate.begin() +
                        static_cast<std::ptrdiff_t>(pos + chunk));
                if (still_good(candidate)) {
                    current = std::move(candidate);
                    changed = true;
                } else {
                    pos += chunk;
                }
            }
            if (chunk == 1)
                break;
        }
    }
    return current;
}

} // namespace

bool
CampaignResult::foundProbe(int probe_id) const
{
    for (const auto &finding : found)
        if (finding.probeId == probe_id)
            return true;
    return false;
}

CampaignResult
runCampaign(const TargetProgram &target,
            const CampaignOptions &options)
{
    obs::Span span("campaign." + target.name);
    obs::counter("campaign.targets").add();

    CampaignResult result;
    result.target = target.name;

    auto program = minic::parseAndCheck(target.source);

    fuzz::FuzzOptions fuzz_options;
    fuzz_options.maxExecs = options.maxExecs;
    fuzz_options.rngSeed = options.rngSeed;
    fuzz_options.limits = options.limits;
    if (!options.statsDir.empty()) {
        const std::string dir =
            options.statsDir + "/" + target.name;
        fuzz_options.statsOutPath = dir + "/fuzzer_stats";
        fuzz_options.plotOutPath = dir + "/plot_data";
    }
    // Record-oriented targets saturate well below AFL's default
    // input ceiling; a small cap keeps executions short.
    fuzz_options.maxInputSize = 64;
    // Output normalization (RQ5): strip the [ts:...] stamps that
    // targets like netshark embed per run.
    fuzz_options.diffOptions.normalizer =
        core::OutputNormalizer::withDefaultFilters();

    fuzz_options.jobs = options.jobs;

    // The session owns the lifecycle: configure → run → checkpoint →
    // resume → triage → report. Ephemeral unless sessionDir is set.
    session::SessionConfig session_config;
    if (!options.sessionDir.empty())
        session_config.dir = options.sessionDir + "/" + target.name;
    session_config.resume = options.resume;
    session_config.checkpointEvery = options.checkpointEvery;
    session_config.haltAfterExecs = options.haltAfterExecs;
    session_config.fuzz = fuzz_options;
    session_config.shards = options.shards;
    session_config.jobs = options.jobs;
    session_config.triage = options.triage;
    if (!session_config.triage.reportsDir.empty()) {
        session_config.triage.reportsDir += "/" + target.name;
    }
    session::CampaignSession session(*program, target.seeds,
                                     session_config);
    const fuzz::ShardedResult &sharded = session.run();
    result.stats = sharded.total;
    result.halted = session.halted();
    if (result.halted) {
        // A halted campaign has only partial evidence; the resume
        // that completes the budget performs the triage below.
        return result;
    }
    result.reports = session.triage();

    // Triage: map each unique divergence back to planted bugs via
    // the probes its witness fired. The session's portable records
    // carry exactly the evidence this needs.
    const std::vector<session::DivergenceRecord> records =
        session.divergenceRecords();
    obs::Span triage_span("campaign.triage");
    std::map<int, const session::DivergenceRecord *> witness_for;
    const auto keep_untriaged =
        [&](const session::DivergenceRecord &record) {
            for (const auto &seen : result.untriaged)
                if (seen.signature == record.signature)
                    return;
            result.untriaged.push_back({record.signature,
                                        record.input,
                                        record.hashVector});
        };
    for (const auto &record : records) {
        if (record.probes.empty()) {
            // No probe fired: keep the full evidence, not just a
            // count — the reducer/bundler can still consume it.
            keep_untriaged(record);
            continue;
        }
        for (int probe : record.probes) {
            if (!witness_for.count(probe))
                witness_for[probe] = &record;
        }
    }

    // Per-bug analysis on *minimized* witnesses.
    core::DiffOptions diff_options = fuzz_options.diffOptions;
    diff_options.limits = options.limits;
    core::DiffEngine engine(*program,
                            compiler::standardImplementations(),
                            diff_options);
    compiler::Compiler comp(*program);
    const compiler::CompilerConfig probe_config =
        fuzz_options.fuzzConfig;
    auto probe_module = comp.compile(probe_config);
    vm::Vm probe_vm(probe_module, probe_config, options.limits);

    sanitizers::SanitizerRunner runner(*program, options.limits);
    for (const auto &[probe, record] : witness_for) {
        const PlantedBug *bug = target.findBug(probe);
        if (!bug) {
            keep_untriaged(*record);
            continue;
        }
        BugFinding finding;
        finding.probeId = probe;
        finding.bug = bug;
        finding.witness =
            minimizeWitness(engine, probe_vm, record->input, probe);
        finding.hashVector =
            engine.runInput(finding.witness).hashVector();
        if (options.checkSanitizers) {
            finding.asanFires =
                runner.check(compiler::Sanitizer::ASan,
                             finding.witness)
                    .fired;
            finding.ubsanFires =
                runner.check(compiler::Sanitizer::UBSan,
                             finding.witness)
                    .fired;
            finding.msanFires =
                runner.check(compiler::Sanitizer::MSan,
                             finding.witness)
                    .fired;
        }
        result.found.push_back(std::move(finding));
    }
    obs::counter("campaign.bugs_found").add(result.found.size());
    obs::counter("campaign.untriaged_diffs")
        .add(result.untriaged.size());
    return result;
}

std::vector<CampaignResult>
runAllCampaigns(const CampaignOptions &options)
{
    std::vector<CampaignResult> results;
    for (const auto &target : allTargets())
        results.push_back(runCampaign(target, options));
    return results;
}

std::map<std::string, ColumnCounts>
aggregateByColumn(const std::vector<CampaignResult> &results)
{
    std::map<std::string, ColumnCounts> columns;
    for (const auto &target : allTargets()) {
        for (const auto &bug : target.bugs)
            columns[categoryColumn(bug.category)].planted++;
    }
    for (const auto &result : results) {
        for (const auto &finding : result.found) {
            ColumnCounts &c =
                columns[categoryColumn(finding.bug->category)];
            c.found++;
            if (finding.bug->confirmed)
                c.confirmed++;
            if (finding.bug->fixed)
                c.fixed++;
            if (finding.asanFires || finding.ubsanFires ||
                finding.msanFires) {
                c.sanitizerAlso++;
            }
        }
    }
    return columns;
}

} // namespace compdiff::targets
