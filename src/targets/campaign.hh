#pragma once

/**
 * @file
 * Fuzzing-campaign harness over the target programs (paper Section
 * 4.3): runs CompDiff-AFL++ on a target, triages found divergences
 * back to the planted bugs via their ground-truth probes, and checks
 * each found bug against the three sanitizers (Table 6).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "reduce/report.hh"
#include "session/records.hh"
#include "targets/targets.hh"

namespace compdiff::targets
{

/** One planted bug recovered by a campaign. */
struct BugFinding
{
    int probeId = 0;
    const PlantedBug *bug = nullptr;
    support::Bytes witness; ///< first divergence-triggering input
    /** Per-implementation output hashes on the witness (Figure 2). */
    std::vector<std::uint64_t> hashVector;
    bool asanFires = false;
    bool ubsanFires = false;
    bool msanFires = false;
};

/**
 * A divergence no planted bug claims — either its witness fired no
 * ground-truth probe, or the probe matched no bug record. These
 * would be unplanted bugs in the target itself, so campaigns keep
 * the full evidence (not just a count): the reducer and report
 * bundler consume them like any other witness.
 */
struct UntriagedDiff
{
    /** The fuzzer's triage signature (FoundDiff::signature). */
    std::uint64_t signature = 0;
    support::Bytes witness;
    /** Per-implementation output hashes on the witness. */
    std::vector<std::uint64_t> hashVector;
};

/** Outcome of one campaign on one target. */
struct CampaignResult
{
    std::string target;
    fuzz::FuzzStats stats;
    std::vector<BugFinding> found;
    /** Divergences that fired no probe (must stay empty: they would
     *  be unplanted bugs in the target itself). */
    std::vector<UntriagedDiff> untriaged;
    /** Reduction outcomes when CampaignOptions::triage.reduceFound,
     *  one per unique divergence in shard-fold order. */
    std::vector<reduce::DivergenceReport> reports;
    /** True when the campaign stopped at a session halt point
     *  (stats are the partial fold; triage was skipped — resume the
     *  session to finish). */
    bool halted = false;

    bool foundProbe(int probe_id) const;

    /** Count view of `untriaged` (the pre-reduction API). */
    std::size_t untriagedDiffs() const { return untriaged.size(); }
};

/** Campaign knobs. */
struct CampaignOptions
{
    std::uint64_t maxExecs = 60'000;
    std::uint64_t rngSeed = 0xA11CE;
    /** Also run the sanitizer checks on each witness (Table 6). */
    bool checkSanitizers = true;
    /**
     * Per-execution limits. The targets are small record parsers;
     * modest segments keep the per-run setup cost (the forkserver-
     * analog overhead) low.
     */
    vm::VmLimits limits{
        .maxInstructions = 200'000,
        .stackSize = 1 << 14,
        .heapSize = 1 << 15,
        .maxOutput = 1 << 16,
        .maxCallDepth = 64,
    };

    /**
     * Deterministic work partition: the campaign runs as this many
     * independent shards (fuzz::runShardedCampaign). Results depend
     * on `shards` — changing it changes the campaign — but never on
     * `jobs`. shards == 1 reproduces the plain single-fuzzer path.
     */
    std::size_t shards = 1;
    /**
     * Worker threads (0 = one per hardware thread). With shards > 1
     * the threads run shards; with shards == 1 they run the k-way
     * oracle. Either way, results are bit-identical for every value.
     */
    std::size_t jobs = 1;

    /**
     * AFL++-style telemetry: when non-empty, each campaign writes
     * `<statsDir>/<target>/fuzzer_stats` and `.../plot_data`
     * (directories are created as needed; sharded campaigns write
     * one `plot_data.shard<N>` series per shard).
     */
    std::string statsDir;

    /**
     * Crash-safe persistence: when non-empty, each campaign runs as
     * a session::CampaignSession under `<sessionDir>/<target>/` —
     * checkpointed every `checkpointEvery` shard executions and at
     * shutdown, resumable with `resume`. Empty runs ephemerally
     * (same lifecycle, nothing persisted).
     */
    std::string sessionDir;
    bool resume = false;
    std::uint64_t checkpointEvery = 0;
    /** Stop every shard at this many shard-local executions (0 =
     *  run to completion); see SessionConfig::haltAfterExecs. */
    std::uint64_t haltAfterExecs = 0;

    /**
     * Post-campaign triage — the single carrier of the reduction /
     * report knobs (a per-target subdirectory is appended to
     * triage.reportsDir).
     */
    session::TriageOptions triage;
};

/** Run CompDiff-AFL++ on one target. */
CampaignResult runCampaign(const TargetProgram &target,
                           const CampaignOptions &options = {});

/** Run campaigns on every target. */
std::vector<CampaignResult>
runAllCampaigns(const CampaignOptions &options = {});

/** Aggregate per-column counts over campaign results (Table 5). */
struct ColumnCounts
{
    std::size_t planted = 0;
    std::size_t found = 0;
    std::size_t confirmed = 0;
    std::size_t fixed = 0;
    std::size_t sanitizerAlso = 0; ///< found AND sanitizer fires
};
std::map<std::string, ColumnCounts>
aggregateByColumn(const std::vector<CampaignResult> &results);

} // namespace compdiff::targets
