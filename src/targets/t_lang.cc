/**
 * @file
 * Language-implementation targets: scriptvm (MuJS-like bytecode
 * interpreter — the home of the three seeded compiler bugs, RQ2) and
 * phplite (php-like script processor).
 */

#include "targets/build.hh"

namespace compdiff::targets::detail
{

TargetProgram
makeScriptvm()
{
    TargetProgram t;
    t.name = "scriptvm";
    t.inputType = "JavaScript";
    t.version = "1.1.3";
    t.source = R"SRC(
// scriptvm - toy script bytecode interpreter.
int stack[16];
int sp = 0;

void push_val(int v) {
    if (sp < 16) {
        stack[sp] = v;
        sp += 1;
    }
}

int pop_val() {
    if (sp > 0) {
        sp -= 1;
        return stack[sp];
    }
    return 0;
}

void op_hash() {
    int top = pop_val();
    // BUG(900) CompilerBug: `top % 8` is strength-reduced to
    // `top & 7` by one of the simulated compilers, losing the
    // negative fixup (the first MuJS miscompilation).
    if (top < 0) { probe(900); }
    int slot = top % 8;
    print_str("hash ");
    print_int(slot);
    newline();
    push_val(slot);
}

void op_bucket() {
    int top = pop_val();
    // BUG(901) CompilerBug: `top / 32` becomes an arithmetic shift
    // without round-toward-zero in another implementation.
    if (top < 0) { probe(901); }
    int bucket = top / 32;
    print_str("bucket ");
    print_int(bucket);
    newline();
    push_val(bucket);
}

void op_rangecheck() {
    int x = pop_val();
    // BUG(902) CompilerBug: `x < 5 && x > 3` is "empty-range"
    // folded to false although x == 4 satisfies it.
    if (x == 4) { probe(902); }
    if (x < 5 && x > 3) {
        print_str("in-range");
    } else {
        print_str("out-of-range");
    }
    newline();
    push_val(x);
}

void op_guardadd() {
    int len = pop_val();
    int small = pop_val() & 127;
    int base = 2147483647 - small;
    // BUG(903) IntError: wrap guard folded away by optimizers.
    if (len > small && len >= 0) { probe(903); }
    if (base + len < base) {
        print_str("guard trip");
    } else {
        print_str("guard pass");
    }
    newline();
}

void op_bigmul() {
    int a = pop_val() * 1000;
    int b = pop_val() * 1000;
    // BUG(904) IntError: 32-bit product feeding a 64-bit total.
    if ((long)a * (long)b > 2147483647L) { probe(904); }
    long total = 1L + a * b;
    print_str("total ");
    print_long(total);
    newline();
}

void op_gc() {
    int gen = pop_val();
    if (gen > 64) {
        // BUG(905) Misc: the "GC cycle id" seeds from undefined
        // memory.
        probe(905);
        print_str("gc cycle ");
        print_int(bad_rand() & 4095);
        newline();
    } else {
        print_str("gc skipped");
        newline();
    }
}

int main() {
    if (read_byte() != 74) {
        print_str("scriptvm: bad bytecode");
        newline();
        return 1;
    }
    sp = 0;
    int steps = 0;
    while (steps < 96) {
        int op = read_byte();
        if (op < 0) { break; }
        steps += 1;
        if (op == 1) {
            int v = read_byte();
            if (v < 0) { break; }
            push_val(v);
        }
        else if (op == 2) { push_val(pop_val() + (pop_val() & 8191)); }
        else if (op == 3) {
            int b = pop_val();
            int a = pop_val();
            push_val(a - b);
        }
        else if (op == 4) { op_hash(); }
        else if (op == 5) { op_bucket(); }
        else if (op == 6) { op_rangecheck(); }
        else if (op == 7) { op_guardadd(); }
        else if (op == 8) { op_bigmul(); }
        else if (op == 9) { op_gc(); }
        else if (op == 10) {
            print_str("top ");
            print_int(pop_val());
            newline();
        }
        else { print_str("?"); newline(); }
    }
    print_str("steps ");
    print_int(steps);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        // push/arith sequences ending in the interesting opcodes
        {74, 1, 3, 1, 9, 3, 4, 10},
        {74, 1, 10, 1, 3, 3, 5, 1, 4, 6, 10},
        {74, 1, 120, 1, 60, 7, 1, 50, 1, 60, 8, 1, 90, 9},
    };
    t.bugs = {
        {900, BugCategory::CompilerBug,
         "negative modulo miscompiled to a mask (clang-sim O2/O3)",
         true, true, false},
        {901, BugCategory::CompilerBug,
         "negative division miscompiled to a shift (gcc-sim Os)",
         true, true, false},
        {902, BugCategory::CompilerBug,
         "satisfiable range check folded to false (gcc-sim O3)",
         true, true, false},
        {903, BugCategory::IntError,
         "interpreter bounds guard folded away", true, true, true},
        {904, BugCategory::IntError,
         "arithmetic opcode product widened inconsistently", true,
         true, true},
        {905, BugCategory::MiscOther,
         "GC cycle id read from undefined memory", true, false,
         false},
    };
    return t;
}

TargetProgram
makePhplite()
{
    TargetProgram t;
    t.name = "phplite";
    t.inputType = "PHP";
    t.version = "7.4.26";
    t.source = R"SRC(
// phplite - toy script-engine front end.
int call_depth = 0;

int helper_no_return(int x) {
    // BUG(1206) UninitMem: falling off the end of a value-returning
    // function yields an indeterminate value.
    if (x > 100) {
        return x - 100;
    }
    // no return on this path
}

void stmt_error() {
    int code = read_byte();
    if (code < 0) { return; }
    // BUG(1200) LINE: the engine labels this error with a line from
    // a statement spanning several lines (the var_dump case).
    int line_no = 0 +
                  code +
                  cur_line();
    probe(1200);
    print_str("Fatal error at line ");
    print_int(line_no);
    newline();
}

void stmt_warning() {
    int code = read_byte();
    if (code < 0) { return; }
    // BUG(1201) LINE: second diagnostic site.
    int line_no = code +
                  0 +
                  0 +
                  cur_line();
    probe(1201);
    print_str("Warning at line ");
    print_int(line_no);
    newline();
}

void stmt_undefvar() {
    int defined = read_byte();
    int zval;
    if (defined == 1) { zval = read_byte() & 255; }
    // BUG(1202) UninitMem: reading an undefined variable.
    if (defined != 1) { probe(1202); }
    if (zval < 0) { print_str("odd "); }
    print_str("$a = ");
    print_int(zval);
    newline();
}

void stmt_arraykey() {
    int key = read_byte();
    if (key < 0) { return; }
    int table[4];
    table[0] = 10;
    table[1] = 20;
    int looked;
    if (key < 2) { looked = table[key]; }
    // BUG(1203) UninitMem: missing keys return an unset zval.
    if (key >= 2) { probe(1203); }
    print_str("$arr[k] = ");
    print_int(looked);
    newline();
}

void stmt_static() {
    int first = read_byte();
    int cache;
    if (first == 1) { cache = 7; }
    // BUG(1204) UninitMem: the "static" cache is consumed before
    // its first initialization.
    if (first != 1) { probe(1204); }
    print_str("static ");
    print_int(cache);
    newline();
}

void stmt_strparse() {
    int len = read_byte();
    if (len < 0) { return; }
    int num;
    int seen = 0;
    for (int i = 0; i < len && i < 5; i += 1) {
        int c = read_byte();
        if (c < 0) { break; }
        if (c >= 48 && c <= 57) {
            if (seen == 0) { num = 0; }
            num = num * 10 + (c - 48);
            seen = 1;
        }
    }
    // BUG(1205) UninitMem: "(int)$s" on a digit-free string.
    if (seen == 0) { probe(1205); }
    print_str("(int)$s = ");
    print_int(num);
    newline();
}

void stmt_callret() {
    int x = read_byte();
    if (x < 0) { return; }
    if (x <= 100) { probe(1206); }
    print_str("ret ");
    print_int(helper_no_return(x));
    newline();
}

void stmt_intdiv() {
    int small = read_byte();
    int len = read_byte();
    if (small < 0 || len < 0) { return; }
    int lhs = 2147483647 - (small & 63);
    // BUG(1207) IntError: wrap guard in intdiv() bounds check.
    if (len > (small & 63)) { probe(1207); }
    if (lhs + len < lhs) {
        print_str("intdiv overflow");
    } else {
        print_str("intdiv ok");
    }
    newline();
}

void stmt_strtoint() {
    int c1 = read_byte();
    int c2 = read_byte();
    if (c1 < 0 || c2 < 0) { return; }
    int a = c1 * 2000;
    int b = c2 * 2000;
    // BUG(1208) IntError: the engine totals string offsets in 64
    // bits on some builds only.
    if ((long)a * (long)b > 2147483647L) { probe(1208); }
    long bytes = 1L + a * b;
    print_str("offset ");
    print_long(bytes);
    newline();
}

void stmt_resource() {
    int id = read_byte();
    if (id < 0) { return; }
    char handle[8];
    handle[0] = (char)id;
    if (id > 12) {
        // BUG(1209) Misc: var_dump prints the resource address.
        probe(1209);
        print_str("resource(");
        print_ptr(handle);
        print_str(")");
        newline();
    } else {
        print_str("resource#");
        print_int(id);
        newline();
    }
}

void stmt_zvaldebug() {
    int on = read_byte();
    if (on < 0) { return; }
    if (on > 7) {
        // BUG(1210) Misc: debug_zval_dump leaks the engine pointer.
        probe(1210);
        print_str("zval at ");
        print_ptr("zv");
        newline();
    } else {
        print_str("zval ok");
        newline();
    }
}

void stmt_rand() {
    int req = read_byte();
    if (req < 0) { return; }
    if (req > 30) {
        // BUG(1211) Misc: rand() consumed before seeding.
        probe(1211);
        print_str("rand ");
        print_int(bad_rand() & 32767);
        newline();
    } else {
        print_str("rand 4");
        newline();
    }
}

void stmt_shuffle() {
    int n = read_byte();
    if (n < 0) { return; }
    if (n > 77) {
        // BUG(1212) Misc: shuffle() entropy from undefined memory.
        probe(1212);
        print_str("pick ");
        print_int((bad_rand() + n) & 511);
        newline();
    } else {
        print_str("pick 0");
        newline();
    }
}

int main() {
    if (read_byte() != 60) {
        print_str("phplite: missing <?php");
        newline();
        return 1;
    }
    int stmts = 0;
    while (stmts < 64) {
        int tag = read_byte();
        if (tag < 0) { break; }
        stmts += 1;
        if (tag == 1) { stmt_error(); }
        else if (tag == 2) { stmt_warning(); }
        else if (tag == 3) { stmt_undefvar(); }
        else if (tag == 4) { stmt_arraykey(); }
        else if (tag == 5) { stmt_static(); }
        else if (tag == 6) { stmt_strparse(); }
        else if (tag == 7) { stmt_callret(); }
        else if (tag == 8) { stmt_intdiv(); }
        else if (tag == 9) { stmt_strtoint(); }
        else if (tag == 10) { stmt_resource(); }
        else if (tag == 11) { stmt_zvaldebug(); }
        else if (tag == 12) { stmt_rand(); }
        else if (tag == 13) { stmt_shuffle(); }
        else { print_str("?"); newline(); }
    }
    print_str("stmts ");
    print_int(stmts);
    newline();
    return 0;
}
)SRC";
    t.seeds = {
        {60, 1, 4, 3, 1, 9, 4, 1, 5, 1, 6, 2, 49, 50},
        {60, 7, 150, 8, 20, 5, 9, 3, 3, 10, 5, 11, 2},
        {60, 12, 10, 13, 50, 2, 6, 4, 0, 3, 0},
    };
    t.bugs = {
        {1200, BugCategory::Line,
         "fatal-error line attribution is implementation-defined",
         true, true, true},
        {1201, BugCategory::Line,
         "warning line attribution is implementation-defined", true,
         true, true},
        {1202, BugCategory::UninitMem,
         "undefined variable read returns indeterminate zval", true,
         true, true},
        {1203, BugCategory::UninitMem,
         "missing array key returns unset zval", true, true, false},
        {1204, BugCategory::UninitMem,
         "static cache consumed before first initialization", true,
         false, false},
        {1205, BugCategory::UninitMem,
         "(int) cast of digit-free string", true, false, false},
        {1206, BugCategory::UninitMem,
         "value-returning helper falls off the end", true, true,
         true},
        {1207, BugCategory::IntError,
         "intdiv wrap guard folded away", true, true, false},
        {1208, BugCategory::IntError,
         "string offset product widened inconsistently", true, true,
         false},
        {1209, BugCategory::MiscOther,
         "var_dump prints the resource address", true, true, false},
        {1210, BugCategory::MiscOther,
         "debug_zval_dump leaks an engine pointer", true, true,
         false},
        {1211, BugCategory::MiscOther,
         "rand() consumed before seeding", true, false, false},
        {1212, BugCategory::MiscOther,
         "shuffle() entropy from undefined memory", true, false,
         false},
    };
    return t;
}

} // namespace compdiff::targets::detail
