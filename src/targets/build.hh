#pragma once

/**
 * @file
 * Internal factory declarations for the individual target programs.
 */

#include "targets/targets.hh"

namespace compdiff::targets::detail
{

TargetProgram makePktdump();
TargetProgram makeNetshark();
TargetProgram makeElfread();
TargetProgram makeObjview();
TargetProgram makeArczip();
TargetProgram makeSndconv();
TargetProgram makeImgmeta();
TargetProgram makePixmagick();
TargetProgram makeScriptvm();
TargetProgram makeFloatpack();
TargetProgram makeJsonq();
TargetProgram makePhplite();
TargetProgram makeVidmux();

} // namespace compdiff::targets::detail
