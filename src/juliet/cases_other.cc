/**
 * @file
 * Case builders for the non-memory CWEs: 475 (API misuse), 588 (bad
 * struct pointer), 685 (wrong argument count), 758 (miscellaneous
 * UB), 190/191 (integer overflow/underflow), 369 (divide by zero),
 * 476 (null dereference), 457/665 (uninitialized memory), and 469
 * (pointer subtraction).
 */

#include "juliet/cases.hh"

#include "support/strings.hh"

namespace compdiff::juliet::detail
{

using support::format;

namespace
{

std::string
program(const std::string &top, const std::string &body)
{
    return top + "int main() {\n" + body + "return 0;\n}\n";
}

/** CWE-475 undefined behavior for input to API (memcpy overlap). */
JulietCase
cwe475(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const long size = 16 + 8 * static_cast<long>(rng.below(2));
    const long shift = 2 + static_cast<long>(rng.below(3));

    auto build = [&](bool bad) {
        // Overlapping copy when `delta` < n; the good variant copies
        // into a disjoint region.
        Flow flow = valueFlow(fv, "delta", shift, size / 2 + 4, bad,
                              index * 10 + 1);
        std::string body = format(
            "char buf_%d[%ld];\n"
            "for (int i = 0; i < %ld; i += 1) {\n"
            "    buf_%d[i] = (char)(97 + i);\n"
            "}\n"
            "%s"
            "memcpy(buf_%d + delta, buf_%d, %ldL);\n"
            "for (int j = 0; j < %ld; j += 1) {\n"
            "    print_char(buf_%d[j]);\n"
            "}\n"
            "newline();\n",
            index, size * 2, size, index, flow.prologue.c_str(),
            index, index, size / 2 + 2, size, index);
        out.input = flow.input;
        return program(flow.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "overlapping memcpy";
    return out;
}

/** CWE-588 access of child of a non-structure pointer. */
JulietCase
cwe588(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {50, 50}; // pad-zone / neighbor
    const int d = pickVariant(588, index, variants, 2);
    (void)rng;
    (void)fv;

    auto build = [&](bool bad) {
        std::string top = format(
            "struct wide_%d {\n"
            "    long head;\n"
            "    long mid;\n"
            "    long tail;\n"
            "    long deep;\n"
            "    long deeper;\n"
            "    long deepest;\n"
            "};\n",
            index);
        // A 16-byte raw buffer reinterpreted as a 32-byte struct:
        // tail/deep live beyond the real object.
        std::string body;
        if (d == 0) {
            body = format(
                "char raw_%d[16];\n"
                "for (int i = 0; i < 16; i += 1) { raw_%d[i] = 1; }\n"
                "struct wide_%d *w = (struct wide_%d *)&raw_%d[0];\n"
                "print_long(%s);\n"
                "newline();\n",
                index, index, index, index, index,
                bad ? "w->tail" : "w->head");
        } else {
            body = format(
                "char raw_%d[16];\n"
                "char after_%d[32];\n"
                "for (int i = 0; i < 16; i += 1) {\n"
                "    raw_%d[i] = 2;\n"
                "    after_%d[i] = 3;\n"
                "    after_%d[i + 16] = 4;\n"
                "}\n"
                "struct wide_%d *w = (struct wide_%d *)&raw_%d[0];\n"
                "print_long(%s);\n"
                "newline();\n",
                index, index, index, index, index, index, index,
                index, bad ? "w->deeper" : "w->mid");
        }
        return program(top, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "non-struct pointer field access";
    return out;
}

/** CWE-685 function call with incorrect number of arguments. */
JulietCase
cwe685(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    (void)rng;

    auto build = [&](bool bad) {
        std::string top = format(
            "int combine_%d(int base, int extra) {\n"
            "    return base * 100 + extra;\n"
            "}\n",
            index);
        const std::string call =
            bad ? format("int got = combine_%d(7);\n", index)
                : format("int got = combine_%d(7, 5);\n", index);
        StmtFlow sf = stmtFlow(
            fv, call + "print_int(got);\nnewline();\n",
            index * 10 + 2);
        out.input = sf.input;
        // fv2 wraps in a void helper; `got` stays local to it.
        return program(top + sf.topDecls, sf.body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "call with missing argument";
    return out;
}

/** CWE-758 miscellaneous undefined behavior. */
JulietCase
cwe758(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {40, 40, 20}; // shift / eval-order / neg
    const int d = pickVariant(758, index, variants, 3);
    const long width_excess =
        33 + static_cast<long>(rng.below(20));

    auto build = [&](bool bad) {
        if (d == 1) {
            // Unsequenced conflicting side effects: two calls using
            // one static buffer, both arguments of the same call.
            std::string top = format(
                "char shared_%d[16];\n"
                "char *render_%d(int v) {\n"
                "    shared_%d[0] = (char)(48 + v);\n"
                "    shared_%d[1] = 0;\n"
                "    return shared_%d;\n"
                "}\n"
                "void pair_%d(char *a, char *b) {\n"
                "    print_str(a);\n"
                "    print_str(\"/\");\n"
                "    print_str(b);\n"
                "}\n",
                index, index, index, index, index, index);
            std::string flaw;
            if (bad) {
                flaw = format("pair_%d(render_%d(1), render_%d(2));\n"
                              "newline();\n",
                              index, index, index);
            } else {
                flaw = format("char first_%d[4];\n"
                              "strcpy(first_%d, render_%d(1));\n"
                              "pair_%d(first_%d, render_%d(2));\n"
                              "newline();\n",
                              index, index, index, index, index,
                              index);
            }
            StmtFlow sf = stmtFlow(fv, flaw, index * 10 + 3);
            out.input = sf.input;
            return program(top + sf.topDecls, sf.body);
        }

        // Oversized / negative shift counts.
        const long count = d == 2 ? -3 : width_excess;
        Flow flow = valueFlow(fv, "shift", count, 3, bad,
                              index * 10 + 3);
        std::string body = flow.prologue;
        body += format("int value_%d = 1 << shift;\n"
                       "print_int(value_%d);\n"
                       "newline();\n",
                       index, index);
        out.input = flow.input;
        return program(flow.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = d == 1 ? "unsequenced side effects"
                             : "invalid shift count";
    return out;
}

/** CWE-190/191 integer overflow / underflow. */
JulietCase
cweIntegerError(int cwe, int index, int fv, support::Rng &rng)
{
    JulietCase out;
    // plain-int / dead-int / plain-long / guard-int / guard-long /
    // widened-multiply
    const int variants[] = {20, 10, 40, 8, 7, 15};
    const int d = pickVariant(cwe, index, variants, 6);
    const bool under = cwe == 191;
    const long step = 1 + static_cast<long>(rng.below(9));

    auto build = [&](bool bad) {
        // The guard variants wrap INT_MIN by *adding* a negative
        // delta (the fold target is the `a + b cmp a` shape).
        const bool guard = d == 3 || d == 4;
        const long bad_delta = guard && under ? -step : step;
        Flow flow = valueFlow(fv, "delta", bad ? bad_delta : 0,
                              0, bad, index * 10 + 4);
        std::string body = flow.prologue;
        const char *op = under ? "-" : "+";
        switch (d) {
          case 0: // plain int overflow, result printed
            body += format(
                "int edge_%d = %s;\n"
                "int result_%d = edge_%d %s delta;\n"
                "print_int(result_%d);\nnewline();\n",
                index, under ? "-2147483647 - 1" : "2147483647",
                index, index, op, index);
            break;
          case 1: // overflow computed but never used
            body += format(
                "int edge_%d = %s;\n"
                "int result_%d = edge_%d %s delta;\n"
                "print_str(\"quiet\");\nnewline();\n",
                index, under ? "-2147483647 - 1" : "2147483647",
                index, index, op);
            break;
          case 2: // 64-bit overflow (outside UBSan-sim's checks)
            body += format(
                "long edge_%d = %s;\n"
                "long result_%d = edge_%d %s (long)delta;\n"
                "print_long(result_%d);\nnewline();\n",
                index,
                under ? "-9223372036854775807L - 1L"
                      : "9223372036854775807L",
                index, index, op, index);
            break;
          case 3: // int wrap guard (inline; folded by optimizers)
            body += format(
                "int edge_%d = %s;\n"
                "if (edge_%d + delta %s edge_%d) {\n"
                "    print_str(\"wrapped\");\n"
                "} else { print_str(\"fits\"); }\n"
                "newline();\n",
                index, under ? "-2147483647 - 1" : "2147483647",
                index, under ? ">" : "<", index);
            break;
          case 4: // long wrap guard
            body += format(
                "long edge_%d = %s;\n"
                "if (edge_%d + (long)delta %s edge_%d) {\n"
                "    print_str(\"wrapped\");\n"
                "} else { print_str(\"fits\"); }\n"
                "newline();\n",
                index,
                under ? "-9223372036854775807L - 1L"
                      : "9223372036854775807L",
                index, under ? ">" : "<", index);
            break;
          default: // widened multiply feeding a long
            body += format(
                "int a_%d = 100000 %s delta;\n"
                "int b_%d = 100000;\n"
                "long total_%d = 1L + a_%d * b_%d;\n"
                "print_long(total_%d);\nnewline();\n",
                index, under ? "-" : "+", index, index, index,
                index, index);
            break;
        }
        out.input = flow.input;
        return program(flow.topDecls, body);
    };

    // For variant 5 the good case must avoid the overflow entirely.
    if (d == 5) {
        auto build5 = [&](bool bad) {
            Flow flow = valueFlow(fv, "scale",
                                  bad ? 100000 : 10, 10, bad,
                                  index * 10 + 4);
            std::string body = flow.prologue;
            body += format("int b_%d = 100000;\n"
                           "long total_%d = 1L + scale * b_%d;\n"
                           "print_long(total_%d);\nnewline();\n",
                           index, index, index, index);
            out.input = flow.input;
            return program(flow.topDecls, body);
        };
        out.badSource = build5(true);
        out.goodSource = build5(false);
    } else {
        out.badSource = build(true);
        out.goodSource = build(false);
    }
    out.description = under ? "integer underflow" : "integer overflow";
    return out;
}

/** CWE-369 divide by zero. */
JulietCase
cwe369(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {30, 25, 45}; // live / dead / float
    const int d = pickVariant(369, index, variants, 3);
    const long numerator = 10 + static_cast<long>(rng.below(90));

    auto build = [&](bool bad) {
        Flow flow = valueFlow(fv, "divisor", 0, 4, bad,
                              index * 10 + 5);
        std::string body = flow.prologue;
        switch (d) {
          case 0:
            body += format("print_int(%ld / divisor);\nnewline();\n",
                           numerator);
            break;
          case 1: // quotient never used: optimizers delete the trap
            body += format(
                "int q_%d = %ld %s divisor;\n"
                "print_str(\"survived\");\nnewline();\n",
                index, numerator, index % 2 ? "%" : "/");
            break;
          default: // IEEE float division: defined, but still flawed
            body += format(
                "double q_%d = %ld.0 / (double)divisor;\n"
                "if (q_%d > 1000000.0) { print_str(\"huge\"); }\n"
                "else { print_f(q_%d); }\n"
                "newline();\n",
                index, numerator, index, index);
            break;
        }
        out.input = flow.input;
        return program(flow.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "division by zero";
    return out;
}

/** CWE-476 null pointer dereference. */
JulietCase
cwe476(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {40, 35, 10, 15};
    // store-null / load-null / wild-vendor-pointer / helper-null
    const int d = pickVariant(476, index, variants, 4);
    (void)rng;

    auto build = [&](bool bad) {
        std::string top;
        std::string flaw;
        switch (d) {
          case 0:
            flaw = format("int box_%d = 5;\n"
                          "int *p = %s;\n"
                          "*p = 42;\n"
                          "print_str(\"stored\");\nnewline();\n",
                          index, bad ? "0" : format("&box_%d", index)
                                                 .c_str());
            break;
          case 1:
            flaw = format("int box_%d = 9;\n"
                          "int *p = %s;\n"
                          "int v = *p;\n"
                          "print_int(v);\nnewline();\n",
                          index, bad ? "0" : format("&box_%d", index)
                                                 .c_str());
            break;
          case 2:
            // A wild pointer into a vendor-dependent address: mapped
            // under one address-space layout, unmapped under the
            // other. Outside the sanitizers' null page.
            flaw = format("int box_%d = 3;\n"
                          "long raw_%d = %s;\n"
                          "int *p = (int *)raw_%d;\n"
                          "%s"
                          "print_int(*p);\nnewline();\n",
                          index, index,
                          bad ? "0x01000008L" : "0L", index,
                          bad ? ""
                              : format("p = &box_%d;\n", index)
                                    .c_str());
            break;
          default:
            top = format("int fetch_%d(int *q) { return *q; }\n",
                         index);
            flaw = format("int box_%d = 4;\n"
                          "int *p = %s;\n"
                          "print_int(fetch_%d(p));\nnewline();\n",
                          index,
                          bad ? "0" : format("&box_%d", index)
                                          .c_str(),
                          index);
            break;
        }
        StmtFlow sf = stmtFlow(fv, flaw, index * 10 + 6);
        out.input = sf.input;
        return program(top + sf.topDecls, sf.body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "null pointer dereference";
    return out;
}

/** CWE-457 use of uninitialized variable / CWE-665 improper init. */
JulietCase
cweUninit(int cwe, int index, int fv, support::Rng &rng)
{
    JulietCase out;
    // print-local / eq-branch / heap-print / nz-branch
    const int variants[] = {50, 5, 35, 10};
    const int d = pickVariant(cwe, index, variants, 4);
    const long size = 8 + 8 * static_cast<long>(rng.below(2));
    const bool partial = cwe == 665;

    auto build = [&](bool bad) {
        std::string flaw;
        switch (d) {
          case 0: {
            if (partial) {
                // Improper initialization: only half the buffer is
                // set before the whole is consumed.
                flaw = format(
                    "char mem_%d[%ld];\n"
                    "for (int i = 0; i < %ld; i += 1) {\n"
                    "    mem_%d[i] = 'v';\n"
                    "}\n"
                    "int acc_%d = 0;\n"
                    "for (int j = 0; j < %ld; j += 1) {\n"
                    "    acc_%d += mem_%d[j];\n"
                    "}\n"
                    "print_int(acc_%d);\nnewline();\n",
                    index, size, bad ? size / 2 : size, index, index,
                    size, index, index, index);
            } else {
                flaw = format("int fresh_%d%s;\n"
                              "print_int(fresh_%d);\nnewline();\n",
                              index, bad ? "" : " = 11", index);
            }
            break;
          }
          case 1:
            flaw = format("int fresh_%d%s;\n"
                          "if (fresh_%d == 19770325) {\n"
                          "    print_str(\"jackpot\");\n"
                          "}\n"
                          "print_str(\"end\");\nnewline();\n",
                          index, bad ? "" : " = 1", index);
            break;
          case 2:
            flaw = format(
                "int *cells_%d = (int *)malloc(%ldL);\n"
                "if (cells_%d == 0) { return; }\n"
                "cells_%d[0] = 10;\n"
                "%s"
                "print_int(cells_%d[1]);\nnewline();\n",
                index, size * 4, index, index,
                bad ? "" : format("cells_%d[1] = 20;\n", index)
                               .c_str(),
                index);
            break;
          default:
            flaw = format("int fresh_%d%s;\n"
                          "if (fresh_%d != 0) {\n"
                          "    print_str(\"set\");\n"
                          "} else {\n"
                          "    print_str(\"zero\");\n"
                          "}\n"
                          "newline();\n",
                          index, bad ? "" : " = 5", index);
            break;
        }
        StmtFlow sf = stmtFlow(fv, flaw, index * 10 + 7);
        std::string body = sf.body;
        if (fv != 2)
            body = support::replaceAll(body, "return;", "return 1;");
        out.input = sf.input;
        return program(sf.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = partial ? "improper initialization"
                              : "use of uninitialized variable";
    return out;
}

/** CWE-469 pointer subtraction to determine size. */
JulietCase
cwe469(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {50, 50}; // globals / locals
    const int d = pickVariant(469, index, variants, 2);
    const long size = 16 + 16 * static_cast<long>(rng.below(2));
    (void)fv;

    auto build = [&](bool bad) {
        std::string top;
        std::string body;
        if (d == 0) {
            top = format("char pool_a_%d[%ld];\n"
                         "char pool_b_%d[%ld];\n",
                         index, size, index, size * 2);
            body = format(
                "char *start = &pool_a_%d[0];\n"
                "char *end = %s;\n"
                "long gap = end - start;\n"
                "print_long(gap);\nnewline();\n",
                index,
                bad ? format("&pool_b_%d[0]", index).c_str()
                    : format("&pool_a_%d[%ld]", index, size)
                          .c_str());
        } else {
            body = format(
                "char near_%d[%ld];\n"
                "long far_%d[%ld];\n"
                "near_%d[0] = 'n';\n"
                "far_%d[0] = 1L;\n"
                "char *start = &near_%d[0];\n"
                "char *end = %s;\n"
                "long gap = end - start;\n"
                "print_long(gap);\nnewline();\n",
                index, size, index, size / 4, index, index, index,
                bad ? format("(char *)&far_%d[0]", index).c_str()
                    : format("&near_%d[%ld]", index, size).c_str());
        }
        return program(top, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "cross-object pointer subtraction";
    return out;
}

} // namespace

JulietCase
makeOtherCase(int cwe, int index, std::uint64_t seed)
{
    support::Rng rng(seed ^ (static_cast<std::uint64_t>(cwe) << 32) ^
                     static_cast<std::uint64_t>(index) ^ 0x5151);
    const int fv = index % 5;
    JulietCase out;
    switch (cwe) {
      case 475: out = cwe475(index, fv, rng); break;
      case 588: out = cwe588(index, fv, rng); break;
      case 685: out = cwe685(index, fv, rng); break;
      case 758: out = cwe758(index, fv, rng); break;
      case 190:
      case 191: out = cweIntegerError(cwe, index, fv, rng); break;
      case 369: out = cwe369(index, fv, rng); break;
      case 476: out = cwe476(index, fv, rng); break;
      case 457:
      case 665: out = cweUninit(cwe, index, fv, rng); break;
      case 469: out = cwe469(index, fv, rng); break;
      default: break;
    }
    out.cwe = cwe;
    return out;
}

} // namespace compdiff::juliet::detail
