#pragma once

/**
 * @file
 * The synthesized Juliet-style benchmark suite (paper Section 4.1).
 *
 * NIST's Juliet C/C++ suite is not redistributable inside this
 * repository, so we synthesize an equivalent corpus: the same twenty
 * CWEs the paper selects (Table 2), each test a self-contained
 * program in a *bad* (flawed) and a *good* (fixed) variant, with
 * Juliet-style control-flow variants wrapped around the flaw:
 *
 *   fv0  straight-line code with constant data
 *   fv1  flaw guarded by an always-true flag variable
 *   fv2  flawed value routed through a helper function
 *   fv3  flaw reached through a loop induction variable
 *   fv4  flaw gated on a specific input byte (input provided)
 *
 * Within each CWE, data variants further control which tools *can*
 * see the flaw (e.g. whether an out-of-bounds read propagates to the
 * program output, whether an overflow lands in a redzone or in a
 * neighboring object) — this is where the Table 3 detection-rate
 * differences between sanitizers and CompDiff come from.
 *
 * Case counts follow Table 2 proportions, scaled by a configurable
 * factor (default 1/16).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hh"
#include "support/rng.hh"

namespace compdiff::juliet
{

/** One synthesized test case (bad + good variant pair). */
struct JulietCase
{
    std::string id;        ///< e.g. "CWE121_fv2_n07"
    int cwe = 0;
    std::string group;     ///< Table 3 row key
    std::string description;
    std::string badSource;
    std::string goodSource;
    support::Bytes input;  ///< the input both variants run on
};

/** Catalog entry mirroring one row of the paper's Table 2. */
struct CweInfo
{
    int cwe;
    const char *description;
    int paperCount; ///< #Tests column of Table 2
    const char *group;
};

/** The twenty selected CWEs, in Table 2 order. */
const std::vector<CweInfo> &cweCatalog();

/** The Table 3 row groups, in presentation order. */
std::vector<std::string> tableGroups();

/**
 * Builds the suite.
 */
class SuiteBuilder
{
  public:
    /**
     * @param scale Case count per CWE = max(5, paperCount * scale).
     * @param seed  Data-variant randomization seed.
     */
    explicit SuiteBuilder(double scale = 1.0 / 16,
                          std::uint64_t seed = 20230325);

    /** All cases of one CWE. */
    std::vector<JulietCase> buildCwe(int cwe) const;

    /** The whole suite, in catalog order. */
    std::vector<JulietCase> buildAll() const;

    /** Number of cases that buildCwe() will produce for a CWE. */
    std::size_t countFor(int cwe) const;

  private:
    double scale_;
    std::uint64_t seed_;
};

} // namespace compdiff::juliet
