#pragma once

/**
 * @file
 * Internal case-construction helpers shared by the per-CWE builders.
 * Public API lives in suite.hh.
 */

#include <cstdint>
#include <string>

#include "juliet/suite.hh"
#include "support/rng.hh"

namespace compdiff::juliet::detail
{

/**
 * Juliet-style control-flow wrapping: how a flaw-triggering integer
 * value reaches the flaw site.
 */
struct Flow
{
    std::string topDecls; ///< helper functions (fv2)
    std::string prologue; ///< statements establishing `name`
    support::Bytes input; ///< input required to trigger
};

/**
 * Build the flow for variant fv in [0,4] delivering `value` into an
 * int variable `name`. When `triggered` is false (good variants or
 * untaken paths), `safe_value` is delivered instead.
 */
Flow valueFlow(int fv, const std::string &name, long value,
               long safe_value, bool triggered, int uniq);

/**
 * Statement-level flow wrapping: returns the full main body where
 * `flaw_stmts` execute under variant fv (good variants pass the
 * fixed statements instead). `shared_stmts` are emitted before.
 */
struct StmtFlow
{
    std::string topDecls;
    std::string body; ///< complete body of main (without braces)
    support::Bytes input;
};
StmtFlow stmtFlow(int fv, const std::string &stmts, int uniq);

/** Per-CWE case builders (index selects flow/data variants). */
JulietCase makeCase(int cwe, int index, std::uint64_t seed);

/** Weighted data-variant pick: stable per (cwe, index). */
int pickVariant(int cwe, int index, const int *weights, int count);

} // namespace compdiff::juliet::detail
