#include "juliet/evaluate.hh"

#include "analysis/static_analyzer.hh"
#include "compdiff/engine.hh"
#include "minic/parser.hh"
#include "sanitizers/sanitizers.hh"
#include "support/logging.hh"

namespace compdiff::juliet
{

using analysis::Finding;
using analysis::FindingKind;
using compiler::Sanitizer;

std::vector<int>
expectedFindingKinds(int cwe)
{
    auto kind = [](FindingKind k) { return static_cast<int>(k); };
    switch (cwe) {
      case 121: case 122: case 124: case 126: case 127: case 588:
        return {kind(FindingKind::BufferOverflow)};
      case 680:
        return {kind(FindingKind::BufferOverflow),
                kind(FindingKind::IntOverflow)};
      case 415:
        return {kind(FindingKind::DoubleFree)};
      case 416:
        return {kind(FindingKind::UseAfterFree)};
      case 590:
        return {kind(FindingKind::InvalidFree)};
      case 475:
        return {kind(FindingKind::ApiMisuse),
                kind(FindingKind::BufferOverflow)};
      case 685:
        return {kind(FindingKind::ArgMismatch)};
      case 758:
        return {kind(FindingKind::BadShift)};
      case 190: case 191:
        return {kind(FindingKind::IntOverflow)};
      case 369:
        return {kind(FindingKind::DivByZero)};
      case 476:
        return {kind(FindingKind::NullDeref)};
      case 457: case 665:
        return {kind(FindingKind::UninitRead)};
      case 469:
        return {}; // no static tool models this (Table 3)
      default:
        return {};
    }
}

const GroupResult *
EvaluationResult::findGroup(const std::string &name) const
{
    for (const auto &group : groups)
        if (group.group == name)
            return &group;
    return nullptr;
}

std::size_t
EvaluationResult::totalDetected(const std::string &tool) const
{
    std::size_t total = 0;
    for (const auto &group : groups) {
        auto it = group.tools.find(tool);
        if (it != group.tools.end())
            total += it->second.detected;
    }
    return total;
}

namespace
{

bool
matchesExpected(const std::vector<Finding> &findings,
                const std::vector<int> &kinds)
{
    for (const auto &finding : findings)
        for (int k : kinds)
            if (static_cast<int>(finding.kind) == k)
                return true;
    return false;
}

} // namespace

EvaluationResult
evaluateSuite(const std::vector<JulietCase> &cases,
              const EvaluationOptions &options)
{
    EvaluationResult result;
    result.totalCases = cases.size();

    std::map<std::string, GroupResult> groups;
    for (const auto &name : tableGroups()) {
        groups[name].group = name;
    }

    const auto analyzers = analysis::allStaticAnalyzers();

    for (const auto &test : cases) {
        GroupResult &group = groups[test.group];
        const auto kinds = expectedFindingKinds(test.cwe);

        std::unique_ptr<minic::Program> bad;
        std::unique_ptr<minic::Program> good;
        try {
            bad = minic::parseAndCheck(test.badSource);
            good = minic::parseAndCheck(test.goodSource);
        } catch (const support::CompileError &error) {
            support::fatal("case " + test.id +
                           " failed to compile: " + error.what());
        }

        // --- static analyzers ---
        if (options.runStatic) {
            for (const auto &tool : analyzers) {
                ToolOutcome &outcome = group.tools[tool->name()];
                outcome.badTotal++;
                outcome.goodTotal++;
                if (matchesExpected(tool->analyze(*bad), kinds))
                    outcome.detected++;
                if (matchesExpected(tool->analyze(*good), kinds))
                    outcome.falsePositives++;
            }
        }

        // --- sanitizers ---
        bool any_sanitizer = false;
        if (options.runSanitizers) {
            sanitizers::SanitizerRunner bad_runner(*bad,
                                                   options.limits);
            sanitizers::SanitizerRunner good_runner(*good,
                                                    options.limits);
            const struct
            {
                Sanitizer which;
                const char *name;
            } tools[] = {
                {Sanitizer::ASan, "asan"},
                {Sanitizer::UBSan, "ubsan"},
                {Sanitizer::MSan, "msan"},
            };
            for (const auto &tool : tools) {
                ToolOutcome &outcome = group.tools[tool.name];
                outcome.badTotal++;
                outcome.goodTotal++;
                if (bad_runner.check(tool.which, test.input).fired) {
                    outcome.detected++;
                    any_sanitizer = true;
                }
                if (good_runner.check(tool.which, test.input).fired)
                    outcome.falsePositives++;
            }
            ToolOutcome &combined = group.tools["sanitizers-any"];
            combined.badTotal++;
            combined.goodTotal++;
            if (any_sanitizer)
                combined.detected++;
        }

        // --- CompDiff ---
        if (options.runCompDiff) {
            core::DiffOptions diff_options;
            diff_options.limits = options.limits;
            core::DiffEngine bad_engine(*bad, options.configs,
                                        diff_options);
            core::DiffEngine good_engine(*good, options.configs,
                                         diff_options);
            ToolOutcome &outcome = group.tools["compdiff"];
            outcome.badTotal++;
            outcome.goodTotal++;
            auto bad_diff = bad_engine.runInput(test.input);
            if (bad_diff.divergent) {
                outcome.detected++;
                if (options.runSanitizers && !any_sanitizer)
                    group.compdiffUnique++;
            }
            if (good_engine.runInput(test.input).divergent)
                outcome.falsePositives++;
            result.badHashVectors.push_back(bad_diff.hashVector());
        }
    }

    for (const auto &name : tableGroups())
        result.groups.push_back(std::move(groups[name]));
    return result;
}

} // namespace compdiff::juliet
