#include "juliet/suite.hh"

#include <algorithm>

#include "juliet/cases.hh"
#include "support/strings.hh"

namespace compdiff::juliet
{

namespace detail
{
// Defined in cases_memory.cc / cases_other.cc.
JulietCase makeMemoryCase(int cwe, int index, std::uint64_t seed);
JulietCase makeOtherCase(int cwe, int index, std::uint64_t seed);

JulietCase
makeCase(int cwe, int index, std::uint64_t seed)
{
    switch (cwe) {
      case 121: case 122: case 124: case 126: case 127:
      case 415: case 416: case 590: case 680:
        return makeMemoryCase(cwe, index, seed);
      default:
        return makeOtherCase(cwe, index, seed);
    }
}
} // namespace detail

const std::vector<CweInfo> &
cweCatalog()
{
    // Table 2 of the paper, verbatim counts.
    static const std::vector<CweInfo> catalog = {
        {121, "Stack Based Buffer Overflow", 2951, "Memory error"},
        {122, "Heap Based Buffer Overflow", 3575, "Memory error"},
        {124, "Buffer Underwrite", 1024, "Memory error"},
        {126, "Buffer Overread", 721, "Memory error"},
        {127, "Buffer Underread", 1022, "Memory error"},
        {415, "Double Free", 820, "Memory error"},
        {416, "Use After Free", 394, "Memory error"},
        {475, "Undefined Behavior for Input to API", 18,
         "UB for input to API"},
        {588, "Access Child of Non Struct. Pointer", 80,
         "Bad struct. pointer"},
        {590, "Free Memory Not on Heap", 2280, "Memory error"},
        {685, "Function Call With Incorrect #Args.", 18,
         "Bad function call"},
        {758, "Undefined Behavior", 523, "UB"},
        {190, "Integer Overflow", 1564, "Integer error"},
        {191, "Integer Underflow", 1169, "Integer error"},
        {369, "Divide by Zero", 437, "Divide by zero"},
        {476, "NULL Pointer Dereference", 306, "Null pointer deref."},
        {680, "Integer Overflow to Buffer Overflow", 196,
         "Integer error"},
        {457, "Use of Uninitialized Variable", 928,
         "Uninitialized memory"},
        {665, "Improper Initialization", 98, "Uninitialized memory"},
        {469, "Use of Pointer Sub. to Determine Size", 18,
         "UB of pointer sub."},
    };
    return catalog;
}

std::vector<std::string>
tableGroups()
{
    return {
        "Memory error",        "UB for input to API",
        "Bad struct. pointer", "Bad function call",
        "UB",                  "Integer error",
        "Divide by zero",      "Null pointer deref.",
        "Uninitialized memory", "UB of pointer sub.",
    };
}

SuiteBuilder::SuiteBuilder(double scale, std::uint64_t seed)
    : scale_(scale), seed_(seed)
{}

std::size_t
SuiteBuilder::countFor(int cwe) const
{
    for (const auto &info : cweCatalog()) {
        if (info.cwe == cwe) {
            const auto scaled = static_cast<std::size_t>(
                static_cast<double>(info.paperCount) * scale_);
            return std::max<std::size_t>(scaled, 5);
        }
    }
    return 0;
}

std::vector<JulietCase>
SuiteBuilder::buildCwe(int cwe) const
{
    const CweInfo *info = nullptr;
    for (const auto &entry : cweCatalog())
        if (entry.cwe == cwe)
            info = &entry;
    if (!info)
        return {};

    std::vector<JulietCase> cases;
    const std::size_t count = countFor(cwe);
    for (std::size_t i = 0; i < count; i++) {
        JulietCase test =
            detail::makeCase(cwe, static_cast<int>(i), seed_);
        test.id = support::format("CWE%d_fv%zu_n%03zu", cwe, i % 5,
                                  i);
        test.group = info->group;
        cases.push_back(std::move(test));
    }
    return cases;
}

std::vector<JulietCase>
SuiteBuilder::buildAll() const
{
    std::vector<JulietCase> all;
    for (const auto &info : cweCatalog()) {
        auto cases = buildCwe(info.cwe);
        std::move(cases.begin(), cases.end(),
                  std::back_inserter(all));
    }
    return all;
}

} // namespace compdiff::juliet
