/**
 * @file
 * Case builders for the memory-corruption CWEs: 121, 122, 124, 126,
 * 127, 415, 416, 590, and 680.
 *
 * Data-variant design (drives the Table 3 shapes):
 *  - "near"     variants trespass just past the object: sanitizer
 *               redzones catch them; layout padding differences make
 *               many of them diverge too.
 *  - "neighbor" variants land inside another *valid* object: ASan is
 *               structurally blind there, while the per-configuration
 *               layout decides the victim — CompDiff-unique bugs.
 *  - "silent"   variants corrupt memory that never influences the
 *               output: ASan catches them, CompDiff cannot.
 */

#include "juliet/cases.hh"

#include "support/strings.hh"

namespace compdiff::juliet::detail
{

using support::format;

namespace
{

std::string
program(const std::string &top, const std::string &body)
{
    return top + "int main() {\n" + body + "return 0;\n}\n";
}

/** CWE-121 stack-based buffer overflow (write). */
JulietCase
cwe121(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {55, 15, 30}; // near / neighbor / silent
    const int d = pickVariant(121, index, variants, 3);
    const long size = 8 + 4 * static_cast<long>(rng.below(4));

    auto build = [&](bool bad) {
        const long idx = bad ? (d == 1 ? size + 16 +
                                             static_cast<long>(
                                                 rng.below(3))
                                       : size +
                                             static_cast<long>(
                                                 rng.below(2)))
                             : size - 1;
        Flow flow = valueFlow(fv, "idx", idx, size - 1, bad,
                              index * 10 + 1);
        std::string body;
        if (d == 1) {
            body = format(
                "char first_%d[%ld];\n"
                "char second_%d[%ld];\n"
                "for (int i = 0; i < %ld; i += 1) {\n"
                "    first_%d[i] = 'a';\n"
                "    second_%d[i] = 'b';\n"
                "    second_%d[i + %ld] = 'b';\n"
                "}\n"
                "%s"
                "first_%d[idx] = 'Z';\n"
                "for (int j = 0; j < %ld; j += 1) {\n"
                "    print_char(second_%d[j]);\n"
                "}\n"
                "newline();\n",
                index, size, index, size * 2, size, index, index,
                index, size, flow.prologue.c_str(), index, size * 2,
                index);
        } else {
            body = format(
                "int sentinel_%d = 7777;\n"
                "char buf_%d[%ld];\n"
                "for (int i = 0; i < %ld; i += 1) {\n"
                "    buf_%d[i] = 'a';\n"
                "}\n"
                "%s"
                "buf_%d[idx] = 'Z';\n",
                index, index, size, size, index,
                flow.prologue.c_str(), index);
            if (d == 0) {
                body += format("print_int(sentinel_%d);\n"
                               "print_char(buf_%d[0]);\n"
                               "newline();\n",
                               index, index);
            } else {
                body += "print_str(\"done\");\nnewline();\n";
            }
        }
        out.input = flow.input;
        return program(flow.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = d == 1 ? "stack overflow into neighbor"
                             : d == 0 ? "stack overflow near bound"
                                      : "silent stack overflow";
    return out;
}

/** CWE-122 heap-based buffer overflow. */
JulietCase
cwe122(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {45, 25, 30}; // readback / far-read / silent
    const int d = pickVariant(122, index, variants, 3);
    const long size = 16 + 16 * static_cast<long>(rng.below(2));

    auto build = [&](bool bad) {
        const long idx = bad ? (d == 1 ? size + 32 +
                                             static_cast<long>(
                                                 rng.below(4))
                                       : size +
                                             static_cast<long>(
                                                 rng.below(4)))
                             : size - 1;
        Flow flow = valueFlow(fv, "idx", idx, size - 1, bad,
                              index * 10 + 2);
        std::string body;
        if (d == 1) {
            // Far read landing in the next chunk's uninitialized
            // tail: valid memory (ASan-blind), content is the
            // configuration's heap fill pattern.
            body = format(
                "char *p_%d = malloc(%ldL);\n"
                "char *q_%d = malloc(%ldL);\n"
                "if (p_%d == 0 || q_%d == 0) { return 1; }\n"
                "for (int i = 0; i < 4; i += 1) { q_%d[i] = 'q'; }\n"
                "for (int i = 0; i < %ld; i += 1) { p_%d[i] = 'p'; }\n"
                "%s"
                "print_int(p_%d[idx]);\n"
                "newline();\n",
                index, size, index, size * 4, index, index, index,
                size, index, flow.prologue.c_str(), index);
        } else if (d == 0) {
            // Write just past the chunk, then read further: the
            // write trespasses (redzone under ASan); reading one
            // byte beyond surfaces the heap fill pattern. The good
            // variant stays strictly inside the chunk.
            body = format(
                "char *p_%d = malloc(%ldL);\n"
                "if (p_%d == 0) { return 1; }\n"
                "for (int i = 0; i < %ld; i += 1) { p_%d[i] = 'p'; }\n"
                "%s"
                "p_%d[idx] = 'W';\n"
                "print_int(p_%d[idx %s 1]);\n"
                "newline();\n",
                index, size, index, size, index,
                flow.prologue.c_str(), index, index,
                bad ? "+" : "-");
        } else {
            body = format(
                "char *p_%d = malloc(%ldL);\n"
                "if (p_%d == 0) { return 1; }\n"
                "%s"
                "p_%d[idx] = 'W';\n"
                "print_str(\"ok\");\nnewline();\n",
                index, size, index, flow.prologue.c_str(), index);
        }
        out.input = flow.input;
        return program(flow.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "heap buffer overflow";
    return out;
}

/** CWE-124 buffer underwrite. */
JulietCase
cwe124(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {55, 45}; // stack-victim / heap-silent
    const int d = pickVariant(124, index, variants, 2);
    const long size = 8 + 8 * static_cast<long>(rng.below(2));

    auto build = [&](bool bad) {
        const long idx = bad ? -2 - static_cast<long>(rng.below(6))
                             : 0;
        Flow flow = valueFlow(fv, "idx", idx, 0, bad,
                              index * 10 + 3);
        std::string body;
        if (d == 0) {
            body = format(
                "long marker_%d = 123456789L;\n"
                "char buf_%d[%ld];\n"
                "for (int i = 0; i < %ld; i += 1) {\n"
                "    buf_%d[i] = 'x';\n"
                "}\n"
                "%s"
                "buf_%d[idx] = 'U';\n"
                "print_long(marker_%d);\n"
                "newline();\n",
                index, index, size, size, index,
                flow.prologue.c_str(), index, index);
        } else {
            body = format(
                "char *p_%d = malloc(%ldL);\n"
                "if (p_%d == 0) { return 1; }\n"
                "%s"
                "p_%d[idx] = 'U';\n"
                "print_str(\"ok\");\nnewline();\n",
                index, size, index, flow.prologue.c_str(), index);
        }
        out.input = flow.input;
        return program(flow.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "buffer underwrite";
    return out;
}

/** CWE-126 buffer overread / CWE-127 buffer underread. */
JulietCase
cweOverUnderRead(int cwe, int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {40, 30, 30}; // stack / heap / discarded
    const int d = pickVariant(cwe, index, variants, 3);
    const long size = 8 + 4 * static_cast<long>(rng.below(4));
    const bool over = cwe == 126;

    auto build = [&](bool bad) {
        long idx;
        if (!bad)
            idx = over ? size - 1 : 0;
        else if (over)
            idx = size + static_cast<long>(rng.below(8));
        else
            idx = -1 - static_cast<long>(rng.below(8));
        Flow flow = valueFlow(fv, "idx", idx, over ? size - 1 : 0,
                              bad, index * 10 + 4);
        std::string body;
        if (d == 1) {
            body = format(
                "char *p_%d = malloc(%ldL);\n"
                "if (p_%d == 0) { return 1; }\n"
                "for (int i = 0; i < %ld; i += 1) { p_%d[i] = 'h'; }\n"
                "%s"
                "int value_%d = p_%d[idx];\n"
                "print_int(value_%d);\n"
                "newline();\n",
                index, size, index, size, index,
                flow.prologue.c_str(), index, index, index);
        } else {
            body = format(
                "char data_%d[%ld];\n"
                "for (int i = 0; i < %ld; i += 1) {\n"
                "    data_%d[i] = (char)(65 + i);\n"
                "}\n"
                "%s"
                "int value_%d = data_%d[idx];\n",
                index, size, size, index, flow.prologue.c_str(),
                index, index);
            if (d == 2) {
                // Value discarded: no propagation to the output.
                body += format("if (value_%d == 1234567) {\n"
                               "    print_str(\"never\");\n"
                               "}\n"
                               "print_str(\"steady\");\nnewline();\n",
                               index);
            } else {
                body += format("print_int(value_%d);\nnewline();\n",
                               index);
            }
        }
        out.input = flow.input;
        return program(flow.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = over ? "buffer overread" : "buffer underread";
    return out;
}

/** CWE-415 double free. */
JulietCase
cwe415(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {55, 45}; // immediate / non-top
    const int d = pickVariant(415, index, variants, 2);
    const long size = 16 + 16 * static_cast<long>(rng.below(3));

    auto build = [&](bool bad) {
        std::string flaw;
        if (d == 0) {
            flaw = format("char *p = malloc(%ldL);\n"
                          "if (p == 0) { return; }\n"
                          "free(p);\n"
                          "%s"
                          "print_str(\"freed\");\nnewline();\n",
                          size, bad ? "free(p);\n" : "");
        } else {
            // The repeated chunk is no longer the free-list top:
            // the glibc-style detector misses it too.
            flaw = format("char *p = malloc(%ldL);\n"
                          "char *q = malloc(%ldL);\n"
                          "if (p == 0 || q == 0) { return; }\n"
                          "free(p);\n"
                          "free(q);\n"
                          "%s"
                          "print_str(\"freed\");\nnewline();\n",
                          size, size, bad ? "free(p);\n" : "");
        }
        // Wrap in a helper taking no value (statement flow).
        StmtFlow sf = stmtFlow(fv, flaw, index * 10 + 5);
        // stmtFlow bodies use `return;` only inside helpers; patch
        // for inline variants.
        std::string body = sf.body;
        if (fv != 2) {
            body = support::replaceAll(body, "return;", "return 1;");
        }
        out.input = sf.input;
        return program(sf.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "double free";
    return out;
}

/** CWE-416 use after free. */
JulietCase
cwe416(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {45, 25, 30}; // read / silent-write / reuse
    const int d = pickVariant(416, index, variants, 3);
    const long size = 16 + 16 * static_cast<long>(rng.below(3));

    auto build = [&](bool bad) {
        std::string flaw;
        if (d == 0) {
            flaw = format(
                "int *p = (int *)malloc(%ldL);\n"
                "if (p == 0) { return; }\n"
                "p[0] = 424242;\n"
                "%s"
                "print_int(p[0]);\nnewline();\n",
                size, bad ? "free((char *)p);\n" : "");
        } else if (d == 1) {
            flaw = format(
                "int *p = (int *)malloc(%ldL);\n"
                "if (p == 0) { return; }\n"
                "p[0] = 1;\n"
                "%s"
                "p[1] = 99;\n"
                "print_str(\"written\");\nnewline();\n",
                size, bad ? "free((char *)p);\n" : "");
        } else {
            // Stale pointer observes whichever later allocation the
            // configuration's reuse order hands out.
            flaw = format(
                "char *a = malloc(%ldL);\n"
                "char *b = malloc(%ldL);\n"
                "if (a == 0 || b == 0) { return; }\n"
                "a[0] = 'A';\n"
                "b[0] = 'B';\n"
                "%s"
                "char *c = malloc(%ldL);\n"
                "if (c == 0) { return; }\n"
                "c[0] = 'C';\n"
                "print_char(a[0]);\nnewline();\n",
                size, size,
                bad ? "free(a);\nfree(b);\n" : "free(b);\n", size);
        }
        StmtFlow sf = stmtFlow(fv, flaw, index * 10 + 6);
        std::string body = sf.body;
        if (fv != 2)
            body = support::replaceAll(body, "return;", "return 1;");
        out.input = sf.input;
        return program(sf.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "use after free";
    return out;
}

/** CWE-590 free of memory not on the heap. */
JulietCase
cwe590(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {40, 30, 30}; // stack / global / interior
    const int d = pickVariant(590, index, variants, 2 + (index % 2));
    const long size = 8 + 8 * static_cast<long>(rng.below(3));

    auto build = [&](bool bad) {
        std::string top;
        std::string flaw;
        if (d == 1) {
            top = format("char pool_%d[%ld];\n", index, size);
            flaw = format("char *p = &pool_%d[0];\n"
                          "%s"
                          "print_str(\"released\");\nnewline();\n",
                          index, bad ? "free(p);\n" : "");
        } else if (d == 2) {
            flaw = format("char *p = malloc(%ldL);\n"
                          "if (p == 0) { return; }\n"
                          "char *q = p + 4;\n"
                          "free(%s);\n"
                          "print_str(\"released\");\nnewline();\n",
                          size, bad ? "q" : "p");
        } else {
            flaw = format("char local_%d[%ld];\n"
                          "local_%d[0] = 'l';\n"
                          "char *p = &local_%d[0];\n"
                          "%s"
                          "print_str(\"released\");\nnewline();\n",
                          index, size, index, index,
                          bad ? "free(p);\n" : "");
        }
        StmtFlow sf = stmtFlow(fv, flaw, index * 10 + 7);
        std::string body = sf.body;
        if (fv != 2)
            body = support::replaceAll(body, "return;", "return 1;");
        out.input = sf.input;
        return program(top + sf.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "free of non-heap memory";
    return out;
}

/** CWE-680 integer overflow leading to buffer overflow. */
JulietCase
cwe680(int index, int fv, support::Rng &rng)
{
    JulietCase out;
    const int variants[] = {60, 40}; // readback / silent
    const int d = pickVariant(680, index, variants, 2);
    (void)rng;

    auto build = [&](bool bad) {
        // count*count*16 wraps to 0 for count == 65536: the
        // allocation ends up tiny and the fill loop trespasses.
        Flow flow = valueFlow(fv, "count", bad ? 65536 : 10, 10,
                              bad, index * 10 + 8);
        std::string body = flow.prologue;
        body += format(
            "int bytes_%d = count * count * 16;\n"
            "char *p_%d = malloc((long)bytes_%d);\n"
            "if (p_%d == 0) { print_str(\"oom\"); return 0; }\n"
            "for (int i = 0; i < 40; i += 1) { p_%d[i] = 'f'; }\n",
            index, index, index, index, index);
        if (d == 0) {
            body += format("print_int(p_%d[39]);\n"
                           "newline();\n",
                           index);
        } else {
            body += "print_str(\"filled\");\nnewline();\n";
        }
        out.input = flow.input;
        return program(flow.topDecls, body);
    };
    out.badSource = build(true);
    out.goodSource = build(false);
    out.description = "integer overflow to buffer overflow";
    return out;
}

} // namespace

JulietCase
makeMemoryCase(int cwe, int index, std::uint64_t seed)
{
    support::Rng rng(seed ^ (static_cast<std::uint64_t>(cwe) << 32) ^
                     static_cast<std::uint64_t>(index));
    const int fv = index % 5;
    JulietCase out;
    switch (cwe) {
      case 121: out = cwe121(index, fv, rng); break;
      case 122: out = cwe122(index, fv, rng); break;
      case 124: out = cwe124(index, fv, rng); break;
      case 126:
      case 127: out = cweOverUnderRead(cwe, index, fv, rng); break;
      case 415: out = cwe415(index, fv, rng); break;
      case 416: out = cwe416(index, fv, rng); break;
      case 590: out = cwe590(index, fv, rng); break;
      case 680: out = cwe680(index, fv, rng); break;
      default: break;
    }
    out.cwe = cwe;
    return out;
}

} // namespace compdiff::juliet::detail
