#pragma once

/**
 * @file
 * The Juliet evaluation harness (paper Section 4.1, Table 3).
 *
 * For every test case it runs:
 *  - the three static analyzers on the bad and good variants
 *    (detection = a finding of the CWE's expected kind; false
 *    positive = the same on the good variant),
 *  - the three sanitizers on the bad and good variants (detection =
 *    a sanitizer report on the case input),
 *  - CompDiff with the standard ten implementations (detection =
 *    output divergence on the case input).
 *
 * It aggregates rates per Table 3 row group, counts the bugs only
 * CompDiff finds (the #Unique column), and records every bad case's
 * per-implementation output-hash vector for the Figure 1 subset
 * analysis.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/config.hh"
#include "juliet/suite.hh"
#include "vm/vm.hh"

namespace compdiff::juliet
{

/** Per-tool tally within one row group. */
struct ToolOutcome
{
    std::size_t detected = 0;
    std::size_t falsePositives = 0;
    std::size_t badTotal = 0;
    std::size_t goodTotal = 0;

    double
    detectionRate() const
    {
        return badTotal ? 100.0 * static_cast<double>(detected) /
                              static_cast<double>(badTotal)
                        : 0.0;
    }

    double
    falsePositiveRate() const
    {
        const std::size_t reports = detected + falsePositives;
        return reports ? 100.0 *
                             static_cast<double>(falsePositives) /
                             static_cast<double>(reports)
                       : 0.0;
    }
};

/** One Table 3 row. */
struct GroupResult
{
    std::string group;
    /** Keys: deepscan, lintcheck, inferlite, asan, ubsan, msan,
     *  sanitizers-any, compdiff. */
    std::map<std::string, ToolOutcome> tools;
    /** Bugs detected by CompDiff but by no sanitizer. */
    std::size_t compdiffUnique = 0;
};

/** Full evaluation output. */
struct EvaluationResult
{
    std::vector<GroupResult> groups;
    /** Per bad case: output hash under each implementation
     *  (configuration order), for subset analysis. */
    std::vector<std::vector<std::uint64_t>> badHashVectors;
    std::size_t totalCases = 0;

    const GroupResult *findGroup(const std::string &name) const;

    /** Sum of a tool's detections across all groups. */
    std::size_t totalDetected(const std::string &tool) const;
};

/** Harness knobs. */
struct EvaluationOptions
{
    vm::VmLimits limits;
    bool runStatic = true;
    bool runSanitizers = true;
    bool runCompDiff = true;
    std::vector<compiler::CompilerConfig> configs =
        compiler::standardImplementations();
};

/** Evaluate all tools over a set of cases. */
EvaluationResult evaluateSuite(const std::vector<JulietCase> &cases,
                               const EvaluationOptions &options = {});

/** Static finding kinds that count as detecting a given CWE. */
std::vector<int> expectedFindingKinds(int cwe);

} // namespace compdiff::juliet
