#include "juliet/cases.hh"

#include "support/hash.hh"
#include "support/strings.hh"

namespace compdiff::juliet::detail
{

using support::format;

Flow
valueFlow(int fv, const std::string &name, long value,
          long safe_value, bool triggered, int uniq)
{
    Flow flow;
    const long v = triggered ? value : safe_value;
    switch (fv) {
      case 0:
        flow.prologue = format("int %s = %ld;\n", name.c_str(), v);
        return flow;
      case 1:
        flow.prologue = format(
            "int flag_%d = 1;\n"
            "int %s = %ld;\n"
            "if (flag_%d == 1) { %s = %ld; }\n",
            uniq, name.c_str(), safe_value, uniq, name.c_str(), v);
        return flow;
      case 2:
        flow.topDecls = format("int source_%d() { return %ld; }\n",
                               uniq, v);
        flow.prologue = format("int %s = source_%d();\n",
                               name.c_str(), uniq);
        return flow;
      case 3: {
        // Deliver the value through a loop induction variable.
        const long magnitude = v < 0 ? -v : v;
        flow.prologue = format(
            "int %s = 0;\n"
            "for (int fi_%d = 0; fi_%d <= %ld; fi_%d += 1) {\n"
            "    %s = fi_%d;\n"
            "}\n",
            name.c_str(), uniq, uniq, magnitude, uniq, name.c_str(),
            uniq);
        if (v < 0) {
            flow.prologue += format("%s = 0 - %s;\n", name.c_str(),
                                    name.c_str());
        }
        return flow;
      }
      default:
        if (triggered) {
            flow.prologue = format(
                "int %s = %ld;\n"
                "if (input_byte(0) == 66) { %s = %ld; }\n",
                name.c_str(), safe_value, name.c_str(), v);
        } else {
            // Good variant: a properly clamped input-derived value —
            // the classic shape that imprecise static tools still
            // flag (the Table 3 false-positive signature).
            flow.prologue = format(
                "int %s = input_byte(1);\n"
                "if (%s < 0 || %s > %ld) { %s = %ld; }\n",
                name.c_str(), name.c_str(), name.c_str(),
                safe_value, name.c_str(), safe_value);
        }
        flow.input = {66};
        return flow;
    }
}

StmtFlow
stmtFlow(int fv, const std::string &stmts, int uniq)
{
    StmtFlow flow;
    switch (fv) {
      case 0:
        flow.body = stmts;
        return flow;
      case 1:
        flow.body = format("int flag_%d = 1;\n"
                           "if (flag_%d == 1) {\n%s}\n",
                           uniq, uniq, stmts.c_str());
        return flow;
      case 2:
        flow.topDecls = format("void action_%d() {\n%s}\n", uniq,
                               stmts.c_str());
        flow.body = format("action_%d();\n", uniq);
        return flow;
      case 3:
        flow.body = format(
            "for (int fi_%d = 0; fi_%d < 3; fi_%d += 1) {\n"
            "    if (fi_%d == 2) {\n%s    }\n"
            "}\n",
            uniq, uniq, uniq, uniq, stmts.c_str());
        return flow;
      default:
        flow.body = format("if (input_byte(0) == 66) {\n%s}\n"
                           "else { print_str(\"idle\"); }\n",
                           stmts.c_str());
        flow.input = {66};
        return flow;
    }
}

int
pickVariant(int cwe, int index, const int *weights, int count)
{
    int total = 0;
    for (int i = 0; i < count; i++)
        total += weights[i];
    const auto roll = static_cast<int>(
        support::murmurMix64(
            (static_cast<std::uint64_t>(cwe) << 32) |
            static_cast<std::uint32_t>(index * 2654435761u)) %
        static_cast<std::uint64_t>(total));
    int acc = 0;
    for (int i = 0; i < count; i++) {
        acc += weights[i];
        if (roll < acc)
            return i;
    }
    return count - 1;
}

} // namespace compdiff::juliet::detail
