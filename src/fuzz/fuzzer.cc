#include "fuzz/fuzzer.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "compiler/cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "reduce/oracle.hh"
#include "semdiff/canon.hh"
#include "support/hash.hh"

namespace compdiff::fuzz
{

using support::Bytes;

Fuzzer::Fuzzer(const minic::Program &program,
               std::vector<Bytes> initial_seeds, FuzzOptions options)
    : program_(program), options_(std::move(options)),
      rng_(options_.rngSeed),
      mutator_(rng_.split(), options_.maxInputSize),
      fuzzModule_(
          compiler::compileCached(program, options_.fuzzConfig)),
      fuzzVm_(*fuzzModule_, options_.fuzzConfig, options_.limits),
      canonFingerprint_(semdiff::canonicalize(program).fingerprint)
{
    if (options_.sancheckMode) {
        if (options_.sancheckImpls.empty())
            options_.sancheckImpls =
                sancheck::defaultImplementations();
        sanOracle_ = std::make_unique<sancheck::SanCheckOracle>(
            program_, options_.sancheckImpls, options_.limits);
        // One row per sancheck config: the certifying reference
        // interpreter plus every sanitized implementation.
        perConfigExecs_.assign(options_.sancheckImpls.size() + 1, 0);
    } else if (options_.enableCompDiff) {
        core::DiffOptions diff_options = options_.diffOptions;
        diff_options.limits = options_.limits;
        diff_options.jobs = options_.jobs;
        diffEngine_ = std::make_unique<core::DiffEngine>(
            program_, options_.diffImpls, diff_options);
        perConfigExecs_.assign(diffEngine_->size(), 0);
    }
    if (initial_seeds.empty())
        initial_seeds.push_back({});
    for (auto &seed : initial_seeds) {
        if (seed.size() > options_.maxInputSize)
            seed.resize(options_.maxInputSize);
        corpus_.push_back({std::move(seed), 0, 0, 0});
    }
}

std::size_t
Fuzzer::selectSeed()
{
    // Favor recent discoveries: exponential bias toward the corpus
    // tail (AFL's queue cycling spirit without its bookkeeping).
    if (corpus_.size() == 1 || rng_.chance(1, 3))
        return rng_.index(corpus_.size());
    const std::size_t half = corpus_.size() / 2;
    return half + rng_.index(corpus_.size() - half);
}

std::string
Fuzzer::crashSignatureOf(const vm::ExecutionResult &result)
{
    std::string signature = result.exitClass();
    for (const auto &report : result.sanReports)
        signature += "|" + report.str();
    return signature;
}

void
Fuzzer::executeOne(Bytes input, std::size_t depth)
{
    // --- the plain AFL++ part: run B_fuzz with coverage ---
    coverage_.reset();
    vm::ExecutionResult result;
    {
        obs::Span span("fuzz.execute");
        result = fuzzVm_.run(input, &coverage_, ++nonceCounter_);
    }
    stats_.execs++;

    obs::Span triage_span("fuzz.triage");
    const bool is_crash = result.crashed() || result.sanitizerFired();
    if (is_crash) {
        const std::string signature = crashSignatureOf(result);
        if (!crashSignatures_.count(signature)) {
            crashSignatures_[signature] = crashes_.size();
            crashes_.push_back({input, result.exitClass(),
                                result.sanReports, result.probes,
                                stats_.execs});
            stats_.lastFindExec = stats_.execs;
            obs::counter("fuzz.unique_crashes").add();
        }
    }
    if (virgin_.mergeAndCheckNew(coverage_)) {
        corpus_.push_back({input, coverage_.countBits(),
                           stats_.execs,
                           static_cast<int>(depth) + 1});
        stats_.lastFindExec = stats_.execs;
        obs::counter("fuzz.corpus_adds").add();
    }

    // --- the sancheck part (flipped oracle, DESIGN.md §14) ---
    if (sanOracle_) {
        // nonceCounter_ == stats_.execs here: the exec index doubles
        // as the oracle nonce, the same value restoreState() replays
        // the record under.
        runSancheck(input, result.probes, nonceCounter_);
        return;
    }

    // --- the CompDiff part (Algorithm 1, lines 9-12) ---
    if (!diffEngine_)
        return;

    if (oracleBatchActive_) {
        // Defer the k-way oracle round: the queue drains through
        // DiffEngine::runBatch at the next observation point (plot
        // sample, safe point, end of run), implementation-major so
        // each resident binary runs the batch back to back.
        // nonceCounter_ == stats_.execs here, so the recorded exec
        // index doubles as the oracle nonce base — the same value
        // restoreState() replays the record under.
        pendingDiffs_.push_back(
            {std::move(input), nonceCounter_, result.probes});
        return;
    }

    auto diff = diffEngine_->runInput(input, nonceCounter_);

    // Optional NEZHA-style feedback: a new behavior-class partition
    // is as interesting as new coverage. Feedback mutates the corpus
    // per execution, which is why the batch path above is never
    // taken when it is enabled.
    if (options_.divergenceFeedback) {
        support::HashCombiner partition;
        for (std::size_t cls : diff.classOf)
            partition.add(cls);
        if (partitionsSeen_.insert(partition.digest()).second &&
            partitionsSeen_.size() > 1) {
            corpus_.push_back({input, coverage_.countBits(),
                               stats_.execs,
                               static_cast<int>(depth) + 1});
        }
    }

    recordDiffOutcome(input, std::move(diff), result.probes,
                      stats_.execs);
}

void
Fuzzer::recordDiffOutcome(const Bytes &input, core::DiffResult diff,
                          const std::vector<int> &probes,
                          std::uint64_t exec_index)
{
    // Retries re-ran every implementation; count actual executions
    // so per-config totals stay consistent (RQ6).
    const std::uint64_t rounds =
        diff.attempts > 0 ? static_cast<std::uint64_t>(diff.attempts)
                          : 1;
    stats_.compdiffExecs += rounds * diffEngine_->size();
    for (auto &execs : perConfigExecs_)
        execs += rounds;

    if (!diff.divergent)
        return;
    // Unique by the set of ground-truth probes the input fired (the
    // automatic stand-in for the paper's manual triage); inputs with
    // no probes fall back to the behavior-class partition.
    support::HashCombiner combiner;
    std::vector<int> sorted = probes;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()),
                 sorted.end());
    if (sorted.empty()) {
        for (std::size_t i = 0; i < diff.classOf.size(); i++)
            combiner.add(diff.classOf[i]);
        for (const auto &obs : diff.observations)
            combiner.addString(obs.exitClass);
    } else {
        for (int probe : sorted)
            combiner.add(static_cast<std::uint64_t>(probe));
    }
    const std::uint64_t signature = combiner.digest();
    if (!diffSignatures_.count(signature)) {
        // Tier-2 key: probe-FREE behavior signature, so two
        // probe-distinguished witnesses of the same underlying bug
        // already share a semantic key at fuzz time.
        const std::uint64_t semantic_key = semdiff::semanticKeyOf(
            canonFingerprint_, reduce::divergenceSignature(diff));
        diffSignatures_[signature] = diffs_.size();
        diffs_.push_back({input, std::move(diff), exec_index, probes,
                          signature, semantic_key, {}});
        // max(), not assignment: a batch flush can record a find
        // after later executions already advanced the clock, and
        // the serial path's monotone assignments are the same value.
        stats_.lastFindExec =
            std::max(stats_.lastFindExec, exec_index);
        stats_.lastDiffExec =
            std::max(stats_.lastDiffExec, exec_index);
        obs::counter("fuzz.unique_diffs").add();
    }
}

void
Fuzzer::runSancheck(const Bytes &input,
                    const std::vector<int> &probes,
                    std::uint64_t exec_index)
{
    obs::Span span("fuzz.sancheck");
    sancheck::Outcome outcome =
        sanOracle_->runInput(input, exec_index);
    stats_.compdiffExecs +=
        static_cast<std::uint64_t>(perConfigExecs_.size());
    for (auto &execs : perConfigExecs_)
        execs += 1;

    for (sancheck::SanFinding &finding : outcome.findings) {
        const std::uint64_t signature = finding.signatureHash();
        if (diffSignatures_.count(signature))
            continue;
        diffSignatures_[signature] = diffs_.size();
        FoundDiff diff;
        diff.input = input;
        diff.execIndex = exec_index;
        diff.probes = probes;
        diff.signature = signature;
        diff.sanFinding = std::move(finding);
        diffs_.push_back(std::move(diff));
        stats_.lastFindExec =
            std::max(stats_.lastFindExec, exec_index);
        stats_.lastDiffExec =
            std::max(stats_.lastDiffExec, exec_index);
        obs::counter("fuzz.unique_san_findings").add();
    }
}

void
Fuzzer::flushDiffBatch()
{
    if (pendingDiffs_.empty())
        return;
    obs::Span span("fuzz.flushDiffBatch");
    std::vector<Bytes> inputs;
    std::vector<std::uint64_t> nonce_bases;
    inputs.reserve(pendingDiffs_.size());
    nonce_bases.reserve(pendingDiffs_.size());
    for (auto &pending : pendingDiffs_) {
        inputs.push_back(std::move(pending.input));
        nonce_bases.push_back(pending.execIndex);
    }
    auto results = diffEngine_->runBatch(inputs, nonce_bases);
    for (std::size_t i = 0; i < results.size(); i++) {
        recordDiffOutcome(inputs[i], std::move(results[i]),
                          pendingDiffs_[i].probes,
                          pendingDiffs_[i].execIndex);
    }
    pendingDiffs_.clear();
}

std::size_t
Fuzzer::importSeeds(const std::vector<Bytes> &inputs)
{
    std::size_t imported = 0;
    for (const auto &input : inputs) {
        if (stats_.execs >= options_.maxExecs)
            break;
        Bytes capped = input;
        if (capped.size() > options_.maxInputSize)
            capped.resize(options_.maxInputSize);
        // Depth 0: an import is a fresh starting point, like an
        // initial seed — its mutation lineage starts here.
        executeOne(std::move(capped), 0);
        imported++;
    }
    // Imports happen at safe points (fleet sync inside the iteration
    // hook): complete their deferred oracle runs before returning so
    // the caller — which may checkpoint next — sees fully triaged
    // state, exactly as the serial path would leave it.
    flushDiffBatch();
    return imported;
}

void
Fuzzer::mergeVirginBytes(const Bytes &bytes)
{
    vm::VirginMap foreign;
    if (foreign.restoreBytes(bytes))
        virgin_.merge(foreign);
}

FuzzStats
Fuzzer::run()
{
    obs::Span campaign_span("fuzz.campaign");
    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint64_t plot_every =
        options_.plotEvery
            ? options_.plotEvery
            : std::max<std::uint64_t>(options_.maxExecs / 50, 1);
    haltedByHook_ = false;

    // A checkpoint taken at shutdown of a *finished* campaign is the
    // final post-run snapshot: restoring it leaves nothing to do,
    // and re-running the epilogue would duplicate the final plot row.
    if (resumed_ && stats_.execs >= options_.maxExecs)
        return stats_;

    // Batch the oracle whenever its results cannot influence fuzzing
    // decisions (divergence feedback folds oracle results back into
    // the corpus, so it stays serial). Every observation point below
    // flushes first, which keeps plot rows, checkpoints, and final
    // stats bit-identical to the serial oracle.
    oracleBatchActive_ = diffEngine_ && options_.oracleBatch &&
                         !options_.divergenceFeedback;

    const auto sample_plot = [&] {
        plot_.addRow({stats_.execs, corpus_.size(), crashes_.size(),
                      diffs_.size(), virgin_.edgesSeen(),
                      stats_.compdiffExecs});
    };

    // Dry-run the initial seeds first (AFL++ does the same). A
    // resumed campaign already did this before its first checkpoint:
    // checkpoints happen only at the safe point below, which the
    // dry-run precedes.
    if (!resumed_) {
        nextPlot_ = plot_every;
        const std::size_t initial = corpus_.size();
        for (std::size_t i = 0;
             i < initial && stats_.execs < options_.maxExecs; i++) {
            executeOne(corpus_[i].data, 0);
        }
    }

    while (stats_.execs < options_.maxExecs) {
        // Safe point: the batch flush makes all campaign state
        // consistent here, so the session hook can checkpoint — or
        // halt — between seeds.
        if (hook_) {
            flushDiffBatch();
            if (!hook_(*this)) {
                haltedByHook_ = true;
                break;
            }
        }

        const std::size_t seed_index = selectSeed();
        // Snapshot: corpus_ may grow while we mutate.
        const Bytes parent = corpus_[seed_index].data;
        const int depth = corpus_[seed_index].depth;

        std::vector<Bytes> splice_pool;
        if (corpus_.size() > 1) {
            for (int i = 0; i < 4; i++)
                splice_pool.push_back(
                    corpus_[rng_.index(corpus_.size())].data);
        }

        for (std::uint32_t i = 0;
             i < options_.energyBase &&
             stats_.execs < options_.maxExecs;
             i++) {
            Bytes child;
            {
                obs::Span span("fuzz.mutate");
                child = mutator_.mutate(parent, splice_pool);
            }
            executeOne(child, static_cast<std::size_t>(depth));
            if (stats_.execs >= nextPlot_) {
                flushDiffBatch();
                sample_plot();
                nextPlot_ += plot_every;
            }
        }
    }

    flushDiffBatch();
    oracleBatchActive_ = false;
    stats_.seeds = corpus_.size();
    stats_.crashes = crashes_.size();
    stats_.diffs = diffs_.size();
    stats_.edges = virgin_.edgesSeen();

    // A halted campaign is abandoned mid-flight: its state was
    // checkpointed at the safe point, and the resumed process will
    // take the final plot sample and write telemetry when the budget
    // is actually exhausted.
    if (haltedByHook_)
        return stats_;
    sample_plot();

    if (!options_.statsOutPath.empty() ||
        !options_.plotOutPath.empty()) {
        auto snapshot = statsSnapshot();
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        if (secs > 0)
            snapshot.execsPerSec =
                static_cast<double>(stats_.execs) / secs;
        if (!options_.statsOutPath.empty()) {
            obs::writeTextFile(options_.statsOutPath,
                               obs::renderFuzzerStats(snapshot));
        }
        if (!options_.plotOutPath.empty())
            obs::writeTextFile(options_.plotOutPath, plot_.str());
    }
    return stats_;
}

obs::FuzzerStatsSnapshot
Fuzzer::statsSnapshot() const
{
    obs::FuzzerStatsSnapshot snapshot;
    snapshot.execsDone = stats_.execs;
    snapshot.compdiffExecs = stats_.compdiffExecs;
    if (sanOracle_) {
        const auto ids = sanOracle_->configIds();
        for (std::size_t i = 0; i < perConfigExecs_.size(); i++) {
            snapshot.perConfigExecs.emplace_back(
                ids[i], perConfigExecs_[i]);
        }
    } else if (diffEngine_) {
        const auto &impls = diffEngine_->implementations();
        for (std::size_t i = 0; i < perConfigExecs_.size(); i++) {
            snapshot.perConfigExecs.emplace_back(
                impls[i]->id(), perConfigExecs_[i]);
        }
    }
    snapshot.corpusSize = corpus_.size();
    snapshot.crashes = crashes_.size();
    snapshot.diffs = diffs_.size();
    snapshot.edges = virgin_.edgesSeen();
    snapshot.lastFindExec = stats_.lastFindExec;
    snapshot.lastDiffExec = stats_.lastDiffExec;
    return snapshot;
}

FuzzerState
Fuzzer::captureState() const
{
    FuzzerState state;
    state.stats = stats_;
    state.nonceCounter = nonceCounter_;
    state.rng = rng_.state();
    state.mutatorRng = mutator_.rngState();
    state.nextPlot = nextPlot_;
    state.corpus = corpus_;
    state.diffs.reserve(diffs_.size());
    for (const auto &diff : diffs_) {
        state.diffs.push_back(
            {diff.input, diff.execIndex, diff.signature,
             diff.probes});
    }
    state.crashes.reserve(crashes_.size());
    for (const auto &crash : crashes_)
        state.crashes.push_back({crash.input, crash.execIndex});
    state.partitionsSeen.assign(partitionsSeen_.begin(),
                                partitionsSeen_.end());
    state.perConfigExecs = perConfigExecs_;
    state.plotRows = plot_.rows();
    state.virginMap = virgin_.snapshotBytes();
    return state;
}

void
Fuzzer::restoreState(const FuzzerState &state)
{
    const std::size_t engine_size =
        sanOracle_ ? options_.sancheckImpls.size() + 1
                   : (diffEngine_ ? diffEngine_->size() : 0);
    if (state.perConfigExecs.size() != engine_size) {
        throw std::runtime_error(
            "fuzzer snapshot does not match campaign: snapshot has " +
            std::to_string(state.perConfigExecs.size()) +
            " differential implementations, campaign has " +
            std::to_string(engine_size));
    }
    if (!virgin_.restoreBytes(state.virginMap)) {
        throw std::runtime_error(
            "fuzzer snapshot does not match campaign: virgin map is " +
            std::to_string(state.virginMap.size()) +
            " bytes, expected " +
            std::to_string(vm::kCoverageMapSize));
    }
    if (!diffEngine_ && !sanOracle_ && !state.diffs.empty()) {
        throw std::runtime_error(
            "fuzzer snapshot does not match campaign: snapshot "
            "carries divergences but the differential oracle is "
            "disabled");
    }

    stats_ = state.stats;
    nonceCounter_ = state.nonceCounter;
    rng_.setState(state.rng);
    mutator_.setRngState(state.mutatorRng);
    nextPlot_ = state.nextPlot;
    corpus_ = state.corpus;
    partitionsSeen_ =
        std::set<std::uint64_t>(state.partitionsSeen.begin(),
                                state.partitionsSeen.end());
    perConfigExecs_ = state.perConfigExecs;
    plot_.setRows(state.plotRows);

    // Re-derive the heavyweight result objects: every execution is a
    // pure function of (binary, input, nonce), so re-running the
    // recorded input under its recorded exec index reproduces the
    // original DiffResult / crash report bit for bit.
    diffs_.clear();
    diffSignatures_.clear();
    for (const auto &record : state.diffs) {
        if (sanOracle_) {
            // Re-classify under the recorded nonce and pick the
            // finding the signature names — bit-exact, because the
            // classification is a pure function of (program, input,
            // nonce).
            sancheck::Outcome outcome =
                sanOracle_->runInput(record.input, record.execIndex);
            FoundDiff diff;
            diff.input = record.input;
            diff.execIndex = record.execIndex;
            diff.probes = record.probes;
            diff.signature = record.signature;
            bool matched = false;
            for (sancheck::SanFinding &finding : outcome.findings) {
                if (finding.signatureHash() == record.signature) {
                    diff.sanFinding = std::move(finding);
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                throw std::runtime_error(
                    "fuzzer snapshot does not match campaign: a "
                    "recorded sancheck finding does not reproduce "
                    "under its recorded nonce");
            }
            diffSignatures_[record.signature] = diffs_.size();
            diffs_.push_back(std::move(diff));
            continue;
        }
        auto diff = diffEngine_->runInput(record.input,
                                          record.execIndex);
        const std::uint64_t semantic_key = semdiff::semanticKeyOf(
            canonFingerprint_, reduce::divergenceSignature(diff));
        diffSignatures_[record.signature] = diffs_.size();
        diffs_.push_back({record.input, std::move(diff),
                          record.execIndex, record.probes,
                          record.signature, semantic_key, {}});
    }
    crashes_.clear();
    crashSignatures_.clear();
    vm::CoverageMap scratch_coverage;
    for (const auto &record : state.crashes) {
        scratch_coverage.reset();
        const auto result = fuzzVm_.run(
            record.input, &scratch_coverage, record.execIndex);
        crashSignatures_[crashSignatureOf(result)] = crashes_.size();
        crashes_.push_back({record.input, result.exitClass(),
                            result.sanReports, result.probes,
                            record.execIndex});
    }
    resumed_ = true;
}

} // namespace compdiff::fuzz
