#pragma once

/**
 * @file
 * Sharded fuzz campaigns (AFL++'s -M/-S instance model, in-process).
 *
 * A sharded campaign splits one fuzzing budget into S independent
 * sub-campaigns ("shards"). Each shard owns everything it mutates —
 * its Fuzzer, RNG stream, corpus, coverage map, and stats block — so
 * shards run with zero shared mutable state and zero locks; the
 * driver folds the per-shard results only after every shard has
 * finished (merged coverage bitmap, signature-deduplicated diffs and
 * crashes, summed stats).
 *
 * Determinism contract (the part worth reading twice):
 *   - `shards` defines the campaign. Shard s derives its RNG seed,
 *     its budget slice, and its round-robin share of the seed pool
 *     purely from (options, s).
 *   - `jobs` is only a thread count for *executing* those shards.
 *     Results are bit-identical for jobs=1 and jobs=N because no
 *     shard ever observes another shard's timing — exactly the same
 *     argument that makes DiffOptions::jobs result-neutral.
 * This mirrors AFL++, where the number of -S instances shapes the
 * campaign but the machine's core count does not.
 */

#include <cstddef>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "reduce/report.hh"

namespace compdiff::fuzz
{

/** Folded outcome of a sharded campaign. */
struct ShardedResult
{
    /** Summed/deduped totals (see field comments below). */
    FuzzStats total;
    /** Each shard's own stats block, shard order. */
    std::vector<FuzzStats> perShard;
    /** Unique divergences across shards (signature-deduplicated,
     *  first-seen in shard order; execIndex is shard-local). */
    std::vector<FoundDiff> diffs;
    /** Unique crashes across shards (same dedup discipline). */
    std::vector<FoundCrash> crashes;
    /** Per-implementation executions folded in config order. */
    std::vector<std::pair<std::string, std::uint64_t>>
        perConfigExecs;
    /**
     * Post-campaign reduction outcomes, one per entry of `diffs`
     * (same order); empty unless FuzzOptions::reduceFound. Bundles
     * are written under FuzzOptions::reportsDir when set.
     */
    std::vector<reduce::DivergenceReport> reports;

    /** Merged AFL++-style `fuzzer_stats` snapshot. */
    obs::FuzzerStatsSnapshot statsSnapshot() const;
};

/**
 * Run one campaign as `shards` deterministic sub-campaigns on up to
 * `jobs` worker threads.
 *
 * Budget: options.maxExecs is split evenly (low shards take the
 * remainder). Seeds: round-robin by index. RNG: shard 0 keeps
 * options.rngSeed (shards=1 therefore reproduces a plain Fuzzer run
 * exactly); shard s>0 mixes s into the seed. The per-shard oracle
 * runs serially when shards > 1 — the thread budget belongs to the
 * shard level; options.jobs applies when shards == 1.
 *
 * Telemetry: options.statsOutPath receives the *merged* snapshot;
 * options.plotOutPath receives one series per shard, suffixed
 * ".shard<N>" (plain filename when shards == 1).
 */
ShardedResult
runShardedCampaign(const minic::Program &program,
                   const std::vector<support::Bytes> &seeds,
                   FuzzOptions options, std::size_t shards,
                   std::size_t jobs = 1);

} // namespace compdiff::fuzz
