#pragma once

/**
 * @file
 * Sharded fuzz campaigns (AFL++'s -M/-S instance model, in-process).
 *
 * A sharded campaign splits one fuzzing budget into S independent
 * sub-campaigns ("shards"). Each shard owns everything it mutates —
 * its Fuzzer, RNG stream, corpus, coverage map, and stats block — so
 * shards run with zero shared mutable state and zero locks; the
 * driver folds the per-shard results only after every shard has
 * finished (merged coverage bitmap, signature-deduplicated diffs and
 * crashes, summed stats).
 *
 * Determinism contract (the part worth reading twice):
 *   - `shards` defines the campaign. Shard s derives its RNG seed,
 *     its budget slice, and its round-robin share of the seed pool
 *     purely from (options, s).
 *   - `jobs` is only a thread count for *executing* those shards.
 *     Results are bit-identical for jobs=1 and jobs=N because no
 *     shard ever observes another shard's timing — exactly the same
 *     argument that makes DiffOptions::jobs result-neutral.
 * This mirrors AFL++, where the number of -S instances shapes the
 * campaign but the machine's core count does not.
 *
 * The run is decomposed into plan / run / fold stages so that
 * session::CampaignSession can own the per-shard Fuzzers between the
 * stages — restoring checkpoints into them before the run and
 * journaling their state during it — while one-shot callers keep the
 * single runShardedCampaign() entry point.
 */

#include <cstddef>
#include <memory>
#include <vector>

#include "fuzz/fuzzer.hh"

namespace compdiff::fuzz
{

/** Everything that defines one shard: its options and seed share. */
struct ShardPlan
{
    FuzzOptions options;
    std::vector<support::Bytes> seeds;
};

/** Folded outcome of a sharded campaign. */
struct ShardedResult
{
    /** Summed/deduped totals (see field comments below). */
    FuzzStats total;
    /** Each shard's own stats block, shard order. */
    std::vector<FuzzStats> perShard;
    /** Unique divergences across shards (signature-deduplicated,
     *  first-seen in shard order; execIndex is shard-local). */
    std::vector<FoundDiff> diffs;
    /** Unique crashes across shards (same dedup discipline). */
    std::vector<FoundCrash> crashes;
    /** Per-implementation executions folded in config order. */
    std::vector<std::pair<std::string, std::uint64_t>>
        perConfigExecs;

    /** Merged AFL++-style `fuzzer_stats` snapshot. */
    obs::FuzzerStatsSnapshot statsSnapshot() const;
};

/**
 * Derive the per-shard plans from one campaign description.
 *
 * Budget: options.maxExecs is split evenly (low shards take the
 * remainder). Seeds: round-robin by index. RNG: shard 0 keeps
 * options.rngSeed (shards=1 therefore reproduces a plain Fuzzer run
 * exactly); shard s>0 mixes s into the seed. With several shards the
 * per-shard oracle runs serially (jobs forced to 1) — the thread
 * budget belongs to the shard level. Campaign-level telemetry paths
 * are cleared from the shard options: whoever drives the shards
 * writes the merged files.
 */
std::vector<ShardPlan>
planShards(const FuzzOptions &options,
           const std::vector<support::Bytes> &seeds,
           std::size_t shards);

/**
 * Run the shard fuzzers to completion (or until their iteration
 * hooks halt them) on up to `jobs` worker threads. Shards share no
 * mutable state, so the thread count cannot change any result.
 */
void runShardFuzzers(std::vector<std::unique_ptr<Fuzzer>> &fuzzers,
                     std::size_t jobs);

/**
 * Fold finished shards in deterministic shard order: merged virgin
 * map, signature-deduplicated diffs/crashes (first shard wins),
 * summed stats and per-config execution counts.
 */
ShardedResult
foldShards(const std::vector<std::unique_ptr<Fuzzer>> &fuzzers);

/**
 * Write each shard's `plot_data` series. A single shard keeps the
 * plain filename (the sharded runner is then a drop-in for a plain
 * Fuzzer run); several shards get a ".shard<N>" suffix each.
 */
void
writeShardPlots(const std::vector<std::unique_ptr<Fuzzer>> &fuzzers,
                const std::string &plotPath);

/**
 * Run one campaign as `shards` deterministic sub-campaigns on up to
 * `jobs` worker threads: planShards + construct + runShardFuzzers +
 * foldShards, plus campaign-level telemetry (options.statsOutPath
 * receives the merged snapshot; options.plotOutPath one series per
 * shard, see writeShardPlots).
 *
 * Post-campaign triage is not performed here: wrap the campaign in a
 * session::CampaignSession to reduce and report what it found.
 */
ShardedResult
runShardedCampaign(const minic::Program &program,
                   const std::vector<support::Bytes> &seeds,
                   FuzzOptions options, std::size_t shards,
                   std::size_t jobs = 1);

} // namespace compdiff::fuzz
