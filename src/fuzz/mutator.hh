#pragma once

/**
 * @file
 * AFL++-style mutation operators.
 *
 * The havoc stage stacks a random number of elementary operators:
 * bit flips, interesting-value substitution, bounded arithmetic,
 * block insertion/deletion/duplication, and splicing with another
 * seed — the standard repertoire CompDiff-AFL++ inherits unchanged
 * from AFL++ (the paper adds no mutation machinery).
 */

#include <vector>

#include "support/bytes.hh"
#include "support/rng.hh"

namespace compdiff::fuzz
{

/**
 * Deterministic mutation engine.
 */
class Mutator
{
  public:
    /**
     * @param rng            Seeded generator (owned).
     * @param max_input_size Inputs never grow beyond this.
     */
    explicit Mutator(support::Rng rng,
                     std::size_t max_input_size = 256);

    /**
     * Produce one mutated child via a havoc stack.
     *
     * @param seed   Parent input.
     * @param corpus Other seeds (for splicing); may be empty.
     */
    support::Bytes
    mutate(const support::Bytes &seed,
           const std::vector<support::Bytes> &corpus);

    /** Snapshot the mutation RNG (checkpoint/resume). */
    support::Rng::State rngState() const { return rng_.state(); }

    /** Restore a snapshot taken with rngState(). */
    void setRngState(const support::Rng::State &state)
    {
        rng_.setState(state);
    }

    // Elementary operators (public for unit tests).
    void flipBit(support::Bytes &data);
    void setInteresting(support::Bytes &data);
    void addSubtract(support::Bytes &data);
    void randomByte(support::Bytes &data);
    void insertByte(support::Bytes &data);
    void deleteByte(support::Bytes &data);
    void duplicateBlock(support::Bytes &data);
    void spliceWith(support::Bytes &data,
                    const support::Bytes &other);

  private:
    support::Rng rng_;
    std::size_t maxInputSize_;
};

} // namespace compdiff::fuzz
