#pragma once

/**
 * @file
 * CompDiff-AFL++ (paper Section 3.2, Algorithm 1).
 *
 * The fuzzer keeps AFL++'s core loop intact: select a seed, mutate
 * it, execute the coverage-instrumented binary B_fuzz, save crashes,
 * keep coverage-increasing inputs as seeds. The CompDiff integration
 * is exactly the highlighted lines of Algorithm 1: every generated
 * input is additionally executed on the k differential binaries B_i
 * and saved into the `diffs` list when their (normalized) outputs
 * disagree.
 *
 * The oracle is plug-and-play: disable it (FuzzOptions::enableCompDiff
 * = false) and this is a plain greybox crash fuzzer; enable a
 * sanitizer on B_fuzz and it is a sanitizer fuzzing campaign —
 * the two comparison arms of the paper's evaluation.
 *
 * Checkpoint/resume: the whole campaign state — corpus, virgin map,
 * both RNG streams, dedup signatures, found diffs/crashes, stats —
 * is capturable as a FuzzerState at any safe point (the top of the
 * outer fuzz loop) and restorable into a freshly constructed Fuzzer.
 * The campaign is deterministic, so a restore followed by run()
 * reproduces an uninterrupted campaign bit for bit. Persistence (the
 * session directory, journaling, shard merge) lives one layer up in
 * src/session; the Fuzzer itself only snapshots and restores.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "compdiff/engine.hh"
#include "compiler/config.hh"
#include "fuzz/mutator.hh"
#include "obs/stats.hh"
#include "sancheck/sancheck.hh"
#include "support/bytes.hh"
#include "vm/coverage.hh"
#include "vm/vm.hh"

namespace compdiff::fuzz
{

/** One corpus entry. */
struct Seed
{
    support::Bytes data;
    std::size_t coverageBits = 0; ///< path size when first seen
    std::uint64_t foundAtExec = 0;
    int depth = 0; ///< mutation generations from an initial seed
};

/** A saved divergence ("diffs/" directory analog). */
struct FoundDiff
{
    support::Bytes input;
    core::DiffResult result;
    std::uint64_t execIndex = 0;
    /** Ground-truth probes fired by the B_fuzz run (for triage). */
    std::vector<int> probes;
    /**
     * The triage signature this diff was deduplicated under: the
     * sorted probe set when the input fired probes, else the
     * behavior-class partition + exit classes. In sancheck mode it
     * is the finding's signatureHash(). Shard folding and the
     * campaign's untriaged surfacing key on this value.
     */
    std::uint64_t signature = 0;
    /**
     * Second-tier key: semdiff::semanticKeyOf(canonical fingerprint
     * of the campaign program, probe-free divergence signature).
     * Two probe-distinguished witnesses of the same bug share this
     * value, so uniq-sem counts predict the post-reduction merged
     * bundle count. 0 in sancheck mode (no behavior partition).
     */
    std::uint64_t semanticKey = 0;
    /**
     * Sancheck mode only: the classified sanitizer defect this
     * record carries (implId empty in differential mode; `result`
     * is then default-constructed).
     */
    sancheck::SanFinding sanFinding;
};

/** A saved crash (or sanitizer report) from B_fuzz. */
struct FoundCrash
{
    support::Bytes input;
    std::string exitClass;
    std::vector<vm::SanReport> sanReports;
    std::vector<int> probes;
    /** Execution index (== nonce) the crash was observed at. */
    std::uint64_t execIndex = 0;
};

/** Campaign configuration. */
struct FuzzOptions
{
    /** Total executions of B_fuzz (the fuzzing budget). */
    std::uint64_t maxExecs = 20'000;
    std::uint64_t rngSeed = 0xFA2200D1;
    std::size_t maxInputSize = 256;

    /**
     * Worker threads for the k-way differential oracle inside this
     * campaign (DiffOptions::jobs): 1 = serial, 0 = hardware.
     * Campaign results are bit-identical for every value — threads
     * change wall-clock only, never observations (see
     * ExecutionService). Shard-level parallelism is separate: see
     * fuzz::runShardedCampaign.
     */
    std::size_t jobs = 1;

    /** Configuration of the coverage/sanitizer binary B_fuzz. */
    compiler::CompilerConfig fuzzConfig{
        compiler::Vendor::Clang, compiler::OptLevel::O2,
        compiler::Sanitizer::None};

    /** The CompDiff oracle (Algorithm 1 lines 9-12). */
    bool enableCompDiff = true;
    core::ImplementationSet diffImpls =
        core::paper10Implementations();
    core::DiffOptions diffOptions;

    /**
     * Sancheck mode (DESIGN.md §14): replace the k-way differential
     * oracle with the sanitizer-checking oracle — every generated
     * input is certified by the reference interpreter and run on the
     * sanitized implementations, and classified FN/FP findings are
     * recorded as FoundDiffs keyed by their finding signature. The
     * differential oracle knobs (enableCompDiff, diffImpls,
     * oracleBatch, divergenceFeedback) are ignored in this mode.
     */
    bool sancheckMode = false;
    /** Sanitized implementations for sancheck mode; empty means
     *  sancheck::defaultImplementations(). */
    core::ImplementationSet sancheckImpls;

    /**
     * NEZHA-style divergence feedback (the paper's Section 5
     * outlook): treat a never-seen behavior-class *partition* of the
     * differential binaries as novelty and keep the input as a seed,
     * in addition to the coverage signal. Off by default — plain
     * CompDiff-AFL++ leaves the fuzzer's feedback untouched.
     */
    bool divergenceFeedback = false;

    /**
     * Batch the CompDiff oracle: queue generated inputs and run them
     * through DiffEngine::runBatch at observation points (plot
     * samples, safe points, end of run) instead of one k-way round
     * per execution, so each resident binary (decoded module, warm
     * arena) runs the whole batch back to back. Observable campaign
     * state — stats, plot rows, found diffs, checkpoints — is
     * bit-identical to the serial oracle; the knob exists to A/B the
     * two execution paths. Ignored (stays serial) under
     * divergenceFeedback, whose oracle results steer the corpus and
     * therefore cannot be deferred.
     */
    bool oracleBatch = true;

    vm::VmLimits limits;
    /** Mutations attempted per selected seed. */
    std::uint32_t energyBase = 16;

    // --- telemetry export (AFL++'s fuzzer_stats / plot_data) ---
    //
    // Post-campaign triage (reduction, report bundles) is *not*
    // configured here: session::TriageOptions is the single carrier
    // for those knobs, and session::CampaignSession feeds the
    // campaign's divergence records to reduce::Pipeline.

    /** Where to write the final `fuzzer_stats` snapshot ("" = off). */
    std::string statsOutPath;
    /** Where to write the `plot_data` time series ("" = off). */
    std::string plotOutPath;
    /**
     * Plot sampling interval in executions; 0 picks maxExecs/50.
     * The series is collected either way (it is ~50 small rows) and
     * is available through Fuzzer::plotData() without file I/O.
     */
    std::uint64_t plotEvery = 0;
};

/** Campaign statistics. */
struct FuzzStats
{
    std::uint64_t execs = 0;
    std::uint64_t compdiffExecs = 0; ///< runs of differential binaries
    std::size_t seeds = 0;
    std::size_t crashes = 0;        ///< unique crash signatures
    std::size_t diffs = 0;          ///< unique divergence signatures
    std::size_t edges = 0;          ///< distinct coverage map cells
    /** Exec index of the last discovery (seed, crash, or diff);
     *  execution counts are the deterministic time axis. */
    std::uint64_t lastFindExec = 0;
    /** Exec index of the last new divergence (0 = none). */
    std::uint64_t lastDiffExec = 0;
};

/**
 * The complete resumable snapshot of a mid-campaign Fuzzer, taken at
 * a safe point (top of the outer fuzz loop, or after run() ended).
 *
 * Found diffs and crashes are stored as compact *records* — the
 * input plus the exec index (== execution nonce) they were observed
 * at — not as their heavyweight results: restoreState() re-derives
 * DiffResult / crash reports by re-executing the recorded input
 * under the recorded nonce, which is bit-exact because every
 * execution in this system is a pure function of (binary, input,
 * nonce). That keeps checkpoints small and makes "a resumed campaign
 * equals an uninterrupted one" hold for the full result objects, not
 * just for counters.
 */
struct FuzzerState
{
    FuzzStats stats;
    std::uint64_t nonceCounter = 0;
    support::Rng::State rng{};
    support::Rng::State mutatorRng{};
    /** Next plot-sample threshold of the interrupted run(). */
    std::uint64_t nextPlot = 0;

    std::vector<Seed> corpus;

    struct DiffRecord
    {
        support::Bytes input;
        std::uint64_t execIndex = 0;
        std::uint64_t signature = 0;
        std::vector<int> probes;
    };
    struct CrashRecord
    {
        support::Bytes input;
        std::uint64_t execIndex = 0;
    };
    std::vector<DiffRecord> diffs;
    std::vector<CrashRecord> crashes;

    /** Sorted NEZHA partition digests (divergenceFeedback). */
    std::vector<std::uint64_t> partitionsSeen;
    /** Executions of each oracle member, implementation order. */
    std::vector<std::uint64_t> perConfigExecs;
    std::vector<obs::PlotWriter::Row> plotRows;
    /** Raw VirginMap bytes (vm::kCoverageMapSize). */
    support::Bytes virginMap;
};

/**
 * The CompDiff-AFL++ campaign driver.
 */
class Fuzzer
{
  public:
    /**
     * Called at every safe point of run() (top of the outer fuzz
     * loop). Return false to halt the campaign there — the hook is
     * how session::CampaignSession checkpoints on a cadence and how
     * an interrupt (or a --halt-after test point) stops a campaign
     * without losing journaled state.
     */
    using IterationHook = std::function<bool(const Fuzzer &)>;

    /**
     * @param program       Analyzed target program; must outlive the
     *                      fuzzer.
     * @param initial_seeds Initial corpus (the "official test suite"
     *                      seeds of Section 4.3); an empty vector is
     *                      replaced by a single empty input.
     * @param options       Campaign knobs.
     */
    Fuzzer(const minic::Program &program,
           std::vector<support::Bytes> initial_seeds,
           FuzzOptions options = {});

    /** Run the whole campaign and return final statistics. */
    FuzzStats run();

    /** Saved divergences, one per unique behavior signature. */
    const std::vector<FoundDiff> &diffs() const { return diffs_; }

    /** Saved crashes, one per unique exit/report signature. */
    const std::vector<FoundCrash> &crashes() const
    {
        return crashes_;
    }

    const std::vector<Seed> &corpus() const { return corpus_; }
    const FuzzStats &stats() const { return stats_; }

    /**
     * AFL++-style `fuzzer_stats` snapshot of the campaign so far.
     * Invariant: snapshot.compdiffExecs equals the sum of its
     * per-configuration execution counts (retries included).
     */
    obs::FuzzerStatsSnapshot statsSnapshot() const;

    /** The `plot_data` time series collected during run(). */
    const obs::PlotWriter &plotData() const { return plot_; }

    // --- checkpoint/resume (session::CampaignSession) ---

    /** Snapshot the full campaign state at a safe point. */
    FuzzerState captureState() const;

    /**
     * Restore a snapshot into this (freshly constructed, same
     * program/options) fuzzer: a subsequent run() continues the
     * campaign exactly where the snapshot left it. Diff results and
     * crash reports are re-derived by re-executing the recorded
     * inputs under their recorded nonces.
     *
     * @throws std::runtime_error when the snapshot is inconsistent
     *         with this fuzzer's configuration (oracle width or
     *         coverage-map size mismatch).
     */
    void restoreState(const FuzzerState &state);

    /** Install (or clear) the safe-point hook; see IterationHook. */
    void setIterationHook(IterationHook hook)
    {
        hook_ = std::move(hook);
    }

    // --- cross-worker sync (fleet mode, session::SessionConfig) ---

    /**
     * Execute foreign corpus inputs at a safe point, exactly as if
     * the mutator had generated them (full crash/coverage/diff
     * triage, budget accounting, dedup). Inputs beyond the remaining
     * maxExecs budget are dropped. Returns how many were executed.
     * Calling this from anywhere but a safe point (the iteration
     * hook, or before run()) voids the determinism contract.
     */
    std::size_t importSeeds(const std::vector<support::Bytes> &inputs);

    /**
     * Merge a VirginMap snapshot (snapshotBytes) from another shard
     * into this campaign's map, so already-explored edges stop
     * counting as novel here. Ignores size-mismatched bytes.
     */
    void mergeVirginBytes(const support::Bytes &bytes);

    /** Did the last run() stop early because the hook said so? */
    bool haltedByHook() const { return haltedByHook_; }

    // --- shard-merge accessors (fuzz::runShardedCampaign) ---
    /** Accumulated campaign coverage (merged across shards). */
    const vm::VirginMap &virginMap() const { return virgin_; }
    /** Divergence signature -> index into diffs(). */
    const std::map<std::uint64_t, std::size_t> &
    diffSignatures() const
    {
        return diffSignatures_;
    }
    /** Crash signature -> index into crashes(). */
    const std::map<std::string, std::size_t> &
    crashSignatures() const
    {
        return crashSignatures_;
    }
    /** Executions of each oracle member, implementation order. */
    const std::vector<std::uint64_t> &perConfigExecs() const
    {
        return perConfigExecs_;
    }

    const FuzzOptions &options() const { return options_; }

  private:
    std::size_t selectSeed();
    /** Takes the input by value: executing it may grow corpus_ and
     *  would invalidate any reference into it. */
    void executeOne(support::Bytes input, std::size_t depth);
    /** Account one oracle outcome (RQ6 retry rounds) and
     *  dedup/record a divergence. Shared by the serial oracle path
     *  and batch flushes so the two cannot drift; `exec_index` is
     *  the execution the input was generated at, which a flush
     *  records even after later executions advanced the clock. */
    void recordDiffOutcome(const support::Bytes &input,
                           core::DiffResult diff,
                           const std::vector<int> &probes,
                           std::uint64_t exec_index);
    /** Run every queued input through DiffEngine::runBatch and
     *  record the outcomes. No-op when nothing is pending. */
    void flushDiffBatch();
    /** Sancheck mode: certify + sanitize + classify one input and
     *  dedup/record the findings under their signature hashes. */
    void runSancheck(const support::Bytes &input,
                     const std::vector<int> &probes,
                     std::uint64_t exec_index);
    /** The crash-dedup key of a B_fuzz result. */
    static std::string
    crashSignatureOf(const vm::ExecutionResult &result);

    const minic::Program &program_;
    FuzzOptions options_;
    support::Rng rng_;
    Mutator mutator_;

    std::shared_ptr<const bytecode::Module> fuzzModule_;
    /** Resident B_fuzz binary (forkserver reuse across the
     *  campaign; its per-run arena is reset, not reallocated). */
    vm::Vm fuzzVm_;
    std::unique_ptr<core::DiffEngine> diffEngine_;
    /** The sancheck-mode oracle (mutually exclusive with
     *  diffEngine_). */
    std::unique_ptr<sancheck::SanCheckOracle> sanOracle_;

    vm::CoverageMap coverage_;
    vm::VirginMap virgin_;

    std::vector<Seed> corpus_;
    std::vector<FoundDiff> diffs_;
    std::vector<FoundCrash> crashes_;
    std::map<std::uint64_t, std::size_t> diffSignatures_;
    std::map<std::string, std::size_t> crashSignatures_;
    std::set<std::uint64_t> partitionsSeen_;
    FuzzStats stats_;
    std::uint64_t nonceCounter_ = 0;

    /** Plot bookkeeping lives in members so checkpoints capture the
     *  exact sampling phase of an interrupted run(). */
    std::uint64_t nextPlot_ = 0;
    /** True after restoreState(): run() skips the seed dry-run the
     *  original campaign already performed. */
    bool resumed_ = false;
    bool haltedByHook_ = false;
    IterationHook hook_;

    /** Executions of each oracle member, implementation order. */
    std::vector<std::uint64_t> perConfigExecs_;
    obs::PlotWriter plot_;

    /** Canonical-form fingerprint of the campaign program (computed
     *  once at construction; the semanticKey half every FoundDiff
     *  shares). */
    std::uint64_t canonFingerprint_ = 0;

    /** An execution whose oracle run is deferred to the next batch
     *  flush (FuzzOptions::oracleBatch). */
    struct PendingDiff
    {
        support::Bytes input;
        /** Execution index == oracle nonce base (the same value
         *  restoreState() replays the record under). */
        std::uint64_t execIndex = 0;
        /** Ground-truth probes from the B_fuzz run (triage key). */
        std::vector<int> probes;
    };
    std::vector<PendingDiff> pendingDiffs_;
    /** True while run() batches the oracle; executeOne() queues
     *  instead of running the k-way round inline. */
    bool oracleBatchActive_ = false;
};

} // namespace compdiff::fuzz
