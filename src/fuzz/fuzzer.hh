#pragma once

/**
 * @file
 * CompDiff-AFL++ (paper Section 3.2, Algorithm 1).
 *
 * The fuzzer keeps AFL++'s core loop intact: select a seed, mutate
 * it, execute the coverage-instrumented binary B_fuzz, save crashes,
 * keep coverage-increasing inputs as seeds. The CompDiff integration
 * is exactly the highlighted lines of Algorithm 1: every generated
 * input is additionally executed on the k differential binaries B_i
 * and saved into the `diffs` list when their (normalized) outputs
 * disagree.
 *
 * The oracle is plug-and-play: disable it (FuzzOptions::enableCompDiff
 * = false) and this is a plain greybox crash fuzzer; enable a
 * sanitizer on B_fuzz and it is a sanitizer fuzzing campaign —
 * the two comparison arms of the paper's evaluation.
 */

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "compdiff/engine.hh"
#include "compiler/config.hh"
#include "fuzz/mutator.hh"
#include "obs/stats.hh"
#include "support/bytes.hh"
#include "vm/coverage.hh"
#include "vm/vm.hh"

namespace compdiff::fuzz
{

/** One corpus entry. */
struct Seed
{
    support::Bytes data;
    std::size_t coverageBits = 0; ///< path size when first seen
    std::uint64_t foundAtExec = 0;
    int depth = 0; ///< mutation generations from an initial seed
};

/** A saved divergence ("diffs/" directory analog). */
struct FoundDiff
{
    support::Bytes input;
    core::DiffResult result;
    std::uint64_t execIndex = 0;
    /** Ground-truth probes fired by the B_fuzz run (for triage). */
    std::vector<int> probes;
    /**
     * The triage signature this diff was deduplicated under: the
     * sorted probe set when the input fired probes, else the
     * behavior-class partition + exit classes. Shard folding and the
     * campaign's untriaged surfacing key on this value.
     */
    std::uint64_t signature = 0;
};

/** A saved crash (or sanitizer report) from B_fuzz. */
struct FoundCrash
{
    support::Bytes input;
    std::string exitClass;
    std::vector<vm::SanReport> sanReports;
    std::vector<int> probes;
};

/** Campaign configuration. */
struct FuzzOptions
{
    /** Total executions of B_fuzz (the fuzzing budget). */
    std::uint64_t maxExecs = 20'000;
    std::uint64_t rngSeed = 0xFA2200D1;
    std::size_t maxInputSize = 256;

    /**
     * Worker threads for the k-way differential oracle inside this
     * campaign (DiffOptions::jobs): 1 = serial, 0 = hardware.
     * Campaign results are bit-identical for every value — threads
     * change wall-clock only, never observations (see
     * ExecutionService). Shard-level parallelism is separate: see
     * fuzz::runShardedCampaign.
     */
    std::size_t jobs = 1;

    /** Configuration of the coverage/sanitizer binary B_fuzz. */
    compiler::CompilerConfig fuzzConfig{
        compiler::Vendor::Clang, compiler::OptLevel::O2,
        compiler::Sanitizer::None};

    /** The CompDiff oracle (Algorithm 1 lines 9-12). */
    bool enableCompDiff = true;
    core::ImplementationSet diffImpls =
        core::paper10Implementations();
    core::DiffOptions diffOptions;

    /**
     * NEZHA-style divergence feedback (the paper's Section 5
     * outlook): treat a never-seen behavior-class *partition* of the
     * differential binaries as novelty and keep the input as a seed,
     * in addition to the coverage signal. Off by default — plain
     * CompDiff-AFL++ leaves the fuzzer's feedback untouched.
     */
    bool divergenceFeedback = false;

    vm::VmLimits limits;
    /** Mutations attempted per selected seed. */
    std::uint32_t energyBase = 16;

    // --- post-campaign reduction (src/reduce) ---
    /**
     * Reduce every unique divergence after the campaign: ddmin the
     * witness input, shrink the program, and (when reportsDir is
     * set) bundle reports/<sig>/ directories. Applied by
     * runShardedCampaign, deterministic for every `jobs` value.
     */
    bool reduceFound = false;
    /** Report bundle directory ("" = reduce without bundling). */
    std::string reportsDir;
    /** Oracle-candidate budget per reduced divergence (bounds the
     *  CI smoke's wall time). */
    std::uint64_t reduceCandidateBudget = 4096;

    // --- telemetry export (AFL++'s fuzzer_stats / plot_data) ---
    /** Where to write the final `fuzzer_stats` snapshot ("" = off). */
    std::string statsOutPath;
    /** Where to write the `plot_data` time series ("" = off). */
    std::string plotOutPath;
    /**
     * Plot sampling interval in executions; 0 picks maxExecs/50.
     * The series is collected either way (it is ~50 small rows) and
     * is available through Fuzzer::plotData() without file I/O.
     */
    std::uint64_t plotEvery = 0;
};

/** Campaign statistics. */
struct FuzzStats
{
    std::uint64_t execs = 0;
    std::uint64_t compdiffExecs = 0; ///< runs of differential binaries
    std::size_t seeds = 0;
    std::size_t crashes = 0;        ///< unique crash signatures
    std::size_t diffs = 0;          ///< unique divergence signatures
    std::size_t edges = 0;          ///< distinct coverage map cells
    /** Exec index of the last discovery (seed, crash, or diff);
     *  execution counts are the deterministic time axis. */
    std::uint64_t lastFindExec = 0;
    /** Exec index of the last new divergence (0 = none). */
    std::uint64_t lastDiffExec = 0;
};

/**
 * The CompDiff-AFL++ campaign driver.
 */
class Fuzzer
{
  public:
    /**
     * @param program       Analyzed target program; must outlive the
     *                      fuzzer.
     * @param initial_seeds Initial corpus (the "official test suite"
     *                      seeds of Section 4.3); an empty vector is
     *                      replaced by a single empty input.
     * @param options       Campaign knobs.
     */
    Fuzzer(const minic::Program &program,
           std::vector<support::Bytes> initial_seeds,
           FuzzOptions options = {});

    /** Run the whole campaign and return final statistics. */
    FuzzStats run();

    /** Saved divergences, one per unique behavior signature. */
    const std::vector<FoundDiff> &diffs() const { return diffs_; }

    /** Saved crashes, one per unique exit/report signature. */
    const std::vector<FoundCrash> &crashes() const
    {
        return crashes_;
    }

    const std::vector<Seed> &corpus() const { return corpus_; }
    const FuzzStats &stats() const { return stats_; }

    /**
     * AFL++-style `fuzzer_stats` snapshot of the campaign so far.
     * Invariant: snapshot.compdiffExecs equals the sum of its
     * per-configuration execution counts (retries included).
     */
    obs::FuzzerStatsSnapshot statsSnapshot() const;

    /** The `plot_data` time series collected during run(). */
    const obs::PlotWriter &plotData() const { return plot_; }

    // --- shard-merge accessors (fuzz::runShardedCampaign) ---
    /** Accumulated campaign coverage (merged across shards). */
    const vm::VirginMap &virginMap() const { return virgin_; }
    /** Divergence signature -> index into diffs(). */
    const std::map<std::uint64_t, std::size_t> &
    diffSignatures() const
    {
        return diffSignatures_;
    }
    /** Crash signature -> index into crashes(). */
    const std::map<std::string, std::size_t> &
    crashSignatures() const
    {
        return crashSignatures_;
    }
    /** Executions of each oracle member, implementation order. */
    const std::vector<std::uint64_t> &perConfigExecs() const
    {
        return perConfigExecs_;
    }

  private:
    std::size_t selectSeed();
    /** Takes the input by value: executing it may grow corpus_ and
     *  would invalidate any reference into it. */
    void executeOne(support::Bytes input, std::size_t depth);

    const minic::Program &program_;
    FuzzOptions options_;
    support::Rng rng_;
    Mutator mutator_;

    std::shared_ptr<const bytecode::Module> fuzzModule_;
    /** Resident B_fuzz binary (forkserver reuse; run() is const). */
    vm::Vm fuzzVm_;
    std::unique_ptr<core::DiffEngine> diffEngine_;

    vm::CoverageMap coverage_;
    vm::VirginMap virgin_;

    std::vector<Seed> corpus_;
    std::vector<FoundDiff> diffs_;
    std::vector<FoundCrash> crashes_;
    std::map<std::uint64_t, std::size_t> diffSignatures_;
    std::map<std::string, std::size_t> crashSignatures_;
    std::set<std::uint64_t> partitionsSeen_;
    FuzzStats stats_;
    std::uint64_t nonceCounter_ = 0;

    /** Executions of each oracle member, implementation order. */
    std::vector<std::uint64_t> perConfigExecs_;
    obs::PlotWriter plot_;
};

} // namespace compdiff::fuzz
