#include "fuzz/sharded.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/hash.hh"
#include "support/thread_pool.hh"
#include "vm/coverage.hh"

namespace compdiff::fuzz
{

using support::Bytes;

namespace
{

/** Shard s's RNG seed; shard 0 keeps the campaign seed exactly. */
std::uint64_t
shardSeed(std::uint64_t base, std::size_t shard)
{
    if (shard == 0)
        return base;
    return support::murmurMix64(
        base ^ support::murmurMix64(0x5A44ULL + shard));
}

/** Invert a signature -> index map into index -> signature order. */
template <typename Key>
std::vector<Key>
signaturesByIndex(const std::map<Key, std::size_t> &signatures,
                  std::size_t count)
{
    std::vector<Key> by_index(count);
    for (const auto &[signature, index] : signatures)
        by_index[index] = signature;
    return by_index;
}

} // namespace

obs::FuzzerStatsSnapshot
ShardedResult::statsSnapshot() const
{
    obs::FuzzerStatsSnapshot snapshot;
    snapshot.execsDone = total.execs;
    snapshot.compdiffExecs = total.compdiffExecs;
    snapshot.perConfigExecs = perConfigExecs;
    snapshot.corpusSize = total.seeds;
    snapshot.crashes = total.crashes;
    snapshot.diffs = total.diffs;
    snapshot.edges = total.edges;
    snapshot.lastFindExec = total.lastFindExec;
    snapshot.lastDiffExec = total.lastDiffExec;
    return snapshot;
}

std::vector<ShardPlan>
planShards(const FuzzOptions &options,
           const std::vector<Bytes> &seeds, std::size_t shards)
{
    const std::size_t count = std::max<std::size_t>(shards, 1);
    std::vector<ShardPlan> plans;
    plans.reserve(count);
    const std::uint64_t base_execs = options.maxExecs / count;
    const std::uint64_t extra = options.maxExecs % count;
    for (std::size_t s = 0; s < count; s++) {
        ShardPlan plan;
        plan.options = options;
        plan.options.maxExecs = base_execs + (s < extra ? 1 : 0);
        plan.options.rngSeed = shardSeed(options.rngSeed, s);
        // With several shards, the thread budget belongs to the
        // shard level; nested oracle parallelism would only
        // oversubscribe the pool.
        if (count > 1)
            plan.options.jobs = 1;
        // Campaign-level telemetry is written by the driver, never
        // by the shards themselves.
        plan.options.statsOutPath.clear();
        plan.options.plotOutPath.clear();
        for (std::size_t i = s; i < seeds.size(); i += count)
            plan.seeds.push_back(seeds[i]);
        plans.push_back(std::move(plan));
    }
    return plans;
}

void
runShardFuzzers(std::vector<std::unique_ptr<Fuzzer>> &fuzzers,
                std::size_t jobs)
{
    // Shards share no mutable state: run them on the pool (or
    // inline). Results depend on the shard count only.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(fuzzers.size());
    for (auto &fuzzer : fuzzers)
        tasks.push_back([&fuzzer] { fuzzer->run(); });
    if (jobs > 1 && fuzzers.size() > 1) {
        support::ThreadPool pool(std::min(jobs, fuzzers.size()));
        pool.runAll(std::move(tasks));
    } else {
        for (auto &task : tasks)
            task();
    }
}

ShardedResult
foldShards(const std::vector<std::unique_ptr<Fuzzer>> &fuzzers)
{
    // Single-threaded fold in deterministic shard order.
    ShardedResult result;
    vm::VirginMap merged_virgin;
    std::map<std::uint64_t, std::size_t> diff_signatures;
    std::map<std::string, std::size_t> crash_signatures;
    for (const auto &fuzzer_ptr : fuzzers) {
        const Fuzzer &fuzzer = *fuzzer_ptr;
        const FuzzStats &stats = fuzzer.stats();
        result.perShard.push_back(stats);

        result.total.execs += stats.execs;
        result.total.compdiffExecs += stats.compdiffExecs;
        result.total.seeds += stats.seeds;
        // Shard-local exec indices: the folded "last find" is the
        // deepest any shard had to dig.
        result.total.lastFindExec = std::max(
            result.total.lastFindExec, stats.lastFindExec);
        result.total.lastDiffExec = std::max(
            result.total.lastDiffExec, stats.lastDiffExec);

        merged_virgin.merge(fuzzer.virginMap());

        for (const auto &diff : fuzzer.diffs()) {
            if (diff_signatures
                    .emplace(diff.signature, result.diffs.size())
                    .second)
                result.diffs.push_back(diff);
        }
        const auto crash_sigs = signaturesByIndex(
            fuzzer.crashSignatures(), fuzzer.crashes().size());
        for (std::size_t i = 0; i < fuzzer.crashes().size(); i++) {
            if (crash_signatures
                    .emplace(crash_sigs[i], result.crashes.size())
                    .second)
                result.crashes.push_back(fuzzer.crashes()[i]);
        }

        const auto &per_config = fuzzer.perConfigExecs();
        const auto shard_snapshot = fuzzer.statsSnapshot();
        if (result.perConfigExecs.empty()) {
            result.perConfigExecs = shard_snapshot.perConfigExecs;
        } else {
            for (std::size_t i = 0; i < per_config.size(); i++)
                result.perConfigExecs[i].second += per_config[i];
        }
    }
    result.total.crashes = result.crashes.size();
    result.total.diffs = result.diffs.size();
    result.total.edges = merged_virgin.edgesSeen();

    if (obs::metricsEnabled()) {
        obs::counter("fuzz.shards").add(fuzzers.size());
        obs::gauge("fuzz.sharded_edges").set(result.total.edges);
    }
    return result;
}

void
writeShardPlots(const std::vector<std::unique_ptr<Fuzzer>> &fuzzers,
                const std::string &plotPath)
{
    if (plotPath.empty())
        return;
    if (fuzzers.size() == 1) {
        obs::writeTextFile(plotPath, fuzzers[0]->plotData().str());
        return;
    }
    for (std::size_t s = 0; s < fuzzers.size(); s++) {
        obs::writeTextFile(plotPath + ".shard" + std::to_string(s),
                           fuzzers[s]->plotData().str());
    }
}

ShardedResult
runShardedCampaign(const minic::Program &program,
                   const std::vector<Bytes> &seeds,
                   FuzzOptions options, std::size_t shards,
                   std::size_t jobs)
{
    obs::Span span("fuzz.shardedCampaign");
    const auto wall_start = std::chrono::steady_clock::now();

    const std::string stats_path = options.statsOutPath;
    const std::string plot_path = options.plotOutPath;

    const auto plans = planShards(options, seeds, shards);
    std::vector<std::unique_ptr<Fuzzer>> fuzzers;
    fuzzers.reserve(plans.size());
    for (const auto &plan : plans) {
        // Construction compiles the shard's binaries — serially,
        // here, so all shards share the CompileCache warm-up.
        fuzzers.push_back(std::make_unique<Fuzzer>(
            program, plan.seeds, plan.options));
    }

    runShardFuzzers(fuzzers, jobs);
    ShardedResult result = foldShards(fuzzers);

    if (!stats_path.empty() || !plot_path.empty()) {
        auto snapshot = result.statsSnapshot();
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        if (secs > 0)
            snapshot.execsPerSec =
                static_cast<double>(result.total.execs) / secs;
        if (!stats_path.empty()) {
            obs::writeTextFile(stats_path,
                               obs::renderFuzzerStats(snapshot));
        }
        writeShardPlots(fuzzers, plot_path);
    }
    return result;
}

} // namespace compdiff::fuzz
