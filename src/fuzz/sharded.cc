#include "fuzz/sharded.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "reduce/pipeline.hh"
#include "support/hash.hh"
#include "support/thread_pool.hh"
#include "vm/coverage.hh"

namespace compdiff::fuzz
{

using support::Bytes;

namespace
{

/** Shard s's RNG seed; shard 0 keeps the campaign seed exactly. */
std::uint64_t
shardSeed(std::uint64_t base, std::size_t shard)
{
    if (shard == 0)
        return base;
    return support::murmurMix64(
        base ^ support::murmurMix64(0x5A44ULL + shard));
}

/** Invert a signature -> index map into index -> signature order. */
template <typename Key>
std::vector<Key>
signaturesByIndex(const std::map<Key, std::size_t> &signatures,
                  std::size_t count)
{
    std::vector<Key> by_index(count);
    for (const auto &[signature, index] : signatures)
        by_index[index] = signature;
    return by_index;
}

} // namespace

obs::FuzzerStatsSnapshot
ShardedResult::statsSnapshot() const
{
    obs::FuzzerStatsSnapshot snapshot;
    snapshot.execsDone = total.execs;
    snapshot.compdiffExecs = total.compdiffExecs;
    snapshot.perConfigExecs = perConfigExecs;
    snapshot.corpusSize = total.seeds;
    snapshot.crashes = total.crashes;
    snapshot.diffs = total.diffs;
    snapshot.edges = total.edges;
    snapshot.lastFindExec = total.lastFindExec;
    snapshot.lastDiffExec = total.lastDiffExec;
    return snapshot;
}

ShardedResult
runShardedCampaign(const minic::Program &program,
                   const std::vector<Bytes> &seeds,
                   FuzzOptions options, std::size_t shards,
                   std::size_t jobs)
{
    obs::Span span("fuzz.shardedCampaign");
    const auto wall_start = std::chrono::steady_clock::now();
    const std::size_t count = std::max<std::size_t>(shards, 1);

    // Campaign-level telemetry paths are written by this driver,
    // never by the shards themselves.
    const std::string stats_path = options.statsOutPath;
    const std::string plot_path = options.plotOutPath;
    options.statsOutPath.clear();
    options.plotOutPath.clear();

    std::vector<std::unique_ptr<Fuzzer>> fuzzers;
    fuzzers.reserve(count);
    const std::uint64_t base_execs = options.maxExecs / count;
    const std::uint64_t extra = options.maxExecs % count;
    for (std::size_t s = 0; s < count; s++) {
        FuzzOptions shard_options = options;
        shard_options.maxExecs =
            base_execs + (s < extra ? 1 : 0);
        shard_options.rngSeed = shardSeed(options.rngSeed, s);
        // With several shards, the thread budget belongs to the
        // shard level; nested oracle parallelism would only
        // oversubscribe the pool.
        if (count > 1)
            shard_options.jobs = 1;
        std::vector<Bytes> shard_seeds;
        for (std::size_t i = s; i < seeds.size(); i += count)
            shard_seeds.push_back(seeds[i]);
        // Construction compiles the shard's binaries — serially,
        // here, so all shards share the CompileCache warm-up.
        fuzzers.push_back(std::make_unique<Fuzzer>(
            program, std::move(shard_seeds), shard_options));
    }

    // Shards share no mutable state: run them on the pool (or
    // inline), then fold. Results depend on `count` only.
    {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(count);
        for (std::size_t s = 0; s < count; s++)
            tasks.push_back([&fuzzers, s] { fuzzers[s]->run(); });
        if (jobs > 1 && count > 1) {
            support::ThreadPool pool(std::min(jobs, count));
            pool.runAll(std::move(tasks));
        } else {
            for (auto &task : tasks)
                task();
        }
    }

    // --- fold (single-threaded, deterministic shard order) ---
    ShardedResult result;
    vm::VirginMap merged_virgin;
    std::map<std::uint64_t, std::size_t> diff_signatures;
    std::map<std::string, std::size_t> crash_signatures;
    for (std::size_t s = 0; s < count; s++) {
        const Fuzzer &fuzzer = *fuzzers[s];
        const FuzzStats &stats = fuzzer.stats();
        result.perShard.push_back(stats);

        result.total.execs += stats.execs;
        result.total.compdiffExecs += stats.compdiffExecs;
        result.total.seeds += stats.seeds;
        // Shard-local exec indices: the folded "last find" is the
        // deepest any shard had to dig.
        result.total.lastFindExec = std::max(
            result.total.lastFindExec, stats.lastFindExec);
        result.total.lastDiffExec = std::max(
            result.total.lastDiffExec, stats.lastDiffExec);

        merged_virgin.merge(fuzzer.virginMap());

        for (const auto &diff : fuzzer.diffs()) {
            if (diff_signatures
                    .emplace(diff.signature, result.diffs.size())
                    .second)
                result.diffs.push_back(diff);
        }
        const auto crash_sigs = signaturesByIndex(
            fuzzer.crashSignatures(), fuzzer.crashes().size());
        for (std::size_t i = 0; i < fuzzer.crashes().size(); i++) {
            if (crash_signatures
                    .emplace(crash_sigs[i], result.crashes.size())
                    .second)
                result.crashes.push_back(fuzzer.crashes()[i]);
        }

        const auto &per_config = fuzzer.perConfigExecs();
        const auto shard_snapshot = fuzzer.statsSnapshot();
        if (result.perConfigExecs.empty()) {
            result.perConfigExecs = shard_snapshot.perConfigExecs;
        } else {
            for (std::size_t i = 0; i < per_config.size(); i++)
                result.perConfigExecs[i].second += per_config[i];
        }
    }
    result.total.crashes = result.crashes.size();
    result.total.diffs = result.diffs.size();
    result.total.edges = merged_virgin.edgesSeen();

    // Post-campaign reduction: one witness per unique signature, in
    // fold order. The reduce pipeline is deterministic for every
    // `jobs` value (indexed slots, per-witness oracles with fixed
    // nonces), so this preserves the campaign's jobs-neutrality.
    if (options.reduceFound && !result.diffs.empty()) {
        std::vector<reduce::Witness> witnesses;
        witnesses.reserve(result.diffs.size());
        for (const auto &diff : result.diffs)
            witnesses.push_back({diff.input, diff.result});
        reduce::ReduceOptions reduce_options;
        reduce_options.diffOptions = options.diffOptions;
        reduce_options.diffOptions.limits = options.limits;
        reduce_options.candidateBudget =
            options.reduceCandidateBudget;
        reduce_options.jobs = jobs;
        reduce_options.reportsDir = options.reportsDir;
        result.reports = reduce::reduceAndReport(
            program, options.diffImpls, witnesses, reduce_options);
    }

    if (obs::metricsEnabled()) {
        obs::counter("fuzz.shards").add(count);
        obs::gauge("fuzz.sharded_edges").set(result.total.edges);
    }

    if (!stats_path.empty() || !plot_path.empty()) {
        auto snapshot = result.statsSnapshot();
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        if (secs > 0)
            snapshot.execsPerSec =
                static_cast<double>(result.total.execs) / secs;
        if (!stats_path.empty()) {
            obs::writeTextFile(stats_path,
                               obs::renderFuzzerStats(snapshot));
        }
        if (!plot_path.empty()) {
            // A single shard keeps the plain filename (the sharded
            // runner is then a drop-in for a plain Fuzzer run).
            if (count == 1) {
                obs::writeTextFile(plot_path,
                                   fuzzers[0]->plotData().str());
            } else {
                for (std::size_t s = 0; s < count; s++) {
                    obs::writeTextFile(plot_path + ".shard" +
                                           std::to_string(s),
                                       fuzzers[s]->plotData().str());
                }
            }
        }
    }
    return result;
}

} // namespace compdiff::fuzz
