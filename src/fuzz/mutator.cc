#include "fuzz/mutator.hh"

#include <algorithm>

namespace compdiff::fuzz
{

using support::Bytes;

namespace
{

/** AFL's interesting byte values. */
constexpr std::uint8_t kInteresting8[] = {
    0, 1, 16, 32, 64, 100, 127, 128, 255,
};

} // namespace

Mutator::Mutator(support::Rng rng, std::size_t max_input_size)
    : rng_(rng), maxInputSize_(max_input_size)
{}

void
Mutator::flipBit(Bytes &data)
{
    if (data.empty())
        return;
    const std::size_t bit = rng_.index(data.size() * 8);
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void
Mutator::setInteresting(Bytes &data)
{
    if (data.empty())
        return;
    data[rng_.index(data.size())] =
        kInteresting8[rng_.index(std::size(kInteresting8))];
}

void
Mutator::addSubtract(Bytes &data)
{
    if (data.empty())
        return;
    const std::size_t i = rng_.index(data.size());
    const auto delta = static_cast<std::uint8_t>(rng_.range(1, 35));
    data[i] = rng_.chance(1, 2)
                  ? static_cast<std::uint8_t>(data[i] + delta)
                  : static_cast<std::uint8_t>(data[i] - delta);
}

void
Mutator::randomByte(Bytes &data)
{
    if (data.empty())
        return;
    data[rng_.index(data.size())] =
        static_cast<std::uint8_t>(rng_.next());
}

void
Mutator::insertByte(Bytes &data)
{
    if (data.size() >= maxInputSize_)
        return;
    const std::size_t pos = rng_.index(data.size() + 1);
    data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos),
                static_cast<std::uint8_t>(rng_.next()));
}

void
Mutator::deleteByte(Bytes &data)
{
    if (data.empty())
        return;
    data.erase(data.begin() +
               static_cast<std::ptrdiff_t>(rng_.index(data.size())));
}

void
Mutator::duplicateBlock(Bytes &data)
{
    if (data.empty() || data.size() >= maxInputSize_)
        return;
    const std::size_t len =
        std::min<std::size_t>(rng_.index(data.size()) + 1,
                              maxInputSize_ - data.size());
    const std::size_t src = rng_.index(data.size() - len + 1);
    const std::size_t dst = rng_.index(data.size() + 1);
    Bytes block(data.begin() + static_cast<std::ptrdiff_t>(src),
                data.begin() + static_cast<std::ptrdiff_t>(src + len));
    data.insert(data.begin() + static_cast<std::ptrdiff_t>(dst),
                block.begin(), block.end());
}

void
Mutator::spliceWith(Bytes &data, const Bytes &other)
{
    if (other.empty())
        return;
    const std::size_t keep =
        data.empty() ? 0 : rng_.index(data.size() + 1);
    const std::size_t from = rng_.index(other.size());
    data.resize(keep);
    data.insert(data.end(),
                other.begin() + static_cast<std::ptrdiff_t>(from),
                other.end());
    if (data.size() > maxInputSize_)
        data.resize(maxInputSize_);
}

Bytes
Mutator::mutate(const Bytes &seed,
                const std::vector<Bytes> &corpus)
{
    Bytes child = seed;
    const int stack = static_cast<int>(rng_.range(1, 8));
    for (int i = 0; i < stack; i++) {
        switch (rng_.below(8)) {
          case 0: flipBit(child); break;
          case 1: setInteresting(child); break;
          case 2: addSubtract(child); break;
          case 3: randomByte(child); break;
          case 4: insertByte(child); break;
          case 5: deleteByte(child); break;
          case 6: duplicateBlock(child); break;
          case 7:
            if (!corpus.empty())
                spliceWith(child, corpus[rng_.index(corpus.size())]);
            else
                randomByte(child);
            break;
        }
    }
    if (child.empty() && rng_.chance(3, 4))
        child.push_back(static_cast<std::uint8_t>(rng_.next()));
    return child;
}

} // namespace compdiff::fuzz
