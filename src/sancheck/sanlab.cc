/**
 * @file
 * `sanlab`: the bundled sanitizer-check laboratory program.
 *
 * Each station exercises one cell of the sancheck FN/FP matrix
 * (DESIGN.md §14); the seeds steer a short campaign into every
 * station, so the CI smoke deterministically reaches the seeded
 * sanitizer defects. Stations are input-gated — the clean dispatch
 * path is certified UB-free, which is what makes the FP station
 * meaningful.
 */

#include "sancheck/sancheck.hh"

namespace compdiff::sancheck
{

const char *
sanlabSource()
{
    return R"SRC(
// sanlab - sanitizer-check laboratory.
//
// cmd 1  uninit gauge     MSan print blind spot (known FN)
// cmd 2  signed overflow  seeded -O2 UBSan check elision (FN)
// cmd 3  unsigned sum     inverted-predicate bogus check (FP)
// cmd 4  far heap hop     OOB past the redzone onto a live
//                         neighbor (ASan FN)
// cmd 5  near heap poke   OOB into the redzone (agreement)
// cmd 6  wide shift       oversized count (agreement)

void station_uninit() {
    int flag = read_byte();
    int value;
    if (flag == 7) { value = 41; }
    // On every other path `value` is never stored; printing it is
    // exactly the use MSan does not consider meaningful.
    print_str("gauge ");
    print_int(value);
    newline();
}

void station_overflow() {
    int a = read_byte();
    int b = read_byte();
    if (a < 0 || b < 0) { return; }
    int big = 2147483647 - a;
    // Signed 32-bit overflow whenever b > a.
    int sum = big + b;
    print_str("sum ");
    print_int(sum);
    newline();
}

void station_unsigned() {
    int n = read_byte();
    if (n < 0) { return; }
    uint base = (uint)2147400000;
    // Well-defined modular arithmetic; the 64-bit sum crosses 2^31
    // for n >= 84, which is what the bogus check mis-tests.
    uint total = base + (uint)(n * 1000);
    print_str("total ");
    print_long((long)total);
    newline();
}

void station_heap_far() {
    char *p = malloc(16L);
    char *q = malloc(16L);
    if (p == 0 || q == 0) { return; }
    q[0] = (char)77;
    int off = read_byte();
    if (off == 48) {
        // 48 bytes past p: beyond the 16-byte redzone, onto the
        // neighboring live chunk.
        print_str("far ");
        print_int(p[off]);
        newline();
    } else {
        print_str("fence holds");
        newline();
    }
    free(q);
    free(p);
}

void station_heap_near() {
    char *p = malloc(16L);
    if (p == 0) { return; }
    int off = read_byte();
    if (off == 17) {
        print_str("near ");
        print_int(p[off]);
        newline();
    } else {
        print_str("inside");
        newline();
    }
    free(p);
}

void station_shift() {
    int bits = read_byte();
    if (bits < 0) { return; }
    int v = 1 << bits;
    print_str("shift ");
    print_int(v);
    newline();
}

int main() {
    int cmd = read_byte();
    while (cmd >= 0) {
        if (cmd == 1) { station_uninit(); }
        else if (cmd == 2) { station_overflow(); }
        else if (cmd == 3) { station_unsigned(); }
        else if (cmd == 4) { station_heap_far(); }
        else if (cmd == 5) { station_heap_near(); }
        else if (cmd == 6) { station_shift(); }
        else { print_str("idle"); newline(); }
        cmd = read_byte();
    }
    return 0;
}
)SRC";
}

std::vector<support::Bytes>
sanlabSeeds()
{
    return {
        {1, 0},       // uninit gauge, flag != 7: MSan FN
        {1, 7},       // uninit gauge, initialized: clean
        {2, 0, 5},    // signed overflow: -O2 UBSan FN
        {2, 5, 0},    // no overflow: clean
        {3, 200},     // unsigned sum crosses 2^31: -O2 UBSan FP
        {3, 10},      // unsigned sum stays low: clean
        {4, 48},      // far hop onto the neighbor: ASan FN
        {4, 0},       // fence untouched: clean
        {5, 17},      // redzone poke: certifier and ASan agree
        {6, 40},      // oversized shift: certifier and UBSan agree
        {0},          // idle dispatch
    };
}

} // namespace compdiff::sancheck
