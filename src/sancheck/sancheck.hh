#pragma once

/**
 * @file
 * The sanitizer-checking oracle (DESIGN.md §14).
 *
 * CompDiff's oracle asks "do implementations diverge?"; this module
 * asks the UBfuzz question instead: given a (program, input) pair
 * whose UB-ness the reference interpreter can *certify*
 * (refinterp::CertifiedRun), does each sanitizer-instrumented
 * implementation report it? The flipped verdict axis surfaces
 * defects in the sanitizers themselves:
 *
 *   - false negative (FN): the reference interpreter certifies a UB
 *     occurrence of a class the sanitizer claims to detect, yet the
 *     sanitized run completes without a matching report;
 *   - false positive (FP): the run is certified UB-free (clean exit,
 *     zero certificates), yet the sanitizer fires.
 *
 * Findings carry deterministic signatures
 * ("san:<impl>:<ubkind>:FN|FP", hashed to the usual 64-bit currency)
 * so they ride the existing dedup → reduce → sig-<hex>/ bundle
 * pipeline unchanged. Classification is a pure function of the
 * certified run and the per-implementation ExecutionResults, which
 * are themselves pure functions of (program, input, nonce) — the
 * same determinism contract every campaign layer already relies on.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compdiff/implementation.hh"
#include "compiler/config.hh"
#include "minic/ast.hh"
#include "refinterp/refinterp.hh"
#include "support/bytes.hh"
#include "vm/result.hh"
#include "vm/vm.hh"

namespace compdiff::sancheck
{

/** Verdict polarity of one finding. */
enum class FindingKind
{
    FalseNegative, ///< certified UB, sanitizer silent
    FalsePositive, ///< certified UB-free, sanitizer fired
};

/** Signature-currency name ("FN" / "FP"). */
const char *findingKindName(FindingKind kind);

/**
 * Does `which` claim to detect UB of class `kind`? A sanitizer is
 * only charged with FNs inside its detection scope — MSan not
 * reporting a signed overflow is by design, not a defect.
 */
bool sanitizerCovers(compiler::Sanitizer which,
                     refinterp::UbKind kind);

/** One classified sanitizer defect observation. */
struct SanFinding
{
    /** The sanitized implementation ("clang-O2+ubsan"). */
    std::string implId;
    /** The UB class at issue (certified for FN, reported for FP). */
    refinterp::UbKind ubKind = refinterp::UbKind::SignedOverflow;
    FindingKind kind = FindingKind::FalseNegative;

    /** Certified UB site (FN only; empty/0 for FP). */
    std::string certFunction;
    std::uint32_t certLine = 0;
    std::string certDetail;

    /** The sanitizer's report (FP only; empty/0 for FN). */
    std::string reportKind;
    std::uint32_t reportLine = 0;

    /** Dedup identity: "san:<impl>:<ubkind>:FN|FP". */
    std::string signature() const;
    /** 64-bit hash of signature(), the campaign dedup currency. */
    std::uint64_t signatureHash() const;
    /** One-line rendering for logs and reports. */
    std::string str() const;
};

/**
 * Classify one sanitized run against a certified reference run.
 * Returns false when the pair yields no finding: budget exhaustion
 * on either side (silence is then not attributable to the detector),
 * a crash of the sanitized run before its verdict, an abort on an
 * unrelated earlier report (the run never reached the certified
 * site), out-of-scope UB classes, matching detection, or an
 * unmapped report kind.
 * Classification consults the *first* certificate (execution order)
 * and the first sanitizer report, mirroring real tools' abort-on-
 * first-report behavior.
 */
bool classifyOne(const refinterp::CertifiedRun &certified,
                 const std::string &impl_id,
                 compiler::Sanitizer sanitizer,
                 const vm::ExecutionResult &sanitized,
                 SanFinding *out);

/**
 * The default sanitizer implementation set: the common fuzzing
 * configs plus the -O2 UBSan build whose seeded check-elision defect
 * (compiler::Traits::bugChkOv32Unsigned) the subsystem exists to
 * catch.
 */
extern const char *const kDefaultImplSpec;

/** ImplementationRegistry::parse(kDefaultImplSpec). */
core::ImplementationSet defaultImplementations();

/**
 * Fatal unless every member is a simulated implementation with a
 * sanitizer — the only backends whose reports sancheck can read.
 */
void validateImpls(const core::ImplementationSet &impls);

/** What one sancheck execution observed. */
struct Outcome
{
    refinterp::CertifiedRun certified;
    /** Per-implementation sanitized runs, in implementation order. */
    std::vector<vm::ExecutionResult> sanitized;
    /** Classified findings, implementation order (≤ 1 per impl). */
    std::vector<SanFinding> findings;
};

/**
 * The resident sancheck execution engine: one certifying reference
 * interpreter plus one warm Vm per sanitized implementation,
 * mirroring DiffEngine's forkserver economics. Not thread-safe; the
 * fuzzer keeps one per shard.
 */
class SanCheckOracle
{
  public:
    /**
     * @param program Analyzed program (must outlive the oracle).
     * @param impls   Sanitized implementations (validateImpls).
     * @param limits  Per-execution limits, shared by all members.
     */
    SanCheckOracle(const minic::Program &program,
                   core::ImplementationSet impls,
                   vm::VmLimits limits = {});
    ~SanCheckOracle();

    /** Certify + run every sanitizer + classify, for one input. */
    Outcome runInput(const support::Bytes &input,
                     std::uint64_t nonce = 0);

    const core::ImplementationSet &impls() const { return impls_; }

    /** Stats row ids: "ref" followed by the implementation ids. */
    std::vector<std::string> configIds() const;

  private:
    struct Member
    {
        std::string id;
        compiler::CompilerConfig config;
        std::shared_ptr<const bytecode::Module> module;
        std::unique_ptr<vm::Vm> vm;
    };

    core::ImplementationSet impls_;
    vm::VmLimits limits_;
    std::unique_ptr<refinterp::RefInterpreter> ref_;
    std::vector<Member> members_;
};

/**
 * `sanlab`, the bundled sanitizer-check laboratory program: an
 * input-gated dispatcher whose stations exercise each cell of the
 * FN/FP matrix — the documented MSan print blind spot, both faces of
 * the seeded -O2 UBSan check-elision defect, an OOB hop over ASan's
 * redzone onto a neighboring live object, and agreement stations
 * where certifier and sanitizer concur. Deliberately *not* part of
 * targets::allTargets(): it demonstrates sanitizer defects, not the
 * paper's 78 application bugs.
 */
const char *sanlabSource();

/** Seed inputs steering sanlab into every station. */
std::vector<support::Bytes> sanlabSeeds();

} // namespace compdiff::sancheck
