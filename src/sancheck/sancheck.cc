#include "sancheck/sancheck.hh"

#include "compiler/cache.hh"
#include "sanitizers/sanitizers.hh"
#include "support/hash.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace compdiff::sancheck
{

using compiler::Sanitizer;
using refinterp::UbKind;

const char *
findingKindName(FindingKind kind)
{
    return kind == FindingKind::FalseNegative ? "FN" : "FP";
}

bool
sanitizerCovers(Sanitizer which, UbKind kind)
{
    switch (which) {
      case Sanitizer::ASan:
        return kind == UbKind::OutOfBounds;
      case Sanitizer::UBSan:
        return kind == UbKind::SignedOverflow ||
               kind == UbKind::DivideByZero ||
               kind == UbKind::OversizedShift ||
               kind == UbKind::NullDeref;
      case Sanitizer::MSan:
        return kind == UbKind::UninitRead;
      case Sanitizer::None:
        return false;
    }
    return false;
}

std::string
SanFinding::signature() const
{
    return std::string("san:") + implId + ":" +
           refinterp::ubKindName(ubKind) + ":" +
           findingKindName(kind);
}

std::uint64_t
SanFinding::signatureHash() const
{
    return support::murmurHash64(signature());
}

std::string
SanFinding::str() const
{
    if (kind == FindingKind::FalseNegative) {
        return signature() + " — certified " +
               std::string(refinterp::ubKindName(ubKind)) + " @ " +
               certFunction + ":" + std::to_string(certLine) + " (" +
               certDetail + "), " + implId + " silent";
    }
    return signature() + " — certified UB-free, " + implId +
           " reported " + reportKind + " @ line " +
           std::to_string(reportLine);
}

bool
classifyOne(const refinterp::CertifiedRun &certified,
            const std::string &impl_id, Sanitizer sanitizer,
            const vm::ExecutionResult &sanitized, SanFinding *out)
{
    // Timeouts make silence unattributable on either side.
    if (certified.result.timedOut() || sanitized.timedOut())
        return false;

    if (!certified.certificates.empty()) {
        // Candidate FN: the first certificate is the authoritative
        // UB occurrence (real sanitizers abort on first report, so
        // later certificates are unreachable for them anyway).
        const refinterp::UbCertificate &cert =
            certified.certificates.front();
        if (!sanitizerCovers(sanitizer, cert.kind))
            return false;
        // A run that crashed before any verdict (layout-dependent
        // trap) is not evidence of detector silence.
        if (sanitized.crashed())
            return false;
        for (const vm::SanReport &report : sanitized.sanReports) {
            UbKind reported;
            if (sanitizers::reportUbKind(report, &reported) &&
                reported == cert.kind)
                return false; // detected: no finding
        }
        // A run the sanitizer aborted on an *unrelated* report never
        // reached the certified site (real tools stop at the first
        // report), so silence about it is unattributable.
        if (sanitized.termination ==
            vm::Termination::SanitizerAbort)
            return false;
        out->implId = impl_id;
        out->ubKind = cert.kind;
        out->kind = FindingKind::FalseNegative;
        out->certFunction = cert.function;
        out->certLine = cert.line;
        out->certDetail = cert.detail;
        out->reportKind.clear();
        out->reportLine = 0;
        return true;
    }

    // Candidate FP: certified UB-free requires a clean reference
    // exit — a trapping or aborting reference run proves nothing
    // about the paths the sanitized build took.
    if (certified.result.termination != vm::Termination::Exit)
        return false;
    if (sanitized.sanReports.empty())
        return false;
    const vm::SanReport &report = sanitized.sanReports.front();
    UbKind reported;
    if (!sanitizers::reportUbKind(report, &reported))
        return false; // allocator-state report, outside the taxonomy
    out->implId = impl_id;
    out->ubKind = reported;
    out->kind = FindingKind::FalsePositive;
    out->certFunction.clear();
    out->certLine = 0;
    out->certDetail.clear();
    out->reportKind = report.kind;
    out->reportLine = report.line;
    return true;
}

const char *const kDefaultImplSpec =
    "clang:-O1:asan,clang:-O1:ubsan,clang:-O2:ubsan,clang:-O1:msan";

core::ImplementationSet
defaultImplementations()
{
    return core::ImplementationRegistry::global().parse(
        kDefaultImplSpec);
}

void
validateImpls(const core::ImplementationSet &impls)
{
    if (impls.empty())
        support::fatal("sancheck: empty implementation set");
    for (const auto &impl : impls) {
        const compiler::CompilerConfig *config =
            impl->simulatedConfig();
        if (!config || config->sanitizer == Sanitizer::None)
            support::fatal("sancheck: implementation '" + impl->id() +
                           "' has no sanitizer instrumentation "
                           "(need specs like clang:-O1:ubsan)");
    }
}

SanCheckOracle::SanCheckOracle(const minic::Program &program,
                               core::ImplementationSet impls,
                               vm::VmLimits limits)
    : impls_(std::move(impls)), limits_(limits)
{
    validateImpls(impls_);
    ref_ = std::make_unique<refinterp::RefInterpreter>(program,
                                                      limits_);
    for (const auto &impl : impls_) {
        Member member;
        member.id = impl->id();
        member.config = *impl->simulatedConfig();
        member.module =
            compiler::compileCached(program, member.config);
        member.vm = std::make_unique<vm::Vm>(*member.module,
                                             member.config, limits_);
        members_.push_back(std::move(member));
    }
}

SanCheckOracle::~SanCheckOracle() = default;

Outcome
SanCheckOracle::runInput(const support::Bytes &input,
                         std::uint64_t nonce)
{
    Outcome out;
    out.certified = ref_->certify(input, nonce);
    out.sanitized.reserve(members_.size());
    for (Member &member : members_) {
        out.sanitized.push_back(
            member.vm->run(input, nullptr, nonce));
        SanFinding finding;
        if (classifyOne(out.certified, member.id,
                        member.config.sanitizer,
                        out.sanitized.back(), &finding))
            out.findings.push_back(std::move(finding));
    }
    return out;
}

std::vector<std::string>
SanCheckOracle::configIds() const
{
    std::vector<std::string> ids;
    ids.push_back("ref");
    for (const Member &member : members_)
        ids.push_back(member.id);
    return ids;
}

} // namespace compdiff::sancheck
