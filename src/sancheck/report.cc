#include "sancheck/report.hh"

#include <iomanip>
#include <sstream>

#include "minic/parser.hh"
#include "minic/printer.hh"
#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "reduce/report.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/thread_pool.hh"

namespace compdiff::sancheck
{

namespace
{

std::string
hex64(std::uint64_t value)
{
    std::ostringstream os;
    os << std::hex << std::setfill('0') << std::setw(16) << value;
    return os.str();
}

} // namespace

SanFindingOracle::SanFindingOracle(const minic::Program &program,
                                   core::ImplementationSet impls,
                                   const support::Bytes &witness,
                                   const SanFinding &finding,
                                   vm::VmLimits limits,
                                   std::uint64_t candidate_budget)
    : impls_(std::move(impls)), limits_(limits),
      budget_(candidate_budget), target_(finding.signatureHash()),
      witnessProgram_(&program)
{
    witnessEngine_ =
        std::make_unique<SanCheckOracle>(program, impls_, limits_);
    Outcome outcome = witnessEngine_->runInput(witness, 0);
    witnessCertified_ = std::move(outcome.certified);
    for (const SanFinding &found : outcome.findings) {
        if (found.signatureHash() == target_) {
            reproduced_ = true;
            break;
        }
    }
}

SanFindingOracle::~SanFindingOracle() = default;

bool
SanFindingOracle::preserves(const minic::Program &program,
                            const support::Bytes &input)
{
    if (budgetExhausted())
        return false;
    stats_.tried++;

    // The witness program keeps its resident engine; candidate
    // programs are caller-owned temporaries and get a fresh engine
    // per call (CompileCache absorbs the recompiles, and a pointer-
    // keyed cache would be fooled by heap-address reuse).
    Outcome outcome;
    if (&program == witnessProgram_) {
        outcome = witnessEngine_->runInput(input, 0);
    } else {
        SanCheckOracle candidate(program, impls_, limits_);
        outcome = candidate.runInput(input, 0);
    }
    for (const SanFinding &found : outcome.findings) {
        if (found.signatureHash() == target_) {
            stats_.accepted++;
            return true;
        }
    }
    return false;
}

namespace
{

/** Reduce one finding witness end to end (pool worker). */
FindingReport
reduceOneFinding(const minic::Program &program,
                 const core::ImplementationSet &impls,
                 const FindingWitness &witness,
                 const FindingReduceOptions &options)
{
    obs::Span span("sancheck.reduce.witness");
    FindingReport report;
    report.finding = witness.finding;
    report.witnessInput = witness.input;

    SanFindingOracle oracle(program, impls, witness.input,
                            witness.finding, options.limits,
                            options.candidateBudget);
    report.reproduced = oracle.reproduced();

    if (!oracle.reproduced()) {
        report.program = minic::printProgram(program);
        report.input = witness.input;
        report.inputStats.reduced = witness.input;
        report.certified = oracle.witnessCertified();
        obs::counter("sancheck.witnesses_unreproduced").add();
        return report;
    }

    report.inputStats = reduce::reduceInput(oracle, program,
                                            witness.input);
    report.input = report.inputStats.reduced;
    report.programStats = reduce::reduceProgram(
        oracle, minic::printProgram(program), report.input);
    report.program = report.programStats.source;

    // One more input pass against the minimized program drops bytes
    // only the original program consumed.
    auto minimized = minic::parseAndCheck(report.program);
    const reduce::InputReduction second =
        reduce::reduceInput(oracle, *minimized, report.input);
    report.input = second.reduced;
    report.inputStats.reduced = second.reduced;
    report.inputStats.candidatesTried += second.candidatesTried;
    report.inputStats.candidatesAccepted += second.candidatesAccepted;
    report.inputStats.bytesRemoved += second.bytesRemoved;
    report.inputStats.bytesNormalized += second.bytesNormalized;

    // Re-derive the certified run and the finding details from the
    // minimized pair: the report describes what is filed.
    SanCheckOracle engine(*minimized, impls, options.limits);
    Outcome outcome = engine.runInput(report.input, 0);
    report.certified = std::move(outcome.certified);
    for (const SanFinding &found : outcome.findings) {
        if (found.signatureHash() ==
            witness.finding.signatureHash()) {
            report.finding = found;
            break;
        }
    }
    return report;
}

} // namespace

std::string
renderFindingMarkdown(const FindingReport &report)
{
    const SanFinding &f = report.finding;
    std::ostringstream os;
    os << "# Sanitizer finding "
       << reduce::signatureDirName(f.signatureHash()) << "\n\n";

    os << "## Summary\n\n";
    if (!report.reproduced) {
        os << "The campaign witness did not reproduce its finding "
              "under the deterministic reduction nonce; the bundle "
              "carries the original un-reduced witness and the "
              "campaign classification below.\n\n";
    }
    os << "- signature: `" << f.signature() << "` (`"
       << hex64(f.signatureHash()) << "`)\n";
    os << "- verdict: **"
       << (f.kind == FindingKind::FalseNegative ? "false negative"
                                                : "false positive")
       << "** for `" << f.implId << "`\n";
    os << "- UB class: `" << refinterp::ubKindName(f.ubKind)
       << "`\n\n";

    if (f.kind == FindingKind::FalseNegative) {
        os << "The reference interpreter certifies undefined "
              "behavior that `"
           << f.implId << "` fails to report:\n\n";
        os << "- certified UB site: `" << f.certFunction << ":"
           << f.certLine << "`\n";
        os << "- operands: `" << f.certDetail << "`\n";
        os << "- sanitizer: **silent** (run completed without a `"
           << refinterp::ubKindName(f.ubKind) << "` report)\n\n";
    } else {
        os << "The reference interpreter certifies this execution "
              "UB-free (clean exit, zero certificates), yet `"
           << f.implId << "` reports:\n\n";
        os << "- report: `" << f.reportKind << "` at line "
           << f.reportLine << "\n\n";
    }

    os << "## Certified reference run\n\n";
    os << "- exit class: `" << report.certified.result.exitClass()
       << "`\n";
    os << "- certificates: " << report.certified.certificates.size()
       << "\n";
    for (const auto &cert : report.certified.certificates)
        os << "  - `" << cert.str() << "`\n";
    os << "\n";

    os << "## Reduction\n\n";
    os << "- input bytes: " << report.witnessInput.size() << " -> "
       << report.input.size() << "\n";
    os << "- program statements: " << report.programStats.stmtsBefore
       << " -> " << report.programStats.stmtsAfter << "\n";
    os << "- input reduction: " << report.inputStats.candidatesTried
       << " candidates tried, "
       << report.inputStats.candidatesAccepted << " accepted\n";
    os << "- program reduction: "
       << report.programStats.candidatesTried
       << " candidates tried, "
       << report.programStats.candidatesAccepted << " accepted\n\n";

    os << "## Minimized input\n\n```\n"
       << support::hexDump(report.input) << "```\n\n";

    os << "## Minimized program\n\n```c\n" << report.program;
    if (!report.program.empty() && report.program.back() != '\n')
        os << "\n";
    os << "```\n\n";

    os << "## Reproduce\n\n```\ncompdiff_sancheck --program=program.mc"
          " --input=input.bin --impls="
       << f.implId << "\n```\n\n";
    os << "The binary exits 1 when the finding still reproduces.\n";
    return os.str();
}

std::string
writeFindingReport(const std::string &out_dir,
                   const FindingReport &report)
{
    const std::string dir =
        out_dir + "/" +
        reduce::signatureDirName(report.finding.signatureHash());
    obs::writeTextFile(dir + "/program.mc", report.program);
    obs::writeTextFile(
        dir + "/input.bin",
        std::string(report.input.begin(), report.input.end()));
    obs::writeTextFile(dir + "/witness.bin",
                       std::string(report.witnessInput.begin(),
                                   report.witnessInput.end()));
    obs::writeTextFile(dir + "/report.md",
                       renderFindingMarkdown(report));
    return dir;
}

std::vector<FindingReport>
reduceFindings(const minic::Program &program,
               const core::ImplementationSet &impls,
               const std::vector<FindingWitness> &witnesses,
               const FindingReduceOptions &options)
{
    obs::Span span("sancheck.reduce.pipeline");
    std::vector<FindingReport> reports(witnesses.size());
    if (witnesses.empty())
        return reports;

    std::vector<std::function<void()>> tasks;
    tasks.reserve(witnesses.size());
    for (std::size_t i = 0; i < witnesses.size(); i++) {
        tasks.push_back([&, i] {
            reports[i] = reduceOneFinding(program, impls,
                                          witnesses[i], options);
        });
    }
    if (options.jobs == 1 || witnesses.size() == 1) {
        for (auto &task : tasks)
            task();
    } else {
        support::ThreadPool pool(options.jobs);
        pool.runAll(std::move(tasks));
    }

    obs::counter("sancheck.reduce.witnesses")
        .add(static_cast<std::uint64_t>(witnesses.size()));
    if (!options.reportsDir.empty()) {
        for (const auto &report : reports) {
            const std::string dir =
                writeFindingReport(options.reportsDir, report);
            support::inform("sancheck: wrote " + dir + "/report.md");
            obs::counter("sancheck.reports_written").add();
        }
    }
    return reports;
}

} // namespace compdiff::sancheck
