#pragma once

/**
 * @file
 * Sancheck finding reduction + bundling.
 *
 * Mirrors the divergence pipeline (src/reduce): each distinct-
 * signature finding witness gets its own budgeted oracle, the
 * existing ddmin input reducer and AST program shrinker run against
 * it unchanged (they only see reduce::Oracle), and the result is
 * bundled under `<outDir>/sig-<hex>/` — program.mc, input.bin,
 * witness.bin, report.md — where the hex is the finding's signature
 * hash. The report names the certified UB site and the silent or
 * mis-firing sanitizer, the shape the acceptance criteria pin.
 *
 * Determinism: witnesses reduce in input order into fixed result
 * slots, every oracle runs its sancheck engine serially under nonce
 * 0, and bundles are written serially afterwards — bit-identical for
 * any `jobs`.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minic/ast.hh"
#include "reduce/input_reducer.hh"
#include "reduce/oracle.hh"
#include "reduce/program_reducer.hh"
#include "sancheck/sancheck.hh"
#include "support/bytes.hh"

namespace compdiff::sancheck
{

/** One campaign finding to reduce. */
struct FindingWitness
{
    /** The finding-triggering input. */
    support::Bytes input;
    /** The campaign's classification for it. */
    SanFinding finding;
};

/** Pipeline knobs (the sancheck analog of reduce::ReduceOptions). */
struct FindingReduceOptions
{
    /** Per-execution limits for the oracle re-runs. */
    vm::VmLimits limits;
    /** Max oracle evaluations per witness. */
    std::uint64_t candidateBudget = 4096;
    /** Concurrent reductions; never changes results. */
    std::size_t jobs = 1;
    /** When non-empty, write bundles under this directory. */
    std::string reportsDir;
};

/** Everything the bundler writes about one finding. */
struct FindingReport
{
    SanFinding finding;
    /** Did the finding reproduce under the reduction nonce? When
     *  false the original pair is carried through un-reduced. */
    bool reproduced = false;

    /** Minimized program source (== original when not reproduced). */
    std::string program;
    /** Minimized triggering input. */
    support::Bytes input;
    /** The original un-reduced witness input. */
    support::Bytes witnessInput;

    /** The certified reference run on the minimized pair. */
    refinterp::CertifiedRun certified;

    reduce::InputReduction inputStats;
    reduce::ProgramReduction programStats;
};

/**
 * reduce::Oracle adapter: a candidate preserves the bug when the
 * sancheck classification of the candidate pair still yields a
 * finding with the target signature hash. Construction re-runs the
 * original witness; reproduced() == false means the campaign
 * observation does not recur under nonce 0 and reduction is skipped.
 */
class SanFindingOracle : public reduce::Oracle
{
  public:
    SanFindingOracle(const minic::Program &program,
                     core::ImplementationSet impls,
                     const support::Bytes &witness,
                     const SanFinding &finding, vm::VmLimits limits,
                     std::uint64_t candidate_budget);
    ~SanFindingOracle() override;

    bool reproduced() const { return reproduced_; }

    /** The witness's certified run under the oracle's nonce. */
    const refinterp::CertifiedRun &witnessCertified() const
    {
        return witnessCertified_;
    }

    std::uint64_t targetSignature() const override
    {
        return target_;
    }

    bool preserves(const minic::Program &program,
                   const support::Bytes &input) override;

    bool budgetExhausted() const override
    {
        return stats_.tried >= budget_;
    }

    const reduce::OracleStats &stats() const override
    {
        return stats_;
    }

  private:
    core::ImplementationSet impls_;
    vm::VmLimits limits_;
    std::uint64_t budget_;
    std::uint64_t target_ = 0;
    bool reproduced_ = false;
    refinterp::CertifiedRun witnessCertified_;
    reduce::OracleStats stats_;

    const minic::Program *witnessProgram_ = nullptr;
    std::unique_ptr<SanCheckOracle> witnessEngine_;
};

/** Render the report.md body. */
std::string renderFindingMarkdown(const FindingReport &report);

/**
 * Write the bundle under `<out_dir>/sig-<hex>/` (hex =
 * finding.signatureHash()). @return the bundle directory path.
 */
std::string writeFindingReport(const std::string &out_dir,
                               const FindingReport &report);

/**
 * Reduce every finding witness and (optionally) write bundles.
 * One report per witness, in witness order.
 */
std::vector<FindingReport>
reduceFindings(const minic::Program &program,
               const core::ImplementationSet &impls,
               const std::vector<FindingWitness> &witnesses,
               const FindingReduceOptions &options);

} // namespace compdiff::sancheck
