#pragma once

/**
 * @file
 * Static analyzers (the Coverity / Cppcheck / Infer comparison arm of
 * the paper's Table 3).
 *
 * Three heuristic AST analyzers share one abstract-interpretation
 * engine and differ in *capabilities* — exactly the axis on which
 * real static tools differ:
 *
 *  - lintcheck  (Cppcheck-like): local, mostly syntactic reasoning.
 *    Constant indices, literal divisors, straight-line uninitialized
 *    reads, free() pairing, signature mismatches. Conservative; low
 *    false-positive rate, low recall on anything data-dependent.
 *  - inferlite  (Infer-like): intraprocedural intervals including
 *    loop ranges and taint from input, but no branch-guard
 *    refinement and no interprocedural reasoning — strong on integer
 *    issues with a sizable false-positive rate on guarded code.
 *  - deepscan   (Coverity-like): everything above plus branch-guard
 *    refinement and depth-1 constant-argument inlining. Best overall
 *    static recall; moderate false positives from aggressive
 *    unknown-index reporting.
 *
 * Like their real counterparts (Table 3, CWE-469 row), none of them
 * model cross-object pointer relations or evaluation-order hazards.
 */

#include <memory>
#include <string>
#include <vector>

#include "minic/ast.hh"
#include "support/diagnostics.hh"

namespace compdiff::analysis
{

/** Categories of static findings (aligned with the CWE families). */
enum class FindingKind
{
    BufferOverflow,  ///< OOB write or read, either direction
    UninitRead,      ///< use of a possibly uninitialized value
    DivByZero,
    NullDeref,
    IntOverflow,
    DoubleFree,
    InvalidFree,     ///< free of non-heap memory
    UseAfterFree,
    ArgMismatch,     ///< call with wrong argument count
    ApiMisuse,       ///< e.g. overlapping memcpy
    BadShift,
};

/** Display name of a finding kind. */
const char *findingKindName(FindingKind kind);

/** One static-analysis report. */
struct Finding
{
    std::string tool;
    FindingKind kind = FindingKind::BufferOverflow;
    std::string function;
    support::SourceLoc loc;
    std::string message;

    std::string str() const;
};

/**
 * Interface of a static analyzer.
 */
class StaticAnalyzer
{
  public:
    virtual ~StaticAnalyzer() = default;

    /** Tool name as it appears in reports and tables. */
    virtual const char *name() const = 0;

    /** Analyze a whole (sema-checked) program. */
    virtual std::vector<Finding>
    analyze(const minic::Program &program) const = 0;
};

/** Factories for the three tools. */
std::unique_ptr<StaticAnalyzer> makeLintCheck();
std::unique_ptr<StaticAnalyzer> makeInferLite();
std::unique_ptr<StaticAnalyzer> makeDeepScan();

/** All three, in Table 3 column order (deepscan, lintcheck, inferlite
 *  mirroring Coverity, Cppcheck, Infer). */
std::vector<std::unique_ptr<StaticAnalyzer>> allStaticAnalyzers();

} // namespace compdiff::analysis
