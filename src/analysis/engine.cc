#include "analysis/static_analyzer.hh"

#include <map>
#include <set>
#include <sstream>

namespace compdiff::analysis
{

using namespace minic;

const char *
findingKindName(FindingKind kind)
{
    switch (kind) {
      case FindingKind::BufferOverflow: return "buffer-overflow";
      case FindingKind::UninitRead: return "uninitialized-read";
      case FindingKind::DivByZero: return "division-by-zero";
      case FindingKind::NullDeref: return "null-dereference";
      case FindingKind::IntOverflow: return "integer-overflow";
      case FindingKind::DoubleFree: return "double-free";
      case FindingKind::InvalidFree: return "invalid-free";
      case FindingKind::UseAfterFree: return "use-after-free";
      case FindingKind::ArgMismatch: return "argument-mismatch";
      case FindingKind::ApiMisuse: return "api-misuse";
      case FindingKind::BadShift: return "bad-shift";
    }
    return "?";
}

std::string
Finding::str() const
{
    std::ostringstream os;
    os << tool << ": " << findingKindName(kind) << " in "
       << function << " at " << loc.str() << ": " << message;
    return os.str();
}

namespace
{

/** Precision/aggressiveness knobs distinguishing the three tools. */
struct Capabilities
{
    bool constGuards = true;
    bool branchGuards = false;
    bool loopIntervals = false;
    bool interprocConst = false;
    bool taintTracking = false;
    bool flagUnknownOverflow = false;
    bool flagTaintedIndex = false;
};

/** The abstract value domain. */
struct AbsVal
{
    bool maybeUninit = false;
    bool tainted = false;
    bool hasRange = false;
    std::int64_t lo = 0;
    std::int64_t hi = 0;

    enum class Nullness
    {
        Unknown,
        Null,
        NonNull,
    } nullness = Nullness::Unknown;

    /** Byte size of the pointed-to object; -1 unknown. */
    std::int64_t pointeeSize = -1;
    /** Identity of the pointed-to allocation; -1 unknown. */
    int allocId = -1;
    bool pointsToNonHeap = false;
    /** Byte-offset range of this pointer within its object. */
    std::int64_t offLo = 0;
    std::int64_t offHi = 0;

    bool
    isConst() const
    {
        return hasRange && lo == hi;
    }

    static AbsVal
    constant(std::int64_t v)
    {
        AbsVal out;
        out.hasRange = true;
        out.lo = out.hi = v;
        out.nullness = v == 0 ? Nullness::Null : Nullness::NonNull;
        return out;
    }

    static AbsVal
    range(std::int64_t lo, std::int64_t hi, bool tainted = false)
    {
        AbsVal out;
        out.hasRange = true;
        out.lo = lo;
        out.hi = hi;
        out.tainted = tainted;
        return out;
    }

    static AbsVal
    top()
    {
        return AbsVal{};
    }
};

/** Join two abstract values at a control-flow merge. */
AbsVal
join(const AbsVal &a, const AbsVal &b)
{
    AbsVal out;
    out.maybeUninit = a.maybeUninit || b.maybeUninit;
    out.tainted = a.tainted || b.tainted;
    if (a.hasRange && b.hasRange) {
        out.hasRange = true;
        out.lo = std::min(a.lo, b.lo);
        out.hi = std::max(a.hi, b.hi);
    }
    out.nullness = a.nullness == b.nullness ? a.nullness
                                            : AbsVal::Nullness::Unknown;
    if (a.allocId == b.allocId) {
        out.allocId = a.allocId;
        out.pointeeSize =
            a.pointeeSize == b.pointeeSize ? a.pointeeSize : -1;
        out.pointsToNonHeap = a.pointsToNonHeap || b.pointsToNonHeap;
        out.offLo = std::min(a.offLo, b.offLo);
        out.offHi = std::max(a.offHi, b.offHi);
    }
    return out;
}

using Env = std::map<int, AbsVal>;

/**
 * The shared abstract-interpretation engine, instantiated with a
 * tool name and capabilities.
 */
class Engine : public StaticAnalyzer
{
  public:
    Engine(const char *tool_name, Capabilities caps)
        : tool_(tool_name), caps_(caps)
    {}

    const char *name() const override { return tool_; }

    std::vector<Finding>
    analyze(const Program &program) const override
    {
        Run run(program, tool_, caps_);
        for (const auto &func : program.functions)
            run.analyzeFunction(*func, nullptr, 0);
        return std::move(run.findings);
    }

  private:
    struct Run
    {
        Run(const Program &program, const char *tool,
            Capabilities caps)
            : program(program), tool(tool), caps(caps)
        {}

        const Program &program;
        const char *tool;
        Capabilities caps;
        int depth = 0;
        std::vector<Finding> findings;
        std::set<std::string> seen;
        std::set<int> freedAllocs;
        int nextAllocId = 1000; // malloc-site ids above local ids

        const FunctionDecl *curFunc = nullptr;

        void
        report(FindingKind kind, SourceLoc loc,
               const std::string &message)
        {
            std::ostringstream key;
            key << tool << "|" << static_cast<int>(kind) << "|"
                << curFunc->name << "|" << loc.line;
            if (!seen.insert(key.str()).second)
                return;
            findings.push_back(
                {tool, kind, curFunc->name, loc, message});
        }

        // -------------------------------------------------------
        void
        analyzeFunction(const FunctionDecl &func, const Env *bound,
                        int call_depth)
        {
            if (!func.body || call_depth > 1)
                return;
            const int prev_depth = depth;
            depth = call_depth;
            const FunctionDecl *prev = curFunc;
            curFunc = &func;
            Env env;
            for (const auto &param : func.params) {
                AbsVal v = AbsVal::top();
                if (bound) {
                    auto it = bound->find(param.localId);
                    if (it != bound->end())
                        v = it->second;
                }
                env[param.localId] = v;
            }
            freedAllocs.clear();
            analyzeStmtList(func.body->body, env);
            curFunc = prev;
            depth = prev_depth;
        }

        void
        analyzeStmtList(const std::vector<StmtPtr> &list, Env &env)
        {
            for (const auto &stmt : list)
                analyzeStmt(*stmt, env);
        }

        void
        analyzeStmt(const Stmt &stmt, Env &env)
        {
            switch (stmt.kind()) {
              case StmtKind::Block:
                analyzeStmtList(
                    static_cast<const BlockStmt &>(stmt).body, env);
                return;
              case StmtKind::VarDecl: {
                const auto &decl =
                    static_cast<const VarDeclStmt &>(stmt);
                AbsVal v;
                if (decl.init) {
                    v = evalExpr(*decl.init, env);
                } else if (decl.declType->isArray() ||
                           decl.declType->isStruct()) {
                    v = AbsVal::top(); // storage, address is defined
                } else {
                    v.maybeUninit = true;
                }
                env[decl.localId] = v;
                return;
              }
              case StmtKind::If: {
                const auto &if_stmt =
                    static_cast<const IfStmt &>(stmt);
                AbsVal cond = evalExpr(*if_stmt.cond, env);
                if (caps.constGuards && cond.isConst()) {
                    if (cond.lo != 0) {
                        analyzeStmt(*if_stmt.thenStmt, env);
                    } else if (if_stmt.elseStmt) {
                        analyzeStmt(*if_stmt.elseStmt, env);
                    }
                    return;
                }
                Env then_env = env;
                Env else_env = env;
                if (caps.branchGuards) {
                    refineByCond(*if_stmt.cond, then_env, true);
                    refineByCond(*if_stmt.cond, else_env, false);
                }
                analyzeStmt(*if_stmt.thenStmt, then_env);
                if (if_stmt.elseStmt)
                    analyzeStmt(*if_stmt.elseStmt, else_env);
                env = mergeEnvs(then_env, else_env);
                return;
              }
              case StmtKind::While: {
                const auto &while_stmt =
                    static_cast<const WhileStmt &>(stmt);
                Env body_env = env;
                havocAssigned(*while_stmt.body, body_env);
                evalExpr(*while_stmt.cond, body_env);
                analyzeStmt(*while_stmt.body, body_env);
                havocAssigned(*while_stmt.body, env);
                return;
              }
              case StmtKind::For: {
                const auto &for_stmt =
                    static_cast<const ForStmt &>(stmt);
                if (for_stmt.init)
                    analyzeStmt(*for_stmt.init, env);
                Env body_env = env;
                havocAssigned(*for_stmt.body, body_env);

                // Loop-interval modeling: for (i = C1; i < C2; i+=C3)
                if (caps.loopIntervals) {
                    applyLoopInterval(for_stmt, body_env);
                }
                if (for_stmt.cond)
                    evalExpr(*for_stmt.cond, body_env);
                analyzeStmt(*for_stmt.body, body_env);
                if (for_stmt.step)
                    evalExpr(*for_stmt.step, body_env);
                havocAssigned(*for_stmt.body, env);
                if (for_stmt.step) {
                    Env scratch = env;
                    evalExpr(*for_stmt.step, scratch);
                    havocExprAssigned(*for_stmt.step, env);
                }
                return;
              }
              case StmtKind::Return: {
                const auto &ret =
                    static_cast<const ReturnStmt &>(stmt);
                if (ret.value)
                    evalExpr(*ret.value, env);
                return;
              }
              case StmtKind::ExprStmt:
                evalExpr(*static_cast<const ExprStmt &>(stmt).expr,
                         env);
                return;
              default:
                return;
            }
        }

        void
        applyLoopInterval(const ForStmt &for_stmt, Env &env)
        {
            if (!for_stmt.init || !for_stmt.cond)
                return;
            int var = -1;
            std::int64_t start = 0;
            if (for_stmt.init->kind() == StmtKind::VarDecl) {
                const auto &decl = static_cast<const VarDeclStmt &>(
                    *for_stmt.init);
                if (!decl.init ||
                    decl.init->kind() != ExprKind::IntLit)
                    return;
                var = decl.localId;
                start =
                    static_cast<const IntLitExpr &>(*decl.init).value;
            } else if (for_stmt.init->kind() == StmtKind::ExprStmt) {
                const auto &es = static_cast<const ExprStmt &>(
                    *for_stmt.init);
                if (es.expr->kind() != ExprKind::Assign)
                    return;
                const auto &assign =
                    static_cast<const AssignExpr &>(*es.expr);
                if (assign.compoundOp ||
                    assign.target->kind() != ExprKind::VarRef ||
                    assign.value->kind() != ExprKind::IntLit)
                    return;
                var = static_cast<const VarRefExpr &>(*assign.target)
                          .id;
                start = static_cast<const IntLitExpr &>(*assign.value)
                            .value;
            } else {
                return;
            }

            if (for_stmt.cond->kind() != ExprKind::Binary)
                return;
            const auto &cond =
                static_cast<const BinaryExpr &>(*for_stmt.cond);
            if (cond.lhs->kind() != ExprKind::VarRef ||
                static_cast<const VarRefExpr &>(*cond.lhs).id != var ||
                cond.rhs->kind() != ExprKind::IntLit)
                return;
            const std::int64_t bound =
                static_cast<const IntLitExpr &>(*cond.rhs).value;
            std::int64_t hi;
            if (cond.op == BinaryOp::Lt)
                hi = bound - 1;
            else if (cond.op == BinaryOp::Le)
                hi = bound;
            else
                return;
            env[var] = AbsVal::range(start, std::max(start, hi));
        }

        Env
        mergeEnvs(const Env &a, const Env &b)
        {
            Env out;
            for (const auto &[id, val] : a) {
                auto it = b.find(id);
                out[id] = it == b.end() ? val : join(val, it->second);
            }
            for (const auto &[id, val] : b)
                if (!out.count(id))
                    out[id] = val;
            return out;
        }

        void
        havocAssigned(const Stmt &stmt, Env &env)
        {
            collectAssignedInto(stmt, env);
        }

        void
        collectAssignedInto(const Stmt &stmt, Env &env)
        {
            switch (stmt.kind()) {
              case StmtKind::Block:
                for (const auto &child :
                     static_cast<const BlockStmt &>(stmt).body)
                    collectAssignedInto(*child, env);
                return;
              case StmtKind::VarDecl:
                return; // scoped inside
              case StmtKind::If: {
                const auto &if_stmt =
                    static_cast<const IfStmt &>(stmt);
                collectAssignedInto(*if_stmt.thenStmt, env);
                if (if_stmt.elseStmt)
                    collectAssignedInto(*if_stmt.elseStmt, env);
                havocExprAssigned(*if_stmt.cond, env);
                return;
              }
              case StmtKind::While: {
                const auto &ws = static_cast<const WhileStmt &>(stmt);
                collectAssignedInto(*ws.body, env);
                havocExprAssigned(*ws.cond, env);
                return;
              }
              case StmtKind::For: {
                const auto &fs = static_cast<const ForStmt &>(stmt);
                collectAssignedInto(*fs.body, env);
                if (fs.step)
                    havocExprAssigned(*fs.step, env);
                return;
              }
              case StmtKind::ExprStmt:
                havocExprAssigned(
                    *static_cast<const ExprStmt &>(stmt).expr, env);
                return;
              case StmtKind::Return: {
                const auto &ret =
                    static_cast<const ReturnStmt &>(stmt);
                if (ret.value)
                    havocExprAssigned(*ret.value, env);
                return;
              }
              default:
                return;
            }
        }

        void
        havocExprAssigned(const Expr &expr, Env &env)
        {
            if (expr.kind() == ExprKind::Assign) {
                const auto &assign =
                    static_cast<const AssignExpr &>(expr);
                if (assign.target->kind() == ExprKind::VarRef) {
                    const auto &ref = static_cast<const VarRefExpr &>(
                        *assign.target);
                    if (!ref.isGlobal)
                        env[ref.id] = AbsVal::top();
                }
                havocExprAssigned(*assign.value, env);
                return;
            }
            // Recurse shallowly over children.
            switch (expr.kind()) {
              case ExprKind::Unary:
                havocExprAssigned(
                    *static_cast<const UnaryExpr &>(expr).operand,
                    env);
                return;
              case ExprKind::Binary: {
                const auto &bin =
                    static_cast<const BinaryExpr &>(expr);
                havocExprAssigned(*bin.lhs, env);
                havocExprAssigned(*bin.rhs, env);
                return;
              }
              case ExprKind::Call: {
                const auto &call =
                    static_cast<const CallExpr &>(expr);
                for (const auto &arg : call.args)
                    havocExprAssigned(*arg, env);
                return;
              }
              case ExprKind::Index: {
                const auto &index =
                    static_cast<const IndexExpr &>(expr);
                havocExprAssigned(*index.base, env);
                havocExprAssigned(*index.index, env);
                return;
              }
              case ExprKind::Cond: {
                const auto &cond =
                    static_cast<const CondExpr &>(expr);
                havocExprAssigned(*cond.cond, env);
                havocExprAssigned(*cond.thenExpr, env);
                havocExprAssigned(*cond.elseExpr, env);
                return;
              }
              case ExprKind::Cast:
                havocExprAssigned(
                    *static_cast<const CastExpr &>(expr).operand,
                    env);
                return;
              case ExprKind::Member:
                havocExprAssigned(
                    *static_cast<const MemberExpr &>(expr).base, env);
                return;
              default:
                return;
            }
        }

        /** Refine env from a branch condition (branchGuards). */
        void
        refineByCond(const Expr &cond, Env &env, bool taken)
        {
            if (cond.kind() == ExprKind::Unary) {
                const auto &un = static_cast<const UnaryExpr &>(cond);
                if (un.op == UnaryOp::LogNot)
                    refineByCond(*un.operand, env, !taken);
                return;
            }
            if (cond.kind() == ExprKind::VarRef) {
                const auto &ref =
                    static_cast<const VarRefExpr &>(cond);
                if (!ref.isGlobal && ref.type &&
                    ref.type->isPointer()) {
                    env[ref.id].nullness =
                        taken ? AbsVal::Nullness::NonNull
                              : AbsVal::Nullness::Null;
                }
                return;
            }
            if (cond.kind() != ExprKind::Binary)
                return;
            const auto &bin = static_cast<const BinaryExpr &>(cond);

            if (bin.op == BinaryOp::LogAnd && taken) {
                refineByCond(*bin.lhs, env, true);
                refineByCond(*bin.rhs, env, true);
                return;
            }
            if (bin.op == BinaryOp::LogOr && !taken) {
                refineByCond(*bin.lhs, env, false);
                refineByCond(*bin.rhs, env, false);
                return;
            }

            // x cmp C patterns.
            if (bin.lhs->kind() == ExprKind::VarRef &&
                bin.rhs->kind() == ExprKind::IntLit) {
                const auto &ref =
                    static_cast<const VarRefExpr &>(*bin.lhs);
                if (ref.isGlobal)
                    return;
                const std::int64_t c =
                    static_cast<const IntLitExpr &>(*bin.rhs).value;
                AbsVal &v = env[ref.id];
                // Null tests on pointers.
                if (ref.type && ref.type->isPointer() && c == 0) {
                    const bool eq = bin.op == BinaryOp::Eq;
                    const bool ne = bin.op == BinaryOp::Ne;
                    if (eq || ne) {
                        const bool is_null = eq == taken;
                        v.nullness = is_null
                                         ? AbsVal::Nullness::Null
                                         : AbsVal::Nullness::NonNull;
                    }
                    return;
                }
                std::int64_t lo = v.hasRange ? v.lo : INT32_MIN;
                std::int64_t hi = v.hasRange ? v.hi : INT32_MAX;
                BinaryOp op = bin.op;
                if (!taken) {
                    switch (op) {
                      case BinaryOp::Lt: op = BinaryOp::Ge; break;
                      case BinaryOp::Le: op = BinaryOp::Gt; break;
                      case BinaryOp::Gt: op = BinaryOp::Le; break;
                      case BinaryOp::Ge: op = BinaryOp::Lt; break;
                      case BinaryOp::Eq: op = BinaryOp::Ne; break;
                      case BinaryOp::Ne: op = BinaryOp::Eq; break;
                      default: return;
                    }
                }
                switch (op) {
                  case BinaryOp::Lt: hi = std::min(hi, c - 1); break;
                  case BinaryOp::Le: hi = std::min(hi, c); break;
                  case BinaryOp::Gt: lo = std::max(lo, c + 1); break;
                  case BinaryOp::Ge: lo = std::max(lo, c); break;
                  case BinaryOp::Eq: lo = hi = c; break;
                  case BinaryOp::Ne: return;
                  default: return;
                }
                if (lo <= hi) {
                    const bool was_tainted = v.tainted;
                    v = AbsVal::range(lo, hi, was_tainted);
                }
            }
        }

        // --- expression evaluation + checks ----------------------
        AbsVal
        evalExpr(const Expr &expr, Env &env)
        {
            switch (expr.kind()) {
              case ExprKind::IntLit:
                return AbsVal::constant(
                    static_cast<const IntLitExpr &>(expr).value);
              case ExprKind::FloatLit:
                return AbsVal::top();
              case ExprKind::StrLit: {
                AbsVal v;
                v.nullness = AbsVal::Nullness::NonNull;
                v.pointeeSize = static_cast<std::int64_t>(
                    static_cast<const StrLitExpr &>(expr)
                        .bytes.size() +
                    1);
                v.allocId = -1;
                return v;
              }
              case ExprKind::VarRef: {
                const auto &ref =
                    static_cast<const VarRefExpr &>(expr);
                if (ref.isGlobal) {
                    AbsVal v = AbsVal::top();
                    if (ref.type && (ref.type->isArray() ||
                                     ref.type->isStruct())) {
                        v.pointeeSize = static_cast<std::int64_t>(
                            ref.type->size());
                        v.allocId = -100 - ref.id;
                        v.pointsToNonHeap = true;
                        v.nullness = AbsVal::Nullness::NonNull;
                    }
                    return v;
                }
                auto it = env.find(ref.id);
                AbsVal v =
                    it == env.end() ? AbsVal::top() : it->second;
                if (ref.type && (ref.type->isArray() ||
                                 ref.type->isStruct())) {
                    v.pointeeSize =
                        static_cast<std::int64_t>(ref.type->size());
                    v.allocId = ref.id;
                    v.pointsToNonHeap = true;
                    v.nullness = AbsVal::Nullness::NonNull;
                    v.maybeUninit = false;
                    v.offLo = v.offHi = 0;
                    return v;
                }
                if (v.maybeUninit && expr.type &&
                    expr.type->isArithmetic()) {
                    report(FindingKind::UninitRead, expr.loc(),
                           "variable '" + ref.name +
                               "' may be used uninitialized");
                }
                return v;
              }
              case ExprKind::Unary:
                return evalUnary(
                    static_cast<const UnaryExpr &>(expr), env);
              case ExprKind::Binary:
                return evalBinary(
                    static_cast<const BinaryExpr &>(expr), env);
              case ExprKind::Assign:
                return evalAssign(
                    static_cast<const AssignExpr &>(expr), env);
              case ExprKind::Cond: {
                const auto &cond =
                    static_cast<const CondExpr &>(expr);
                evalExpr(*cond.cond, env);
                AbsVal a = evalExpr(*cond.thenExpr, env);
                AbsVal b = evalExpr(*cond.elseExpr, env);
                return join(a, b);
              }
              case ExprKind::Call:
                return evalCall(
                    static_cast<const CallExpr &>(expr), env);
              case ExprKind::Index: {
                const auto &index =
                    static_cast<const IndexExpr &>(expr);
                AbsVal base = evalExpr(*index.base, env);
                AbsVal idx = evalExpr(*index.index, env);
                const std::int64_t elem =
                    expr.type
                        ? static_cast<std::int64_t>(
                              std::max<std::uint64_t>(
                                  expr.type->size(), 1))
                        : 1;
                checkAccess(base, idx, elem, expr.loc());
                AbsVal out = AbsVal::top();
                out.tainted = base.tainted || idx.tainted;
                return out;
              }
              case ExprKind::Member: {
                const auto &member =
                    static_cast<const MemberExpr &>(expr);
                AbsVal base = evalExpr(*member.base, env);
                if (member.isArrow)
                    checkDeref(base, expr.loc());
                return AbsVal::top();
              }
              case ExprKind::Cast: {
                const auto &cast =
                    static_cast<const CastExpr &>(expr);
                return evalExpr(*cast.operand, env);
              }
              case ExprKind::SizeOf:
                return AbsVal::constant(static_cast<std::int64_t>(
                    static_cast<const SizeOfExpr &>(expr)
                        .queried->size()));
            }
            return AbsVal::top();
        }

        void
        checkDeref(const AbsVal &ptr, SourceLoc loc)
        {
            if (ptr.nullness == AbsVal::Nullness::Null) {
                report(FindingKind::NullDeref, loc,
                       "dereference of null pointer");
            }
            if (ptr.allocId >= 0 && freedAllocs.count(ptr.allocId)) {
                report(FindingKind::UseAfterFree, loc,
                       "use of freed memory");
            }
        }

        /** Bounds check for base[idx] with element size `elem`. */
        void
        checkAccess(const AbsVal &base, const AbsVal &idx,
                    std::int64_t elem, SourceLoc loc)
        {
            checkDeref(base, loc);
            if (base.pointeeSize < 0)
                return;
            const std::int64_t size = base.pointeeSize;
            if (idx.hasRange) {
                const std::int64_t lo_off =
                    base.offLo + idx.lo * elem;
                const std::int64_t hi_off =
                    base.offHi + idx.hi * elem + elem - 1;
                const bool partially_out =
                    lo_off < 0 || hi_off >= size;
                if (lo_off >= size || hi_off < 0 ||
                    (partially_out && !idx.tainted)) {
                    // Untainted ranges come from constants, joins,
                    // or loop intervals and are treated as exact.
                    report(FindingKind::BufferOverflow, loc,
                           "index outside object bounds");
                    return;
                }
                if (partially_out && caps.flagTaintedIndex &&
                    idx.tainted) {
                    report(FindingKind::BufferOverflow, loc,
                           "possibly out-of-bounds tainted index");
                }
            } else if (caps.flagTaintedIndex && idx.tainted) {
                report(FindingKind::BufferOverflow, loc,
                       "unchecked tainted index");
            }
        }

        AbsVal
        evalUnary(const UnaryExpr &un, Env &env)
        {
            // &x is not a *read* of x — handle it before evaluating
            // the operand (which would flag uninitialized reads).
            if (un.op == UnaryOp::AddrOf &&
                un.operand->kind() == ExprKind::VarRef) {
                const auto &ref =
                    static_cast<const VarRefExpr &>(*un.operand);
                AbsVal out;
                out.nullness = AbsVal::Nullness::NonNull;
                out.pointeeSize =
                    ref.type
                        ? static_cast<std::int64_t>(ref.type->size())
                        : -1;
                out.allocId = ref.isGlobal ? -100 - ref.id : ref.id;
                out.pointsToNonHeap = true;
                // Escaping the address may initialize the object.
                if (!ref.isGlobal)
                    env[ref.id].maybeUninit = false;
                return out;
            }

            AbsVal v = evalExpr(*un.operand, env);
            switch (un.op) {
              case UnaryOp::Deref:
                checkAccess(v, AbsVal::constant(0),
                            un.type ? static_cast<std::int64_t>(
                                          std::max<std::uint64_t>(
                                              un.type->size(), 1))
                                    : 1,
                            un.loc());
                return AbsVal::top();
              case UnaryOp::AddrOf:
                return AbsVal::top(); // non-VarRef lvalues

              case UnaryOp::Neg:
                if (v.hasRange)
                    return AbsVal::range(-v.hi, -v.lo, v.tainted);
                return v;
              case UnaryOp::LogNot:
              case UnaryOp::BitNot: {
                AbsVal out = AbsVal::top();
                out.tainted = v.tainted;
                return out;
              }
            }
            return AbsVal::top();
        }

        AbsVal
        evalBinary(const BinaryExpr &bin, Env &env)
        {
            AbsVal a = evalExpr(*bin.lhs, env);
            AbsVal b = evalExpr(*bin.rhs, env);

            // Pointer arithmetic: shift the offset window.
            const bool a_ptr = bin.lhs->type &&
                               (bin.lhs->type->isPointer() ||
                                bin.lhs->type->isArray());
            if (a_ptr &&
                (bin.op == BinaryOp::Add || bin.op == BinaryOp::Sub) &&
                bin.rhs->type && bin.rhs->type->isInteger()) {
                AbsVal out = a;
                const std::int64_t elem =
                    bin.type && bin.type->isPointer()
                        ? static_cast<std::int64_t>(
                              std::max<std::uint64_t>(
                                  bin.type->pointee()->size(), 1))
                        : 1;
                if (b.hasRange) {
                    std::int64_t dlo = b.lo * elem;
                    std::int64_t dhi = b.hi * elem;
                    if (bin.op == BinaryOp::Sub)
                        std::swap(dlo = -dlo, dhi = -dhi);
                    out.offLo += std::min(dlo, dhi);
                    out.offHi += std::max(dlo, dhi);
                } else {
                    out.pointeeSize = out.pointeeSize; // offset lost
                    out.offLo = INT32_MIN;
                    out.offHi = INT32_MAX;
                }
                out.tainted |= b.tainted;
                return out;
            }

            switch (bin.op) {
              case BinaryOp::Div:
              case BinaryOp::Rem: {
                if (b.isConst() && b.lo == 0) {
                    report(FindingKind::DivByZero, bin.loc(),
                           "division by constant zero");
                } else if (b.hasRange && b.lo <= 0 && b.hi >= 0 &&
                           caps.flagUnknownOverflow && b.tainted) {
                    report(FindingKind::DivByZero, bin.loc(),
                           "possible division by zero");
                }
                break;
              }
              case BinaryOp::Shl:
              case BinaryOp::Shr: {
                const std::int64_t width =
                    bin.type && !bin.type->is32OrNarrower() ? 64 : 32;
                if (b.isConst() && (b.lo < 0 || b.lo >= width)) {
                    report(FindingKind::BadShift, bin.loc(),
                           "shift count out of range");
                }
                break;
              }
              default:
                break;
            }

            AbsVal out = AbsVal::top();
            out.tainted = a.tainted || b.tainted;
            if (a.hasRange && b.hasRange) {
                bool ok = true;
                std::int64_t lo = 0, hi = 0;
                switch (bin.op) {
                  case BinaryOp::Add:
                    lo = a.lo + b.lo;
                    hi = a.hi + b.hi;
                    break;
                  case BinaryOp::Sub:
                    lo = a.lo - b.hi;
                    hi = a.hi - b.lo;
                    break;
                  case BinaryOp::Mul: {
                    const std::int64_t c[] = {a.lo * b.lo, a.lo * b.hi,
                                              a.hi * b.lo,
                                              a.hi * b.hi};
                    lo = std::min(std::min(c[0], c[1]),
                                  std::min(c[2], c[3]));
                    hi = std::max(std::max(c[0], c[1]),
                                  std::max(c[2], c[3]));
                    break;
                  }
                  default:
                    ok = false;
                    break;
                }
                if (ok) {
                    out.hasRange = true;
                    out.lo = lo;
                    out.hi = hi;
                    // Overflow detection on 32-bit signed results.
                    if (bin.type &&
                        bin.type->kind() == TypeKind::Int) {
                        const bool definite = a.isConst() &&
                                              b.isConst() &&
                                              (lo > INT32_MAX ||
                                               hi < INT32_MIN);
                        const bool possible =
                            lo < INT32_MIN || hi > INT32_MAX;
                        if (definite) {
                            report(FindingKind::IntOverflow,
                                   bin.loc(),
                                   "signed overflow in constant "
                                   "arithmetic");
                        } else if (possible &&
                                   caps.flagUnknownOverflow &&
                                   out.tainted) {
                            report(FindingKind::IntOverflow,
                                   bin.loc(),
                                   "possible signed overflow");
                        }
                    }
                }
            } else if (caps.flagUnknownOverflow && out.tainted &&
                       bin.type &&
                       bin.type->kind() == TypeKind::Int &&
                       (bin.op == BinaryOp::Mul ||
                        bin.op == BinaryOp::Add)) {
                report(FindingKind::IntOverflow, bin.loc(),
                       "possible signed overflow on unchecked input");
            }
            if (isComparison(bin.op)) {
                // Fold constant comparisons (flag-guard variants
                // rely on this for constGuards precision).
                if (a.isConst() && b.isConst()) {
                    bool truth = false;
                    switch (bin.op) {
                      case BinaryOp::Lt: truth = a.lo < b.lo; break;
                      case BinaryOp::Le: truth = a.lo <= b.lo; break;
                      case BinaryOp::Gt: truth = a.lo > b.lo; break;
                      case BinaryOp::Ge: truth = a.lo >= b.lo; break;
                      case BinaryOp::Eq: truth = a.lo == b.lo; break;
                      case BinaryOp::Ne: truth = a.lo != b.lo; break;
                      default: break;
                    }
                    return AbsVal::constant(truth ? 1 : 0);
                }
                return AbsVal::range(0, 1, out.tainted);
            }
            return out;
        }

        AbsVal
        evalAssign(const AssignExpr &assign, Env &env)
        {
            AbsVal value = evalExpr(*assign.value, env);
            // Evaluate target subexpressions (index checks etc.)
            // without treating the read as a use.
            if (assign.target->kind() == ExprKind::VarRef) {
                const auto &ref =
                    static_cast<const VarRefExpr &>(*assign.target);
                if (!ref.isGlobal) {
                    if (assign.compoundOp) {
                        AbsVal old = env[ref.id];
                        if (old.maybeUninit && caps.constGuards) {
                            report(FindingKind::UninitRead,
                                   assign.loc(),
                                   "compound assignment reads "
                                   "uninitialized '" +
                                       ref.name + "'");
                        }
                        AbsVal out = AbsVal::top();
                        out.tainted = old.tainted || value.tainted;
                        env[ref.id] = out;
                        return out;
                    }
                    env[ref.id] = value;
                    return value;
                }
                return value;
            }
            evalExpr(*assign.target, env);
            return value;
        }

        AbsVal
        evalCall(const CallExpr &call, Env &env)
        {
            std::vector<AbsVal> args;
            args.reserve(call.args.size());
            for (const auto &arg : call.args)
                args.push_back(evalExpr(*arg, env));

            if (call.builtin != Builtin::None) {
                return evalBuiltin(call, args);
            }

            const auto &callee = *program.functions[
                static_cast<std::size_t>(call.funcIndex)];
            if (call.args.size() != callee.params.size()) {
                report(FindingKind::ArgMismatch, call.loc(),
                       "call to '" + call.callee + "' with " +
                           std::to_string(call.args.size()) +
                           " args, expected " +
                           std::to_string(callee.params.size()));
            }

            // Depth-1 constant-argument inlining (deepscan).
            if (caps.interprocConst && &callee != curFunc &&
                depth == 0) {
                bool all_const = !args.empty() || callee.params.empty();
                Env bound;
                for (std::size_t i = 0;
                     i < std::min(args.size(), callee.params.size());
                     i++) {
                    if (!args[i].isConst() &&
                        args[i].pointeeSize < 0) {
                        all_const = false;
                        break;
                    }
                    bound[callee.params[i].localId] = args[i];
                }
                if (all_const && callee.body &&
                    callee.body->body.size() <= 64) {
                    analyzeFunction(callee, &bound, 1);
                }
            }

            // Passing a pointer into a callee may initialize the
            // pointed-to object.
            for (const auto &arg : call.args) {
                if (arg->kind() == ExprKind::Unary) {
                    const auto &un =
                        static_cast<const UnaryExpr &>(*arg);
                    if (un.op == UnaryOp::AddrOf &&
                        un.operand->kind() == ExprKind::VarRef) {
                        const auto &ref =
                            static_cast<const VarRefExpr &>(
                                *un.operand);
                        if (!ref.isGlobal)
                            env[ref.id].maybeUninit = false;
                    }
                }
            }
            return AbsVal::top();
        }

        AbsVal
        evalBuiltin(const CallExpr &call, std::vector<AbsVal> &args)
        {
            switch (call.builtin) {
              case Builtin::Malloc: {
                AbsVal out;
                out.allocId = nextAllocId++;
                out.pointeeSize =
                    !args.empty() && args[0].isConst() ? args[0].lo
                                                       : -1;
                // malloc may fail; nullness stays Unknown.
                return out;
              }
              case Builtin::Free: {
                if (args.empty())
                    return AbsVal::top();
                const AbsVal &p = args[0];
                if (p.pointsToNonHeap) {
                    report(FindingKind::InvalidFree, call.loc(),
                           "free() of non-heap memory");
                } else if (p.allocId >= 0) {
                    if (!freedAllocs.insert(p.allocId).second) {
                        report(FindingKind::DoubleFree, call.loc(),
                               "double free");
                    }
                }
                return AbsVal::top();
              }
              case Builtin::Memcpy: {
                if (args.size() == 3 && args[0].allocId != -1 &&
                    args[0].allocId == args[1].allocId &&
                    args[2].isConst()) {
                    const std::int64_t n = args[2].lo;
                    const std::int64_t d0 = args[0].offLo;
                    const std::int64_t s0 = args[1].offLo;
                    if (args[0].isConst() || true) {
                        if (d0 < s0 + n && s0 < d0 + n && d0 != s0) {
                            report(FindingKind::ApiMisuse,
                                   call.loc(),
                                   "memcpy on overlapping ranges");
                        }
                    }
                }
                checkByteFill(args, call.loc());
                return AbsVal::top();
              }
              case Builtin::Memset:
                checkByteFill(args, call.loc());
                return AbsVal::top();
              case Builtin::Strcpy: {
                if (args.size() == 2 && args[0].pointeeSize >= 0 &&
                    args[1].pointeeSize >= 0 &&
                    args[1].pointeeSize >
                        args[0].pointeeSize - args[0].offLo) {
                    report(FindingKind::BufferOverflow, call.loc(),
                           "strcpy source larger than destination");
                }
                return AbsVal::top();
              }
              case Builtin::InputByte:
              case Builtin::ReadByte:
                // Only taint-tracking tools model input values.
                return caps.taintTracking
                           ? AbsVal::range(-1, 255, true)
                           : AbsVal::top();
              case Builtin::InputSize:
                return caps.taintTracking
                           ? AbsVal::range(0, 1 << 20, true)
                           : AbsVal::top();
              case Builtin::Strlen:
                return caps.taintTracking
                           ? AbsVal::range(0, 1 << 16, true)
                           : AbsVal::top();
              case Builtin::Strcmp:
                return AbsVal::range(-1, 1);
              case Builtin::CurLine:
                return AbsVal::range(1, 100000);
              default:
                return AbsVal::top();
            }
        }

        void
        checkByteFill(const std::vector<AbsVal> &args, SourceLoc loc)
        {
            // memset/memcpy length vs destination size.
            if (args.size() == 3 && args[0].pointeeSize >= 0 &&
                args[2].isConst()) {
                if (args[0].offLo + args[2].lo >
                    args[0].pointeeSize) {
                    report(FindingKind::BufferOverflow, loc,
                           "length exceeds destination size");
                }
            }
        }
    };

    const char *tool_;
    Capabilities caps_;
};

} // namespace

std::unique_ptr<StaticAnalyzer>
makeLintCheck()
{
    Capabilities caps;
    caps.constGuards = true;
    caps.branchGuards = false;
    caps.loopIntervals = false;
    caps.interprocConst = false;
    caps.taintTracking = false;
    caps.flagUnknownOverflow = false;
    caps.flagTaintedIndex = false;
    return std::make_unique<Engine>("lintcheck", caps);
}

std::unique_ptr<StaticAnalyzer>
makeInferLite()
{
    Capabilities caps;
    caps.constGuards = true;
    caps.branchGuards = false;
    caps.loopIntervals = true;
    caps.interprocConst = false;
    caps.taintTracking = true;
    caps.flagUnknownOverflow = true;
    caps.flagTaintedIndex = true;
    return std::make_unique<Engine>("inferlite", caps);
}

std::unique_ptr<StaticAnalyzer>
makeDeepScan()
{
    Capabilities caps;
    caps.constGuards = true;
    caps.branchGuards = true;
    caps.loopIntervals = true;
    caps.interprocConst = true;
    caps.taintTracking = true;
    caps.flagUnknownOverflow = false;
    caps.flagTaintedIndex = true;
    return std::make_unique<Engine>("deepscan", caps);
}

std::vector<std::unique_ptr<StaticAnalyzer>>
allStaticAnalyzers()
{
    std::vector<std::unique_ptr<StaticAnalyzer>> out;
    out.push_back(makeDeepScan());
    out.push_back(makeLintCheck());
    out.push_back(makeInferLite());
    return out;
}

} // namespace compdiff::analysis
