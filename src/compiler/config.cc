#include "compiler/config.hh"

#include "support/logging.hh"

namespace compdiff::compiler
{

const char *
vendorName(Vendor vendor)
{
    return vendor == Vendor::Gcc ? "gcc" : "clang";
}

const char *
optLevelName(OptLevel opt)
{
    switch (opt) {
      case OptLevel::O0: return "O0";
      case OptLevel::O1: return "O1";
      case OptLevel::O2: return "O2";
      case OptLevel::O3: return "O3";
      case OptLevel::Os: return "Os";
    }
    return "?";
}

std::string
CompilerConfig::name() const
{
    std::string base = std::string(vendorName(vendor)) + "-" +
                       optLevelName(opt);
    switch (sanitizer) {
      case Sanitizer::None: break;
      case Sanitizer::ASan: base += "+asan"; break;
      case Sanitizer::UBSan: base += "+ubsan"; break;
      case Sanitizer::MSan: base += "+msan"; break;
    }
    return base;
}

std::vector<CompilerConfig>
standardImplementations()
{
    std::vector<CompilerConfig> out;
    for (Vendor vendor : {Vendor::Gcc, Vendor::Clang}) {
        for (OptLevel opt : {OptLevel::O0, OptLevel::O1, OptLevel::O2,
                             OptLevel::O3, OptLevel::Os}) {
            out.push_back({vendor, opt, Sanitizer::None});
        }
    }
    return out;
}

CompilerConfig
configFromName(const std::string &name)
{
    CompilerConfig config;
    std::string rest = name;

    auto strip_suffix = [&](const char *suffix, Sanitizer san) {
        const std::string s = suffix;
        if (rest.size() > s.size() &&
            rest.compare(rest.size() - s.size(), s.size(), s) == 0) {
            config.sanitizer = san;
            rest.resize(rest.size() - s.size());
            return true;
        }
        return false;
    };
    strip_suffix("+asan", Sanitizer::ASan) ||
        strip_suffix("+ubsan", Sanitizer::UBSan) ||
        strip_suffix("+msan", Sanitizer::MSan);

    const auto dash = rest.find('-');
    if (dash == std::string::npos)
        support::fatal("bad compiler configuration name: " + name);
    const std::string vendor = rest.substr(0, dash);
    const std::string level = rest.substr(dash + 1);

    if (vendor == "gcc")
        config.vendor = Vendor::Gcc;
    else if (vendor == "clang")
        config.vendor = Vendor::Clang;
    else
        support::fatal("unknown vendor in: " + name);

    if (level == "O0")
        config.opt = OptLevel::O0;
    else if (level == "O1")
        config.opt = OptLevel::O1;
    else if (level == "O2")
        config.opt = OptLevel::O2;
    else if (level == "O3")
        config.opt = OptLevel::O3;
    else if (level == "Os")
        config.opt = OptLevel::Os;
    else
        support::fatal("unknown optimization level in: " + name);

    return config;
}

namespace
{

/** Repeat a fill byte across a 64-bit word. */
std::uint64_t
wordOf(std::uint8_t byte)
{
    std::uint64_t w = byte;
    w |= w << 8;
    w |= w << 16;
    w |= w << 32;
    return w;
}

} // namespace

Traits
traitsFor(const CompilerConfig &config)
{
    Traits t;
    const bool gcc = config.vendor == Vendor::Gcc;
    const int level = static_cast<int>(config.opt); // O0..O3=0..3, Os=4
    const bool optimizing = config.opt != OptLevel::O0;
    const bool o2plus =
        config.opt == OptLevel::O2 || config.opt == OptLevel::O3;

    // --- Codegen choices -------------------------------------------
    // Real compilers are free to pick any evaluation order for call
    // arguments; historically gcc evaluates right-to-left and clang
    // left-to-right, which is exactly the divergence behind the
    // tcpdump EvalOrder bugs (paper Section 2, Example 2).
    t.argsRightToLeft = gcc;

    static const LayoutOrder gcc_local[5] = {
        LayoutOrder::Declaration, LayoutOrder::Declaration,
        LayoutOrder::SizeDescending, LayoutOrder::SizeDescending,
        LayoutOrder::SizeAscending,
    };
    static const LayoutOrder clang_local[5] = {
        LayoutOrder::Declaration, LayoutOrder::SizeAscending,
        LayoutOrder::SizeAscending, LayoutOrder::SizeDescending,
        LayoutOrder::ReverseDeclaration,
    };
    t.localOrder = gcc ? gcc_local[level] : clang_local[level];
    t.globalOrder = t.localOrder;

    // O0 frames keep debug-friendly padding between locals; optimized
    // frames pack objects tightly, so small overflows land on
    // different victims across levels.
    t.localPad = optimizing ? 0 : 8;

    t.shift32 = (!gcc && optimizing) ? ShiftPolicy::ZeroResult
                                     : ShiftPolicy::MaskCount;
    t.shift64 = t.shift32;
    t.lineIsStatementStart = gcc;

    // --- Optimizations ---------------------------------------------
    t.constFold = optimizing;
    t.foldUbGuards = gcc ? o2plus : optimizing;
    t.alwaysTrueIncCmp = o2plus;
    t.widenMulToLong = !gcc && optimizing;
    t.deadStoreElim = o2plus || config.opt == OptLevel::Os;
    t.nullDerefExploit = gcc ? (config.opt == OptLevel::O3) : o2plus;

    // Seeded, documented miscompilation defects (see DESIGN.md §2.1):
    t.bugRemPow2 = !gcc && o2plus;
    t.bugDiv32Shift = gcc && config.opt == OptLevel::Os;
    t.bugEmptyRange = gcc && config.opt == OptLevel::O3;

    // Sanitizer builds model the common fuzzing setup: checks are
    // inserted before the middle-end runs, so the UB-exploiting
    // rewrites that would otherwise erase the checked operation are
    // not applied.
    if (config.sanitizer != Sanitizer::None) {
        t.foldUbGuards = false;
        t.alwaysTrueIncCmp = false;
        t.widenMulToLong = false;
        t.deadStoreElim = false;
        t.nullDerefExploit = false;
        t.bugRemPow2 = false;
        t.bugDiv32Shift = false;
        t.bugEmptyRange = false;
    }

    // Seeded sanitizer defect (DESIGN.md §14): at -O2 the UBSan
    // pipeline runs a redundant-overflow-check elision whose
    // signedness predicate is inverted — signed 32-bit add/sub checks
    // are elided (false negatives) while unsigned add/sub pick up a
    // bogus signed-overflow check (false positives). Mul and unary
    // negation keep their checks; clang only, mirroring the vendor-
    // specific nature of the UBfuzz findings.
    t.bugChkOv32Unsigned = !gcc &&
                           config.sanitizer == Sanitizer::UBSan &&
                           config.opt == OptLevel::O2;

    // --- Runtime / library policy ----------------------------------
    t.stackFill = config.opt == OptLevel::O0 ? 0x00
                                             : (gcc ? 0xBE : 0xAA);
    t.heapFill = gcc ? 0xC5 : 0xCD;
    t.undefWord = wordOf(t.stackFill);
    t.freePoison = !gcc;
    t.freePoisonByte = 0xEF;
    t.freelistLifo = gcc;
    t.detectDoubleFreeTop = gcc;
    t.detectInvalidFree = gcc;
    t.powViaExp2 = !gcc && o2plus;
    // memcpy on overlapping ranges is UB (CWE-475); the copy
    // direction decides what the overlap produces.
    t.memcpyBackward = !gcc;

    // --- Address-space layout --------------------------------------
    if (gcc) {
        t.rodataBase = 0x00800000;
        t.globalsBase = 0x01000000;
        t.heapBase = 0x02000000;
        t.stackBase = 0x07ff0000;
    } else {
        t.rodataBase = 0x00c00000;
        t.globalsBase = 0x01800000;
        t.heapBase = 0x03000000;
        t.stackBase = 0x07fe0000;
    }

    return t;
}

} // namespace compdiff::compiler
