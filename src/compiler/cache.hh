#pragma once

/**
 * @file
 * Content-addressed compile cache.
 *
 * Every campaign, bench, and triage pass in this repo recompiles the
 * same (program, configuration) pairs: the fuzzer compiles B_fuzz
 * plus the k differential binaries, the campaign driver then builds
 * a second DiffEngine and a probe binary for witness minimization,
 * and the sanitizer checks add three more. The compile step is pure
 * (an analyzed Program plus Traits deterministically yields one
 * Module), so we memoize it.
 *
 * The cache key is MurmurHash3 over the *content* of the inputs:
 *   - the pretty-printed program source (minic::printProgram),
 *   - the implementation id string ("gcc-O2", ...), and
 *   - a Traits fingerprint covering every field that can influence
 *     compilation (traitsTweak ablations hash differently from the
 *     stock traits).
 * Content addressing means two Program objects parsed from the same
 * source share cache entries, and nothing dangles when a Program
 * dies: entries hold Modules by shared_ptr, independent of any
 * Program lifetime (interned types referenced by the Module must
 * still outlive its use, as before).
 *
 * Thread safety: fully synchronized; shards compiling concurrently
 * either find the entry or compile redundantly and race benignly to
 * insert (first insert wins, both results are identical).
 */

#include <cstdint>
#include <memory>
#include <string>

#include "bytecode/module.hh"
#include "compiler/config.hh"
#include "minic/ast.hh"

namespace compdiff::compiler
{

/** MurmurHash3 content fingerprint of a whole analyzed program. */
std::uint64_t programFingerprint(const minic::Program &program);

/** Fingerprint of every compile-relevant field of a Traits value. */
std::uint64_t traitsFingerprint(const Traits &traits);

/** The process-wide module cache. */
class CompileCache
{
  public:
    static CompileCache &global();

    /**
     * Return the cached module for (program, impl_id, traits) or
     * compile and insert it. `program_hash` must be
     * programFingerprint(program); callers pass it in so one
     * pretty-print covers a whole k-implementation batch. `impl_id`
     * is the owning Implementation's stable identifier (for the
     * simulated family, CompilerConfig::name()); keying on the open
     * id string instead of the Vendor/OptLevel enums lets any future
     * backend share the cache without widening an enum.
     */
    std::shared_ptr<const bytecode::Module>
    compile(const minic::Program &program,
            std::uint64_t program_hash, const std::string &impl_id,
            const CompilerConfig &config, const Traits &traits);

    /** Entries currently cached. */
    std::size_t size() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;

    /** Drop every entry (tests; campaigns never need this). */
    void clear();

  private:
    CompileCache() = default;
    struct Impl;
    Impl *impl() const;
    mutable Impl *impl_ = nullptr;
};

/**
 * Convenience: fingerprint + traitsFor + cache lookup in one call.
 */
std::shared_ptr<const bytecode::Module>
compileCached(const minic::Program &program,
              const CompilerConfig &config);

/** Cached analog of Compiler::compileWithTraits. */
std::shared_ptr<const bytecode::Module>
compileCached(const minic::Program &program,
              const CompilerConfig &config, const Traits &traits);

} // namespace compdiff::compiler
