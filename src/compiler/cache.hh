#pragma once

/**
 * @file
 * Content-addressed compile cache with LRU bounds.
 *
 * Every campaign, bench, and triage pass in this repo recompiles the
 * same (program, configuration) pairs: the fuzzer compiles B_fuzz
 * plus the k differential binaries, the campaign driver then builds
 * a second DiffEngine and a probe binary for witness minimization,
 * and the sanitizer checks add three more. The compile step is pure
 * (an analyzed Program plus Traits deterministically yields one
 * Module), so we memoize it.
 *
 * The cache key is MurmurHash3 over the *content* of the inputs:
 *   - the pretty-printed program source (minic::printProgram),
 *   - the implementation id string ("gcc-O2", ...), and
 *   - a Traits fingerprint covering every field that can influence
 *     compilation (traitsTweak ablations hash differently from the
 *     stock traits).
 * Content addressing means two Program objects parsed from the same
 * source share cache entries, and nothing dangles when a Program
 * dies: entries hold Modules by shared_ptr, independent of any
 * Program lifetime (interned types referenced by the Module must
 * still outlive its use, as before).
 *
 * The cache is process-wide, and long multi-target campaign runs
 * would otherwise grow it without bound (every target × k
 * implementations × every reduction candidate program). It is
 * therefore bounded: least-recently-used entries are evicted when
 * either the entry count or the estimated byte footprint exceeds its
 * cap (setLimits; 0 disables a cap). Eviction is safe at any time —
 * modules are handed out by shared_ptr, so in-flight users keep
 * theirs alive. Telemetry: the `cache.hit` / `cache.miss` /
 * `cache.evict` counters (obs::metricsEnabled gated, as usual).
 *
 * Thread safety: fully synchronized; shards compiling concurrently
 * either find the entry or compile redundantly and race benignly to
 * insert (first insert wins, both results are identical).
 */

#include <cstdint>
#include <memory>
#include <string>

#include "bytecode/module.hh"
#include "compiler/config.hh"
#include "minic/ast.hh"

namespace compdiff::compiler
{

/** MurmurHash3 content fingerprint of a whole analyzed program. */
std::uint64_t programFingerprint(const minic::Program &program);

/** Fingerprint of every compile-relevant field of a Traits value. */
std::uint64_t traitsFingerprint(const Traits &traits);

/** The process-wide module cache. */
class CompileCache
{
  public:
    /** Default entry cap (generous: a 10-implementation campaign
     *  over every bundled target fits with room to spare). */
    static constexpr std::size_t kDefaultMaxEntries = 256;
    /** Default estimated-footprint cap. */
    static constexpr std::size_t kDefaultMaxBytes = 128u << 20;

    static CompileCache &global();

    /**
     * Return the cached module for (program, impl_id, traits) or
     * compile and insert it. `program_hash` must be
     * programFingerprint(program); callers pass it in so one
     * pretty-print covers a whole k-implementation batch. `impl_id`
     * is the owning Implementation's stable identifier (for the
     * simulated family, CompilerConfig::name()); keying on the open
     * id string instead of the Vendor/OptLevel enums lets any future
     * backend share the cache without widening an enum.
     */
    std::shared_ptr<const bytecode::Module>
    compile(const minic::Program &program,
            std::uint64_t program_hash, const std::string &impl_id,
            const CompilerConfig &config, const Traits &traits);

    /**
     * Bound the cache to `max_entries` entries and `max_bytes`
     * estimated bytes (0 = that cap disabled). Evicts immediately
     * when the current contents exceed the new caps. The newest
     * entry is never evicted, so a single oversized module still
     * caches (the byte cap is a budget, not a hard admission test).
     */
    void setLimits(std::size_t max_entries, std::size_t max_bytes);

    /** Entries currently cached. */
    std::size_t size() const;
    /** Estimated byte footprint of the cached modules. */
    std::size_t bytesUsed() const;
    std::size_t maxEntries() const;
    std::size_t maxBytes() const;

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    /** Entries evicted by the LRU bound since the last clear(). */
    std::uint64_t evictions() const;

    /** Drop every entry (tests; campaigns never need this). */
    void clear();

  private:
    CompileCache() = default;
    struct Impl;
    Impl *impl() const;
    mutable Impl *impl_ = nullptr;
};

/**
 * Convenience: fingerprint + traitsFor + cache lookup in one call.
 */
std::shared_ptr<const bytecode::Module>
compileCached(const minic::Program &program,
              const CompilerConfig &config);

/** Cached analog of Compiler::compileWithTraits. */
std::shared_ptr<const bytecode::Module>
compileCached(const minic::Program &program,
              const CompilerConfig &config, const Traits &traits);

} // namespace compdiff::compiler
