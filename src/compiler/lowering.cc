#include "compiler/lowering.hh"

#include <algorithm>

#include "support/hash.hh"
#include "support/logging.hh"

namespace compdiff::compiler
{

using namespace minic;
using bytecode::Function;
using bytecode::Insn;
using bytecode::Module;
using bytecode::Op;
using support::panic;

namespace
{

std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) / align * align;
}

/** Value width in bytes used when passing/storing a scalar type. */
std::uint8_t
scalarWidth(const Type *type)
{
    switch (type->kind()) {
      case TypeKind::Char: return 1;
      case TypeKind::Int:
      case TypeKind::UInt: return 4;
      default: return 8;
    }
}

bool
isSignedKind(const Type *type)
{
    switch (type->kind()) {
      case TypeKind::Char:
      case TypeKind::Int:
      case TypeKind::Long:
        return true;
      default:
        return false; // uint, ulong, pointer, double(n/a)
    }
}

/**
 * Per-function lowering engine.
 */
class FuncLowering
{
  public:
    FuncLowering(const Program &program, const CompilerConfig &config,
                 const Traits &traits, const FunctionDecl &func,
                 std::vector<std::uint8_t> &rodata)
        : program_(program), config_(config), traits_(traits),
          func_(func), rodata_(rodata)
    {}

    Function lower();

  private:
    // --- emission ---------------------------------------------------
    std::size_t
    emit(Op op, std::int32_t a = 0, std::int32_t b = 0,
         std::int64_t imm = 0)
    {
        Insn insn;
        insn.op = op;
        insn.a = a;
        insn.b = b;
        insn.imm = imm;
        insn.line = curLine_;
        code_.push_back(insn);
        return code_.size() - 1;
    }

    void
    emitBlock()
    {
        const std::uint64_t mix = support::murmurMix64(
            (std::uint64_t(func_.index) << 20) | blockCounter_);
        emit(Op::Block, static_cast<std::int32_t>(mix & 0xffff));
        blockCounter_++;
    }

    std::size_t
    emitJump(Op op)
    {
        return emit(op, -1);
    }

    void
    patchHere(std::size_t at)
    {
        code_[at].a = static_cast<std::int32_t>(code_.size());
    }

    bool ubsan() const { return config_.sanitizer == Sanitizer::UBSan; }
    bool asan() const { return config_.sanitizer == Sanitizer::ASan; }

    // --- layout -------------------------------------------------------
    void layoutFrame(Function &out);

    // --- codegen -----------------------------------------------------
    void genStmt(const Stmt &stmt);
    void genBlockBody(const BlockStmt &block);
    void genValue(const Expr &expr);
    void genAddr(const Expr &expr);
    void genAssign(const AssignExpr &assign, bool need_value);
    void genCall(const CallExpr &call);
    void genBinary(const BinaryExpr &bin);
    void genCond(const Expr &expr);
    void genShift(const BinaryExpr &bin);
    void genPointerArith(const BinaryExpr &bin);
    void genLogical(const BinaryExpr &bin);
    void genComparison(const BinaryExpr &bin);

    /** Convert the canonical stack top from one type to another. */
    void convert(const Type *from, const Type *to);
    /** Normalize the stack top to a narrow integer type. */
    void narrow(const Type *to);
    /** Emit a load of a scalar `type` from the address on the stack. */
    void load(const Type *type);
    /** Emit a store of a scalar `type` (stack: addr value). */
    void store(const Type *type);
    /** Emit arithmetic op for a common type, with UBSan + truncate. */
    void applyIntOp(BinaryOp op, const Type *type, bool widened);

    /** Common operand type for a comparison; nullptr = raw 64-bit. */
    const Type *comparisonType(const Type *a, const Type *b) const;
    const Type *arithCommon(const Type *a, const Type *b) const;

    const Program &program_;
    const CompilerConfig &config_;
    const Traits &traits_;
    const FunctionDecl &func_;
    std::vector<std::uint8_t> &rodata_;

    std::vector<Insn> code_;
    std::vector<std::int32_t> slotOffset_;
    std::uint32_t blockCounter_ = 0;
    std::uint32_t curLine_ = 0;
    std::vector<std::vector<std::size_t>> breakPatches_;
    std::vector<std::vector<std::size_t>> continuePatches_;

    std::uint32_t
    internRodata(const std::string &bytes)
    {
        const auto offset = static_cast<std::uint32_t>(rodata_.size());
        rodata_.insert(rodata_.end(), bytes.begin(), bytes.end());
        rodata_.push_back(0);
        return offset;
    }
};

void
FuncLowering::layoutFrame(Function &out)
{
    const auto &locals = func_.locals;
    std::vector<std::size_t> order(locals.size());
    for (std::size_t i = 0; i < order.size(); i++)
        order[i] = i;

    auto size_of = [&](std::size_t i) {
        return locals[i].type->size();
    };
    switch (traits_.localOrder) {
      case LayoutOrder::Declaration:
        break;
      case LayoutOrder::ReverseDeclaration:
        std::reverse(order.begin(), order.end());
        break;
      case LayoutOrder::SizeDescending:
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return size_of(a) > size_of(b);
                         });
        break;
      case LayoutOrder::SizeAscending:
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return size_of(a) < size_of(b);
                         });
        break;
    }

    const std::uint32_t gap = asan() ? 16 : traits_.localPad;
    slotOffset_.assign(locals.size(), 0);
    out.slots.resize(locals.size());

    std::uint64_t offset = 0;
    bool first = true;
    for (std::size_t id : order) {
        const Type *type = locals[id].type;
        if (!first || asan())
            offset += gap;
        first = false;
        offset = alignUp(offset, std::max<std::uint64_t>(
                                     type->align(), 1));
        slotOffset_[id] = static_cast<std::int32_t>(offset);
        bytecode::FrameSlot slot;
        slot.offset = static_cast<std::int32_t>(offset);
        slot.size = static_cast<std::uint32_t>(type->size());
        slot.localId = static_cast<int>(id);
        slot.isParam = locals[id].isParam;
        slot.name = locals[id].name;
        out.slots[id] = slot;
        offset += type->size();
    }
    offset += gap;
    out.frameSize = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(alignUp(offset, 16), 16));

    out.numParams = static_cast<std::uint32_t>(func_.params.size());
    for (const auto &param : func_.params) {
        const auto id = static_cast<std::size_t>(param.localId);
        out.paramOffsets.push_back(slotOffset_[id]);
        out.paramSizes.push_back(scalarWidth(locals[id].type));
    }
}

Function
FuncLowering::lower()
{
    Function out;
    out.name = func_.name;
    out.index = func_.index;
    out.returnsValue = !func_.returnType->isVoid();
    layoutFrame(out);

    emitBlock();
    if (func_.body)
        genBlockBody(*func_.body);

    // Implicit return: falling off the end of a non-void function
    // leaves an indeterminate value behind (C UB); PushUndef makes the
    // configuration's choice concrete.
    if (out.returnsValue) {
        emit(Op::PushUndef);
        emit(Op::Ret, 1);
    } else {
        emit(Op::Ret, 0);
    }

    out.code = std::move(code_);
    return out;
}

void
FuncLowering::genBlockBody(const BlockStmt &block)
{
    for (const auto &stmt : block.body)
        genStmt(*stmt);
}

void
FuncLowering::genStmt(const Stmt &stmt)
{
    curLine_ = stmt.loc().line;
    switch (stmt.kind()) {
      case StmtKind::Block:
        genBlockBody(static_cast<const BlockStmt &>(stmt));
        return;
      case StmtKind::VarDecl: {
        const auto &decl = static_cast<const VarDeclStmt &>(stmt);
        if (!decl.init)
            return; // storage stays uninitialized
        emit(Op::FrameAddr,
             slotOffset_[static_cast<std::size_t>(decl.localId)]);
        genValue(*decl.init);
        convert(decl.init->type, decl.declType);
        store(decl.declType);
        return;
      }
      case StmtKind::If: {
        const auto &if_stmt = static_cast<const IfStmt &>(stmt);
        genCond(*if_stmt.cond);
        const std::size_t to_else = emitJump(Op::JmpZ);
        emitBlock();
        genStmt(*if_stmt.thenStmt);
        if (if_stmt.elseStmt) {
            const std::size_t to_end = emitJump(Op::Jmp);
            patchHere(to_else);
            emitBlock();
            genStmt(*if_stmt.elseStmt);
            patchHere(to_end);
        } else {
            patchHere(to_else);
        }
        emitBlock();
        return;
      }
      case StmtKind::While: {
        const auto &while_stmt = static_cast<const WhileStmt &>(stmt);
        breakPatches_.emplace_back();
        continuePatches_.emplace_back();
        const auto head = static_cast<std::int32_t>(code_.size());
        emitBlock();
        genCond(*while_stmt.cond);
        const std::size_t to_end = emitJump(Op::JmpZ);
        emitBlock();
        genStmt(*while_stmt.body);
        for (std::size_t at : continuePatches_.back())
            code_[at].a = head;
        emit(Op::Jmp, head);
        patchHere(to_end);
        for (std::size_t at : breakPatches_.back())
            patchHere(at);
        emitBlock();
        breakPatches_.pop_back();
        continuePatches_.pop_back();
        return;
      }
      case StmtKind::For: {
        const auto &for_stmt = static_cast<const ForStmt &>(stmt);
        if (for_stmt.init)
            genStmt(*for_stmt.init);
        breakPatches_.emplace_back();
        continuePatches_.emplace_back();
        const auto head = static_cast<std::int32_t>(code_.size());
        emitBlock();
        std::size_t to_end = SIZE_MAX;
        if (for_stmt.cond) {
            genCond(*for_stmt.cond);
            to_end = emitJump(Op::JmpZ);
        }
        emitBlock();
        genStmt(*for_stmt.body);
        const auto cont = static_cast<std::int32_t>(code_.size());
        for (std::size_t at : continuePatches_.back())
            code_[at].a = cont;
        if (for_stmt.step) {
            curLine_ = stmt.loc().line;
            genValue(*for_stmt.step);
            if (for_stmt.step->type && !for_stmt.step->type->isVoid())
                emit(Op::Drop);
        }
        emit(Op::Jmp, head);
        if (to_end != SIZE_MAX)
            patchHere(to_end);
        for (std::size_t at : breakPatches_.back())
            patchHere(at);
        emitBlock();
        breakPatches_.pop_back();
        continuePatches_.pop_back();
        return;
      }
      case StmtKind::Return: {
        const auto &ret = static_cast<const ReturnStmt &>(stmt);
        if (func_.returnType->isVoid()) {
            emit(Op::Ret, 0);
        } else if (ret.value) {
            genValue(*ret.value);
            convert(ret.value->type, func_.returnType);
            emit(Op::Ret, 1);
        } else {
            emit(Op::PushUndef);
            emit(Op::Ret, 1);
        }
        return;
      }
      case StmtKind::Break:
        breakPatches_.back().push_back(emitJump(Op::Jmp));
        return;
      case StmtKind::Continue:
        continuePatches_.back().push_back(emitJump(Op::Jmp));
        return;
      case StmtKind::ExprStmt: {
        const auto &es = static_cast<const ExprStmt &>(stmt);
        if (es.expr->kind() == ExprKind::Assign) {
            genAssign(static_cast<const AssignExpr &>(*es.expr),
                      /*need_value=*/false);
            return;
        }
        genValue(*es.expr);
        if (es.expr->type && !es.expr->type->isVoid())
            emit(Op::Drop);
        return;
      }
    }
    panic("unhandled statement kind in lowering");
}

const Type *
FuncLowering::arithCommon(const Type *a, const Type *b) const
{
    const TypeContext &types = *program_.types;
    if (a->isDouble() || b->isDouble())
        return types.doubleType();
    auto rank = [](const Type *t) {
        switch (t->kind()) {
          case TypeKind::ULong: return 4;
          case TypeKind::Long: return 3;
          case TypeKind::UInt: return 2;
          default: return 1;
        }
    };
    switch (std::max(rank(a), rank(b))) {
      case 4: return types.ulongType();
      case 3: return types.longType();
      case 2: return types.uintType();
      default: return types.intType();
    }
}

const Type *
FuncLowering::comparisonType(const Type *a, const Type *b) const
{
    if (a->isPointer() || a->isArray() || b->isPointer() ||
        b->isArray()) {
        return nullptr; // raw unsigned 64-bit comparison
    }
    return arithCommon(a, b);
}

void
FuncLowering::narrow(const Type *to)
{
    switch (to->kind()) {
      case TypeKind::Char: emit(Op::Trunc8S); return;
      case TypeKind::Int: emit(Op::Trunc32S); return;
      case TypeKind::UInt: emit(Op::Trunc32U); return;
      default: return;
    }
}

void
FuncLowering::convert(const Type *from, const Type *to)
{
    if (!from || !to || from == to)
        return;
    if (to->isDouble()) {
        if (from->isDouble())
            return;
        emit(isSignedKind(from) ? Op::I2FS : Op::I2FU);
        return;
    }
    if (from->isDouble()) {
        emit(Op::F2I);
        narrow(to);
        return;
    }
    if (from->isArray() || to->isArray() || from->isStruct() ||
        to->isStruct() || from->isVoid() || to->isVoid()) {
        return; // decayed addresses / ignored
    }
    narrow(to);
}

void
FuncLowering::load(const Type *type)
{
    switch (type->kind()) {
      case TypeKind::Char: emit(Op::Ld8S); return;
      case TypeKind::Int: emit(Op::Ld32S); return;
      case TypeKind::UInt: emit(Op::Ld32U); return;
      case TypeKind::Long:
      case TypeKind::ULong:
      case TypeKind::Pointer: emit(Op::Ld64); return;
      case TypeKind::Double: emit(Op::LdF); return;
      default:
        panic("load of non-scalar type " + type->str());
    }
}

void
FuncLowering::store(const Type *type)
{
    switch (type->kind()) {
      case TypeKind::Char: emit(Op::St8); return;
      case TypeKind::Int:
      case TypeKind::UInt: emit(Op::St32); return;
      case TypeKind::Long:
      case TypeKind::ULong:
      case TypeKind::Pointer: emit(Op::St64); return;
      case TypeKind::Double: emit(Op::StF); return;
      default:
        panic("store of non-scalar type " + type->str());
    }
}

void
FuncLowering::genAddr(const Expr &expr)
{
    switch (expr.kind()) {
      case ExprKind::VarRef: {
        const auto &ref = static_cast<const VarRefExpr &>(expr);
        if (ref.isGlobal)
            emit(Op::GlobalAddr, ref.id);
        else
            emit(Op::FrameAddr,
                 slotOffset_[static_cast<std::size_t>(ref.id)]);
        return;
      }
      case ExprKind::Unary: {
        const auto &un = static_cast<const UnaryExpr &>(expr);
        if (un.op != UnaryOp::Deref)
            break;
        genValue(*un.operand);
        if (ubsan())
            emit(Op::ChkNull);
        return;
      }
      case ExprKind::Index: {
        const auto &index = static_cast<const IndexExpr &>(expr);
        const Type *base_type = index.base->type;
        if (base_type->isArray()) {
            genAddr(*index.base);
        } else {
            genValue(*index.base);
            if (ubsan())
                emit(Op::ChkNull);
        }
        genValue(*index.index);
        const std::uint64_t elem =
            std::max<std::uint64_t>(expr.type->size(), 1);
        emit(Op::PushI, 0, 0, static_cast<std::int64_t>(elem));
        emit(Op::MulI);
        emit(Op::AddI);
        return;
      }
      case ExprKind::Member: {
        const auto &member = static_cast<const MemberExpr &>(expr);
        if (member.isArrow) {
            genValue(*member.base);
            if (ubsan())
                emit(Op::ChkNull);
        } else {
            genAddr(*member.base);
        }
        if (member.fieldOffset) {
            emit(Op::PushI, 0, 0,
                 static_cast<std::int64_t>(member.fieldOffset));
            emit(Op::AddI);
        }
        return;
      }
      default:
        break;
    }
    panic("genAddr on non-lvalue expression");
}

void
FuncLowering::genValue(const Expr &expr)
{
    switch (expr.kind()) {
      case ExprKind::IntLit: {
        const auto &lit = static_cast<const IntLitExpr &>(expr);
        std::int64_t value = lit.value;
        if (expr.type && expr.type->kind() == TypeKind::UInt)
            value = static_cast<std::uint32_t>(value);
        emit(Op::PushI, 0, 0, value);
        return;
      }
      case ExprKind::FloatLit:
        emit(Op::PushF, 0, 0,
             bytecode::doubleToBits(
                 static_cast<const FloatLitExpr &>(expr).value));
        return;
      case ExprKind::StrLit: {
        const auto &lit = static_cast<const StrLitExpr &>(expr);
        emit(Op::RodataAddr,
             static_cast<std::int32_t>(internRodata(lit.bytes)));
        return;
      }
      case ExprKind::VarRef:
      case ExprKind::Index:
      case ExprKind::Member: {
        // Array- or struct-typed lvalues decay to their address.
        if (expr.type->isArray() || expr.type->isStruct()) {
            genAddr(expr);
            return;
        }
        genAddr(expr);
        load(expr.type);
        return;
      }
      case ExprKind::Unary: {
        const auto &un = static_cast<const UnaryExpr &>(expr);
        switch (un.op) {
          case UnaryOp::Neg:
            genValue(*un.operand);
            convert(un.operand->type, expr.type);
            if (expr.type->isDouble()) {
                emit(Op::NegF);
            } else {
                emit(Op::NegI);
                if (ubsan() && expr.type->kind() == TypeKind::Int)
                    emit(Op::ChkOv32);
                narrow(expr.type);
            }
            return;
          case UnaryOp::BitNot:
            genValue(*un.operand);
            convert(un.operand->type, expr.type);
            emit(Op::NotI);
            narrow(expr.type);
            return;
          case UnaryOp::LogNot:
            genValue(*un.operand);
            if (un.operand->type->isDouble()) {
                emit(Op::PushF, 0, 0, bytecode::doubleToBits(0.0));
                emit(Op::CmpEqF);
            } else {
                emit(Op::CmpEqZ);
            }
            return;
          case UnaryOp::Deref:
            if (expr.type->isArray() || expr.type->isStruct()) {
                genAddr(expr);
                return;
            }
            genValue(*un.operand);
            if (ubsan())
                emit(Op::ChkNull);
            load(expr.type);
            return;
          case UnaryOp::AddrOf:
            genAddr(*un.operand);
            return;
        }
        return;
      }
      case ExprKind::Binary:
        genBinary(static_cast<const BinaryExpr &>(expr));
        return;
      case ExprKind::Assign:
        genAssign(static_cast<const AssignExpr &>(expr), true);
        return;
      case ExprKind::Cond: {
        const auto &cond = static_cast<const CondExpr &>(expr);
        genCond(*cond.cond);
        const std::size_t to_else = emitJump(Op::JmpZ);
        genValue(*cond.thenExpr);
        convert(cond.thenExpr->type, expr.type);
        const std::size_t to_end = emitJump(Op::Jmp);
        patchHere(to_else);
        genValue(*cond.elseExpr);
        convert(cond.elseExpr->type, expr.type);
        patchHere(to_end);
        return;
      }
      case ExprKind::Call:
        genCall(static_cast<const CallExpr &>(expr));
        return;
      case ExprKind::Cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        genValue(*cast.operand);
        if (cast.target->isVoid()) {
            if (!cast.operand->type->isVoid())
                emit(Op::Drop);
            return;
        }
        convert(cast.operand->type, cast.target);
        return;
      }
      case ExprKind::SizeOf:
        emit(Op::PushI, 0, 0,
             static_cast<std::int64_t>(
                 static_cast<const SizeOfExpr &>(expr).queried
                     ->size()));
        return;
    }
    panic("unhandled expression kind in lowering");
}

void
FuncLowering::genCond(const Expr &expr)
{
    genValue(expr);
    if (expr.type && expr.type->isDouble()) {
        emit(Op::PushF, 0, 0, bytecode::doubleToBits(0.0));
        emit(Op::CmpNeF);
    }
}

void
FuncLowering::applyIntOp(BinaryOp op, const Type *type, bool widened)
{
    const bool is_signed = isSignedKind(type);
    const bool is_32 = type->is32OrNarrower() && !widened;

    switch (op) {
      case BinaryOp::Add: emit(Op::AddI); break;
      case BinaryOp::Sub: emit(Op::SubI); break;
      case BinaryOp::Mul: emit(Op::MulI); break;
      case BinaryOp::Div:
        if (ubsan())
            emit(Op::ChkDivS, is_32 ? 32 : 64, is_signed ? 1 : 0);
        emit(is_signed ? Op::DivS : Op::DivU);
        break;
      case BinaryOp::Rem:
        if (ubsan())
            emit(Op::ChkDivS, is_32 ? 32 : 64, is_signed ? 1 : 0);
        emit(is_signed ? Op::RemS : Op::RemU);
        break;
      case BinaryOp::BitAnd: emit(Op::AndI); break;
      case BinaryOp::BitOr: emit(Op::OrI); break;
      case BinaryOp::BitXor: emit(Op::XorI); break;
      default:
        panic("applyIntOp: unexpected operator");
    }

    const bool overflowable = op == BinaryOp::Add ||
                              op == BinaryOp::Sub ||
                              op == BinaryOp::Mul;
    // Seeded sanitizer defect (bugChkOv32Unsigned): the redundant-
    // check elision's signedness predicate is inverted for add/sub,
    // dropping the signed checks and planting one on unsigned ops.
    bool check = is_signed;
    if (traits_.bugChkOv32Unsigned && op != BinaryOp::Mul)
        check = !is_signed;
    if (ubsan() && overflowable && check && is_32)
        emit(Op::ChkOv32);
    if (!widened)
        narrow(type);
}

void
FuncLowering::genShift(const BinaryExpr &bin)
{
    genValue(*bin.lhs);
    convert(bin.lhs->type, bin.type);
    genValue(*bin.rhs);
    const bool is_32 = bin.type->is32OrNarrower();
    if (ubsan())
        emit(is_32 ? Op::ChkShift32 : Op::ChkShift64);
    const auto policy = static_cast<std::int32_t>(
        is_32 ? traits_.shift32 : traits_.shift64);
    emit(is_32 ? Op::ShiftNorm32 : Op::ShiftNorm64, policy);
    if (bin.op == BinaryOp::Shl)
        emit(Op::Shl);
    else
        emit(isSignedKind(bin.type) ? Op::ShrS : Op::ShrU);
    narrow(bin.type);
}

void
FuncLowering::genPointerArith(const BinaryExpr &bin)
{
    const Type *lt = bin.lhs->type;
    const Type *rt = bin.rhs->type;
    const bool l_ptr = lt->isPointer() || lt->isArray();
    const bool r_ptr = rt->isPointer() || rt->isArray();

    auto elem_size = [](const Type *ptr) -> std::int64_t {
        const Type *pointee =
            ptr->isArray() ? ptr->element() : ptr->pointee();
        return static_cast<std::int64_t>(
            std::max<std::uint64_t>(pointee->size(), 1));
    };

    if (l_ptr && r_ptr) {
        // Pointer difference. Defined only within one object; across
        // objects the result leaks the configuration's layout
        // (CWE-469).
        genValue(*bin.lhs);
        genValue(*bin.rhs);
        emit(Op::SubI);
        emit(Op::PushI, 0, 0, elem_size(lt));
        emit(Op::DivS);
        return;
    }

    genValue(*bin.lhs);
    genValue(*bin.rhs);
    if (!l_ptr) {
        // int + ptr: scale the integer that sits *below* the pointer.
        emit(Op::Swap);
    }
    emit(Op::PushI, 0, 0, elem_size(l_ptr ? lt : rt));
    emit(Op::MulI);
    if (bin.op == BinaryOp::Add)
        emit(Op::AddI);
    else
        emit(Op::SubI);
}

void
FuncLowering::genLogical(const BinaryExpr &bin)
{
    const bool is_and = bin.op == BinaryOp::LogAnd;
    genCond(*bin.lhs);
    const std::size_t shortcut =
        emitJump(is_and ? Op::JmpZ : Op::JmpNZ);
    genCond(*bin.rhs);
    emit(Op::BoolVal);
    const std::size_t to_end = emitJump(Op::Jmp);
    patchHere(shortcut);
    emit(Op::PushI, 0, 0, is_and ? 0 : 1);
    patchHere(to_end);
}

void
FuncLowering::genComparison(const BinaryExpr &bin)
{
    const Type *common = comparisonType(bin.lhs->type, bin.rhs->type);
    genValue(*bin.lhs);
    if (common)
        convert(bin.lhs->type, common);
    genValue(*bin.rhs);
    if (common)
        convert(bin.rhs->type, common);

    if (common && common->isDouble()) {
        switch (bin.op) {
          case BinaryOp::Lt: emit(Op::CmpLtF); return;
          case BinaryOp::Le: emit(Op::CmpLeF); return;
          case BinaryOp::Gt: emit(Op::CmpGtF); return;
          case BinaryOp::Ge: emit(Op::CmpGeF); return;
          case BinaryOp::Eq: emit(Op::CmpEqF); return;
          case BinaryOp::Ne: emit(Op::CmpNeF); return;
          default: break;
        }
    }
    const bool is_signed = common && isSignedKind(common);
    switch (bin.op) {
      case BinaryOp::Lt: emit(is_signed ? Op::CmpLtS : Op::CmpLtU);
        return;
      case BinaryOp::Le: emit(is_signed ? Op::CmpLeS : Op::CmpLeU);
        return;
      case BinaryOp::Gt: emit(is_signed ? Op::CmpGtS : Op::CmpGtU);
        return;
      case BinaryOp::Ge: emit(is_signed ? Op::CmpGeS : Op::CmpGeU);
        return;
      case BinaryOp::Eq: emit(Op::CmpEq); return;
      case BinaryOp::Ne: emit(Op::CmpNe); return;
      default:
        panic("genComparison: not a comparison");
    }
}

void
FuncLowering::genBinary(const BinaryExpr &bin)
{
    if (bin.op == BinaryOp::LogAnd || bin.op == BinaryOp::LogOr) {
        genLogical(bin);
        return;
    }
    if (isComparison(bin.op)) {
        genComparison(bin);
        return;
    }
    if (bin.op == BinaryOp::Shl || bin.op == BinaryOp::Shr) {
        genShift(bin);
        return;
    }

    const Type *lt = bin.lhs->type;
    const Type *rt = bin.rhs->type;
    if (lt->isPointer() || lt->isArray() || rt->isPointer() ||
        rt->isArray()) {
        genPointerArith(bin);
        return;
    }

    if (bin.type->isDouble()) {
        genValue(*bin.lhs);
        convert(lt, bin.type);
        genValue(*bin.rhs);
        convert(rt, bin.type);
        switch (bin.op) {
          case BinaryOp::Add: emit(Op::AddF); return;
          case BinaryOp::Sub: emit(Op::SubF); return;
          case BinaryOp::Mul: emit(Op::MulF); return;
          case BinaryOp::Div: emit(Op::DivF); return;
          default:
            panic("invalid double operator survived sema");
        }
    }

    // Integer arithmetic. A widened node computes directly in 64 bits
    // (operands are canonical sign-extended values already).
    genValue(*bin.lhs);
    if (!bin.widenTo64)
        convert(lt, bin.type);
    genValue(*bin.rhs);
    if (!bin.widenTo64)
        convert(rt, bin.type);
    applyIntOp(bin.op, bin.type, bin.widenTo64);
}

void
FuncLowering::genAssign(const AssignExpr &assign, bool need_value)
{
    const Type *target_type = assign.target->type;

    if (assign.compoundOp) {
        // Compute the address once; side effects in the target must
        // not be repeated.
        genAddr(*assign.target);
        emit(Op::Dup);
        load(target_type);

        if (target_type->isPointer()) {
            // ptr += i / ptr -= i
            genValue(*assign.value);
            const Type *pointee = target_type->pointee();
            emit(Op::PushI, 0, 0,
                 static_cast<std::int64_t>(
                     std::max<std::uint64_t>(pointee->size(), 1)));
            emit(Op::MulI);
            emit(*assign.compoundOp == BinaryOp::Add ? Op::AddI
                                                     : Op::SubI);
        } else if (*assign.compoundOp == BinaryOp::Shl ||
                   *assign.compoundOp == BinaryOp::Shr) {
            genValue(*assign.value);
            const bool is_32 = target_type->is32OrNarrower();
            if (ubsan())
                emit(is_32 ? Op::ChkShift32 : Op::ChkShift64);
            emit(is_32 ? Op::ShiftNorm32 : Op::ShiftNorm64,
                 static_cast<std::int32_t>(is_32 ? traits_.shift32
                                                 : traits_.shift64));
            if (*assign.compoundOp == BinaryOp::Shl)
                emit(Op::Shl);
            else
                emit(isSignedKind(target_type) ? Op::ShrS : Op::ShrU);
            narrow(target_type);
        } else if (target_type->isDouble() ||
                   assign.value->type->isDouble()) {
            const Type *op_type = program_.types->doubleType();
            convert(target_type, op_type);
            genValue(*assign.value);
            convert(assign.value->type, op_type);
            switch (*assign.compoundOp) {
              case BinaryOp::Add: emit(Op::AddF); break;
              case BinaryOp::Sub: emit(Op::SubF); break;
              case BinaryOp::Mul: emit(Op::MulF); break;
              case BinaryOp::Div: emit(Op::DivF); break;
              default:
                panic("invalid double compound operator");
            }
            convert(op_type, target_type);
        } else {
            const Type *op_type =
                arithCommon(target_type, assign.value->type);
            convert(target_type, op_type);
            genValue(*assign.value);
            convert(assign.value->type, op_type);
            applyIntOp(*assign.compoundOp, op_type, false);
            convert(op_type, target_type);
        }

        // Stack: [addr, result]
        if (need_value) {
            emit(Op::Dup);
            emit(Op::Rot3);
        }
        store(target_type);
        return;
    }

    // Plain assignment. The evaluation order between the target
    // address and the value is unspecified in C; the simulated gcc
    // evaluates the value first, clang the address first.
    if (traits_.argsRightToLeft) {
        genValue(*assign.value);
        convert(assign.value->type, target_type);
        genAddr(*assign.target);
        emit(Op::Swap);
    } else {
        genAddr(*assign.target);
        genValue(*assign.value);
        convert(assign.value->type, target_type);
    }
    // Stack: [addr, value]
    if (need_value) {
        emit(Op::Dup);
        emit(Op::Rot3);
    }
    store(target_type);
}

void
FuncLowering::genCall(const CallExpr &call)
{
    // cur_line() is resolved at compile time; its interpretation is
    // implementation-defined (the paper's "LINE" bug family).
    if (call.builtin == Builtin::CurLine) {
        const std::uint32_t line = traits_.lineIsStatementStart
                                       ? curLine_
                                       : call.loc().line;
        emit(Op::PushI, 0, 0, static_cast<std::int64_t>(line));
        return;
    }

    const TypeContext &types = *program_.types;

    // Expected parameter types (for canonical conversion).
    auto param_type = [&](std::size_t i) -> const Type * {
        if (call.builtin != Builtin::None) {
            switch (call.builtin) {
              case Builtin::PrintInt:
              case Builtin::PrintChar:
              case Builtin::Exit:
              case Builtin::InputByte:
              case Builtin::Probe:
                return types.intType();
              case Builtin::PrintUInt:
                return types.uintType();
              case Builtin::PrintLong:
                return types.longType();
              case Builtin::PrintHex:
                return types.ulongType();
              case Builtin::PrintF:
              case Builtin::SqrtF:
              case Builtin::FloorF:
              case Builtin::PowF:
                return types.doubleType();
              case Builtin::Malloc:
                return types.longType();
              case Builtin::Memset:
                return i == 1 ? types.intType() : i == 2
                           ? types.longType()
                           : nullptr;
              case Builtin::Memcpy:
                return i == 2 ? types.longType() : nullptr;
              default:
                return nullptr; // pointer-typed; no conversion
            }
        }
        const auto &callee = *program_.functions[
            static_cast<std::size_t>(call.funcIndex)];
        if (i < callee.params.size()) {
            const Type *t = callee.params[i].type;
            return t->isArray() ? nullptr : t;
        }
        return nullptr;
    };

    auto gen_arg = [&](std::size_t i) {
        genValue(*call.args[i]);
        if (const Type *want = param_type(i)) {
            if (want->isScalar())
                convert(call.args[i]->type, want);
        }
    };

    const auto argc = static_cast<std::int32_t>(call.args.size());
    const std::int64_t rtl = traits_.argsRightToLeft ? 1 : 0;
    if (traits_.argsRightToLeft) {
        for (std::size_t i = call.args.size(); i-- > 0;)
            gen_arg(i);
    } else {
        for (std::size_t i = 0; i < call.args.size(); i++)
            gen_arg(i);
    }

    if (call.builtin != Builtin::None) {
        emit(Op::CallB, static_cast<std::int32_t>(call.builtin), argc,
             rtl);
    } else {
        emit(Op::Call, call.funcIndex, argc, rtl);
    }
}

} // namespace

// ===================================================================
// Lowering (module level)
// ===================================================================

Lowering::Lowering(const minic::Program &program,
                   const CompilerConfig &config, const Traits &traits)
    : program_(program), config_(config), traits_(traits)
{}

std::uint32_t
Lowering::internRodata(const std::string &bytes)
{
    const auto offset = static_cast<std::uint32_t>(rodata_.size());
    rodata_.insert(rodata_.end(), bytes.begin(), bytes.end());
    rodata_.push_back(0);
    return offset;
}

void
Lowering::layoutGlobals(Module &module)
{
    std::vector<std::size_t> order(program_.globals.size());
    for (std::size_t i = 0; i < order.size(); i++)
        order[i] = i;

    auto size_of = [&](std::size_t i) {
        return program_.globals[i]->type->size();
    };
    switch (traits_.globalOrder) {
      case LayoutOrder::Declaration:
        break;
      case LayoutOrder::ReverseDeclaration:
        std::reverse(order.begin(), order.end());
        break;
      case LayoutOrder::SizeDescending:
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return size_of(a) > size_of(b);
                         });
        break;
      case LayoutOrder::SizeAscending:
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return size_of(a) < size_of(b);
                         });
        break;
    }

    module.globals.resize(program_.globals.size());
    const std::uint64_t gap =
        config_.sanitizer == Sanitizer::ASan ? 16 : 0;
    std::uint64_t offset = gap;
    for (std::size_t idx : order) {
        const GlobalDecl &decl = *program_.globals[idx];
        bytecode::GlobalLayout layout;
        layout.name = decl.name;
        layout.globalId = decl.globalId;
        layout.size = std::max<std::uint64_t>(decl.type->size(), 1);
        layout.align = std::max<std::uint64_t>(decl.type->align(), 1);
        offset = alignUp(offset, layout.align);
        layout.segmentOffset = offset;
        offset += layout.size + gap;

        if (decl.init) {
            switch (decl.init->kind()) {
              case ExprKind::IntLit:
                layout.init = bytecode::GlobalLayout::Init::Word;
                layout.initWord =
                    static_cast<const IntLitExpr &>(*decl.init).value;
                layout.valueSize = scalarWidth(decl.type);
                break;
              case ExprKind::FloatLit:
                layout.init = bytecode::GlobalLayout::Init::Word;
                layout.initWord = bytecode::doubleToBits(
                    static_cast<const FloatLitExpr &>(*decl.init)
                        .value);
                layout.valueSize = 8;
                break;
              case ExprKind::StrLit:
                layout.init = bytecode::GlobalLayout::Init::Rodata;
                layout.initWord = internRodata(
                    static_cast<const StrLitExpr &>(*decl.init)
                        .bytes);
                layout.valueSize = 8;
                break;
              default:
                break;
            }
        }
        module.globals[static_cast<std::size_t>(decl.globalId)] =
            std::move(layout);
    }
    module.globalsSegmentSize = alignUp(offset + gap, 16);
}

bytecode::Module
Lowering::lower(
    const std::vector<std::unique_ptr<minic::FunctionDecl>> &funcs)
{
    Module module;
    layoutGlobals(module);

    for (const auto &func : funcs) {
        FuncLowering fl(program_, config_, traits_, *func, rodata_);
        module.functions.push_back(fl.lower());
        if (func->name == "main")
            module.mainIndex = func->index;
    }
    module.rodata = std::move(rodata_);
    return module;
}

} // namespace compdiff::compiler
