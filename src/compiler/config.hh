#pragma once

/**
 * @file
 * Compiler configurations and their behavioral traits.
 *
 * The paper uses ten compiler implementations: {gcc, clang} × {-O0,
 * -O1, -O2, -O3, -Os}. This module defines the simulated counterparts.
 * A CompilerConfig names one implementation; traitsFor() expands it to
 * the full set of behaviors in which legal implementations may differ:
 *
 *  - codegen choices (argument evaluation order, frame and globals
 *    layout, shift-count semantics, __LINE__-style interpretation),
 *  - enabled UB-exploiting optimizations (guard folding, arithmetic
 *    widening, dead-store elimination, null-deref exploitation),
 *  - runtime/library policy (uninitialized-memory fill patterns, heap
 *    free-list order, double-/invalid-free detection, pow() lowering),
 *  - address-space layout (segment bases), and
 *  - documented seeded miscompilation defects (used to reproduce the
 *    paper's compiler-bug findings, RQ2).
 *
 * Every trait is deterministic, so a (program, config, input) triple
 * always produces the same output — the property CompDiff relies on.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace compdiff::compiler
{

/** Simulated compiler vendor. */
enum class Vendor
{
    Gcc,
    Clang,
};

/** Optimization level. */
enum class OptLevel
{
    O0,
    O1,
    O2,
    O3,
    Os,
};

/** Sanitizer instrumentation baked into a binary. */
enum class Sanitizer
{
    None,
    ASan,
    UBSan,
    MSan,
};

/** Ordering policies for stack locals / globals. */
enum class LayoutOrder
{
    Declaration,
    SizeDescending,
    SizeAscending,
    ReverseDeclaration,
};

/** Oversized-shift-count handling. */
enum class ShiftPolicy
{
    MaskCount, ///< x86-style: count & (width-1)
    ZeroResult,///< poison-style: oversized shift yields 0
};

/** One compiler implementation (the unit CompDiff enumerates). */
struct CompilerConfig
{
    Vendor vendor = Vendor::Gcc;
    OptLevel opt = OptLevel::O0;
    Sanitizer sanitizer = Sanitizer::None;

    /** "gcc-O2", "clang-Os", "clang-O1+asan", ... */
    std::string name() const;

    bool operator==(const CompilerConfig &) const = default;
};

/** Vendor display name ("gcc" / "clang"). */
const char *vendorName(Vendor vendor);

/** Optimization level display name ("O0" ... "Os"). */
const char *optLevelName(OptLevel opt);

/**
 * The paper's default set: {gcc, clang} × {O0, O1, O2, O3, Os},
 * no sanitizers, in that order (gcc first).
 */
std::vector<CompilerConfig> standardImplementations();

/** Parse "gcc-O2" style names (inverse of CompilerConfig::name). */
CompilerConfig configFromName(const std::string &name);

/**
 * Full behavioral expansion of a CompilerConfig (see file comment).
 */
struct Traits
{
    // --- Codegen choices -------------------------------------------
    bool argsRightToLeft = false;
    LayoutOrder localOrder = LayoutOrder::Declaration;
    LayoutOrder globalOrder = LayoutOrder::Declaration;
    std::uint32_t localPad = 0; ///< bytes of padding between locals
    ShiftPolicy shift32 = ShiftPolicy::MaskCount;
    ShiftPolicy shift64 = ShiftPolicy::MaskCount;
    bool lineIsStatementStart = false; ///< cur_line() interpretation

    // --- Enabled optimizations -------------------------------------
    bool constFold = false;
    bool foldUbGuards = false;     ///< (a+b)<a  ->  b<0
    bool alwaysTrueIncCmp = false; ///< x+1>x  ->  1
    bool widenMulToLong = false;   ///< 64-bit int arithmetic widening
    bool deadStoreElim = false;    ///< also deletes dead divisions
    bool nullDerefExploit = false; ///< unreachable-through-null pruning

    // --- Seeded miscompilation defects (documented, RQ2) -----------
    bool bugRemPow2 = false;    ///< x%8 -> x&7 without negative fixup
    bool bugDiv32Shift = false; ///< x/32 -> x>>5 without fixup
    bool bugEmptyRange = false; ///< (x<C && x>C-2) folded to 0
    /// Seeded sanitizer-instrumentation defect: the -O2 redundant-
    /// overflow-check elision runs with an inverted signedness
    /// predicate, so signed add/sub overflow checks are elided (FN)
    /// while unsigned add/sub gain a bogus check (FP). See DESIGN §14.
    bool bugChkOv32Unsigned = false;

    // --- Runtime / library policy ----------------------------------
    std::uint8_t stackFill = 0x00; ///< content of fresh stack memory
    std::uint8_t heapFill = 0x00;  ///< content of fresh heap memory
    std::uint64_t undefWord = 0;   ///< value of PushUndef
    bool freePoison = false;       ///< scrub chunks on free()
    std::uint8_t freePoisonByte = 0xEF;
    bool freelistLifo = true;      ///< reuse order of freed chunks
    bool detectDoubleFreeTop = false; ///< glibc-tcache-style check
    bool detectInvalidFree = false;   ///< abort on free of non-heap ptr
    bool powViaExp2 = false;       ///< pow(a,b) = exp2(b*log2(a))
    bool memcpyBackward = false;   ///< memcpy copies high-to-low

    // --- Address-space layout --------------------------------------
    std::uint64_t rodataBase = 0;
    std::uint64_t globalsBase = 0;
    std::uint64_t heapBase = 0;
    std::uint64_t stackBase = 0; ///< top of stack; frames grow down
};

/** Expand a configuration into its concrete traits. */
Traits traitsFor(const CompilerConfig &config);

} // namespace compdiff::compiler
