#pragma once

/**
 * @file
 * AST-level optimization passes.
 *
 * Each simulated compiler implementation runs a subset of these passes
 * (gated by its Traits). Several of them are *UB-exploiting*: they are
 * only sound under the assumption that the program never executes
 * undefined behavior, which is precisely the license the C standard
 * grants and the mechanism that turns UB into unstable code:
 *
 *  - UbGuardFoldPass rewrites `(a+b) < a` to `b < 0` (signed), the
 *    transform that deletes the overflow guard of the paper's
 *    Listing 1;
 *  - AlwaysTrueIncCmpPass folds `x+1 > x` to 1;
 *  - WidenMulPass computes `long = int*int` chains in 64 bits, the
 *    clang -O1 behavior from the paper's IntError discussion (RQ1);
 *  - DeadStoreElimPass deletes stores to never-read locals together
 *    with their (possibly trapping) pure computations;
 *  - NullDerefExploitPass treats dereferences of known-null pointers
 *    as unreachable and elides them.
 *
 * SeededMiscompilePass contains three deliberate, documented compiler
 * defects used to reproduce the paper's compiler-bug findings (RQ2).
 */

#include <functional>
#include <memory>
#include <vector>

#include "compiler/config.hh"
#include "minic/ast.hh"

namespace compdiff::compiler
{

/**
 * Base class of AST transformation passes. Passes mutate a cloned
 * FunctionDecl in place; the original analyzed AST is never touched.
 */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Short pass name for diagnostics and ablation benches. */
    virtual const char *name() const = 0;

    /** Whether this pass runs under the given traits. */
    virtual bool enabledFor(const Traits &traits) const = 0;

    /** Transform one function. */
    virtual void run(minic::FunctionDecl &func,
                     const Traits &traits) const = 0;
};

/** Constant folding (literal arithmetic, branch folding). */
class ConstFoldPass : public Pass
{
  public:
    const char *name() const override { return "constfold"; }
    bool enabledFor(const Traits &t) const override
    {
        return t.constFold;
    }
    void run(minic::FunctionDecl &func,
             const Traits &traits) const override;
};

/** `(a+b) < a` -> `b < 0` and friends (signed; UB-exploiting). */
class UbGuardFoldPass : public Pass
{
  public:
    const char *name() const override { return "ubguardfold"; }
    bool enabledFor(const Traits &t) const override
    {
        return t.foldUbGuards;
    }
    void run(minic::FunctionDecl &func,
             const Traits &traits) const override;
};

/** `x+1 > x` -> 1 and friends (signed; UB-exploiting). */
class AlwaysTrueIncCmpPass : public Pass
{
  public:
    const char *name() const override { return "alwaystruecmp"; }
    bool enabledFor(const Traits &t) const override
    {
        return t.alwaysTrueIncCmp;
    }
    void run(minic::FunctionDecl &func,
             const Traits &traits) const override;
};

/** Widen 32-bit arithmetic feeding 64-bit contexts (UB-exploiting). */
class WidenMulPass : public Pass
{
  public:
    const char *name() const override { return "widenmul"; }
    bool enabledFor(const Traits &t) const override
    {
        return t.widenMulToLong;
    }
    void run(minic::FunctionDecl &func,
             const Traits &traits) const override;
};

/** Remove stores to never-read locals, including trapping math. */
class DeadStoreElimPass : public Pass
{
  public:
    const char *name() const override { return "deadstore"; }
    bool enabledFor(const Traits &t) const override
    {
        return t.deadStoreElim;
    }
    void run(minic::FunctionDecl &func,
             const Traits &traits) const override;
};

/** Elide loads/stores through pointers proven null (UB-exploiting). */
class NullDerefExploitPass : public Pass
{
  public:
    const char *name() const override { return "nullexploit"; }
    bool enabledFor(const Traits &t) const override
    {
        return t.nullDerefExploit;
    }
    void run(minic::FunctionDecl &func,
             const Traits &traits) const override;
};

/** The three documented seeded miscompilation defects (RQ2). */
class SeededMiscompilePass : public Pass
{
  public:
    const char *name() const override { return "seededbugs"; }
    bool enabledFor(const Traits &t) const override
    {
        return t.bugRemPow2 || t.bugDiv32Shift || t.bugEmptyRange;
    }
    void run(minic::FunctionDecl &func,
             const Traits &traits) const override;
};

/** The standard pass pipeline, in execution order. */
const std::vector<std::unique_ptr<Pass>> &standardPasses();

// --- Shared AST-walking utilities (exposed for tests) ---------------

/**
 * Invoke `fn` on every expression slot reachable from a statement
 * subtree, children first; `fn` may replace the pointed-to node.
 */
void walkExprs(minic::Stmt &stmt,
               const std::function<void(minic::ExprPtr &)> &fn);

/** Same, over one expression tree (including the root slot). */
void walkExprTree(minic::ExprPtr &expr,
                  const std::function<void(minic::ExprPtr &)> &fn);

/**
 * Invoke `fn` on every statement list (block bodies) in the subtree,
 * innermost first; `fn` may erase or replace statements.
 */
void walkStmtLists(
    minic::Stmt &stmt,
    const std::function<void(std::vector<minic::StmtPtr> &)> &fn);

/**
 * Wrap single-statement if/while/for bodies in blocks so that
 * statement-deleting passes always operate on statement lists. Run
 * once before the pass pipeline.
 */
void normalizeBodies(minic::FunctionDecl &func);

/** Structural equality of two pure expressions (conservative). */
bool pureExprEquals(const minic::Expr &a, const minic::Expr &b);

/** True when evaluating the expression cannot have side effects. */
bool isPureExpr(const minic::Expr &expr);

} // namespace compdiff::compiler
