#include "compiler/cache.hh"

#include <map>
#include <mutex>

#include "compiler/compiler.hh"
#include "minic/printer.hh"
#include "obs/metrics.hh"
#include "support/hash.hh"

namespace compdiff::compiler
{

std::uint64_t
programFingerprint(const minic::Program &program)
{
    return support::murmurHash64(minic::printProgram(program),
                                 /*seed=*/0x0C0FFEEu);
}

std::uint64_t
traitsFingerprint(const Traits &traits)
{
    // Hash every field explicitly (never the raw bytes: padding
    // would make the fingerprint build-dependent). Any new Traits
    // field must be added here; the unit test pins the count.
    support::HashCombiner combiner(0x7241175u);
    combiner.add(traits.argsRightToLeft)
        .add(static_cast<std::uint64_t>(traits.localOrder))
        .add(static_cast<std::uint64_t>(traits.globalOrder))
        .add(traits.localPad)
        .add(static_cast<std::uint64_t>(traits.shift32))
        .add(static_cast<std::uint64_t>(traits.shift64))
        .add(traits.lineIsStatementStart);
    combiner.add(traits.constFold)
        .add(traits.foldUbGuards)
        .add(traits.alwaysTrueIncCmp)
        .add(traits.widenMulToLong)
        .add(traits.deadStoreElim)
        .add(traits.nullDerefExploit);
    combiner.add(traits.bugRemPow2)
        .add(traits.bugDiv32Shift)
        .add(traits.bugEmptyRange);
    combiner.add(traits.stackFill)
        .add(traits.heapFill)
        .add(traits.undefWord)
        .add(traits.freePoison)
        .add(traits.freePoisonByte)
        .add(traits.freelistLifo)
        .add(traits.detectDoubleFreeTop)
        .add(traits.detectInvalidFree)
        .add(traits.powViaExp2)
        .add(traits.memcpyBackward);
    combiner.add(traits.rodataBase)
        .add(traits.globalsBase)
        .add(traits.heapBase)
        .add(traits.stackBase);
    return combiner.digest();
}

namespace
{

std::uint64_t
cacheKey(std::uint64_t program_hash, const std::string &impl_id,
         const Traits &traits)
{
    support::HashCombiner combiner(0xCAC4Eu);
    combiner.add(program_hash)
        .add(support::murmurHash64(impl_id))
        .add(traitsFingerprint(traits));
    return combiner.digest();
}

} // namespace

struct CompileCache::Impl
{
    mutable std::mutex mu;
    std::map<std::uint64_t, std::shared_ptr<const bytecode::Module>>
        entries;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

CompileCache::Impl *
CompileCache::impl() const
{
    static std::mutex create_mu;
    std::lock_guard<std::mutex> lock(create_mu);
    if (!impl_)
        impl_ = new Impl();
    return impl_;
}

CompileCache &
CompileCache::global()
{
    static CompileCache instance;
    return instance;
}

std::shared_ptr<const bytecode::Module>
CompileCache::compile(const minic::Program &program,
                      std::uint64_t program_hash,
                      const std::string &impl_id,
                      const CompilerConfig &config,
                      const Traits &traits)
{
    Impl &state = *impl();
    const std::uint64_t key =
        cacheKey(program_hash, impl_id, traits);
    {
        std::lock_guard<std::mutex> lock(state.mu);
        auto it = state.entries.find(key);
        if (it != state.entries.end()) {
            state.hits++;
            obs::counter("compile_cache.hits").add();
            return it->second;
        }
        state.misses++;
    }
    obs::counter("compile_cache.misses").add();

    // Compile outside the lock: concurrent shards may compile the
    // same key redundantly, but never block each other on a compile.
    auto module = std::make_shared<const bytecode::Module>(
        Compiler(program).compileWithTraits(config, traits));

    std::lock_guard<std::mutex> lock(state.mu);
    auto [it, inserted] = state.entries.emplace(key, module);
    return inserted ? module : it->second;
}

std::size_t
CompileCache::size() const
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.entries.size();
}

std::uint64_t
CompileCache::hits() const
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.hits;
}

std::uint64_t
CompileCache::misses() const
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.misses;
}

void
CompileCache::clear()
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    state.entries.clear();
    state.hits = 0;
    state.misses = 0;
}

std::shared_ptr<const bytecode::Module>
compileCached(const minic::Program &program,
              const CompilerConfig &config)
{
    return compileCached(program, config, traitsFor(config));
}

std::shared_ptr<const bytecode::Module>
compileCached(const minic::Program &program,
              const CompilerConfig &config, const Traits &traits)
{
    return CompileCache::global().compile(
        program, programFingerprint(program), config.name(), config,
        traits);
}

} // namespace compdiff::compiler
