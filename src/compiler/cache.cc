#include "compiler/cache.hh"

#include <list>
#include <map>
#include <mutex>

#include "compiler/compiler.hh"
#include "minic/printer.hh"
#include "obs/metrics.hh"
#include "support/hash.hh"

namespace compdiff::compiler
{

std::uint64_t
programFingerprint(const minic::Program &program)
{
    return support::murmurHash64(minic::printProgram(program),
                                 /*seed=*/0x0C0FFEEu);
}

std::uint64_t
traitsFingerprint(const Traits &traits)
{
    // Hash every field explicitly (never the raw bytes: padding
    // would make the fingerprint build-dependent). Any new Traits
    // field must be added here; the unit test pins the count.
    support::HashCombiner combiner(0x7241175u);
    combiner.add(traits.argsRightToLeft)
        .add(static_cast<std::uint64_t>(traits.localOrder))
        .add(static_cast<std::uint64_t>(traits.globalOrder))
        .add(traits.localPad)
        .add(static_cast<std::uint64_t>(traits.shift32))
        .add(static_cast<std::uint64_t>(traits.shift64))
        .add(traits.lineIsStatementStart);
    combiner.add(traits.constFold)
        .add(traits.foldUbGuards)
        .add(traits.alwaysTrueIncCmp)
        .add(traits.widenMulToLong)
        .add(traits.deadStoreElim)
        .add(traits.nullDerefExploit);
    combiner.add(traits.bugRemPow2)
        .add(traits.bugDiv32Shift)
        .add(traits.bugEmptyRange)
        .add(traits.bugChkOv32Unsigned);
    combiner.add(traits.stackFill)
        .add(traits.heapFill)
        .add(traits.undefWord)
        .add(traits.freePoison)
        .add(traits.freePoisonByte)
        .add(traits.freelistLifo)
        .add(traits.detectDoubleFreeTop)
        .add(traits.detectInvalidFree)
        .add(traits.powViaExp2)
        .add(traits.memcpyBackward);
    combiner.add(traits.rodataBase)
        .add(traits.globalsBase)
        .add(traits.heapBase)
        .add(traits.stackBase);
    return combiner.digest();
}

namespace
{

std::uint64_t
cacheKey(std::uint64_t program_hash, const std::string &impl_id,
         const Traits &traits)
{
    support::HashCombiner combiner(0xCAC4Eu);
    combiner.add(program_hash)
        .add(support::murmurHash64(impl_id))
        .add(traitsFingerprint(traits));
    return combiner.digest();
}

/**
 * Estimated resident footprint of one cached module. An estimate is
 * enough — the byte cap exists to stop unbounded growth across a
 * long multi-target run, not to account bytes exactly.
 */
std::size_t
moduleFootprint(const bytecode::Module &module)
{
    std::size_t bytes = sizeof(bytecode::Module);
    bytes += module.codeSize() * 16; // packed instruction estimate
    bytes += module.rodata.size();
    bytes += module.globals.size() * sizeof(bytecode::GlobalLayout);
    return bytes;
}

} // namespace

struct CompileCache::Impl
{
    struct Entry
    {
        std::uint64_t key = 0;
        std::shared_ptr<const bytecode::Module> module;
        std::size_t bytes = 0;
    };

    mutable std::mutex mu;
    /** Front = most recently used. */
    std::list<Entry> lru;
    std::map<std::uint64_t, std::list<Entry>::iterator> index;
    std::size_t bytesUsed = 0;
    std::size_t maxEntries = kDefaultMaxEntries;
    std::size_t maxBytes = kDefaultMaxBytes;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    /** Evict LRU entries until both caps hold (lock held). Spares
     *  the most recent entry so one oversized module still caches. */
    void
    enforceCaps()
    {
        std::uint64_t evicted = 0;
        while (lru.size() > 1 &&
               ((maxEntries && lru.size() > maxEntries) ||
                (maxBytes && bytesUsed > maxBytes))) {
            const Entry &victim = lru.back();
            bytesUsed -= victim.bytes;
            index.erase(victim.key);
            lru.pop_back();
            evicted++;
        }
        if (evicted) {
            evictions += evicted;
            obs::counter("cache.evict").add(evicted);
        }
    }
};

CompileCache::Impl *
CompileCache::impl() const
{
    static std::mutex create_mu;
    std::lock_guard<std::mutex> lock(create_mu);
    if (!impl_)
        impl_ = new Impl();
    return impl_;
}

CompileCache &
CompileCache::global()
{
    static CompileCache instance;
    return instance;
}

std::shared_ptr<const bytecode::Module>
CompileCache::compile(const minic::Program &program,
                      std::uint64_t program_hash,
                      const std::string &impl_id,
                      const CompilerConfig &config,
                      const Traits &traits)
{
    Impl &state = *impl();
    const std::uint64_t key =
        cacheKey(program_hash, impl_id, traits);
    {
        std::lock_guard<std::mutex> lock(state.mu);
        auto it = state.index.find(key);
        if (it != state.index.end()) {
            // Touch: move to the recent end.
            state.lru.splice(state.lru.begin(), state.lru,
                             it->second);
            state.hits++;
            obs::counter("cache.hit").add();
            return it->second->module;
        }
        state.misses++;
    }
    obs::counter("cache.miss").add();

    // Compile outside the lock: concurrent shards may compile the
    // same key redundantly, but never block each other on a compile.
    auto module = std::make_shared<const bytecode::Module>(
        Compiler(program).compileWithTraits(config, traits));

    std::lock_guard<std::mutex> lock(state.mu);
    if (auto it = state.index.find(key); it != state.index.end()) {
        // A concurrent compile won the race; keep its entry.
        state.lru.splice(state.lru.begin(), state.lru, it->second);
        return it->second->module;
    }
    const std::size_t bytes = moduleFootprint(*module);
    state.lru.push_front({key, module, bytes});
    state.index[key] = state.lru.begin();
    state.bytesUsed += bytes;
    state.enforceCaps();
    return module;
}

void
CompileCache::setLimits(std::size_t max_entries,
                        std::size_t max_bytes)
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    state.maxEntries = max_entries;
    state.maxBytes = max_bytes;
    state.enforceCaps();
}

std::size_t
CompileCache::size() const
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.lru.size();
}

std::size_t
CompileCache::bytesUsed() const
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.bytesUsed;
}

std::size_t
CompileCache::maxEntries() const
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.maxEntries;
}

std::size_t
CompileCache::maxBytes() const
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.maxBytes;
}

std::uint64_t
CompileCache::hits() const
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.hits;
}

std::uint64_t
CompileCache::misses() const
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.misses;
}

std::uint64_t
CompileCache::evictions() const
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.evictions;
}

void
CompileCache::clear()
{
    Impl &state = *impl();
    std::lock_guard<std::mutex> lock(state.mu);
    state.lru.clear();
    state.index.clear();
    state.bytesUsed = 0;
    state.hits = 0;
    state.misses = 0;
    state.evictions = 0;
}

std::shared_ptr<const bytecode::Module>
compileCached(const minic::Program &program,
              const CompilerConfig &config)
{
    return compileCached(program, config, traitsFor(config));
}

std::shared_ptr<const bytecode::Module>
compileCached(const minic::Program &program,
              const CompilerConfig &config, const Traits &traits)
{
    return CompileCache::global().compile(
        program, programFingerprint(program), config.name(), config,
        traits);
}

} // namespace compdiff::compiler
