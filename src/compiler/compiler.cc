#include "compiler/compiler.hh"

#include "bytecode/decode.hh"
#include "compiler/lowering.hh"
#include "compiler/passes.hh"
#include "minic/parser.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace compdiff::compiler
{

bytecode::Module
Compiler::compile(const CompilerConfig &config) const
{
    return compileWithTraits(config, traitsFor(config));
}

bytecode::Module
Compiler::compileWithTraits(const CompilerConfig &config,
                            const Traits &traits) const
{
    obs::Span span("compile." + config.name());
    obs::counter("compiler.compiles").add();
    // Clone the analyzed AST so UB-exploiting transforms never leak
    // between configurations, then run this configuration's pipeline.
    std::vector<std::unique_ptr<minic::FunctionDecl>> clones;
    clones.reserve(program_.functions.size());
    for (const auto &func : program_.functions) {
        auto clone = func->clone();
        normalizeBodies(*clone);
        for (const auto &pass : standardPasses()) {
            if (pass->enabledFor(traits))
                pass->run(*clone, traits);
        }
        clones.push_back(std::move(clone));
    }

    Lowering lowering(program_, config, traits);
    bytecode::Module module = lowering.lower(clones);
    // Lower once more into threaded-code form so every Vm bound to
    // this module (k-way oracle, batch runs, cache hits) shares one
    // decoded image instead of re-decoding per executor.
    module.decoded = bytecode::decodeModule(module);
    return module;
}

bytecode::Module
compileSource(std::string_view source, const CompilerConfig &config)
{
    const auto program = minic::parseAndCheck(source);
    // NOTE: convenience path for short-lived modules only; the Module
    // does not reference the Program after lowering.
    Compiler compiler(*program);
    return compiler.compile(config);
}

} // namespace compdiff::compiler
