#include "compiler/passes.hh"

#include <map>

#include "support/logging.hh"

namespace compdiff::compiler
{

using namespace minic;

// ===================================================================
// Walking utilities
// ===================================================================

void
walkExprTree(ExprPtr &expr, const std::function<void(ExprPtr &)> &fn)
{
    if (!expr)
        return;
    switch (expr->kind()) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::StrLit:
      case ExprKind::VarRef:
      case ExprKind::SizeOf:
        break;
      case ExprKind::Unary:
        walkExprTree(static_cast<UnaryExpr &>(*expr).operand, fn);
        break;
      case ExprKind::Binary: {
        auto &bin = static_cast<BinaryExpr &>(*expr);
        walkExprTree(bin.lhs, fn);
        walkExprTree(bin.rhs, fn);
        break;
      }
      case ExprKind::Assign: {
        auto &assign = static_cast<AssignExpr &>(*expr);
        walkExprTree(assign.target, fn);
        walkExprTree(assign.value, fn);
        break;
      }
      case ExprKind::Cond: {
        auto &cond = static_cast<CondExpr &>(*expr);
        walkExprTree(cond.cond, fn);
        walkExprTree(cond.thenExpr, fn);
        walkExprTree(cond.elseExpr, fn);
        break;
      }
      case ExprKind::Call: {
        auto &call = static_cast<CallExpr &>(*expr);
        for (auto &arg : call.args)
            walkExprTree(arg, fn);
        break;
      }
      case ExprKind::Index: {
        auto &index = static_cast<IndexExpr &>(*expr);
        walkExprTree(index.base, fn);
        walkExprTree(index.index, fn);
        break;
      }
      case ExprKind::Member:
        walkExprTree(static_cast<MemberExpr &>(*expr).base, fn);
        break;
      case ExprKind::Cast:
        walkExprTree(static_cast<CastExpr &>(*expr).operand, fn);
        break;
    }
    fn(expr);
}

void
walkExprs(Stmt &stmt, const std::function<void(ExprPtr &)> &fn)
{
    switch (stmt.kind()) {
      case StmtKind::Block:
        for (auto &child : static_cast<BlockStmt &>(stmt).body)
            walkExprs(*child, fn);
        return;
      case StmtKind::VarDecl:
        walkExprTree(static_cast<VarDeclStmt &>(stmt).init, fn);
        return;
      case StmtKind::If: {
        auto &if_stmt = static_cast<IfStmt &>(stmt);
        walkExprTree(if_stmt.cond, fn);
        walkExprs(*if_stmt.thenStmt, fn);
        if (if_stmt.elseStmt)
            walkExprs(*if_stmt.elseStmt, fn);
        return;
      }
      case StmtKind::While: {
        auto &while_stmt = static_cast<WhileStmt &>(stmt);
        walkExprTree(while_stmt.cond, fn);
        walkExprs(*while_stmt.body, fn);
        return;
      }
      case StmtKind::For: {
        auto &for_stmt = static_cast<ForStmt &>(stmt);
        if (for_stmt.init)
            walkExprs(*for_stmt.init, fn);
        walkExprTree(for_stmt.cond, fn);
        walkExprTree(for_stmt.step, fn);
        walkExprs(*for_stmt.body, fn);
        return;
      }
      case StmtKind::Return:
        walkExprTree(static_cast<ReturnStmt &>(stmt).value, fn);
        return;
      case StmtKind::Break:
      case StmtKind::Continue:
        return;
      case StmtKind::ExprStmt:
        walkExprTree(static_cast<ExprStmt &>(stmt).expr, fn);
        return;
    }
}

void
walkStmtLists(Stmt &stmt,
              const std::function<void(std::vector<StmtPtr> &)> &fn)
{
    switch (stmt.kind()) {
      case StmtKind::Block: {
        auto &block = static_cast<BlockStmt &>(stmt);
        for (auto &child : block.body)
            walkStmtLists(*child, fn);
        fn(block.body);
        return;
      }
      case StmtKind::If: {
        auto &if_stmt = static_cast<IfStmt &>(stmt);
        walkStmtLists(*if_stmt.thenStmt, fn);
        if (if_stmt.elseStmt)
            walkStmtLists(*if_stmt.elseStmt, fn);
        return;
      }
      case StmtKind::While:
        walkStmtLists(*static_cast<WhileStmt &>(stmt).body, fn);
        return;
      case StmtKind::For: {
        auto &for_stmt = static_cast<ForStmt &>(stmt);
        if (for_stmt.init)
            walkStmtLists(*for_stmt.init, fn);
        walkStmtLists(*for_stmt.body, fn);
        return;
      }
      default:
        return;
    }
}

namespace
{

void
wrapInBlock(StmtPtr &stmt)
{
    if (!stmt || stmt->kind() == StmtKind::Block)
        return;
    auto block = std::make_unique<BlockStmt>(stmt->loc());
    block->body.push_back(std::move(stmt));
    stmt = std::move(block);
}

void
normalizeStmt(Stmt &stmt)
{
    switch (stmt.kind()) {
      case StmtKind::Block:
        for (auto &child : static_cast<BlockStmt &>(stmt).body)
            normalizeStmt(*child);
        return;
      case StmtKind::If: {
        auto &if_stmt = static_cast<IfStmt &>(stmt);
        wrapInBlock(if_stmt.thenStmt);
        if (if_stmt.elseStmt)
            wrapInBlock(if_stmt.elseStmt);
        normalizeStmt(*if_stmt.thenStmt);
        if (if_stmt.elseStmt)
            normalizeStmt(*if_stmt.elseStmt);
        return;
      }
      case StmtKind::While: {
        auto &while_stmt = static_cast<WhileStmt &>(stmt);
        wrapInBlock(while_stmt.body);
        normalizeStmt(*while_stmt.body);
        return;
      }
      case StmtKind::For: {
        auto &for_stmt = static_cast<ForStmt &>(stmt);
        wrapInBlock(for_stmt.body);
        normalizeStmt(*for_stmt.body);
        return;
      }
      default:
        return;
    }
}

} // namespace

void
normalizeBodies(FunctionDecl &func)
{
    if (func.body)
        normalizeStmt(*func.body);
}

bool
isPureExpr(const Expr &expr)
{
    switch (expr.kind()) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::StrLit:
      case ExprKind::VarRef:
      case ExprKind::SizeOf:
        return true;
      case ExprKind::Unary:
        return isPureExpr(
            *static_cast<const UnaryExpr &>(expr).operand);
      case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        return isPureExpr(*bin.lhs) && isPureExpr(*bin.rhs);
      }
      case ExprKind::Cond: {
        const auto &cond = static_cast<const CondExpr &>(expr);
        return isPureExpr(*cond.cond) && isPureExpr(*cond.thenExpr) &&
               isPureExpr(*cond.elseExpr);
      }
      case ExprKind::Index: {
        const auto &index = static_cast<const IndexExpr &>(expr);
        return isPureExpr(*index.base) && isPureExpr(*index.index);
      }
      case ExprKind::Member:
        return isPureExpr(
            *static_cast<const MemberExpr &>(expr).base);
      case ExprKind::Cast:
        return isPureExpr(
            *static_cast<const CastExpr &>(expr).operand);
      case ExprKind::Assign:
      case ExprKind::Call:
        return false;
    }
    return false;
}

bool
pureExprEquals(const Expr &a, const Expr &b)
{
    if (a.kind() != b.kind())
        return false;
    switch (a.kind()) {
      case ExprKind::IntLit:
        return static_cast<const IntLitExpr &>(a).value ==
               static_cast<const IntLitExpr &>(b).value;
      case ExprKind::VarRef: {
        const auto &ra = static_cast<const VarRefExpr &>(a);
        const auto &rb = static_cast<const VarRefExpr &>(b);
        return ra.isGlobal == rb.isGlobal && ra.id == rb.id;
      }
      case ExprKind::Member: {
        const auto &ma = static_cast<const MemberExpr &>(a);
        const auto &mb = static_cast<const MemberExpr &>(b);
        return ma.field == mb.field && ma.isArrow == mb.isArrow &&
               pureExprEquals(*ma.base, *mb.base);
      }
      case ExprKind::Index: {
        const auto &ia = static_cast<const IndexExpr &>(a);
        const auto &ib = static_cast<const IndexExpr &>(b);
        return pureExprEquals(*ia.base, *ib.base) &&
               pureExprEquals(*ia.index, *ib.index);
      }
      case ExprKind::Cast: {
        const auto &ca = static_cast<const CastExpr &>(a);
        const auto &cb = static_cast<const CastExpr &>(b);
        return ca.target == cb.target &&
               pureExprEquals(*ca.operand, *cb.operand);
      }
      case ExprKind::Unary: {
        const auto &ua = static_cast<const UnaryExpr &>(a);
        const auto &ub = static_cast<const UnaryExpr &>(b);
        // AddrOf/Deref chains participate; calls never reach here.
        return ua.op == ub.op && pureExprEquals(*ua.operand, *ub.operand);
      }
      default:
        return false; // conservative
    }
}

namespace
{

/** True when the type is a signed 32-bit int. */
bool
isSignedInt32(const Type *type)
{
    return type && type->kind() == TypeKind::Int;
}

/** True when the type is a signed integer (char/int/long). */
bool
isSignedIntType(const Type *type)
{
    return type && type->isInteger() && type->isSigned();
}

/** Make a typed integer literal. */
ExprPtr
makeIntLit(SourceLoc loc, std::int64_t value, const Type *type)
{
    auto lit = std::make_unique<IntLitExpr>(loc, value);
    lit->type = type;
    return lit;
}

/** Normalize a raw 64-bit result to the value range of `type`. */
std::int64_t
normalizeToType(std::int64_t raw, const Type *type)
{
    switch (type->kind()) {
      case TypeKind::Char:
        return static_cast<std::int8_t>(raw);
      case TypeKind::Int:
        return static_cast<std::int32_t>(raw);
      case TypeKind::UInt:
        return static_cast<std::int64_t>(
            static_cast<std::uint32_t>(raw));
      default:
        return raw;
    }
}

} // namespace

// ===================================================================
// ConstFoldPass
// ===================================================================

namespace
{

/** Fold a binary integer operation; nullopt when not safely foldable. */
std::optional<std::int64_t>
foldIntBinary(BinaryOp op, const Type *type, std::int64_t lv,
              std::int64_t rv)
{
    const bool is_unsigned = !type->isSigned();
    const auto ul = static_cast<std::uint64_t>(lv);
    const auto ur = static_cast<std::uint64_t>(rv);
    switch (op) {
      case BinaryOp::Add:
        return normalizeToType(static_cast<std::int64_t>(ul + ur),
                               type);
      case BinaryOp::Sub:
        return normalizeToType(static_cast<std::int64_t>(ul - ur),
                               type);
      case BinaryOp::Mul:
        return normalizeToType(static_cast<std::int64_t>(ul * ur),
                               type);
      case BinaryOp::Div:
      case BinaryOp::Rem:
        // Never fold a trapping division; leave the runtime behavior
        // (and any cross-implementation divergence) intact.
        return std::nullopt;
      case BinaryOp::Shl:
      case BinaryOp::Shr:
        // Shift-count semantics are per-configuration; do not fold.
        return std::nullopt;
      case BinaryOp::BitAnd: return normalizeToType(lv & rv, type);
      case BinaryOp::BitOr: return normalizeToType(lv | rv, type);
      case BinaryOp::BitXor: return normalizeToType(lv ^ rv, type);
      default:
        break;
    }
    // Comparisons: operands share `type` (the comparison type).
    switch (op) {
      case BinaryOp::Lt: return is_unsigned ? (ul < ur) : (lv < rv);
      case BinaryOp::Le: return is_unsigned ? (ul <= ur) : (lv <= rv);
      case BinaryOp::Gt: return is_unsigned ? (ul > ur) : (lv > rv);
      case BinaryOp::Ge: return is_unsigned ? (ul >= ur) : (lv >= rv);
      case BinaryOp::Eq: return lv == rv;
      case BinaryOp::Ne: return lv != rv;
      default:
        return std::nullopt;
    }
}

} // namespace

void
ConstFoldPass::run(FunctionDecl &func, const Traits &) const
{
    if (!func.body)
        return;

    walkExprs(*func.body, [](ExprPtr &expr) {
        switch (expr->kind()) {
          case ExprKind::Binary: {
            auto &bin = static_cast<BinaryExpr &>(*expr);
            // Short-circuit folding with a literal left side.
            if (bin.op == BinaryOp::LogAnd ||
                bin.op == BinaryOp::LogOr) {
                if (bin.lhs->kind() != ExprKind::IntLit)
                    return;
                const auto lv =
                    static_cast<IntLitExpr &>(*bin.lhs).value;
                const bool is_and = bin.op == BinaryOp::LogAnd;
                if (is_and && lv == 0) {
                    expr = makeIntLit(bin.loc(), 0, bin.type);
                } else if (!is_and && lv != 0) {
                    expr = makeIntLit(bin.loc(), 1, bin.type);
                }
                return;
            }
            if (bin.lhs->kind() == ExprKind::IntLit &&
                bin.rhs->kind() == ExprKind::IntLit &&
                bin.lhs->type && bin.lhs->type->isInteger() &&
                bin.rhs->type && bin.rhs->type->isInteger()) {
                // Operate at the comparison/arithmetic type. For
                // comparisons, the operand type decides signedness;
                // use the wider of the two operand types.
                const Type *op_type = bin.type;
                if (isComparison(bin.op)) {
                    op_type = bin.lhs->type->size() >=
                                      bin.rhs->type->size()
                                  ? bin.lhs->type
                                  : bin.rhs->type;
                }
                const auto lv =
                    static_cast<IntLitExpr &>(*bin.lhs).value;
                const auto rv =
                    static_cast<IntLitExpr &>(*bin.rhs).value;
                if (auto folded =
                        foldIntBinary(bin.op, op_type, lv, rv)) {
                    expr = makeIntLit(bin.loc(), *folded, bin.type);
                }
                return;
            }
            if (bin.lhs->kind() == ExprKind::FloatLit &&
                bin.rhs->kind() == ExprKind::FloatLit) {
                const double lv =
                    static_cast<FloatLitExpr &>(*bin.lhs).value;
                const double rv =
                    static_cast<FloatLitExpr &>(*bin.rhs).value;
                double folded;
                switch (bin.op) {
                  case BinaryOp::Add: folded = lv + rv; break;
                  case BinaryOp::Sub: folded = lv - rv; break;
                  case BinaryOp::Mul: folded = lv * rv; break;
                  default: return;
                }
                auto lit = std::make_unique<FloatLitExpr>(bin.loc(),
                                                          folded);
                lit->type = bin.type;
                expr = std::move(lit);
            }
            return;
          }
          case ExprKind::Unary: {
            auto &un = static_cast<UnaryExpr &>(*expr);
            if (un.operand->kind() != ExprKind::IntLit)
                return;
            const auto v =
                static_cast<IntLitExpr &>(*un.operand).value;
            switch (un.op) {
              case UnaryOp::Neg:
                expr = makeIntLit(
                    un.loc(),
                    normalizeToType(
                        -static_cast<std::uint64_t>(v), un.type),
                    un.type);
                return;
              case UnaryOp::BitNot:
                expr = makeIntLit(un.loc(),
                                  normalizeToType(~v, un.type),
                                  un.type);
                return;
              case UnaryOp::LogNot:
                expr = makeIntLit(un.loc(), v == 0, un.type);
                return;
              default:
                return;
            }
          }
          case ExprKind::Cond: {
            auto &cond = static_cast<CondExpr &>(*expr);
            if (cond.cond->kind() == ExprKind::IntLit) {
                const auto v =
                    static_cast<IntLitExpr &>(*cond.cond).value;
                const Type *result = cond.type;
                expr = v ? std::move(cond.thenExpr)
                         : std::move(cond.elseExpr);
                expr->type = result;
            }
            return;
          }
          case ExprKind::Cast: {
            auto &cast = static_cast<CastExpr &>(*expr);
            if (cast.operand->kind() == ExprKind::IntLit &&
                cast.target->isInteger()) {
                const auto v =
                    static_cast<IntLitExpr &>(*cast.operand).value;
                expr = makeIntLit(cast.loc(),
                                  normalizeToType(v, cast.target),
                                  cast.target);
            }
            return;
          }
          default:
            return;
        }
    });

    // Statement-level: fold branches with literal conditions.
    walkStmtLists(*func.body, [](std::vector<StmtPtr> &list) {
        for (std::size_t i = 0; i < list.size();) {
            Stmt &stmt = *list[i];
            if (stmt.kind() == StmtKind::If) {
                auto &if_stmt = static_cast<IfStmt &>(stmt);
                if (if_stmt.cond->kind() == ExprKind::IntLit) {
                    const auto v =
                        static_cast<IntLitExpr &>(*if_stmt.cond).value;
                    StmtPtr taken = v ? std::move(if_stmt.thenStmt)
                                      : std::move(if_stmt.elseStmt);
                    if (taken) {
                        list[i] = std::move(taken);
                    } else {
                        list.erase(list.begin() +
                                   static_cast<std::ptrdiff_t>(i));
                        continue;
                    }
                }
            } else if (stmt.kind() == StmtKind::While) {
                auto &while_stmt = static_cast<WhileStmt &>(stmt);
                if (while_stmt.cond->kind() == ExprKind::IntLit &&
                    static_cast<IntLitExpr &>(*while_stmt.cond)
                            .value == 0) {
                    list.erase(list.begin() +
                               static_cast<std::ptrdiff_t>(i));
                    continue;
                }
            }
            i++;
        }
    });
}

// ===================================================================
// UbGuardFoldPass
// ===================================================================

namespace
{

BinaryOp
flipComparison(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Lt: return BinaryOp::Gt;
      case BinaryOp::Le: return BinaryOp::Ge;
      case BinaryOp::Gt: return BinaryOp::Lt;
      case BinaryOp::Ge: return BinaryOp::Le;
      default: return op;
    }
}

/**
 * Try to rewrite `(a+b) cmp a` (with the sum on the left) into
 * `b cmp 0`; returns the replacement or nullptr.
 */
ExprPtr
foldSumGuard(BinaryExpr &cmp, Expr &sum_side, Expr &other_side)
{
    if (sum_side.kind() != ExprKind::Binary)
        return nullptr;
    auto &sum = static_cast<BinaryExpr &>(sum_side);
    if (sum.op != BinaryOp::Add || sum.widenTo64)
        return nullptr;
    if (!isSignedIntType(sum.type))
        return nullptr; // unsigned wrap is defined; not foldable
    if (!isPureExpr(sum_side) || !isPureExpr(other_side))
        return nullptr;

    const Expr *residual = nullptr;
    if (pureExprEquals(*sum.lhs, other_side))
        residual = sum.rhs.get();
    else if (pureExprEquals(*sum.rhs, other_side))
        residual = sum.lhs.get();
    if (!residual)
        return nullptr;

    // (a+b) < a  ->  b < 0   (and Le/Gt/Ge analogously); valid only
    // if a+b cannot overflow, which the implementation may assume.
    auto zero = makeIntLit(cmp.loc(), 0, residual->type);
    auto replacement = std::make_unique<BinaryExpr>(
        cmp.loc(), cmp.op, residual->clone(), std::move(zero));
    replacement->type = cmp.type;
    return replacement;
}

} // namespace

void
UbGuardFoldPass::run(FunctionDecl &func, const Traits &) const
{
    if (!func.body)
        return;
    walkExprs(*func.body, [](ExprPtr &expr) {
        if (expr->kind() != ExprKind::Binary)
            return;
        auto &bin = static_cast<BinaryExpr &>(*expr);
        if (bin.op != BinaryOp::Lt && bin.op != BinaryOp::Le &&
            bin.op != BinaryOp::Gt && bin.op != BinaryOp::Ge) {
            return;
        }
        if (auto repl = foldSumGuard(bin, *bin.lhs, *bin.rhs)) {
            expr = std::move(repl);
            return;
        }
        // `a cmp (a+b)` is `(a+b) flip(cmp) a`.
        if (bin.rhs->kind() == ExprKind::Binary) {
            auto flipped = std::make_unique<BinaryExpr>(
                bin.loc(), flipComparison(bin.op), bin.rhs->clone(),
                bin.lhs->clone());
            flipped->type = bin.type;
            if (auto repl = foldSumGuard(*flipped, *flipped->lhs,
                                         *flipped->rhs)) {
                expr = std::move(repl);
            }
        }
    });
}

// ===================================================================
// AlwaysTrueIncCmpPass
// ===================================================================

void
AlwaysTrueIncCmpPass::run(FunctionDecl &func, const Traits &) const
{
    if (!func.body)
        return;

    // Matches `x + c` / `x - c` with a positive literal c.
    auto match_offset = [](Expr &expr, const Expr *&base,
                           bool &added) -> bool {
        if (expr.kind() != ExprKind::Binary)
            return false;
        auto &bin = static_cast<BinaryExpr &>(expr);
        if (bin.op != BinaryOp::Add && bin.op != BinaryOp::Sub)
            return false;
        if (!isSignedIntType(bin.type) || bin.widenTo64)
            return false;
        if (bin.rhs->kind() != ExprKind::IntLit)
            return false;
        if (static_cast<IntLitExpr &>(*bin.rhs).value <= 0)
            return false;
        if (!isPureExpr(*bin.lhs))
            return false;
        base = bin.lhs.get();
        added = bin.op == BinaryOp::Add;
        return true;
    };

    walkExprs(*func.body, [&](ExprPtr &expr) {
        if (expr->kind() != ExprKind::Binary)
            return;
        auto &bin = static_cast<BinaryExpr &>(*expr);
        const Expr *base = nullptr;
        bool added = false;
        bool always_true = false;

        // (x+c) > x, (x+c) >= x, x < (x+c), x <= (x+c) -> 1
        // (x-c) < x, (x-c) <= x, x > (x-c), x >= (x-c) -> 1
        if ((bin.op == BinaryOp::Gt || bin.op == BinaryOp::Ge) &&
            match_offset(*bin.lhs, base, added) && added &&
            pureExprEquals(*base, *bin.rhs)) {
            always_true = true;
        } else if ((bin.op == BinaryOp::Lt || bin.op == BinaryOp::Le) &&
                   match_offset(*bin.rhs, base, added) && added &&
                   pureExprEquals(*base, *bin.lhs)) {
            always_true = true;
        } else if ((bin.op == BinaryOp::Lt || bin.op == BinaryOp::Le) &&
                   match_offset(*bin.lhs, base, added) && !added &&
                   pureExprEquals(*base, *bin.rhs)) {
            always_true = true;
        } else if ((bin.op == BinaryOp::Gt || bin.op == BinaryOp::Ge) &&
                   match_offset(*bin.rhs, base, added) && !added &&
                   pureExprEquals(*base, *bin.lhs)) {
            always_true = true;
        }

        if (always_true)
            expr = makeIntLit(bin.loc(), 1, bin.type);
    });
}

// ===================================================================
// WidenMulPass
// ===================================================================

namespace
{

/** Recursively mark signed-int Add/Sub/Mul chains for 64-bit eval. */
void
markWiden(Expr &expr)
{
    if (expr.kind() != ExprKind::Binary)
        return;
    auto &bin = static_cast<BinaryExpr &>(expr);
    if (!isSignedInt32(bin.type))
        return;
    switch (bin.op) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Mul:
        bin.widenTo64 = true;
        markWiden(*bin.lhs);
        markWiden(*bin.rhs);
        break;
      default:
        break;
    }
}

bool
is64BitInt(const Type *type)
{
    return type && (type->kind() == TypeKind::Long ||
                    type->kind() == TypeKind::ULong);
}

} // namespace

void
WidenMulPass::run(FunctionDecl &func, const Traits &) const
{
    if (!func.body)
        return;

    // 64-bit contexts whose operand is 32-bit signed arithmetic: the
    // implementation may perform that arithmetic directly in 64 bits
    // (signed overflow would be UB, so the wrapped 32-bit result is
    // not owed to anyone).
    walkExprs(*func.body, [](ExprPtr &expr) {
        switch (expr->kind()) {
          case ExprKind::Binary: {
            auto &bin = static_cast<BinaryExpr &>(*expr);
            if (is64BitInt(bin.type) && !isComparison(bin.op)) {
                markWiden(*bin.lhs);
                markWiden(*bin.rhs);
            }
            return;
          }
          case ExprKind::Assign: {
            auto &assign = static_cast<AssignExpr &>(*expr);
            if (is64BitInt(assign.target->type))
                markWiden(*assign.value);
            return;
          }
          case ExprKind::Cast: {
            auto &cast = static_cast<CastExpr &>(*expr);
            if (is64BitInt(cast.target))
                markWiden(*cast.operand);
            return;
          }
          default:
            return;
        }
    });

    // Declarations `long x = <int arithmetic>;`.
    walkStmtLists(*func.body, [](std::vector<StmtPtr> &list) {
        for (auto &stmt : list) {
            if (stmt->kind() != StmtKind::VarDecl)
                continue;
            auto &decl = static_cast<VarDeclStmt &>(*stmt);
            if (decl.init && is64BitInt(decl.declType))
                markWiden(*decl.init);
        }
    });
}

// ===================================================================
// DeadStoreElimPass
// ===================================================================

void
DeadStoreElimPass::run(FunctionDecl &func, const Traits &) const
{
    if (!func.body)
        return;

    const std::size_t num_locals = func.locals.size();
    std::vector<int> occurrences(num_locals, 0);
    std::vector<int> plain_targets(num_locals, 0);
    std::vector<bool> escaped(num_locals, false);

    walkExprs(*func.body, [&](ExprPtr &expr) {
        switch (expr->kind()) {
          case ExprKind::VarRef: {
            auto &ref = static_cast<VarRefExpr &>(*expr);
            if (!ref.isGlobal && ref.id >= 0 &&
                static_cast<std::size_t>(ref.id) < num_locals) {
                occurrences[static_cast<std::size_t>(ref.id)]++;
            }
            return;
          }
          case ExprKind::Assign: {
            auto &assign = static_cast<AssignExpr &>(*expr);
            if (!assign.compoundOp &&
                assign.target->kind() == ExprKind::VarRef) {
                auto &ref = static_cast<VarRefExpr &>(*assign.target);
                if (!ref.isGlobal && ref.id >= 0 &&
                    static_cast<std::size_t>(ref.id) < num_locals) {
                    plain_targets[static_cast<std::size_t>(ref.id)]++;
                }
            }
            return;
          }
          case ExprKind::Unary: {
            auto &un = static_cast<UnaryExpr &>(*expr);
            if (un.op == UnaryOp::AddrOf &&
                un.operand->kind() == ExprKind::VarRef) {
                auto &ref = static_cast<VarRefExpr &>(*un.operand);
                if (!ref.isGlobal && ref.id >= 0 &&
                    static_cast<std::size_t>(ref.id) < num_locals) {
                    escaped[static_cast<std::size_t>(ref.id)] = true;
                }
            }
            return;
          }
          default:
            return;
        }
    });

    auto is_dead = [&](int id) {
        if (id < 0 || static_cast<std::size_t>(id) >= num_locals)
            return false;
        const auto i = static_cast<std::size_t>(id);
        if (func.locals[i].isParam || escaped[i])
            return false;
        return occurrences[i] - plain_targets[i] <= 0;
    };

    walkStmtLists(*func.body, [&](std::vector<StmtPtr> &list) {
        for (std::size_t i = 0; i < list.size();) {
            Stmt &stmt = *list[i];
            bool erase = false;
            if (stmt.kind() == StmtKind::VarDecl) {
                auto &decl = static_cast<VarDeclStmt &>(stmt);
                if (decl.init && is_dead(decl.localId) &&
                    isPureExpr(*decl.init)) {
                    // The local stays in the frame (its slot ordering
                    // is a layout trait); only the store disappears.
                    decl.init.reset();
                }
            } else if (stmt.kind() == StmtKind::ExprStmt) {
                auto &es = static_cast<ExprStmt &>(stmt);
                if (isPureExpr(*es.expr)) {
                    // An unused pure computation; this includes
                    // `a / b;`, which removes a potential trap — the
                    // implementation may assume division never traps.
                    erase = true;
                } else if (es.expr->kind() == ExprKind::Assign) {
                    auto &assign = static_cast<AssignExpr &>(*es.expr);
                    if (!assign.compoundOp &&
                        assign.target->kind() == ExprKind::VarRef &&
                        isPureExpr(*assign.value)) {
                        auto &ref =
                            static_cast<VarRefExpr &>(*assign.target);
                        if (!ref.isGlobal && is_dead(ref.id))
                            erase = true;
                    }
                }
            }
            if (erase) {
                list.erase(list.begin() +
                           static_cast<std::ptrdiff_t>(i));
            } else {
                i++;
            }
        }
    });
}

// ===================================================================
// NullDerefExploitPass
// ===================================================================

namespace
{

enum class NullState
{
    Unknown,
    Null,
};

using NullFacts = std::map<int, NullState>;

bool
isNullLiteral(const Expr &expr)
{
    if (expr.kind() == ExprKind::IntLit)
        return static_cast<const IntLitExpr &>(expr).value == 0;
    if (expr.kind() == ExprKind::Cast) {
        return isNullLiteral(
            *static_cast<const CastExpr &>(expr).operand);
    }
    return false;
}

/** Collect local ids assigned anywhere in the subtree. */
void
collectAssigned(Stmt &stmt, std::vector<int> &out)
{
    walkExprs(stmt, [&](ExprPtr &expr) {
        if (expr->kind() != ExprKind::Assign)
            return;
        auto &assign = static_cast<AssignExpr &>(*expr);
        if (assign.target->kind() == ExprKind::VarRef) {
            auto &ref = static_cast<VarRefExpr &>(*assign.target);
            if (!ref.isGlobal)
                out.push_back(ref.id);
        }
    });
}

/** Is this expression a deref of a known-null local? */
bool
isNullDeref(const Expr &expr, const NullFacts &facts)
{
    auto var_is_null = [&](const Expr &e) {
        if (e.kind() != ExprKind::VarRef)
            return false;
        const auto &ref = static_cast<const VarRefExpr &>(e);
        if (ref.isGlobal)
            return false;
        auto it = facts.find(ref.id);
        return it != facts.end() && it->second == NullState::Null;
    };
    switch (expr.kind()) {
      case ExprKind::Unary: {
        const auto &un = static_cast<const UnaryExpr &>(expr);
        return un.op == UnaryOp::Deref && var_is_null(*un.operand);
      }
      case ExprKind::Index:
        return var_is_null(
            *static_cast<const IndexExpr &>(expr).base);
      case ExprKind::Member: {
        const auto &member = static_cast<const MemberExpr &>(expr);
        return member.isArrow && var_is_null(*member.base);
      }
      default:
        return false;
    }
}

/** Test an if-condition for `p == 0` / `!p` style null checks. */
const VarRefExpr *
condTestsNull(const Expr &cond, bool &null_in_then)
{
    if (cond.kind() == ExprKind::Unary) {
        const auto &un = static_cast<const UnaryExpr &>(cond);
        if (un.op == UnaryOp::LogNot &&
            un.operand->kind() == ExprKind::VarRef &&
            un.operand->type && un.operand->type->isPointer()) {
            null_in_then = true;
            return static_cast<const VarRefExpr *>(un.operand.get());
        }
        return nullptr;
    }
    if (cond.kind() != ExprKind::Binary)
        return nullptr;
    const auto &bin = static_cast<const BinaryExpr &>(cond);
    if (bin.op != BinaryOp::Eq && bin.op != BinaryOp::Ne)
        return nullptr;
    const Expr *var = nullptr;
    if (bin.lhs->kind() == ExprKind::VarRef && isNullLiteral(*bin.rhs))
        var = bin.lhs.get();
    else if (bin.rhs->kind() == ExprKind::VarRef &&
             isNullLiteral(*bin.lhs))
        var = bin.rhs.get();
    if (!var || !var->type || !var->type->isPointer())
        return nullptr;
    null_in_then = bin.op == BinaryOp::Eq;
    return static_cast<const VarRefExpr *>(var);
}

class NullExploiter
{
  public:
    void
    processList(std::vector<StmtPtr> &list, NullFacts &facts)
    {
        for (std::size_t i = 0; i < list.size();) {
            if (processStmt(list[i], facts)) {
                list.erase(list.begin() +
                           static_cast<std::ptrdiff_t>(i));
            } else {
                i++;
            }
        }
    }

  private:
    /** Returns true when the statement must be deleted. */
    bool
    processStmt(StmtPtr &stmt, NullFacts &facts)
    {
        switch (stmt->kind()) {
          case StmtKind::VarDecl: {
            auto &decl = static_cast<VarDeclStmt &>(*stmt);
            if (decl.init)
                rewriteLoads(decl.init, facts);
            if (decl.declType->isPointer()) {
                facts[decl.localId] = decl.init &&
                                              isNullLiteral(*decl.init)
                                          ? NullState::Null
                                          : NullState::Unknown;
            }
            return false;
          }
          case StmtKind::ExprStmt: {
            auto &es = static_cast<ExprStmt &>(*stmt);
            // A store through a null pointer is unreachable: the
            // whole statement is elided.
            if (es.expr->kind() == ExprKind::Assign) {
                auto &assign = static_cast<AssignExpr &>(*es.expr);
                if (isNullDeref(*assign.target, facts) &&
                    isPureExpr(*assign.value)) {
                    return true;
                }
            }
            rewriteLoads(es.expr, facts);
            updateFacts(*es.expr, facts);
            return false;
          }
          case StmtKind::If: {
            auto &if_stmt = static_cast<IfStmt &>(*stmt);
            rewriteLoads(if_stmt.cond, facts);
            bool null_in_then = false;
            const VarRefExpr *tested =
                condTestsNull(*if_stmt.cond, null_in_then);

            NullFacts then_facts = facts;
            NullFacts else_facts = facts;
            if (tested) {
                if (null_in_then) {
                    then_facts[tested->id] = NullState::Null;
                    else_facts.erase(tested->id);
                } else {
                    then_facts.erase(tested->id);
                    else_facts[tested->id] = NullState::Null;
                }
            }
            processBranch(if_stmt.thenStmt, then_facts);
            if (if_stmt.elseStmt)
                processBranch(if_stmt.elseStmt, else_facts);

            std::vector<int> assigned;
            collectAssigned(*stmt, assigned);
            for (int id : assigned)
                facts.erase(id);
            return false;
          }
          case StmtKind::While: {
            auto &while_stmt = static_cast<WhileStmt &>(*stmt);
            NullFacts body_facts; // conservative: no facts in loops
            processBranch(while_stmt.body, body_facts);
            std::vector<int> assigned;
            collectAssigned(*stmt, assigned);
            for (int id : assigned)
                facts.erase(id);
            return false;
          }
          case StmtKind::For: {
            auto &for_stmt = static_cast<ForStmt &>(*stmt);
            NullFacts body_facts;
            processBranch(for_stmt.body, body_facts);
            std::vector<int> assigned;
            collectAssigned(*stmt, assigned);
            for (int id : assigned)
                facts.erase(id);
            return false;
          }
          case StmtKind::Block: {
            auto &block = static_cast<BlockStmt &>(*stmt);
            processList(block.body, facts);
            return false;
          }
          case StmtKind::Return: {
            auto &ret = static_cast<ReturnStmt &>(*stmt);
            if (ret.value)
                rewriteLoads(ret.value, facts);
            return false;
          }
          default:
            return false;
        }
    }

    void
    processBranch(StmtPtr &stmt, NullFacts &facts)
    {
        if (stmt->kind() == StmtKind::Block) {
            processList(static_cast<BlockStmt &>(*stmt).body, facts);
        } else {
            if (processStmt(stmt, facts)) {
                // Replace a deleted single-statement body with an
                // empty block.
                stmt = std::make_unique<BlockStmt>(stmt->loc());
            }
        }
    }

    /** Replace loads through known-null pointers with undef (0). */
    void
    rewriteLoads(ExprPtr &root, const NullFacts &facts)
    {
        walkExprTree(root, [&](ExprPtr &expr) {
            // Never rewrite the *target* of an assignment here; store
            // elision is handled at statement level.
            if (isNullDeref(*expr, facts) && expr->type &&
                !expr->type->isStruct()) {
                if (expr->type->isDouble()) {
                    auto lit = std::make_unique<FloatLitExpr>(
                        expr->loc(), 0.0);
                    lit->type = expr->type;
                    expr = std::move(lit);
                } else {
                    expr = makeIntLit(expr->loc(), 0, expr->type);
                }
            }
        });
    }

    /** Update null facts from assignments in an expression. */
    void
    updateFacts(Expr &expr, NullFacts &facts)
    {
        if (expr.kind() != ExprKind::Assign)
            return;
        auto &assign = static_cast<AssignExpr &>(expr);
        if (assign.target->kind() != ExprKind::VarRef)
            return;
        auto &ref = static_cast<VarRefExpr &>(*assign.target);
        if (ref.isGlobal || !ref.type || !ref.type->isPointer())
            return;
        if (!assign.compoundOp && isNullLiteral(*assign.value))
            facts[ref.id] = NullState::Null;
        else
            facts.erase(ref.id);
    }
};

} // namespace

void
NullDerefExploitPass::run(FunctionDecl &func, const Traits &) const
{
    if (!func.body)
        return;
    NullExploiter exploiter;
    NullFacts facts;
    exploiter.processList(func.body->body, facts);
}

// ===================================================================
// SeededMiscompilePass
// ===================================================================

void
SeededMiscompilePass::run(FunctionDecl &func,
                          const Traits &traits) const
{
    if (!func.body)
        return;
    walkExprs(*func.body, [&](ExprPtr &expr) {
        if (expr->kind() != ExprKind::Binary)
            return;
        auto &bin = static_cast<BinaryExpr &>(*expr);

        // Defect 1 (clang-sim O2/O3): strength-reduce `x % 8` to
        // `x & 7` for *signed* x, forgetting the negative fixup.
        if (traits.bugRemPow2 && bin.op == BinaryOp::Rem &&
            isSignedInt32(bin.type) &&
            bin.rhs->kind() == ExprKind::IntLit &&
            static_cast<IntLitExpr &>(*bin.rhs).value == 8) {
            auto mask = std::make_unique<BinaryExpr>(
                bin.loc(), BinaryOp::BitAnd, std::move(bin.lhs),
                makeIntLit(bin.loc(), 7, bin.type));
            mask->type = bin.type;
            expr = std::move(mask);
            return;
        }

        // Defect 2 (gcc-sim Os): strength-reduce `x / 32` to
        // `x >> 5` for signed x, forgetting round-toward-zero.
        if (traits.bugDiv32Shift && bin.op == BinaryOp::Div &&
            isSignedInt32(bin.type) &&
            bin.rhs->kind() == ExprKind::IntLit &&
            static_cast<IntLitExpr &>(*bin.rhs).value == 32) {
            auto shift = std::make_unique<BinaryExpr>(
                bin.loc(), BinaryOp::Shr, std::move(bin.lhs),
                makeIntLit(bin.loc(), 5, bin.type));
            shift->type = bin.type;
            expr = std::move(shift);
            return;
        }

        // Defect 3 (gcc-sim O3): "empty range" unswitching with an
        // off-by-one: folds `x < C && x > C-2` to 0, although x can
        // equal C-1.
        if (traits.bugEmptyRange && bin.op == BinaryOp::LogAnd &&
            bin.lhs->kind() == ExprKind::Binary &&
            bin.rhs->kind() == ExprKind::Binary) {
            auto &lt = static_cast<BinaryExpr &>(*bin.lhs);
            auto &gt = static_cast<BinaryExpr &>(*bin.rhs);
            if (lt.op == BinaryOp::Lt && gt.op == BinaryOp::Gt &&
                lt.rhs->kind() == ExprKind::IntLit &&
                gt.rhs->kind() == ExprKind::IntLit &&
                isPureExpr(*lt.lhs) &&
                pureExprEquals(*lt.lhs, *gt.lhs)) {
                const auto c1 =
                    static_cast<IntLitExpr &>(*lt.rhs).value;
                const auto c2 =
                    static_cast<IntLitExpr &>(*gt.rhs).value;
                if (c2 == c1 - 2)
                    expr = makeIntLit(bin.loc(), 0, bin.type);
            }
        }
    });
}

// ===================================================================
// Pass registry
// ===================================================================

const std::vector<std::unique_ptr<Pass>> &
standardPasses()
{
    static const auto passes = [] {
        std::vector<std::unique_ptr<Pass>> p;
        p.push_back(std::make_unique<ConstFoldPass>());
        p.push_back(std::make_unique<AlwaysTrueIncCmpPass>());
        p.push_back(std::make_unique<UbGuardFoldPass>());
        p.push_back(std::make_unique<WidenMulPass>());
        p.push_back(std::make_unique<NullDerefExploitPass>());
        p.push_back(std::make_unique<DeadStoreElimPass>());
        p.push_back(std::make_unique<SeededMiscompilePass>());
        return p;
    }();
    return passes;
}

} // namespace compdiff::compiler
