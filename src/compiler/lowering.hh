#pragma once

/**
 * @file
 * AST-to-bytecode lowering (the simulated backend).
 *
 * Lowering is where the per-implementation *codegen* choices take
 * effect: call-argument evaluation order, stack-frame and globals
 * layout (with O0 padding or ASan redzones), shift-count
 * normalization policy, the cur_line() interpretation, and — for
 * sanitizer builds — the inserted UBSan checks.
 */

#include <memory>
#include <vector>

#include "bytecode/module.hh"
#include "compiler/config.hh"
#include "minic/ast.hh"

namespace compdiff::compiler
{

/**
 * Lowers a set of (already transformed) functions plus the program's
 * globals into a Module.
 */
class Lowering
{
  public:
    /**
     * @param program   The analyzed program (for globals and types).
     * @param config    Configuration being compiled for.
     * @param traits    Pre-derived (possibly overridden) traits.
     */
    Lowering(const minic::Program &program,
             const CompilerConfig &config, const Traits &traits);

    /**
     * Produce the module for the given transformed function clones
     * (one per program function, same order).
     */
    bytecode::Module
    lower(const std::vector<std::unique_ptr<minic::FunctionDecl>>
              &funcs);

  private:
    void layoutGlobals(bytecode::Module &module);
    std::uint32_t internRodata(const std::string &bytes);

    const minic::Program &program_;
    CompilerConfig config_;
    Traits traits_;
    std::vector<std::uint8_t> rodata_;
};

} // namespace compdiff::compiler
