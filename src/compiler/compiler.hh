#pragma once

/**
 * @file
 * The compiler driver: one analyzed MiniC program, many binaries.
 *
 * Compiler::compile() is the analog of invoking `CC=<vendor>
 * CFLAGS=-<level>` on the target source (paper Section 3.2,
 * "Instrumentation on B_i"): it clones the analyzed AST, runs the
 * configuration's optimization passes, and lowers the result.
 */

#include <memory>
#include <string_view>

#include "bytecode/module.hh"
#include "compiler/config.hh"
#include "minic/ast.hh"

namespace compdiff::compiler
{

/**
 * Compiles one analyzed Program under any number of configurations.
 * The Program must outlive the Compiler and all produced Modules
 * (interned types are shared).
 */
class Compiler
{
  public:
    explicit Compiler(const minic::Program &program)
        : program_(program)
    {}

    /** Compile under one configuration. */
    bytecode::Module compile(const CompilerConfig &config) const;

    /**
     * Compile with explicitly overridden traits (ablation studies:
     * e.g. the same configuration with one UB-exploiting pass
     * disabled). Note that the VM derives *runtime* traits from the
     * config, so only compile-time knobs are meaningfully
     * overridable here.
     */
    bytecode::Module compileWithTraits(const CompilerConfig &config,
                                       const Traits &traits) const;

    const minic::Program &program() const { return program_; }

  private:
    const minic::Program &program_;
};

/**
 * Parse + analyze + compile in one step (convenience for tests).
 *
 * @throws support::CompileError on frontend errors.
 */
bytecode::Module compileSource(std::string_view source,
                               const CompilerConfig &config);

} // namespace compdiff::compiler
