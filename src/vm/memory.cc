#include "vm/memory.hh"

#include <algorithm>
#include <cstring>

namespace compdiff::vm
{

using compiler::Traits;

AddressSpace::AddressSpace(const Traits &traits, bool asan, bool msan,
                           std::uint64_t stack_size,
                           std::uint64_t heap_size)
    : asan_(asan), msan_(msan), stackFill_(traits.stackFill),
      heapFill_(traits.heapFill)
{
    rodata_.kind = SegmentKind::Rodata;
    rodata_.base = traits.rodataBase;
    rodata_.readOnly = true;

    globals_.kind = SegmentKind::Globals;
    globals_.base = traits.globalsBase;

    stack_.kind = SegmentKind::Stack;
    stack_.base = traits.stackBase - stack_size;
    stack_.data.assign(stack_size, traits.stackFill);

    heap_.kind = SegmentKind::Heap;
    heap_.base = traits.heapBase;
    heap_.data.assign(heap_size, traits.heapFill);

    if (asan_) {
        // Stack and heap become valid piecewise (frames / chunks).
        stack_.valid.assign(stack_.data.size(), 0);
        heap_.valid.assign(heap_.data.size(), 0);
    }
    if (msan_) {
        // Stack is poisoned per frame slot; heap per allocation.
        stack_.poison.assign(stack_.data.size(), 0);
        heap_.poison.assign(heap_.data.size(), 0);
    }
}

void
AddressSpace::setRodata(const std::vector<std::uint8_t> &image)
{
    rodata_.data = image;
    if (rodata_.data.empty())
        rodata_.data.push_back(0); // keep the segment mapped
}

void
AddressSpace::setGlobalsSize(std::uint64_t size)
{
    globals_.data.assign(std::max<std::uint64_t>(size, 16), 0);
    if (asan_)
        globals_.valid.assign(globals_.data.size(), 0);
    if (msan_)
        globals_.poison.assign(globals_.data.size(), 0);
    globals_.dirtyLo = ~std::uint64_t{0};
    globals_.dirtyHi = 0;
}

void
AddressSpace::initGlobals(const std::vector<std::uint8_t> &image)
{
    if (image.empty())
        return;
    std::memcpy(globals_.data.data(), image.data(), image.size());
    globals_.markDirty(0, image.size());
}

void
AddressSpace::resetSegment(Segment &seg, std::uint8_t fill)
{
    if (seg.dirtyLo >= seg.dirtyHi)
        return;
    const std::uint64_t lo = seg.dirtyLo;
    const std::uint64_t hi =
        std::min<std::uint64_t>(seg.dirtyHi, seg.data.size());
    if (lo < hi) {
        const auto span = static_cast<std::ptrdiff_t>(hi - lo);
        const auto off = static_cast<std::ptrdiff_t>(lo);
        std::fill_n(seg.data.begin() + off, span, fill);
        if (!seg.valid.empty())
            std::fill_n(seg.valid.begin() + off, span, 0);
        if (!seg.poison.empty())
            std::fill_n(seg.poison.begin() + off, span, 0);
    }
    seg.dirtyLo = ~std::uint64_t{0};
    seg.dirtyHi = 0;
}

void
AddressSpace::resetForRun()
{
    resetSegment(globals_, 0);
    resetSegment(stack_, stackFill_);
    resetSegment(heap_, heapFill_);
}

Segment *
AddressSpace::find(std::uint64_t addr, std::uint64_t size)
{
    for (Segment *seg : {&rodata_, &globals_, &stack_, &heap_})
        if (seg->contains(addr, size))
            return seg;
    return nullptr;
}

Access
AddressSpace::read(std::uint64_t addr, std::uint64_t size,
                   std::uint64_t &value, bool &poisoned)
{
    Segment *seg = find(addr, size);
    if (!seg)
        return Access::Unmapped;
    const std::uint64_t off = addr - seg->base;

    if (asan_ && !seg->valid.empty()) {
        for (std::uint64_t i = 0; i < size; i++)
            if (!seg->valid[off + i])
                return Access::AsanInvalid;
    }

    poisoned = false;
    if (msan_ && !seg->poison.empty()) {
        for (std::uint64_t i = 0; i < size; i++)
            if (seg->poison[off + i])
                poisoned = true;
    }

    std::uint64_t v = 0;
    std::memcpy(&v, seg->data.data() + off,
                static_cast<std::size_t>(size));
    value = v;
    return Access::Ok;
}

Access
AddressSpace::write(std::uint64_t addr, std::uint64_t size,
                    std::uint64_t value, bool poisoned)
{
    Segment *seg = find(addr, size);
    if (!seg)
        return Access::Unmapped;
    if (seg->readOnly)
        return Access::ReadOnlyWrite;
    const std::uint64_t off = addr - seg->base;

    if (asan_ && !seg->valid.empty()) {
        for (std::uint64_t i = 0; i < size; i++)
            if (!seg->valid[off + i])
                return Access::AsanInvalid;
    }

    std::memcpy(seg->data.data() + off, &value,
                static_cast<std::size_t>(size));
    seg->markDirty(off, size);
    if (msan_ && !seg->poison.empty()) {
        for (std::uint64_t i = 0; i < size; i++)
            seg->poison[off + i] = poisoned ? 1 : 0;
    }
    return Access::Ok;
}

bool
AddressSpace::readByteRaw(std::uint64_t addr, std::uint8_t &byte)
{
    Segment *seg = find(addr, 1);
    if (!seg)
        return false;
    byte = seg->data[addr - seg->base];
    return true;
}

void
AddressSpace::setValid(std::uint64_t addr, std::uint64_t size,
                       bool valid)
{
    if (!asan_)
        return;
    Segment *seg = find(addr, size);
    if (!seg || seg->valid.empty())
        return;
    const std::uint64_t off = addr - seg->base;
    std::fill_n(seg->valid.begin() +
                    static_cast<std::ptrdiff_t>(off),
                size, valid ? 1 : 0);
    seg->markDirty(off, size);
}

void
AddressSpace::setPoison(std::uint64_t addr, std::uint64_t size,
                        bool poisoned)
{
    if (!msan_)
        return;
    Segment *seg = find(addr, size);
    if (!seg || seg->poison.empty())
        return;
    const std::uint64_t off = addr - seg->base;
    std::fill_n(seg->poison.begin() +
                    static_cast<std::ptrdiff_t>(off),
                size, poisoned ? 1 : 0);
    seg->markDirty(off, size);
}

// ===================================================================
// Heap
// ===================================================================

Heap::Heap(AddressSpace &space, const Traits &traits, bool asan)
    : space_(space), traits_(traits), asan_(asan)
{}

std::uint64_t
Heap::allocate(std::uint64_t size)
{
    if (size == 0)
        size = 1;
    const std::uint64_t rounded = (size + 15) / 16 * 16;
    Segment &seg = space_.heap();

    // Reuse a freed chunk when the policy allows. First fit; reuse
    // order (LIFO vs FIFO) is a configuration trait — it decides which
    // stale object a use-after-free reads.
    for (std::size_t i = 0; i < freelist_.size(); i++) {
        const std::size_t idx =
            traits_.freelistLifo ? freelist_.size() - 1 - i : i;
        const std::uint64_t addr = freelist_[idx];
        auto it = chunks_.find(addr);
        if (it == chunks_.end() || it->second.size < rounded)
            continue;
        freelist_.erase(freelist_.begin() +
                        static_cast<std::ptrdiff_t>(idx));
        it->second.live = true;
        // Contents are whatever the previous owner (or the free
        // poisoner) left behind — malloc does not clear memory.
        space_.setValid(addr, size, true);
        space_.setPoison(addr, it->second.size, true);
        return addr;
    }

    const std::uint64_t redzone = asan_ ? 16 : 0;
    std::uint64_t addr = seg.base + brk_ + redzone;
    if (addr + rounded + redzone > seg.base + seg.data.size())
        return 0; // OOM: malloc returns NULL
    brk_ += rounded + 2 * redzone;
    chunks_[addr] = {rounded, true};
    space_.setValid(addr, size, true);
    space_.setPoison(addr, rounded, true);
    return addr;
}

FreeOutcome
Heap::release(std::uint64_t addr)
{
    if (addr == 0)
        return FreeOutcome::NullNoop;

    auto it = chunks_.find(addr);
    if (it == chunks_.end()) {
        // Not a chunk start: stack/global pointer, interior pointer...
        if (asan_)
            return FreeOutcome::AsanInvalidFree;
        return traits_.detectInvalidFree
                   ? FreeOutcome::InvalidFreeAbort
                   : FreeOutcome::InvalidFreeIgnored;
    }

    Chunk &chunk = it->second;
    if (!chunk.live) {
        // Double free.
        if (asan_)
            return FreeOutcome::AsanDoubleFree;
        if (traits_.detectDoubleFreeTop && !freelist_.empty() &&
            freelist_.back() == addr) {
            // glibc-tcache-style detection: only the most recently
            // freed chunk is recognized.
            return FreeOutcome::DoubleFreeAbort;
        }
        // Silent corruption: the chunk is listed twice and will be
        // handed out to two owners.
        freelist_.push_back(addr);
        return FreeOutcome::DoubleFreeSilent;
    }

    chunk.live = false;
    if (traits_.freePoison) {
        Segment &seg = space_.heap();
        std::fill_n(seg.data.begin() +
                        static_cast<std::ptrdiff_t>(addr - seg.base),
                    chunk.size, traits_.freePoisonByte);
        seg.markDirty(addr - seg.base, chunk.size);
    }
    if (asan_) {
        space_.setValid(addr, chunk.size, false);
        quarantine_.push_back(addr);
        if (quarantine_.size() > kQuarantineDepth) {
            freelist_.push_back(quarantine_.front());
            quarantine_.pop_front();
        }
    } else {
        freelist_.push_back(addr);
    }
    return FreeOutcome::Ok;
}

bool
Heap::isLiveChunk(std::uint64_t addr) const
{
    auto it = chunks_.find(addr);
    return it != chunks_.end() && it->second.live;
}

std::uint64_t
Heap::chunkSize(std::uint64_t addr) const
{
    auto it = chunks_.find(addr);
    return it == chunks_.end() ? 0 : it->second.size;
}

void
Heap::reset()
{
    brk_ = 0;
    chunks_.clear();
    freelist_.clear();
    quarantine_.clear();
}

} // namespace compdiff::vm
