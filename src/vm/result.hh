#pragma once

/**
 * @file
 * Execution outcomes.
 *
 * An ExecutionResult captures everything the CompDiff oracle (and the
 * fuzzer) observes about one run of one binary on one input: the
 * combined stdout/stderr stream, the exit classification, sanitizer
 * reports (out-of-band, as a sanitizer's stderr would be), fired
 * ground-truth probes, and the instruction count (our time axis).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace compdiff::vm
{

/** How an execution ended. */
enum class Termination
{
    Exit,            ///< main returned or exit() was called
    Trap,            ///< hardware-style fault (SIGSEGV/SIGFPE analog)
    RuntimeAbort,    ///< abort() or allocator abort ("free(): ...")
    SanitizerAbort,  ///< a sanitizer reported and stopped the program
    BudgetExhausted, ///< instruction budget exceeded (timeout analog)
    StackOverflow,   ///< call stack exhausted
};

/** Fault kind for Termination::Trap. */
enum class TrapKind
{
    None,
    Segv, ///< unmapped or read-only memory access
    Fpe,  ///< integer division fault
    /**
     * Operand-stack underflow/overflow on a malformed module. Lowered
     * code is always stack-balanced, so this fires only for
     * hand-assembled bytecode; the interpreter traps deterministically
     * instead of indexing an empty std::vector (UB).
     */
    OperandStack,
};

/** One sanitizer report (analogous to a sanitizer stderr record). */
struct SanReport
{
    enum class Tool
    {
        ASan,
        UBSan,
        MSan,
    };

    Tool tool = Tool::ASan;
    std::string kind; ///< e.g. "heap-buffer-overflow"
    std::uint32_t line = 0;

    std::string str() const;
};

/** Result of one VM execution. */
struct ExecutionResult
{
    std::string output;  ///< combined stdout + stderr
    int exitCode = 0;
    Termination termination = Termination::Exit;
    TrapKind trap = TrapKind::None;
    std::vector<SanReport> sanReports;
    std::vector<int> probes; ///< fired ground-truth probe ids
    std::uint64_t instructions = 0;

    bool crashed() const
    {
        return termination == Termination::Trap ||
               termination == Termination::RuntimeAbort ||
               termination == Termination::StackOverflow;
    }

    bool timedOut() const
    {
        return termination == Termination::BudgetExhausted;
    }

    bool sanitizerFired() const { return !sanReports.empty(); }

    /**
     * Coarse exit classification used in output comparison:
     * "exit:<code>", "crash:segv", "crash:fpe", "crash:abort",
     * "crash:stack", "san", or "timeout".
     */
    std::string exitClass() const;

    /**
     * MurmurHash3 checksum over (output, exitClass) — the per-binary
     * quantity CompDiff compares across implementations (paper §3.2,
     * "Output examination").
     */
    std::uint64_t outputHash() const;
};

} // namespace compdiff::vm
