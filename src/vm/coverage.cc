#include "vm/coverage.hh"

#include <cstring>

#include "support/hash.hh"

namespace compdiff::vm
{

void
CoverageMap::reset()
{
    map_.fill(0);
    prevLoc_ = 0;
}

std::size_t
CoverageMap::countBits() const
{
    std::size_t count = 0;
    for (const auto cell : map_)
        count += cell != 0;
    return count;
}

std::uint8_t
coverageBucket(std::uint8_t hits)
{
    if (hits == 0)
        return 0;
    if (hits == 1)
        return 1;
    if (hits == 2)
        return 2;
    if (hits == 3)
        return 4;
    if (hits <= 7)
        return 8;
    if (hits <= 15)
        return 16;
    if (hits <= 31)
        return 32;
    if (hits <= 127)
        return 64;
    return 128;
}

std::uint64_t
CoverageMap::pathHash() const
{
    std::array<std::uint8_t, kCoverageMapSize> buckets;
    for (std::size_t i = 0; i < kCoverageMapSize; i++)
        buckets[i] = coverageBucket(map_[i]);
    return support::murmurHash64(buckets.data(), buckets.size());
}

VirginMap::VirginMap()
{
    virgin_.fill(0);
}

void
VirginMap::merge(const VirginMap &other)
{
    edges_ = 0;
    for (std::size_t i = 0; i < kCoverageMapSize; i++) {
        virgin_[i] |= other.virgin_[i];
        edges_ += virgin_[i] != 0;
    }
}

support::Bytes
VirginMap::snapshotBytes() const
{
    return support::Bytes(virgin_.begin(), virgin_.end());
}

bool
VirginMap::restoreBytes(const support::Bytes &bytes)
{
    if (bytes.size() != kCoverageMapSize)
        return false;
    edges_ = 0;
    for (std::size_t i = 0; i < kCoverageMapSize; i++) {
        virgin_[i] = bytes[i];
        edges_ += virgin_[i] != 0;
    }
    return true;
}

bool
VirginMap::mergeAndCheckNew(const CoverageMap &map)
{
    bool is_new = false;
    for (std::size_t i = 0; i < kCoverageMapSize; i++) {
        const std::uint8_t bucket = coverageBucket(map.map_[i]);
        if (bucket & ~virgin_[i]) {
            if (virgin_[i] == 0)
                edges_++;
            virgin_[i] |= bucket;
            is_new = true;
        }
    }
    return is_new;
}

} // namespace compdiff::vm
