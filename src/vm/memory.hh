#pragma once

/**
 * @file
 * The VM's address space and heap.
 *
 * Memory is modeled as four flat segments — rodata, globals, stack,
 * heap — whose *bases are configuration traits*. That single design
 * decision is what makes several UB classes observable: an
 * out-of-bounds access lands on a different victim per binary, a
 * cross-object pointer comparison orders differently, a pointer
 * subtraction between objects yields a different distance.
 *
 * When the binary was built with ASan, every segment carries a
 * validity shadow (redzones, quarantined chunks); with MSan, a poison
 * shadow tracking uninitialized bytes.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "compiler/config.hh"

namespace compdiff::vm
{

/** Identifies which segment an address belongs to. */
enum class SegmentKind
{
    Rodata,
    Globals,
    Stack,
    Heap,
};

/** One mapped memory segment. */
struct Segment
{
    SegmentKind kind = SegmentKind::Rodata;
    std::uint64_t base = 0;
    bool readOnly = false;
    std::vector<std::uint8_t> data;
    /** ASan addressability shadow (1 = valid); empty when disabled. */
    std::vector<std::uint8_t> valid;
    /** MSan poison shadow (1 = uninitialized); empty when disabled. */
    std::vector<std::uint8_t> poison;

    /**
     * Dirty byte range [dirtyLo, dirtyHi) touched since the last
     * AddressSpace::resetForRun(). Every mutation point (write, shadow
     * updates, free-poisoning) records itself here, so a reset refills
     * only what one run actually touched instead of re-allocating the
     * whole segment — the arena that kills per-run malloc/memset churn.
     */
    std::uint64_t dirtyLo = ~std::uint64_t{0};
    std::uint64_t dirtyHi = 0;

    void
    markDirty(std::uint64_t off, std::uint64_t size)
    {
        if (size == 0)
            return;
        if (off < dirtyLo)
            dirtyLo = off;
        if (off + size > dirtyHi)
            dirtyHi = off + size;
    }

    bool
    contains(std::uint64_t addr, std::uint64_t size) const
    {
        return addr >= base && addr + size <= base + data.size() &&
               addr + size >= addr;
    }
};

/** Outcome of a checked memory access. */
enum class Access
{
    Ok,
    Unmapped,     ///< SIGSEGV analog
    ReadOnlyWrite,///< store to rodata; SIGSEGV analog
    AsanInvalid,  ///< ASan shadow violation (redzone / freed / OOB)
};

/** Outcome of Heap::release(). */
enum class FreeOutcome
{
    Ok,
    NullNoop,
    DoubleFreeAbort,   ///< "free(): double free detected"
    DoubleFreeSilent,  ///< freelist corrupted silently
    InvalidFreeAbort,  ///< "free(): invalid pointer"
    InvalidFreeIgnored,
    AsanDoubleFree,
    AsanInvalidFree,
};

/**
 * The flat address space of one execution.
 */
class AddressSpace
{
  public:
    /**
     * @param traits   Segment bases and fill patterns.
     * @param asan     Allocate validity shadows.
     * @param msan     Allocate poison shadows.
     * @param stack_size / heap_size  Segment sizes in bytes.
     */
    AddressSpace(const compiler::Traits &traits, bool asan, bool msan,
                 std::uint64_t stack_size, std::uint64_t heap_size);

    /** Map the rodata segment from the module image. */
    void setRodata(const std::vector<std::uint8_t> &image);

    /** Map the globals segment (zero-filled; caller writes inits). */
    void setGlobalsSize(std::uint64_t size);

    /**
     * Copy the module's globals image into the (reset) globals
     * segment. `image.size()` must be <= the mapped segment size.
     */
    void initGlobals(const std::vector<std::uint8_t> &image);

    /**
     * Restore every writable segment to its freshly-constructed state
     * by refilling only the dirty ranges: data gets the segment's fill
     * pattern back, shadows are zeroed. With this, one AddressSpace
     * services many runs (see vm::Vm's arena) with per-run cost
     * proportional to bytes touched, not bytes mapped.
     */
    void resetForRun();

    Segment &rodata() { return rodata_; }
    Segment &globals() { return globals_; }
    Segment &stack() { return stack_; }
    Segment &heap() { return heap_; }

    /** Find the segment containing [addr, addr+size); or nullptr. */
    Segment *find(std::uint64_t addr, std::uint64_t size);

    /**
     * Checked read of a little-endian value (size 1/4/8).
     *
     * @param poisoned Set when MSan shadows any byte as uninit.
     */
    Access read(std::uint64_t addr, std::uint64_t size,
                std::uint64_t &value, bool &poisoned);

    /** Checked write; when msan, sets/clears poison shadow. */
    Access write(std::uint64_t addr, std::uint64_t size,
                 std::uint64_t value, bool poisoned);

    /** Raw byte read without ASan checks (for diagnostics). */
    bool readByteRaw(std::uint64_t addr, std::uint8_t &byte);

    bool asanEnabled() const { return asan_; }
    bool msanEnabled() const { return msan_; }

    /** Mark an address range ASan-valid / ASan-invalid. */
    void setValid(std::uint64_t addr, std::uint64_t size, bool valid);

    /** Mark an address range MSan-poisoned / unpoisoned. */
    void setPoison(std::uint64_t addr, std::uint64_t size,
                   bool poisoned);

  private:
    static void resetSegment(Segment &seg, std::uint8_t fill);

    Segment rodata_;
    Segment globals_;
    Segment stack_;
    Segment heap_;
    bool asan_;
    bool msan_;
    std::uint8_t stackFill_;
    std::uint8_t heapFill_;
};

/**
 * The heap allocator, with per-configuration policy: fill pattern of
 * fresh memory, free-poisoning, free-list order (LIFO vs FIFO),
 * glibc-style double-/invalid-free detection, and — under ASan —
 * redzones plus a quarantine that delays reuse.
 */
class Heap
{
  public:
    Heap(AddressSpace &space, const compiler::Traits &traits,
         bool asan);

    /**
     * Allocate `size` bytes (16-byte aligned).
     * @return address, or 0 when the heap is exhausted (like a failed
     *         malloc).
     */
    std::uint64_t allocate(std::uint64_t size);

    /** Free a pointer, applying the configuration's policy. */
    FreeOutcome release(std::uint64_t addr);

    /** Is `addr` the start of a live chunk? */
    bool isLiveChunk(std::uint64_t addr) const;

    /** Size of the chunk starting at addr (0 when unknown). */
    std::uint64_t chunkSize(std::uint64_t addr) const;

    /**
     * Forget all allocator bookkeeping (chunks, freelist, quarantine,
     * brk). Pairs with AddressSpace::resetForRun() to recycle one
     * Heap across runs.
     */
    void reset();

  private:
    struct Chunk
    {
        std::uint64_t size = 0;
        bool live = false;
    };

    AddressSpace &space_;
    const compiler::Traits &traits_;
    bool asan_;
    std::uint64_t brk_ = 0;
    std::map<std::uint64_t, Chunk> chunks_;
    std::deque<std::uint64_t> freelist_;
    std::deque<std::uint64_t> quarantine_;

    static constexpr std::size_t kQuarantineDepth = 64;
};

} // namespace compdiff::vm
