#pragma once

/**
 * @file
 * AFL-style edge-coverage map.
 *
 * The fuzzer-facing binary B_fuzz is instrumented exactly like AFL++
 * instruments its targets: every basic block carries a 16-bit id, and
 * each executed edge (prev-block XOR current-block) increments one
 * byte of a 64 KiB map. Seed novelty is judged with AFL's bucketized
 * comparison against a persistent "virgin" map.
 */

#include <array>
#include <cstdint>

#include "support/bytes.hh"

namespace compdiff::vm
{

/** Size of the coverage bitmap (AFL's default). */
constexpr std::size_t kCoverageMapSize = 1 << 16;

/**
 * One execution's raw hit-count map.
 */
class CoverageMap
{
  public:
    /** Zero the map (call before each execution). */
    void reset();

    /** Record an edge between the previous and current block ids. */
    void
    hitBlock(std::uint16_t block_id)
    {
        map_[(block_id ^ prevLoc_) & (kCoverageMapSize - 1)]++;
        prevLoc_ = static_cast<std::uint16_t>(block_id >> 1);
    }

    /** Number of nonzero map cells (an execution "path size"). */
    std::size_t countBits() const;

    /** 64-bit hash of the bucketized map (path identity). */
    std::uint64_t pathHash() const;

    const std::uint8_t *data() const { return map_.data(); }

  private:
    friend class VirginMap;
    std::array<std::uint8_t, kCoverageMapSize> map_{};
    std::uint16_t prevLoc_ = 0;
};

/**
 * Accumulated coverage across a whole fuzzing campaign, with AFL's
 * bucket classification (1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+).
 */
class VirginMap
{
  public:
    VirginMap();

    /**
     * Merge one execution's map.
     *
     * @return true when the execution exercised a new edge or a new
     *         hit-count bucket (AFL's "interesting input" signal).
     */
    bool mergeAndCheckNew(const CoverageMap &map);

    /** Total number of edges ever seen. */
    std::size_t edgesSeen() const { return edges_; }

    /**
     * Fold another campaign's accumulated coverage into this map
     * (sharded campaigns merge per-shard maps at export). Bucket
     * bits are OR-ed; edgesSeen() is recounted exactly.
     */
    void merge(const VirginMap &other);

    /** Raw bucket-bit map (kCoverageMapSize bytes) for checkpoints. */
    support::Bytes snapshotBytes() const;

    /**
     * Restore a map saved with snapshotBytes(); edgesSeen() is
     * recounted from the restored bytes.
     *
     * @return false (map unchanged) when `bytes` has the wrong size.
     */
    bool restoreBytes(const support::Bytes &bytes);

  private:
    std::array<std::uint8_t, kCoverageMapSize> virgin_;
    std::size_t edges_ = 0;
};

/** AFL bucket classification of a raw hit count. */
std::uint8_t coverageBucket(std::uint8_t hits);

} // namespace compdiff::vm
