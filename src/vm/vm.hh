#pragma once

/**
 * @file
 * The bytecode interpreter.
 *
 * A Vm instance binds a compiled Module to the runtime half of its
 * CompilerConfig's traits (memory layout, fill patterns, heap policy,
 * libm strategy) — together they are "the binary". Vm::run() executes
 * one input and is designed for reuse: the module stays resident
 * while per-run state is rebuilt, which is the same cost profile the
 * paper gets from forkserver instrumentation (Section 3.2).
 *
 * Thread safety (audited for the parallel ExecutionService): every
 * Vm member is written only during construction; run() is const and
 * keeps all per-run state (address space, heap, frames, evaluation
 * stack, input cursor) on its own stack. Distinct Vm instances may
 * therefore run concurrently, and one instance may run concurrent
 * *reads* — but setMaxInstructions() is an unsynchronized write, so
 * budget changes require external serialization (the ExecutionService
 * dedicates each Vm to one in-flight task at a time).
 */

#include <cstdint>

#include "bytecode/module.hh"
#include "compiler/config.hh"
#include "support/bytes.hh"
#include "vm/coverage.hh"
#include "vm/memory.hh"
#include "vm/result.hh"

namespace compdiff::vm
{

/** One control-flow trace entry: a basic block the execution entered,
 *  identified by function index and source line. */
struct TraceEntry
{
    int func = 0;
    std::uint32_t line = 0;

    bool operator==(const TraceEntry &) const = default;
};

/** Per-execution resource limits. */
struct VmLimits
{
    /** Instruction budget; exceeding it is the "timeout" analog. */
    std::uint64_t maxInstructions = 2'000'000;
    std::uint64_t stackSize = 1 << 16;
    std::uint64_t heapSize = 1 << 18;
    std::size_t maxOutput = 1 << 20;
    std::uint32_t maxCallDepth = 200;
};

/**
 * Executes a compiled module under its configuration's runtime
 * traits.
 */
class Vm
{
  public:
    /**
     * @param module Compiled program (must outlive the Vm).
     * @param config The configuration the module was compiled with.
     * @param limits Per-execution resource limits.
     */
    Vm(const bytecode::Module &module,
       const compiler::CompilerConfig &config, VmLimits limits = {});

    /**
     * Run `main` on one input.
     *
     * @param input    The fuzz input visible through the input_*
     *                 builtins.
     * @param coverage Optional coverage map to instrument into (the
     *                 B_fuzz role); pass nullptr for plain runs.
     * @param nonce    Per-execution value returned by time_stamp();
     *                 callers model wall-clock nondeterminism with it.
     * @param trace    Optional control-flow trace sink (used by the
     *                 fault-localization support, paper Section 5);
     *                 capped at 65536 entries.
     */
    ExecutionResult run(const support::Bytes &input,
                        CoverageMap *coverage = nullptr,
                        std::uint64_t nonce = 0,
                        std::vector<TraceEntry> *trace = nullptr) const;

    const compiler::CompilerConfig &config() const { return config_; }
    const VmLimits &limits() const { return limits_; }

    /** Raise the instruction budget (RQ6 timeout re-examination). */
    void setMaxInstructions(std::uint64_t budget)
    {
        limits_.maxInstructions = budget;
    }

  private:
    const bytecode::Module &module_;
    compiler::CompilerConfig config_;
    compiler::Traits traits_;
    VmLimits limits_;

    /** globalId -> absolute address. */
    std::vector<std::uint64_t> globalAddr_;
    /** Pristine globals image, copied at the start of each run. */
    std::vector<std::uint8_t> globalsImage_;
};

} // namespace compdiff::vm
