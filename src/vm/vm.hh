#pragma once

/**
 * @file
 * The bytecode interpreter.
 *
 * A Vm instance binds a compiled Module to the runtime half of its
 * CompilerConfig's traits (memory layout, fill patterns, heap policy,
 * libm strategy) — together they are "the binary". The engine is
 * organized for campaign-scale reuse (the cost profile the paper gets
 * from forkserver instrumentation, Section 3.2):
 *
 *  - the module's Insn stream is pre-decoded once into a threaded-code
 *    image (bytecode/decode.hh) with fused superinstructions;
 *  - per-run state (address space, heap, frames, evaluation stack) is
 *    arena-allocated: built on first run, then *reset* — dirty memory
 *    ranges refilled, allocator bookkeeping cleared — instead of
 *    re-allocated for every input;
 *  - rebind() retargets a Vm at a new module (same config), keeping
 *    the arena, so a resident executor can serve a whole campaign.
 *
 * Dispatch comes in two flavors selected at runtime (DispatchMode):
 * GNU computed-goto direct threading (default where the compiler
 * supports it) and a portable switch loop. Both are generated from
 * the same handler source (vm/interp.inc) and are byte-identical in
 * observable behavior; the CMake option COMPDIFF_DISPATCH and the
 * environment variable of the same name pick the default.
 *
 * Thread safety: run() mutates the per-run arena, so one Vm serves
 * one in-flight run at a time. Distinct Vm instances may run
 * concurrently — the parallel ExecutionService dedicates one executor
 * (one Vm) per implementation slot, never sharing an instance across
 * tasks.
 */

#include <cstdint>
#include <memory>

#include "bytecode/module.hh"
#include "compiler/config.hh"
#include "support/bytes.hh"
#include "vm/coverage.hh"
#include "vm/memory.hh"
#include "vm/result.hh"

/** Does this build support computed-goto direct threading? */
#if defined(__GNUC__) || defined(__clang__)
#define COMPDIFF_VM_HAS_THREADED 1
#else
#define COMPDIFF_VM_HAS_THREADED 0
#endif

namespace compdiff::vm
{

/** One control-flow trace entry: a basic block the execution entered,
 *  identified by function index and source line. */
struct TraceEntry
{
    int func = 0;
    std::uint32_t line = 0;

    bool operator==(const TraceEntry &) const = default;
};

/** Per-execution resource limits. */
struct VmLimits
{
    /** Instruction budget; exceeding it is the "timeout" analog. */
    std::uint64_t maxInstructions = 2'000'000;
    std::uint64_t stackSize = 1 << 16;
    std::uint64_t heapSize = 1 << 18;
    std::size_t maxOutput = 1 << 20;
    std::uint32_t maxCallDepth = 200;
};

/** Interpreter dispatch strategy. */
enum class DispatchMode
{
    Switch,  ///< portable while/switch loop
    Threaded,///< GNU computed-goto direct threading
};

/**
 * The build's default dispatch mode: Threaded where supported unless
 * the build was configured with COMPDIFF_DISPATCH=switch; either way
 * the COMPDIFF_DISPATCH environment variable ("switch"/"threaded",
 * read once) overrides.
 */
DispatchMode defaultDispatchMode();

const char *dispatchModeName(DispatchMode mode);

/**
 * Executes a compiled module under its configuration's runtime
 * traits.
 */
class Vm
{
  public:
    /**
     * @param module Compiled program (must outlive the Vm).
     * @param config The configuration the module was compiled with.
     * @param limits Per-execution resource limits.
     */
    Vm(const bytecode::Module &module,
       const compiler::CompilerConfig &config, VmLimits limits = {});
    ~Vm();
    Vm(Vm &&) noexcept;
    Vm &operator=(Vm &&) noexcept;

    /**
     * Run `main` on one input.
     *
     * @param input    The fuzz input visible through the input_*
     *                 builtins.
     * @param coverage Optional coverage map to instrument into (the
     *                 B_fuzz role); pass nullptr for plain runs.
     * @param nonce    Per-execution value returned by time_stamp();
     *                 callers model wall-clock nondeterminism with it.
     * @param trace    Optional control-flow trace sink (used by the
     *                 fault-localization support, paper Section 5);
     *                 capped at 65536 entries.
     */
    ExecutionResult run(const support::Bytes &input,
                        CoverageMap *coverage = nullptr,
                        std::uint64_t nonce = 0,
                        std::vector<TraceEntry> *trace = nullptr);

    /**
     * Retarget this Vm at a new module (compiled under the same
     * configuration), keeping the per-run arena warm. The resident-
     * module campaign path: one executor per implementation survives
     * across programs.
     */
    void rebind(const bytecode::Module &module);

    const compiler::CompilerConfig &config() const { return config_; }
    const VmLimits &limits() const { return limits_; }

    /** Raise the instruction budget (RQ6 timeout re-examination). */
    void setMaxInstructions(std::uint64_t budget)
    {
        limits_.maxInstructions = budget;
    }

    DispatchMode dispatchMode() const { return dispatch_; }
    void setDispatchMode(DispatchMode mode) { dispatch_ = mode; }

    /**
     * Test hook: substitute a decoded image for the bound module
     * (e.g. one built with fusion disabled) to compare pipelines.
     * The image must have been decoded from the bound module.
     */
    void setDecodedProgram(
        std::shared_ptr<const bytecode::DecodedProgram> decoded);

  private:
    struct RunState;

    void bindModule(const bytecode::Module &module);

    ExecutionResult runSwitch(const support::Bytes &input,
                              CoverageMap *coverage,
                              std::uint64_t nonce,
                              std::vector<TraceEntry> *trace);
#if COMPDIFF_VM_HAS_THREADED
    ExecutionResult runThreaded(const support::Bytes &input,
                                CoverageMap *coverage,
                                std::uint64_t nonce,
                                std::vector<TraceEntry> *trace);
#endif

    const bytecode::Module *module_;
    std::shared_ptr<const bytecode::DecodedProgram> decoded_;
    compiler::CompilerConfig config_;
    compiler::Traits traits_;
    VmLimits limits_;
    DispatchMode dispatch_ = defaultDispatchMode();

    /** globalId -> absolute address. */
    std::vector<std::uint64_t> globalAddr_;
    /** Pristine globals image, copied at the start of each run. */
    std::vector<std::uint8_t> globalsImage_;

    /** Arena-allocated per-run state, recycled across runs. */
    std::unique_ptr<RunState> state_;
};

} // namespace compdiff::vm
