#include "vm/result.hh"

#include <sstream>

#include "support/hash.hh"

namespace compdiff::vm
{

std::string
SanReport::str() const
{
    std::ostringstream os;
    switch (tool) {
      case Tool::ASan: os << "AddressSanitizer"; break;
      case Tool::UBSan: os << "UndefinedBehaviorSanitizer"; break;
      case Tool::MSan: os << "MemorySanitizer"; break;
    }
    os << ": " << kind << " at line " << line;
    return os.str();
}

std::string
ExecutionResult::exitClass() const
{
    switch (termination) {
      case Termination::Exit:
        return "exit:" + std::to_string(exitCode);
      case Termination::Trap:
        if (trap == TrapKind::Fpe)
            return "crash:fpe";
        if (trap == TrapKind::OperandStack)
            return "crash:stack";
        return "crash:segv";
      case Termination::RuntimeAbort:
        return "crash:abort";
      case Termination::SanitizerAbort:
        return "san";
      case Termination::BudgetExhausted:
        return "timeout";
      case Termination::StackOverflow:
        return "crash:stack";
    }
    return "?";
}

std::uint64_t
ExecutionResult::outputHash() const
{
    support::HashCombiner combiner;
    combiner.addString(output);
    combiner.addString(exitClass());
    return combiner.digest();
}

} // namespace compdiff::vm
