#include "vm/vm.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "minic/ast.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace compdiff::vm
{

using bytecode::Function;
using bytecode::Insn;
using bytecode::Module;
using bytecode::Op;
using compiler::CompilerConfig;
using compiler::Sanitizer;
using compiler::ShiftPolicy;
using support::Bytes;

namespace
{

/** One evaluation-stack slot: a 64-bit word plus its MSan shadow. */
struct Slot
{
    std::uint64_t v = 0;
    std::uint8_t poison = 0;
};

/** One call frame. */
struct Frame
{
    int func = 0;
    std::size_t pc = 0;
    std::uint64_t fp = 0;
    std::uint64_t spRestore = 0;
};

double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

std::int64_t
doubleToInt(double d)
{
    // x86 cvttsd2si behavior for out-of-range / NaN inputs.
    if (!(d >= -9.2233720368547758e18 && d <= 9.2233720368547758e18))
        return INT64_MIN;
    return static_cast<std::int64_t>(d);
}

} // namespace

Vm::Vm(const Module &module, const CompilerConfig &config,
       VmLimits limits)
    : module_(module), config_(config),
      traits_(compiler::traitsFor(config)), limits_(limits)
{
    globalAddr_.resize(module.globals.size());
    globalsImage_.assign(
        std::max<std::uint64_t>(module.globalsSegmentSize, 16), 0);
    for (const auto &g : module.globals) {
        globalAddr_[static_cast<std::size_t>(g.globalId)] =
            traits_.globalsBase + g.segmentOffset;
        std::int64_t word = 0;
        switch (g.init) {
          case bytecode::GlobalLayout::Init::Zero:
            continue;
          case bytecode::GlobalLayout::Init::Word:
            word = g.initWord;
            break;
          case bytecode::GlobalLayout::Init::Rodata:
            word = static_cast<std::int64_t>(traits_.rodataBase) +
                   g.initWord;
            break;
        }
        std::memcpy(globalsImage_.data() + g.segmentOffset, &word,
                    g.valueSize);
    }
}

ExecutionResult
Vm::run(const Bytes &input, CoverageMap *coverage,
        std::uint64_t nonce, std::vector<TraceEntry> *trace) const
{
    ExecutionResult res;

    // Account every exit path (including traps and budget stops);
    // fires once when run() unwinds. With metrics disabled this is a
    // single relaxed load per execution.
    struct MetricsScope
    {
        const ExecutionResult &res;
        const CompilerConfig &config;

        ~MetricsScope()
        {
            if (!obs::metricsEnabled())
                return;
            obs::counter("vm.execs").add();
            obs::counter("vm.instructions").add(res.instructions);
            obs::counter("vm.instructions." + config.name())
                .add(res.instructions);
            obs::histogram("vm.instructions_per_run")
                .observe(res.instructions);
            obs::counter("vm.output_bytes").add(res.output.size());
            if (res.timedOut())
                obs::counter("vm.timeouts").add();
        }
    } metricsScope{res, config_};

    const bool asan = config_.sanitizer == Sanitizer::ASan;
    const bool msan = config_.sanitizer == Sanitizer::MSan;

    AddressSpace space(traits_, asan, msan, limits_.stackSize,
                       limits_.heapSize);
    space.setRodata(module_.rodata);
    space.setGlobalsSize(globalsImage_.size());
    std::memcpy(space.globals().data.data(), globalsImage_.data(),
                globalsImage_.size());
    if (asan) {
        for (const auto &g : module_.globals) {
            space.setValid(traits_.globalsBase + g.segmentOffset,
                           g.size, true);
        }
    }
    Heap heap(space, traits_, asan);

    if (module_.mainIndex < 0) {
        support::fatal("module has no main()");
    }

    // --- interpreter state ---
    std::vector<Frame> frames;
    std::vector<Slot> stack;
    stack.reserve(64);
    const Function *fn =
        &module_.functions[static_cast<std::size_t>(module_.mainIndex)];
    std::size_t pc = 0;
    std::uint64_t fp = 0;
    std::size_t inputCursor = 0;

    bool running = true;

    auto finish = [&](Termination term, int code, TrapKind trap) {
        res.termination = term;
        res.exitCode = code;
        res.trap = trap;
        running = false;
    };

    auto sanReport = [&](SanReport::Tool tool, const char *kind,
                         std::uint32_t line) {
        res.sanReports.push_back({tool, kind, line});
        finish(Termination::SanitizerAbort, 1, TrapKind::None);
    };

    auto emitOut = [&](const std::string &text) {
        if (res.output.size() < limits_.maxOutput)
            res.output += text;
    };

    auto enterFrame = [&](const Function &callee, std::uint64_t new_fp) {
        if (asan) {
            space.setValid(new_fp, callee.frameSize, false);
            for (const auto &slot : callee.slots) {
                space.setValid(new_fp +
                                   static_cast<std::uint64_t>(
                                       slot.offset),
                               slot.size, true);
            }
        }
        if (msan) {
            // Parameters count as initialized even when the caller
            // passed too few arguments (matching MSan's blind spot on
            // argument-count mismatches; see DESIGN.md).
            for (const auto &slot : callee.slots) {
                space.setPoison(new_fp +
                                    static_cast<std::uint64_t>(
                                        slot.offset),
                                slot.size, !slot.isParam);
            }
        }
    };

    // Set up main's frame.
    {
        const std::uint64_t stack_bottom =
            traits_.stackBase - limits_.stackSize;
        std::uint64_t sp = traits_.stackBase;
        if (fn->frameSize > sp - stack_bottom) {
            finish(Termination::StackOverflow, 139, TrapKind::None);
            return res;
        }
        fp = sp - fn->frameSize;
        frames.push_back({fn->index, 0, fp, sp});
        enterFrame(*fn, fp);
    }

    auto classifyAsanFault = [&](std::uint64_t addr) -> const char * {
        Segment *seg = space.find(addr, 1);
        if (!seg)
            return "unknown-address-fault";
        switch (seg->kind) {
          case SegmentKind::Heap:
            return heap.chunkSize(addr) == 0 && !heap.isLiveChunk(addr)
                       ? "heap-corruption"
                       : "heap-error";
          case SegmentKind::Stack:
            return "stack-buffer-overflow";
          case SegmentKind::Globals:
            return "global-buffer-overflow";
          case SegmentKind::Rodata:
            return "rodata-access";
        }
        return "memory-error";
    };

    // A finer ASan classification for heap addresses: use-after-free
    // when the address falls inside a freed chunk.
    auto asanHeapKind = [&](std::uint64_t addr) -> const char * {
        Segment &seg = space.heap();
        if (addr >= seg.base && addr < seg.base + seg.data.size()) {
            // Freed chunk bodies are invalid but tracked.
            for (std::uint64_t probe = addr;
                 probe + 16 > addr && probe >= seg.base &&
                 addr - probe <= 4096;
                 probe -= 16) {
                const std::uint64_t size = heap.chunkSize(probe);
                if (size) {
                    if (addr < probe + size) {
                        return heap.isLiveChunk(probe)
                                   ? "heap-buffer-overflow"
                                   : "heap-use-after-free";
                    }
                    break;
                }
                if (probe == seg.base)
                    break;
            }
            return "heap-buffer-overflow";
        }
        return classifyAsanFault(addr);
    };

    auto asanKindFor = [&](std::uint64_t addr) -> const char * {
        Segment *seg = space.find(addr, 1);
        if (seg && seg->kind == SegmentKind::Heap)
            return asanHeapKind(addr);
        return classifyAsanFault(addr);
    };

    // --- checked memory helpers used by ops and builtins -----------
    // Returns false when the access terminated the program.
    auto loadMem = [&](std::uint64_t addr, std::uint64_t size,
                       Slot &out, std::uint32_t line) -> bool {
        bool poisoned = false;
        std::uint64_t value = 0;
        switch (space.read(addr, size, value, poisoned)) {
          case Access::Ok:
            out.v = value;
            out.poison = poisoned ? 1 : 0;
            return true;
          case Access::Unmapped:
          case Access::ReadOnlyWrite:
            finish(Termination::Trap, 139, TrapKind::Segv);
            return false;
          case Access::AsanInvalid:
            sanReport(SanReport::Tool::ASan, asanKindFor(addr), line);
            return false;
        }
        return false;
    };

    auto storeMem = [&](std::uint64_t addr, std::uint64_t size,
                        const Slot &value, std::uint32_t line) -> bool {
        switch (space.write(addr, size, value.v, value.poison != 0)) {
          case Access::Ok:
            return true;
          case Access::Unmapped:
          case Access::ReadOnlyWrite:
            finish(Termination::Trap, 139, TrapKind::Segv);
            return false;
          case Access::AsanInvalid:
            sanReport(SanReport::Tool::ASan, asanKindFor(addr), line);
            return false;
        }
        return false;
    };

    auto msanCheckValue = [&](const Slot &slot,
                              std::uint32_t line) -> bool {
        if (msan && slot.poison) {
            sanReport(SanReport::Tool::MSan,
                      "use-of-uninitialized-value", line);
            return false;
        }
        return true;
    };

    auto pop = [&]() {
        Slot s = stack.back();
        stack.pop_back();
        return s;
    };
    auto push = [&](std::uint64_t v, std::uint8_t poison = 0) {
        stack.push_back({v, poison});
    };

    // ---------------------------------------------------------------
    // Main interpreter loop
    // ---------------------------------------------------------------
    while (running) {
        if (res.instructions++ >= limits_.maxInstructions) {
            finish(Termination::BudgetExhausted, 124, TrapKind::None);
            break;
        }
        const Insn &insn = fn->code[pc++];

        switch (insn.op) {
          case Op::Nop:
            break;
          case Op::Block:
            if (coverage)
                coverage->hitBlock(
                    static_cast<std::uint16_t>(insn.a));
            if (trace && trace->size() < 65536)
                trace->push_back({fn->index, insn.line});
            break;
          case Op::PushI:
          case Op::PushF:
            push(static_cast<std::uint64_t>(insn.imm));
            break;
          case Op::PushUndef:
            push(traits_.undefWord, msan ? 1 : 0);
            break;
          case Op::Dup:
            stack.push_back(stack.back());
            break;
          case Op::Drop:
            stack.pop_back();
            break;
          case Op::Swap:
            std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
            break;
          case Op::Rot3: {
            // (x y z) -> (z x y)
            Slot z = stack[stack.size() - 1];
            stack[stack.size() - 1] = stack[stack.size() - 2];
            stack[stack.size() - 2] = stack[stack.size() - 3];
            stack[stack.size() - 3] = z;
            break;
          }
          case Op::FrameAddr:
            push(fp + static_cast<std::uint64_t>(insn.a));
            break;
          case Op::GlobalAddr:
            push(globalAddr_[static_cast<std::size_t>(insn.a)]);
            break;
          case Op::RodataAddr:
            push(traits_.rodataBase +
                 static_cast<std::uint64_t>(insn.a));
            break;

          case Op::Ld8S:
          case Op::Ld8U:
          case Op::Ld32S:
          case Op::Ld32U:
          case Op::Ld64:
          case Op::LdF: {
            Slot addr = pop();
            if (!msanCheckValue(addr, insn.line))
                break;
            const std::uint64_t size =
                (insn.op == Op::Ld8S || insn.op == Op::Ld8U) ? 1
                : (insn.op == Op::Ld32S || insn.op == Op::Ld32U) ? 4
                : 8;
            Slot out;
            if (!loadMem(addr.v, size, out, insn.line))
                break;
            if (insn.op == Op::Ld8S) {
                out.v = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(
                        static_cast<std::int8_t>(out.v)));
            } else if (insn.op == Op::Ld32S) {
                out.v = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(
                        static_cast<std::int32_t>(out.v)));
            }
            stack.push_back(out);
            break;
          }

          case Op::St8:
          case Op::St32:
          case Op::St64:
          case Op::StF: {
            Slot value = pop();
            Slot addr = pop();
            if (!msanCheckValue(addr, insn.line))
                break;
            const std::uint64_t size = insn.op == Op::St8 ? 1
                                       : insn.op == Op::St32 ? 4
                                                             : 8;
            storeMem(addr.v, size, value, insn.line);
            break;
          }

#define COMPDIFF_BINOP(expr)                                          \
    {                                                                 \
        Slot b = pop();                                               \
        Slot a = pop();                                               \
        push((expr), a.poison | b.poison);                            \
        break;                                                        \
    }
          case Op::AddI: COMPDIFF_BINOP(a.v + b.v)
          case Op::SubI: COMPDIFF_BINOP(a.v - b.v)
          case Op::MulI: COMPDIFF_BINOP(a.v * b.v)
          case Op::AndI: COMPDIFF_BINOP(a.v & b.v)
          case Op::OrI: COMPDIFF_BINOP(a.v | b.v)
          case Op::XorI: COMPDIFF_BINOP(a.v ^ b.v)
          case Op::Shl: COMPDIFF_BINOP(a.v << (b.v & 63))
          case Op::ShrU: COMPDIFF_BINOP(a.v >> (b.v & 63))
          case Op::ShrS:
            COMPDIFF_BINOP(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(a.v) >>
                (b.v & 63)))
          case Op::CmpLtS:
            COMPDIFF_BINOP(static_cast<std::int64_t>(a.v) <
                           static_cast<std::int64_t>(b.v))
          case Op::CmpLeS:
            COMPDIFF_BINOP(static_cast<std::int64_t>(a.v) <=
                           static_cast<std::int64_t>(b.v))
          case Op::CmpGtS:
            COMPDIFF_BINOP(static_cast<std::int64_t>(a.v) >
                           static_cast<std::int64_t>(b.v))
          case Op::CmpGeS:
            COMPDIFF_BINOP(static_cast<std::int64_t>(a.v) >=
                           static_cast<std::int64_t>(b.v))
          case Op::CmpLtU: COMPDIFF_BINOP(a.v < b.v)
          case Op::CmpLeU: COMPDIFF_BINOP(a.v <= b.v)
          case Op::CmpGtU: COMPDIFF_BINOP(a.v > b.v)
          case Op::CmpGeU: COMPDIFF_BINOP(a.v >= b.v)
          case Op::CmpEq: COMPDIFF_BINOP(a.v == b.v)
          case Op::CmpNe: COMPDIFF_BINOP(a.v != b.v)
          case Op::AddF:
            COMPDIFF_BINOP(asBits(asDouble(a.v) + asDouble(b.v)))
          case Op::SubF:
            COMPDIFF_BINOP(asBits(asDouble(a.v) - asDouble(b.v)))
          case Op::MulF:
            COMPDIFF_BINOP(asBits(asDouble(a.v) * asDouble(b.v)))
          case Op::DivF:
            COMPDIFF_BINOP(asBits(asDouble(a.v) / asDouble(b.v)))
          case Op::CmpLtF:
            COMPDIFF_BINOP(asDouble(a.v) < asDouble(b.v))
          case Op::CmpLeF:
            COMPDIFF_BINOP(asDouble(a.v) <= asDouble(b.v))
          case Op::CmpGtF:
            COMPDIFF_BINOP(asDouble(a.v) > asDouble(b.v))
          case Op::CmpGeF:
            COMPDIFF_BINOP(asDouble(a.v) >= asDouble(b.v))
          case Op::CmpEqF:
            COMPDIFF_BINOP(asDouble(a.v) == asDouble(b.v))
          case Op::CmpNeF:
            COMPDIFF_BINOP(asDouble(a.v) != asDouble(b.v))
#undef COMPDIFF_BINOP

          case Op::DivS:
          case Op::RemS: {
            Slot b = pop();
            Slot a = pop();
            if (!msanCheckValue(b, insn.line))
                break;
            const auto sb = static_cast<std::int64_t>(b.v);
            const auto sa = static_cast<std::int64_t>(a.v);
            if (sb == 0 || (sa == INT64_MIN && sb == -1)) {
                finish(Termination::Trap, 136, TrapKind::Fpe);
                break;
            }
            push(static_cast<std::uint64_t>(insn.op == Op::DivS
                                                ? sa / sb
                                                : sa % sb),
                 a.poison | b.poison);
            break;
          }
          case Op::DivU:
          case Op::RemU: {
            Slot b = pop();
            Slot a = pop();
            if (!msanCheckValue(b, insn.line))
                break;
            if (b.v == 0) {
                finish(Termination::Trap, 136, TrapKind::Fpe);
                break;
            }
            push(insn.op == Op::DivU ? a.v / b.v : a.v % b.v,
                 a.poison | b.poison);
            break;
          }

          case Op::NegI: {
            Slot a = pop();
            push(0 - a.v, a.poison);
            break;
          }
          case Op::NotI: {
            Slot a = pop();
            push(~a.v, a.poison);
            break;
          }
          case Op::NegF: {
            Slot a = pop();
            push(asBits(-asDouble(a.v)), a.poison);
            break;
          }
          case Op::Trunc32S: {
            Slot a = pop();
            push(static_cast<std::uint64_t>(static_cast<std::int64_t>(
                     static_cast<std::int32_t>(a.v))),
                 a.poison);
            break;
          }
          case Op::Trunc32U: {
            Slot a = pop();
            push(static_cast<std::uint32_t>(a.v), a.poison);
            break;
          }
          case Op::Trunc8S: {
            Slot a = pop();
            push(static_cast<std::uint64_t>(static_cast<std::int64_t>(
                     static_cast<std::int8_t>(a.v))),
                 a.poison);
            break;
          }
          case Op::Trunc8U: {
            Slot a = pop();
            push(static_cast<std::uint8_t>(a.v), a.poison);
            break;
          }
          case Op::CmpEqZ: {
            Slot a = pop();
            push(a.v == 0, a.poison);
            break;
          }
          case Op::BoolVal: {
            Slot a = pop();
            push(a.v != 0, a.poison);
            break;
          }
          case Op::I2FS: {
            Slot a = pop();
            push(asBits(static_cast<double>(
                     static_cast<std::int64_t>(a.v))),
                 a.poison);
            break;
          }
          case Op::I2FU: {
            Slot a = pop();
            push(asBits(static_cast<double>(a.v)), a.poison);
            break;
          }
          case Op::F2I: {
            Slot a = pop();
            push(static_cast<std::uint64_t>(doubleToInt(asDouble(a.v))),
                 a.poison);
            break;
          }

          case Op::ShiftNorm32:
          case Op::ShiftNorm64: {
            const std::uint64_t width =
                insn.op == Op::ShiftNorm32 ? 32 : 64;
            Slot count = stack.back();
            if (count.v < width)
                break;
            const auto policy = static_cast<ShiftPolicy>(insn.a);
            if (policy == ShiftPolicy::MaskCount) {
                stack.back().v = count.v & (width - 1);
            } else {
                // Poison-style: the whole shift collapses to 0.
                stack.pop_back();
                stack.back() = {0, count.poison};
                stack.push_back({0, 0});
            }
            break;
          }

          case Op::Jmp:
            pc = static_cast<std::size_t>(insn.a);
            break;
          case Op::JmpZ:
          case Op::JmpNZ: {
            Slot cond = pop();
            if (!msanCheckValue(cond, insn.line))
                break;
            const bool taken = insn.op == Op::JmpZ ? cond.v == 0
                                                   : cond.v != 0;
            if (taken)
                pc = static_cast<std::size_t>(insn.a);
            break;
          }

          case Op::Call: {
            const auto &callee = module_.functions[
                static_cast<std::size_t>(insn.a)];
            const auto argc = static_cast<std::size_t>(insn.b);
            // Collect arguments in source order.
            std::vector<Slot> args(argc);
            if (insn.imm) { // evaluated right-to-left
                for (std::size_t i = 0; i < argc; i++)
                    args[i] = pop();
            } else {
                for (std::size_t i = argc; i-- > 0;)
                    args[i] = pop();
            }
            if (frames.size() >= limits_.maxCallDepth) {
                finish(Termination::StackOverflow, 139,
                       TrapKind::None);
                break;
            }
            const std::uint64_t stack_bottom =
                traits_.stackBase - limits_.stackSize;
            const std::uint64_t sp = fp;
            if (callee.frameSize > sp - stack_bottom) {
                finish(Termination::StackOverflow, 139,
                       TrapKind::None);
                break;
            }
            frames.back().pc = pc;
            const std::uint64_t new_fp = sp - callee.frameSize;
            frames.push_back({callee.index, 0, new_fp, sp});
            enterFrame(callee, new_fp);
            // Store arguments into parameter slots; extra arguments
            // are dropped, missing ones leave the slot uninitialized
            // (CWE-685 semantics).
            const std::size_t stored =
                std::min<std::size_t>(argc, callee.numParams);
            for (std::size_t i = 0; i < stored; i++) {
                storeMem(new_fp + static_cast<std::uint64_t>(
                                      callee.paramOffsets[i]),
                         callee.paramSizes[i], args[i], insn.line);
                if (!running)
                    break;
            }
            if (!running)
                break;
            fn = &callee;
            pc = 0;
            fp = new_fp;
            break;
          }

          case Op::Ret: {
            Slot rv{0, 0};
            const bool has_value = insn.a != 0;
            if (has_value)
                rv = pop();
            if (asan) {
                space.setValid(frames.back().fp, fn->frameSize,
                               false);
            }
            frames.pop_back();
            if (frames.empty()) {
                finish(Termination::Exit,
                       has_value ? static_cast<std::int32_t>(rv.v)
                                 : 0,
                       TrapKind::None);
                break;
            }
            const Frame &caller = frames.back();
            fn = &module_.functions[
                static_cast<std::size_t>(caller.func)];
            pc = caller.pc;
            fp = caller.fp;
            if (has_value)
                stack.push_back(rv);
            break;
          }

          case Op::Halt:
            finish(Termination::Exit, 0, TrapKind::None);
            break;

          case Op::ChkOv32: {
            const Slot &top = stack.back();
            if (top.v != static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(
                                 static_cast<std::int32_t>(top.v)))) {
                sanReport(SanReport::Tool::UBSan,
                          "signed-integer-overflow", insn.line);
            }
            break;
          }
          case Op::ChkDivS: {
            const Slot &divisor = stack[stack.size() - 1];
            const Slot &dividend = stack[stack.size() - 2];
            if (divisor.v == 0) {
                sanReport(SanReport::Tool::UBSan, "division-by-zero",
                          insn.line);
                break;
            }
            if (insn.b) { // signed
                const bool is_32 = insn.a == 32;
                const auto min = is_32
                                     ? static_cast<std::uint64_t>(
                                           static_cast<std::int64_t>(
                                               INT32_MIN))
                                     : static_cast<std::uint64_t>(
                                           INT64_MIN);
                if (dividend.v == min &&
                    static_cast<std::int64_t>(divisor.v) == -1) {
                    sanReport(SanReport::Tool::UBSan,
                              "signed-integer-overflow", insn.line);
                }
            }
            break;
          }
          case Op::ChkShift32:
          case Op::ChkShift64: {
            const std::uint64_t width =
                insn.op == Op::ChkShift32 ? 32 : 64;
            if (stack.back().v >= width) {
                sanReport(SanReport::Tool::UBSan,
                          "shift-out-of-bounds", insn.line);
            }
            break;
          }
          case Op::ChkNull: {
            if (stack.back().v < 4096) {
                sanReport(SanReport::Tool::UBSan,
                          "null-pointer-dereference", insn.line);
            }
            break;
          }

          case Op::CallB: {
            const auto builtin =
                static_cast<minic::Builtin>(insn.a);
            const auto argc = static_cast<std::size_t>(insn.b);
            std::vector<Slot> args(argc);
            if (insn.imm) {
                for (std::size_t i = 0; i < argc; i++)
                    args[i] = pop();
            } else {
                for (std::size_t i = argc; i-- > 0;)
                    args[i] = pop();
            }

            switch (builtin) {
              case minic::Builtin::PrintInt:
                emitOut(std::to_string(
                    static_cast<std::int32_t>(args[0].v)));
                break;
              case minic::Builtin::PrintUInt:
                emitOut(std::to_string(
                    static_cast<std::uint32_t>(args[0].v)));
                break;
              case minic::Builtin::PrintLong:
                emitOut(std::to_string(
                    static_cast<std::int64_t>(args[0].v)));
                break;
              case minic::Builtin::PrintChar:
                if (res.output.size() < limits_.maxOutput) {
                    res.output.push_back(
                        static_cast<char>(args[0].v));
                }
                break;
              case minic::Builtin::PrintHex:
                emitOut(support::format(
                    "%" PRIx64, args[0].v));
                break;
              case minic::Builtin::PrintPtr:
                emitOut(support::format("0x%" PRIx64, args[0].v));
                break;
              case minic::Builtin::PrintF:
                // Full round-trip precision: last-ulp differences
                // between libm strategies must reach the output.
                emitOut(support::format("%.17g",
                                        asDouble(args[0].v)));
                break;
              case minic::Builtin::PrintStr: {
                std::uint64_t addr = args[0].v;
                for (std::size_t n = 0; n < 65536; n++) {
                    Slot byte;
                    if (!loadMem(addr + n, 1, byte, insn.line))
                        break;
                    if ((byte.v & 0xff) == 0)
                        break;
                    if (res.output.size() < limits_.maxOutput) {
                        res.output.push_back(
                            static_cast<char>(byte.v));
                    }
                }
                break;
              }
              case minic::Builtin::Newline:
                emitOut("\n");
                break;
              case minic::Builtin::InputSize:
                push(static_cast<std::uint64_t>(input.size()));
                break;
              case minic::Builtin::InputByte: {
                const auto idx =
                    static_cast<std::int64_t>(args[0].v);
                if (idx >= 0 &&
                    idx < static_cast<std::int64_t>(input.size())) {
                    push(input[static_cast<std::size_t>(idx)]);
                } else {
                    push(static_cast<std::uint64_t>(-1));
                }
                break;
              }
              case minic::Builtin::ReadByte:
                if (inputCursor < input.size())
                    push(input[inputCursor++]);
                else
                    push(static_cast<std::uint64_t>(-1));
                break;
              case minic::Builtin::Malloc: {
                const auto n = static_cast<std::int64_t>(args[0].v);
                push(n < 0 ? 0
                           : heap.allocate(
                                 static_cast<std::uint64_t>(n)));
                break;
              }
              case minic::Builtin::Free: {
                switch (heap.release(args[0].v)) {
                  case FreeOutcome::Ok:
                  case FreeOutcome::NullNoop:
                  case FreeOutcome::DoubleFreeSilent:
                  case FreeOutcome::InvalidFreeIgnored:
                    break;
                  case FreeOutcome::DoubleFreeAbort:
                    emitOut("free(): double free detected\n");
                    finish(Termination::RuntimeAbort, 134,
                           TrapKind::None);
                    break;
                  case FreeOutcome::InvalidFreeAbort:
                    emitOut("free(): invalid pointer\n");
                    finish(Termination::RuntimeAbort, 134,
                           TrapKind::None);
                    break;
                  case FreeOutcome::AsanDoubleFree:
                    sanReport(SanReport::Tool::ASan,
                              "double-free", insn.line);
                    break;
                  case FreeOutcome::AsanInvalidFree:
                    sanReport(SanReport::Tool::ASan,
                              "invalid-free", insn.line);
                    break;
                }
                break;
              }
              case minic::Builtin::Memset: {
                const std::uint64_t dst = args[0].v;
                const Slot byte{args[1].v & 0xff, args[1].poison};
                const auto n =
                    static_cast<std::int64_t>(args[2].v);
                res.instructions += n > 0
                                        ? static_cast<std::uint64_t>(n)
                                        : 0;
                for (std::int64_t i = 0; i < n && running; i++)
                    storeMem(dst + static_cast<std::uint64_t>(i), 1,
                             byte, insn.line);
                break;
              }
              case minic::Builtin::Memcpy: {
                const std::uint64_t dst = args[0].v;
                const std::uint64_t src = args[1].v;
                const auto n = static_cast<std::int64_t>(args[2].v);
                res.instructions += n > 0
                                        ? static_cast<std::uint64_t>(n)
                                        : 0;
                // Overlapping memcpy is UB; the direction is the
                // implementation's choice and decides the result.
                if (traits_.memcpyBackward) {
                    for (std::int64_t i = n; i-- > 0 && running;) {
                        Slot byte;
                        if (!loadMem(src +
                                         static_cast<std::uint64_t>(i),
                                     1, byte, insn.line))
                            break;
                        storeMem(dst + static_cast<std::uint64_t>(i),
                                 1, byte, insn.line);
                    }
                } else {
                    for (std::int64_t i = 0; i < n && running; i++) {
                        Slot byte;
                        if (!loadMem(src +
                                         static_cast<std::uint64_t>(i),
                                     1, byte, insn.line))
                            break;
                        storeMem(dst + static_cast<std::uint64_t>(i),
                                 1, byte, insn.line);
                    }
                }
                break;
              }
              case minic::Builtin::Strlen: {
                const std::uint64_t addr = args[0].v;
                std::uint64_t len = 0;
                for (; len < 65536 && running; len++) {
                    Slot byte;
                    if (!loadMem(addr + len, 1, byte, insn.line))
                        break;
                    if ((byte.v & 0xff) == 0)
                        break;
                }
                if (running)
                    push(len);
                break;
              }
              case minic::Builtin::Strcpy: {
                const std::uint64_t dst = args[0].v;
                const std::uint64_t src = args[1].v;
                for (std::uint64_t i = 0; i < 65536 && running; i++) {
                    Slot byte;
                    if (!loadMem(src + i, 1, byte, insn.line))
                        break;
                    if (!storeMem(dst + i, 1, byte, insn.line))
                        break;
                    if ((byte.v & 0xff) == 0)
                        break;
                }
                break;
              }
              case minic::Builtin::Strcmp: {
                const std::uint64_t a = args[0].v;
                const std::uint64_t b = args[1].v;
                std::int64_t cmp = 0;
                for (std::uint64_t i = 0; i < 65536 && running; i++) {
                    Slot ba, bb;
                    if (!loadMem(a + i, 1, ba, insn.line) ||
                        !loadMem(b + i, 1, bb, insn.line))
                        break;
                    const auto ca = static_cast<std::uint8_t>(ba.v);
                    const auto cb = static_cast<std::uint8_t>(bb.v);
                    if (ca != cb) {
                        cmp = ca < cb ? -1 : 1;
                        break;
                    }
                    if (ca == 0)
                        break;
                }
                if (running)
                    push(static_cast<std::uint64_t>(cmp));
                break;
              }
              case minic::Builtin::Exit:
                finish(Termination::Exit,
                       static_cast<std::int32_t>(args[0].v),
                       TrapKind::None);
                break;
              case minic::Builtin::Abort:
                finish(Termination::RuntimeAbort, 134,
                       TrapKind::None);
                break;
              case minic::Builtin::PowF: {
                const double base = asDouble(args[0].v);
                const double exponent = asDouble(args[1].v);
                double result;
                if (traits_.powViaExp2 && base > 0) {
                    // clang-style libcall strengthening: pow(a,b) =
                    // exp2(b * log2(a)); differs in the last ulps.
                    result = std::exp2(exponent * std::log2(base));
                } else {
                    result = std::pow(base, exponent);
                }
                push(asBits(result));
                break;
              }
              case minic::Builtin::SqrtF:
                push(asBits(std::sqrt(asDouble(args[0].v))));
                break;
              case minic::Builtin::FloorF:
                push(asBits(std::floor(asDouble(args[0].v))));
                break;
              case minic::Builtin::TimeStamp:
                push(nonce);
                break;
              case minic::Builtin::BadRand: {
                // "Random" value derived from uninitialized heap
                // memory — deterministic per configuration.
                const std::uint32_t raw =
                    0x01010101u * traits_.heapFill;
                push(static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(
                             static_cast<std::int32_t>(
                                 raw & 0x7fffffff))),
                     msan ? 1 : 0);
                break;
              }
              case minic::Builtin::Probe:
                res.probes.push_back(
                    static_cast<std::int32_t>(args[0].v));
                break;
              case minic::Builtin::CurLine:
              case minic::Builtin::None:
                support::panic("unexpected builtin in CallB");
            }
            break;
          }
        }
    }

    return res;
}

} // namespace compdiff::vm
