#include "vm/vm.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "bytecode/decode.hh"
#include "minic/ast.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace compdiff::vm
{

using bytecode::Function;
using bytecode::Module;
using compiler::CompilerConfig;
using compiler::Sanitizer;
using compiler::ShiftPolicy;
using support::Bytes;

namespace
{

/** One evaluation-stack slot: a 64-bit word plus its MSan shadow. */
struct Slot
{
    std::uint64_t v = 0;
    std::uint8_t poison = 0;
};

/** One call frame. */
struct Frame
{
    int func = 0;
    std::size_t pc = 0;
    std::uint64_t fp = 0;
    std::uint64_t spRestore = 0;
};

double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

std::int64_t
doubleToInt(double d)
{
    // x86 cvttsd2si behavior for out-of-range / NaN inputs.
    if (!(d >= -9.2233720368547758e18 && d <= 9.2233720368547758e18))
        return INT64_MIN;
    return static_cast<std::int64_t>(d);
}

/**
 * Evaluation-stack depth cap. Lowered code is stack-balanced with
 * depth bounded by expression nesting, so real programs never come
 * close; the cap turns a hand-assembled push loop into a
 * deterministic trap well before memory pressure (the instruction
 * budget bounds growth to ~2M slots anyway).
 */
constexpr std::size_t kMaxOperandSlots = std::size_t{1} << 20;

} // namespace

DispatchMode
defaultDispatchMode()
{
    static const DispatchMode mode = [] {
#if COMPDIFF_VM_HAS_THREADED
#ifdef COMPDIFF_DISPATCH_SWITCH
        DispatchMode m = DispatchMode::Switch;
#else
        DispatchMode m = DispatchMode::Threaded;
#endif
#else
        DispatchMode m = DispatchMode::Switch;
#endif
        if (const char *env = std::getenv("COMPDIFF_DISPATCH")) {
            if (std::strcmp(env, "switch") == 0)
                m = DispatchMode::Switch;
#if COMPDIFF_VM_HAS_THREADED
            else if (std::strcmp(env, "threaded") == 0)
                m = DispatchMode::Threaded;
#endif
        }
        return m;
    }();
    return mode;
}

const char *
dispatchModeName(DispatchMode mode)
{
    return mode == DispatchMode::Threaded ? "threaded" : "switch";
}

/**
 * The per-run arena. All of it survives across runs: the address
 * space and heap are reset (dirty ranges refilled, bookkeeping
 * cleared), the vectors keep their capacity.
 */
struct Vm::RunState
{
    std::optional<AddressSpace> space;
    std::optional<Heap> heap;
    /** Does `space` still hold a previous module's rodata? */
    bool rodataStale = true;
    /** Mapped globals-segment size (~0 = not mapped yet). */
    std::uint64_t globalsMapped = ~std::uint64_t{0};
    std::vector<Frame> frames;
    std::vector<Slot> stack;
    /** Argument scratch for Call/CallB. */
    std::vector<Slot> args;
};

Vm::Vm(const Module &module, const CompilerConfig &config,
       VmLimits limits)
    : module_(nullptr), config_(config),
      traits_(compiler::traitsFor(config)), limits_(limits),
      state_(std::make_unique<RunState>())
{
    bindModule(module);
}

Vm::~Vm() = default;
Vm::Vm(Vm &&) noexcept = default;
Vm &Vm::operator=(Vm &&) noexcept = default;

void
Vm::bindModule(const Module &module)
{
    module_ = &module;
    // Compiler output carries its decoded image; hand-assembled
    // modules are decoded here on bind.
    decoded_ = module.decoded ? module.decoded
                              : bytecode::decodeModule(module);

    globalAddr_.assign(module.globals.size(), 0);
    globalsImage_.assign(
        std::max<std::uint64_t>(module.globalsSegmentSize, 16), 0);
    for (const auto &g : module.globals) {
        globalAddr_[static_cast<std::size_t>(g.globalId)] =
            traits_.globalsBase + g.segmentOffset;
        std::int64_t word = 0;
        switch (g.init) {
          case bytecode::GlobalLayout::Init::Zero:
            continue;
          case bytecode::GlobalLayout::Init::Word:
            word = g.initWord;
            break;
          case bytecode::GlobalLayout::Init::Rodata:
            word = static_cast<std::int64_t>(traits_.rodataBase) +
                   g.initWord;
            break;
        }
        std::memcpy(globalsImage_.data() + g.segmentOffset, &word,
                    g.valueSize);
    }

    // The arena (if built) holds the previous module's rodata and
    // globals mapping; the next run re-maps both.
    state_->rodataStale = true;
    state_->globalsMapped = ~std::uint64_t{0};
}

void
Vm::rebind(const Module &module)
{
    bindModule(module);
}

void
Vm::setDecodedProgram(
    std::shared_ptr<const bytecode::DecodedProgram> decoded)
{
    decoded_ = std::move(decoded);
}

ExecutionResult
Vm::run(const Bytes &input, CoverageMap *coverage, std::uint64_t nonce,
        std::vector<TraceEntry> *trace)
{
#if COMPDIFF_VM_HAS_THREADED
    if (dispatch_ == DispatchMode::Threaded)
        return runThreaded(input, coverage, nonce, trace);
#endif
    return runSwitch(input, coverage, nonce, trace);
}

// The interpreter body lives in interp.inc and is instantiated once
// per dispatch mode; see the header comment there.

#define VM_IMPL_NAME runSwitch
#define VM_USE_THREADED 0
#include "vm/interp.inc"
#undef VM_IMPL_NAME
#undef VM_USE_THREADED

#if COMPDIFF_VM_HAS_THREADED
#define VM_IMPL_NAME runThreaded
#define VM_USE_THREADED 1
#include "vm/interp.inc"
#undef VM_IMPL_NAME
#undef VM_USE_THREADED
#endif

} // namespace compdiff::vm
