#include "semdiff/canon.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "minic/parser.hh"
#include "minic/printer.hh"
#include "support/diagnostics.hh"
#include "support/hash.hh"

namespace compdiff::semdiff
{

namespace
{

using namespace minic;

// ---------------------------------------------------------------
// Generic traversal helpers
// ---------------------------------------------------------------

/** Apply `fn` to every expression in the subtree, children first. */
void
forEachExpr(ExprPtr &expr, const std::function<void(ExprPtr &)> &fn)
{
    if (!expr)
        return;
    switch (expr->kind()) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::StrLit:
    case ExprKind::VarRef:
    case ExprKind::SizeOf:
        break;
    case ExprKind::Unary:
        forEachExpr(static_cast<UnaryExpr &>(*expr).operand, fn);
        break;
    case ExprKind::Binary: {
        auto &bin = static_cast<BinaryExpr &>(*expr);
        forEachExpr(bin.lhs, fn);
        forEachExpr(bin.rhs, fn);
        break;
    }
    case ExprKind::Assign: {
        auto &assign = static_cast<AssignExpr &>(*expr);
        forEachExpr(assign.target, fn);
        forEachExpr(assign.value, fn);
        break;
    }
    case ExprKind::Cond: {
        auto &cond = static_cast<CondExpr &>(*expr);
        forEachExpr(cond.cond, fn);
        forEachExpr(cond.thenExpr, fn);
        forEachExpr(cond.elseExpr, fn);
        break;
    }
    case ExprKind::Call:
        for (auto &arg : static_cast<CallExpr &>(*expr).args)
            forEachExpr(arg, fn);
        break;
    case ExprKind::Index: {
        auto &index = static_cast<IndexExpr &>(*expr);
        forEachExpr(index.base, fn);
        forEachExpr(index.index, fn);
        break;
    }
    case ExprKind::Member:
        forEachExpr(static_cast<MemberExpr &>(*expr).base, fn);
        break;
    case ExprKind::Cast:
        forEachExpr(static_cast<CastExpr &>(*expr).operand, fn);
        break;
    }
    fn(expr);
}

/** Apply `fn` to every statement (children first) and every
 *  expression hanging off each statement. */
void
forEachStmt(StmtPtr &stmt, const std::function<void(StmtPtr &)> &sfn,
            const std::function<void(ExprPtr &)> &efn)
{
    if (!stmt)
        return;
    switch (stmt->kind()) {
    case StmtKind::Block:
        for (auto &child : static_cast<BlockStmt &>(*stmt).body)
            forEachStmt(child, sfn, efn);
        break;
    case StmtKind::VarDecl:
        forEachExpr(static_cast<VarDeclStmt &>(*stmt).init, efn);
        break;
    case StmtKind::If: {
        auto &ifs = static_cast<IfStmt &>(*stmt);
        forEachExpr(ifs.cond, efn);
        forEachStmt(ifs.thenStmt, sfn, efn);
        forEachStmt(ifs.elseStmt, sfn, efn);
        break;
    }
    case StmtKind::While: {
        auto &loop = static_cast<WhileStmt &>(*stmt);
        forEachExpr(loop.cond, efn);
        forEachStmt(loop.body, sfn, efn);
        break;
    }
    case StmtKind::For: {
        auto &loop = static_cast<ForStmt &>(*stmt);
        forEachStmt(loop.init, sfn, efn);
        forEachExpr(loop.cond, efn);
        forEachExpr(loop.step, efn);
        forEachStmt(loop.body, sfn, efn);
        break;
    }
    case StmtKind::Return:
        forEachExpr(static_cast<ReturnStmt &>(*stmt).value, efn);
        break;
    case StmtKind::Break:
    case StmtKind::Continue:
        break;
    case StmtKind::ExprStmt:
        forEachExpr(static_cast<ExprStmt &>(*stmt).expr, efn);
        break;
    }
    sfn(stmt);
}

void
forEachInFunction(FunctionDecl &func,
                  const std::function<void(StmtPtr &)> &sfn,
                  const std::function<void(ExprPtr &)> &efn)
{
    for (auto &stmt : func.body->body)
        forEachStmt(stmt, sfn, efn);
}

// ---------------------------------------------------------------
// Pass 1: dead-code strip
// ---------------------------------------------------------------

bool
isTerminator(const Stmt &stmt)
{
    return stmt.kind() == StmtKind::Return ||
           stmt.kind() == StmtKind::Break ||
           stmt.kind() == StmtKind::Continue;
}

bool
containsVarDecl(const Stmt &stmt)
{
    if (stmt.kind() == StmtKind::VarDecl)
        return true;
    bool found = false;
    // forEachStmt needs a mutable StmtPtr; a read-only scan is
    // cheaper done by hand.
    switch (stmt.kind()) {
    case StmtKind::Block:
        for (const auto &child :
             static_cast<const BlockStmt &>(stmt).body)
            found = found || containsVarDecl(*child);
        break;
    case StmtKind::If: {
        const auto &ifs = static_cast<const IfStmt &>(stmt);
        found = containsVarDecl(*ifs.thenStmt) ||
                (ifs.elseStmt && containsVarDecl(*ifs.elseStmt));
        break;
    }
    case StmtKind::While:
        found = containsVarDecl(
            *static_cast<const WhileStmt &>(stmt).body);
        break;
    case StmtKind::For: {
        const auto &loop = static_cast<const ForStmt &>(stmt);
        found = (loop.init && containsVarDecl(*loop.init)) ||
                containsVarDecl(*loop.body);
        break;
    }
    default:
        break;
    }
    return found;
}

/**
 * Drop statements after the first terminator in every block —
 * except declarations. Frame layout is a configuration trait
 * (LayoutOrder sorts locals by size or reverse declaration), so
 * removing even an unreachable VarDecl could shift live slots and
 * change what an out-of-bounds access observes. Unreachable
 * non-declaration statements are behavior-free and go.
 */
void stripUnreachableTails(StmtPtr &stmt);

/** The block-body form: a function body's top-level statement list
 *  is a bare vector, not a BlockStmt node, so the truncation logic
 *  lives here and the Block case below delegates to it. */
void
stripUnreachableTailsInList(std::vector<StmtPtr> &body)
{
    for (std::size_t i = 0; i < body.size(); i++) {
        stripUnreachableTails(body[i]);
        if (!isTerminator(*body[i]))
            continue;
        std::vector<StmtPtr> kept;
        for (std::size_t k = 0; k <= i; k++)
            kept.push_back(std::move(body[k]));
        for (std::size_t k = i + 1; k < body.size(); k++)
            if (containsVarDecl(*body[k]))
                kept.push_back(std::move(body[k]));
        body = std::move(kept);
        return;
    }
}

void
stripUnreachableTails(StmtPtr &stmt)
{
    if (!stmt)
        return;
    switch (stmt->kind()) {
    case StmtKind::Block:
        stripUnreachableTailsInList(
            static_cast<BlockStmt &>(*stmt).body);
        break;
    case StmtKind::If: {
        auto &ifs = static_cast<IfStmt &>(*stmt);
        stripUnreachableTails(ifs.thenStmt);
        stripUnreachableTails(ifs.elseStmt);
        break;
    }
    case StmtKind::While:
        stripUnreachableTails(static_cast<WhileStmt &>(*stmt).body);
        break;
    case StmtKind::For:
        stripUnreachableTails(static_cast<ForStmt &>(*stmt).body);
        break;
    default:
        break;
    }
}

/** Callee names (user functions only) in call-site order. */
std::vector<std::string>
calleesOf(FunctionDecl &func)
{
    std::vector<std::string> callees;
    forEachInFunction(func, [](StmtPtr &) {}, [&](ExprPtr &expr) {
        if (expr->kind() != ExprKind::Call)
            return;
        auto &call = static_cast<CallExpr &>(*expr);
        if (call.builtin == Builtin::None)
            callees.push_back(call.callee);
    });
    return callees;
}

/**
 * Passes 1b + 2: drop functions unreachable from main and emit the
 * survivors in post-order of a DFS from main (callees first, main
 * last). Without a main every function is kept in source order —
 * such a program cannot run, so its canonical form only needs to be
 * deterministic, not clever.
 */
void
pruneAndOrderFunctions(Program &program)
{
    FunctionDecl *main = program.findFunction("main");
    if (!main)
        return;

    std::map<std::string, FunctionDecl *> by_name;
    for (auto &func : program.functions)
        by_name[func->name] = func.get();

    std::vector<std::string> order;
    std::set<std::string> visiting, done;
    std::function<void(FunctionDecl &)> visit =
        [&](FunctionDecl &func) {
            if (done.count(func.name) || visiting.count(func.name))
                return;
            visiting.insert(func.name);
            for (const auto &callee : calleesOf(func)) {
                auto it = by_name.find(callee);
                if (it != by_name.end())
                    visit(*it->second);
            }
            visiting.erase(func.name);
            done.insert(func.name);
            order.push_back(func.name);
        };
    visit(*main);

    std::vector<std::unique_ptr<FunctionDecl>> reordered;
    for (const auto &name : order) {
        for (auto &func : program.functions) {
            if (func && func->name == name) {
                reordered.push_back(std::move(func));
                break;
            }
        }
    }
    program.functions = std::move(reordered);
}

// ---------------------------------------------------------------
// Pass 3: alpha-rename
// ---------------------------------------------------------------

void
renameProgram(Program &program)
{
    // Functions, in the (already canonical) emission order.
    std::map<std::string, std::string> func_names;
    std::size_t next_func = 0;
    for (auto &func : program.functions) {
        if (func->name == "main")
            func_names[func->name] = "main";
        else
            func_names[func->name] =
                "cf" + std::to_string(next_func++);
    }

    // Globals, in declaration order, keyed by sema's globalId so a
    // shadowed lookup can never mis-bind.
    std::map<int, std::string> global_names;
    std::size_t next_global = 0;
    for (auto &global : program.globals) {
        global_names[global->globalId] =
            "cg" + std::to_string(next_global++);
        global->name = global_names[global->globalId];
    }

    for (auto &func : program.functions) {
        func->name = func_names[func->name];

        // Locals: params first, then declarations in syntactic
        // order, keyed by localId (shadowing-proof and invariant
        // under the later expression/statement sorts, which never
        // move a VarDecl).
        std::map<int, std::string> local_names;
        std::size_t next_local = 0;
        for (auto &param : func->params) {
            local_names[param.localId] =
                "cv" + std::to_string(next_local++);
            param.name = local_names[param.localId];
        }
        // The child-first statement walk still visits VarDecls in
        // textual order (a declaration has no VarDecl descendants),
        // so numbering follows the source.
        forEachInFunction(
            *func,
            [&](StmtPtr &stmt) {
                if (stmt->kind() != StmtKind::VarDecl)
                    return;
                auto &decl = static_cast<VarDeclStmt &>(*stmt);
                if (!local_names.count(decl.localId))
                    local_names[decl.localId] =
                        "cv" + std::to_string(next_local++);
                decl.name = local_names[decl.localId];
            },
            [](ExprPtr &) {});
        forEachInFunction(
            *func, [](StmtPtr &) {},
            [&](ExprPtr &expr) {
                if (expr->kind() != ExprKind::VarRef)
                    return;
                auto &ref = static_cast<VarRefExpr &>(*expr);
                if (ref.isGlobal) {
                    auto it = global_names.find(ref.id);
                    if (it != global_names.end())
                        ref.name = it->second;
                } else {
                    auto it = local_names.find(ref.id);
                    if (it != local_names.end())
                        ref.name = it->second;
                }
            });
        forEachInFunction(
            *func, [](StmtPtr &) {},
            [&](ExprPtr &expr) {
                if (expr->kind() != ExprKind::Call)
                    return;
                auto &call = static_cast<CallExpr &>(*expr);
                if (call.builtin != Builtin::None)
                    return;
                auto it = func_names.find(call.callee);
                if (it != func_names.end())
                    call.callee = it->second;
            });
    }
}

// ---------------------------------------------------------------
// Pass 4: commutative-operand sort
// ---------------------------------------------------------------

/**
 * Side-effect-free AND trap-free: evaluating the expression cannot
 * write state, consume input, or abort, so evaluation order against
 * any sibling expression is unobservable. Div/Rem (zero divisor),
 * casts (float->int range), loads (Index/Member/Deref can fault) and
 * all calls are excluded.
 */
bool
isReorderSafe(const Expr &expr)
{
    switch (expr.kind()) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::StrLit:
    case ExprKind::SizeOf:
        return true;
    case ExprKind::VarRef:
        return true;
    case ExprKind::Unary: {
        const auto &un = static_cast<const UnaryExpr &>(expr);
        if (un.op == UnaryOp::Deref || un.op == UnaryOp::AddrOf)
            return un.op == UnaryOp::AddrOf &&
                   isReorderSafe(*un.operand);
        return isReorderSafe(*un.operand);
    }
    case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        if (bin.op == BinaryOp::Div || bin.op == BinaryOp::Rem)
            return false;
        return isReorderSafe(*bin.lhs) && isReorderSafe(*bin.rhs);
    }
    default:
        return false;
    }
}

bool
isCommutative(BinaryOp op)
{
    switch (op) {
    case BinaryOp::Add:
    case BinaryOp::Mul:
    case BinaryOp::BitAnd:
    case BinaryOp::BitOr:
    case BinaryOp::BitXor:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
        return true;
    default:
        return false;
    }
}

bool
isLiteral(const Expr &expr)
{
    return expr.kind() == ExprKind::IntLit ||
           expr.kind() == ExprKind::FloatLit ||
           expr.kind() == ExprKind::StrLit;
}

void
sortCommutativeOperands(Program &program)
{
    for (auto &func : program.functions) {
        forEachInFunction(
            *func, [](StmtPtr &) {},
            [](ExprPtr &expr) {
                if (expr->kind() != ExprKind::Binary)
                    return;
                auto &bin = static_cast<BinaryExpr &>(*expr);
                if (!isCommutative(bin.op))
                    return;
                // Literals stay where they were written: the
                // UB-exploiting and seeded-miscompile passes match
                // constants on specific operand sides, and a merge
                // key must never change what the compilers do.
                if (isLiteral(*bin.lhs) || isLiteral(*bin.rhs))
                    return;
                if (!bin.lhs->type || !bin.rhs->type ||
                    !bin.lhs->type->isInteger() ||
                    !bin.rhs->type->isInteger())
                    return;
                if (!isReorderSafe(*bin.lhs) ||
                    !isReorderSafe(*bin.rhs))
                    return;
                if (printExpr(*bin.rhs) < printExpr(*bin.lhs))
                    std::swap(bin.lhs, bin.rhs);
            });
    }
}

// ---------------------------------------------------------------
// Pass 5: independent-statement sort
// ---------------------------------------------------------------

/** `v = <reorder-safe expr>;` targeting a plain scalar variable. */
const AssignExpr *
asSortableAssign(const Stmt &stmt)
{
    if (stmt.kind() != StmtKind::ExprStmt)
        return nullptr;
    const auto &expr = *static_cast<const ExprStmt &>(stmt).expr;
    if (expr.kind() != ExprKind::Assign)
        return nullptr;
    const auto &assign = static_cast<const AssignExpr &>(expr);
    if (assign.compoundOp)
        return nullptr;
    if (assign.target->kind() != ExprKind::VarRef)
        return nullptr;
    if (!isReorderSafe(*assign.value))
        return nullptr;
    return &assign;
}

/** All variables (isGlobal, id) read anywhere in the expression. */
void
collectReads(const Expr &expr, std::set<std::pair<bool, int>> *out)
{
    // const_cast-free re-walk: clone is too heavy here, so walk the
    // const tree manually with a small recursion.
    switch (expr.kind()) {
    case ExprKind::VarRef: {
        const auto &ref = static_cast<const VarRefExpr &>(expr);
        out->insert({ref.isGlobal, ref.id});
        break;
    }
    case ExprKind::Unary:
        collectReads(*static_cast<const UnaryExpr &>(expr).operand,
                     out);
        break;
    case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        collectReads(*bin.lhs, out);
        collectReads(*bin.rhs, out);
        break;
    }
    default:
        // Reorder-safe expressions only reach literals, VarRef,
        // unary, and binary nodes (see isReorderSafe).
        break;
    }
}

bool
independentAssigns(const AssignExpr &a, const AssignExpr &b)
{
    const auto &ta = static_cast<const VarRefExpr &>(*a.target);
    const auto &tb = static_cast<const VarRefExpr &>(*b.target);
    const std::pair<bool, int> key_a{ta.isGlobal, ta.id};
    const std::pair<bool, int> key_b{tb.isGlobal, tb.id};
    if (key_a == key_b)
        return false;
    std::set<std::pair<bool, int>> reads_a, reads_b;
    collectReads(*a.value, &reads_a);
    collectReads(*b.value, &reads_b);
    return !reads_a.count(key_b) && !reads_b.count(key_a);
}

void
sortIndependentStatements(Program &program)
{
    auto sort_block = [](StmtPtr &stmt) {
        if (stmt->kind() != StmtKind::Block)
            return;
        auto &body = static_cast<BlockStmt &>(*stmt).body;
        // Bubble to a fixpoint: adjacent sortable, independent,
        // out-of-(printed)-order pairs swap. Terminates because each
        // swap strictly reduces the number of swappable inversions.
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 0; i + 1 < body.size(); i++) {
                const AssignExpr *first = asSortableAssign(*body[i]);
                const AssignExpr *second =
                    asSortableAssign(*body[i + 1]);
                if (!first || !second ||
                    !independentAssigns(*first, *second))
                    continue;
                if (printStmt(*body[i + 1]) < printStmt(*body[i])) {
                    std::swap(body[i], body[i + 1]);
                    changed = true;
                }
            }
        }
    };
    for (auto &func : program.functions) {
        // The function body itself is a block the statement walk
        // does not wrap in a StmtPtr; sort it directly.
        StmtPtr root(func->body.release());
        forEachStmt(root, sort_block, [](ExprPtr &) {});
        func->body.reset(static_cast<BlockStmt *>(root.release()));
    }
}

} // namespace

std::uint64_t
SemanticKey::combined() const
{
    return semanticKeyOf(canonHash, behavior);
}

std::uint64_t
semanticKeyOf(std::uint64_t canon_hash,
              std::uint64_t behavior_signature)
{
    support::HashCombiner key;
    key.addString("semdiff.key.v1");
    key.add(canon_hash);
    key.add(behavior_signature);
    return key.digest();
}

CanonicalForm
canonicalizeSource(const std::string &source)
{
    const auto fallback = [&] {
        return CanonicalForm{source, support::murmurHash64(source)};
    };

    std::unique_ptr<minic::Program> program;
    try {
        program = minic::parseAndCheck(source);
    } catch (const support::CompileError &) {
        return fallback();
    }

    for (auto &func : program->functions)
        stripUnreachableTailsInList(func->body->body);
    // A stripped tail can orphan a callee: prune sees the new call
    // graph, so strip runs first.
    pruneAndOrderFunctions(*program);
    renameProgram(*program);
    sortCommutativeOperands(*program);
    sortIndependentStatements(*program);

    const std::string canonical = minic::printProgram(*program);
    try {
        // The canonical text must itself survive the frontend —
        // anything else is a canonicalizer bug, and exact-text
        // identity is the safe degradation.
        minic::parseAndCheck(canonical);
    } catch (const support::CompileError &) {
        return fallback();
    }
    return {canonical, support::murmurHash64(canonical)};
}

CanonicalForm
canonicalize(const minic::Program &program)
{
    return canonicalizeSource(minic::printProgram(program));
}

} // namespace compdiff::semdiff
