#pragma once

/**
 * @file
 * Static divergence slicing: from "which config pair" to "which
 * instruction, which Traits decision, why".
 *
 * `core::localizeAcross` aligns two *executions* and names the first
 * source line where their control flow or data disagree. This module
 * adds the ParDiff-style static half: compile the two divergent
 * implementations' pipelines over the same minimized program and walk
 * their instruction streams side by side to the first *semantically*
 * differing instruction — the exact point where the two compilers
 * made a different decision — at zero additional executions.
 *
 * The comparison is trait-aware. A simulated pair legitimately
 * differs in behavior-neutral encodings the slice must not trip
 * over, so instructions are compared under a normalization that
 * blanks the operand classes that carry *layout*, not *meaning*:
 * frame/global/rodata offsets (stack and globals layout are
 * configuration traits), pc-relative jump targets (they shift when
 * any earlier region resizes), and hashed coverage block ids.
 * Opcodes, immediates (`PushI 7` from the strength-reduced `x & 7`
 * is the whole story of bugRemPow2), call targets, shift-policy
 * selectors, and source lines all count. The first instruction pair
 * that differs under this key — or the shorter stream's end — is the
 * slice point, reported with both disassembled instructions, the
 * enclosing function, the source line, and the list of Traits knobs
 * that differ between the two configurations (the "why").
 *
 * Streams come from the same deterministic compile the oracle uses
 * (`Compiler::compileWithTraits` with the campaign's traits tweak
 * applied), so the decoded `XInsn` image the VM executes is a pure
 * function of what is compared here: the first differing `Insn` is
 * the first differing decode site.
 *
 * Degradation: the pair to slice comes from the localization
 * (`PairLocalization::implA/implB`). When localization could not
 * align a simulated pair — e.g. a divergence against `ref`, whose
 * class has no simulated member — the slice degrades to the
 * pair-level report (`attempted == false`, note says why), exactly
 * like localization itself.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "compdiff/localize.hh"
#include "minic/ast.hh"

namespace compdiff::semdiff
{

/** Outcome of one static slice. */
struct InstructionSlice
{
    /** Both sides resolved to simulated pipelines and compiled. */
    bool attempted = false;
    /** A first differing instruction (or stream end) was located.
     *  attempted && !found means the streams agree everywhere under
     *  the normalization — a pure runtime-trait divergence. */
    bool found = false;

    /** The configs compared (CompilerConfig names). */
    std::string implA;
    std::string implB;

    /** Function containing the first difference. */
    std::string function;
    /** Instruction index within that function's stream. */
    std::size_t index = 0;
    /** Source line of the differing instruction per side (0 when
     *  that side's stream already ended). */
    std::uint32_t lineA = 0;
    std::uint32_t lineB = 0;
    /** Disassembled instruction per side ("<end>" when ended). */
    std::string insnA;
    std::string insnB;

    /** Traits knobs that differ between the two configs, rendered
     *  as "name: valueA vs valueB" — the compiler decisions that can
     *  explain the split. */
    std::vector<std::string> traitsDelta;

    /** Why the slice degraded (empty when attempted). */
    std::string note;

    /** Human-readable one-paragraph account. */
    std::string str() const;
};

/**
 * Slice the pair chosen by localization over `program`.
 *
 * @param program The (typically minimized) analyzed program.
 * @param impls   The oracle that produced the divergence.
 * @param pair    localizeAcross's verdict — supplies the pair.
 * @param options The campaign's diff options (traitsTweak must be
 *                applied so the slice sees the same pipelines the
 *                oracle ran).
 */
InstructionSlice sliceDivergence(const minic::Program &program,
                                 const core::ImplementationSet &impls,
                                 const core::PairLocalization &pair,
                                 const core::DiffOptions &options);

} // namespace compdiff::semdiff
