#pragma once

/**
 * @file
 * MiniC canonicalizer: semantic identity for witness programs.
 *
 * Behavior-class signatures (reduce::divergenceSignature) answer
 * "did these programs split the implementation set the same way?",
 * but two syntactically different programs that trigger the same bug
 * still file two `sig-<hex>/` bundles. This module supplies the
 * missing half of the dedup key: a *canonical form* of the program
 * text that is invariant under the refactorings minimized witnesses
 * actually differ by — identifier names, function order, commutative
 * operand order, independent-statement order, and dead code — in the
 * spirit of DiffKemp's refactoring-insensitive equivalence.
 *
 * Canonicalization is a pure source-to-source function built from
 * five passes over the parsed AST, applied in this order:
 *
 *   1. dead-code strip — statements after a terminator (`return`,
 *      `break`, `continue`) in a block are dropped, and functions
 *      unreachable from `main` are removed;
 *   2. function reorder — remaining functions are emitted in
 *      post-order of a DFS over the call graph from `main` (callees
 *      first, `main` last), which is total because step 1 removed
 *      everything unreachable;
 *   3. alpha-rename — functions become `cf<k>` in canonical order
 *      (`main` keeps its name), globals become `cg<k>` in declaration
 *      order, and locals become `cv<k>` in parameter-then-declaration
 *      order, resolved through sema's symbol ids so shadowing cannot
 *      mis-bind; struct and field names are left alone;
 *   4. commutative-operand sort — for `+ * & | ^ == !=` with two
 *      side-effect-free, trap-free, *non-literal* integer operands,
 *      the operands are ordered by their printed form (literals stay
 *      put: the seeded-miscompile passes pattern-match constants on
 *      specific sides, and moving them would change which programs
 *      trigger the bug — see soundness note below);
 *   5. independent-statement sort — maximal runs of adjacent plain
 *      assignments `v = <pure expr>;` to distinct scalar variables,
 *      where no statement reads another's target, are bubble-sorted
 *      by printed form to a fixpoint.
 *
 * Soundness: every pass preserves the program's observable behavior
 * under every implementation in the oracle, *including* the seeded
 * miscompiles (tested against the DiffEngine in test_semdiff.cc).
 * Renames never touch semantics; sema registers every function
 * signature before analyzing bodies, so reordered definitions
 * re-analyze identically; sorted operands are restricted to
 * expressions whose evaluation cannot trap or side-effect, so
 * evaluation order is unobservable; reordered statements are
 * pairwise independent by construction. The one deliberate
 * exception is `cur_line()` — dead-code removal shifts line numbers
 * — which minimized witnesses that *depend* on line values keep out
 * of reach because any line-sensitive divergence pins the dead code
 * via the oracle.
 *
 * Determinism: no pass consults anything outside the program text
 * (no maps ordered by pointer, no hashes of addresses), so
 * canonicalize() is a pure function of the source string and
 * `canon(canon(p)) == canon(p)` (the rename targets are already
 * canonical names, the sorts are at their fixpoints, and dead code
 * is already gone). The fingerprint is a murmurHash64 of the
 * canonical source.
 */

#include <cstdint>
#include <string>

#include "minic/ast.hh"

namespace compdiff::semdiff
{

/** Canonical form of one MiniC program. */
struct CanonicalForm
{
    /** Canonicalized source (pretty-printed, reparseable). */
    std::string source;
    /** murmurHash64 of `source` — the canonical-form hash. */
    std::uint64_t fingerprint = 0;
};

/**
 * Canonicalize a source buffer. The input must parse and type-check;
 * if it does not (or the canonicalized text fails to reparse, which
 * would indicate a pass bug), the original text is returned verbatim
 * with its own hash — canonicalization degrades to exact-text
 * identity, never to an error.
 */
CanonicalForm canonicalizeSource(const std::string &source);

/** Canonicalize an analyzed program (print + canonicalizeSource). */
CanonicalForm canonicalize(const minic::Program &program);

/**
 * The two-tier dedup key: canonical-form hash x behavior-class
 * signature. Two witnesses merge iff their *minimized* programs
 * canonicalize to the same text AND their divergence signatures
 * (reduce::divergenceSignature — the shape of the behavior-class
 * partition plus exit classes) agree.
 */
struct SemanticKey
{
    std::uint64_t canonHash = 0;
    std::uint64_t behavior = 0;

    /** Single 64-bit key (order-sensitive mix; stable across runs,
     *  platforms, and resume — both inputs are). */
    std::uint64_t combined() const;

    bool operator==(const SemanticKey &) const = default;
};

/** Build the combined key directly from the two halves. */
std::uint64_t semanticKeyOf(std::uint64_t canon_hash,
                            std::uint64_t behavior_signature);

} // namespace compdiff::semdiff
