#include "semdiff/slice.hh"

#include <sstream>

#include "bytecode/module.hh"
#include "compiler/compiler.hh"
#include "compiler/config.hh"

namespace compdiff::semdiff
{

namespace
{

using bytecode::Insn;
using bytecode::Op;

/**
 * Comparison key: the instruction with its layout-carrying operands
 * blanked (see file comment in slice.hh). `line` participates — two
 * pipelines disagreeing about which source line an instruction
 * belongs to is itself a decision worth naming.
 */
Insn
normalizedKey(const Insn &insn)
{
    Insn key = insn;
    switch (insn.op) {
    case Op::FrameAddr:
    case Op::GlobalAddr:
    case Op::RodataAddr:
        key.a = 0; // stack/globals/rodata layout traits
        break;
    case Op::Jmp:
    case Op::JmpZ:
    case Op::JmpNZ:
        key.a = 0; // pc targets shift when earlier regions resize
        break;
    case Op::Block:
        key.a = 0; // hashed coverage ids
        break;
    default:
        break;
    }
    return key;
}

bool
sameKey(const Insn &a, const Insn &b)
{
    const Insn ka = normalizedKey(a), kb = normalizedKey(b);
    return ka.op == kb.op && ka.a == kb.a && ka.b == kb.b &&
           ka.imm == kb.imm && ka.line == kb.line;
}

const char *
layoutOrderName(compiler::LayoutOrder order)
{
    switch (order) {
    case compiler::LayoutOrder::Declaration:
        return "declaration";
    case compiler::LayoutOrder::SizeDescending:
        return "size-descending";
    case compiler::LayoutOrder::SizeAscending:
        return "size-ascending";
    case compiler::LayoutOrder::ReverseDeclaration:
        return "reverse-declaration";
    }
    return "?";
}

const char *
shiftPolicyName(compiler::ShiftPolicy policy)
{
    return policy == compiler::ShiftPolicy::MaskCount
               ? "mask-count"
               : "zero-result";
}

/** "name: a vs b" for every Traits knob where the configs differ. */
std::vector<std::string>
traitsDeltaOf(const compiler::Traits &a, const compiler::Traits &b)
{
    std::vector<std::string> delta;
    auto flag = [&](const char *name, bool va, bool vb) {
        if (va != vb)
            delta.push_back(std::string(name) + ": " +
                            (va ? "on" : "off") + " vs " +
                            (vb ? "on" : "off"));
    };
    auto num = [&](const char *name, std::uint64_t va,
                   std::uint64_t vb) {
        if (va != vb)
            delta.push_back(std::string(name) + ": " +
                            std::to_string(va) + " vs " +
                            std::to_string(vb));
    };

    flag("argsRightToLeft", a.argsRightToLeft, b.argsRightToLeft);
    if (a.localOrder != b.localOrder)
        delta.push_back(std::string("localOrder: ") +
                        layoutOrderName(a.localOrder) + " vs " +
                        layoutOrderName(b.localOrder));
    if (a.globalOrder != b.globalOrder)
        delta.push_back(std::string("globalOrder: ") +
                        layoutOrderName(a.globalOrder) + " vs " +
                        layoutOrderName(b.globalOrder));
    num("localPad", a.localPad, b.localPad);
    if (a.shift32 != b.shift32)
        delta.push_back(std::string("shift32: ") +
                        shiftPolicyName(a.shift32) + " vs " +
                        shiftPolicyName(b.shift32));
    if (a.shift64 != b.shift64)
        delta.push_back(std::string("shift64: ") +
                        shiftPolicyName(a.shift64) + " vs " +
                        shiftPolicyName(b.shift64));
    flag("lineIsStatementStart", a.lineIsStatementStart,
         b.lineIsStatementStart);

    flag("constFold", a.constFold, b.constFold);
    flag("foldUbGuards", a.foldUbGuards, b.foldUbGuards);
    flag("alwaysTrueIncCmp", a.alwaysTrueIncCmp,
         b.alwaysTrueIncCmp);
    flag("widenMulToLong", a.widenMulToLong, b.widenMulToLong);
    flag("deadStoreElim", a.deadStoreElim, b.deadStoreElim);
    flag("nullDerefExploit", a.nullDerefExploit,
         b.nullDerefExploit);

    flag("bugRemPow2", a.bugRemPow2, b.bugRemPow2);
    flag("bugDiv32Shift", a.bugDiv32Shift, b.bugDiv32Shift);
    flag("bugEmptyRange", a.bugEmptyRange, b.bugEmptyRange);
    flag("bugChkOv32Unsigned", a.bugChkOv32Unsigned,
         b.bugChkOv32Unsigned);

    num("stackFill", a.stackFill, b.stackFill);
    num("heapFill", a.heapFill, b.heapFill);
    num("undefWord", a.undefWord, b.undefWord);
    flag("freePoison", a.freePoison, b.freePoison);
    num("freePoisonByte", a.freePoisonByte, b.freePoisonByte);
    flag("freelistLifo", a.freelistLifo, b.freelistLifo);
    flag("detectDoubleFreeTop", a.detectDoubleFreeTop,
         b.detectDoubleFreeTop);
    flag("detectInvalidFree", a.detectInvalidFree,
         b.detectInvalidFree);
    flag("powViaExp2", a.powViaExp2, b.powViaExp2);
    flag("memcpyBackward", a.memcpyBackward, b.memcpyBackward);

    num("rodataBase", a.rodataBase, b.rodataBase);
    num("globalsBase", a.globalsBase, b.globalsBase);
    num("heapBase", a.heapBase, b.heapBase);
    num("stackBase", a.stackBase, b.stackBase);
    return delta;
}

const compiler::CompilerConfig *
configOf(const core::ImplementationSet &impls,
         const std::string &id)
{
    for (const auto &impl : impls)
        if (impl->id() == id)
            return impl->simulatedConfig();
    return nullptr;
}

} // namespace

std::string
InstructionSlice::str() const
{
    std::ostringstream os;
    if (!attempted) {
        os << "instruction slice not attempted: "
           << (note.empty() ? "no simulated pair to compare" : note);
        return os.str();
    }
    if (!found) {
        os << "instruction streams of " << implA << " and " << implB
           << " agree under layout normalization; the divergence is "
              "a runtime-trait decision";
        if (!traitsDelta.empty()) {
            os << " (differing traits:";
            for (std::size_t i = 0; i < traitsDelta.size(); i++)
                os << (i ? "; " : " ") << traitsDelta[i];
            os << ")";
        }
        return os.str();
    }
    os << "first divergent instruction: " << function << "[" << index
       << "]";
    const std::uint32_t line = lineA ? lineA : lineB;
    if (line)
        os << " (line " << line << ")";
    os << " — " << implA << ": " << insnA << " vs " << implB << ": "
       << insnB;
    if (!traitsDelta.empty()) {
        os << "; differing traits:";
        for (std::size_t i = 0; i < traitsDelta.size(); i++)
            os << (i ? "; " : " ") << traitsDelta[i];
    }
    return os.str();
}

InstructionSlice
sliceDivergence(const minic::Program &program,
                const core::ImplementationSet &impls,
                const core::PairLocalization &pair,
                const core::DiffOptions &options)
{
    InstructionSlice slice;
    if (!pair.attempted) {
        slice.note = pair.note.empty()
                         ? "localization did not align a pair"
                         : pair.note;
        return slice;
    }

    const compiler::CompilerConfig *config_a =
        configOf(impls, pair.implA);
    const compiler::CompilerConfig *config_b =
        configOf(impls, pair.implB);
    if (!config_a || !config_b) {
        slice.note = "aligned pair is not fully simulated (" +
                     pair.implA + " vs " + pair.implB +
                     "); pair-level localization only";
        return slice;
    }

    slice.attempted = true;
    slice.implA = config_a->name();
    slice.implB = config_b->name();

    // The exact pipelines the oracle ran: derived traits plus the
    // campaign's ablation tweak.
    compiler::Traits traits_a = compiler::traitsFor(*config_a);
    compiler::Traits traits_b = compiler::traitsFor(*config_b);
    if (options.traitsTweak) {
        options.traitsTweak(traits_a);
        options.traitsTweak(traits_b);
    }
    slice.traitsDelta = traitsDeltaOf(traits_a, traits_b);

    const compiler::Compiler compiler(program);
    const bytecode::Module module_a =
        compiler.compileWithTraits(*config_a, traits_a);
    const bytecode::Module module_b =
        compiler.compileWithTraits(*config_b, traits_b);

    const std::size_t functions =
        std::min(module_a.functions.size(),
                 module_b.functions.size());
    for (std::size_t f = 0; f < functions; f++) {
        const auto &code_a = module_a.functions[f].code;
        const auto &code_b = module_b.functions[f].code;
        const std::size_t common =
            std::min(code_a.size(), code_b.size());
        for (std::size_t i = 0; i < common; i++) {
            if (sameKey(code_a[i], code_b[i]))
                continue;
            slice.found = true;
            slice.function = module_a.functions[f].name;
            slice.index = i;
            slice.lineA = code_a[i].line;
            slice.lineB = code_b[i].line;
            slice.insnA = code_a[i].str();
            slice.insnB = code_b[i].str();
            return slice;
        }
        if (code_a.size() != code_b.size()) {
            slice.found = true;
            slice.function = module_a.functions[f].name;
            slice.index = common;
            if (common < code_a.size()) {
                slice.insnA = code_a[common].str();
                slice.lineA = code_a[common].line;
                slice.insnB = "<end>";
            } else {
                slice.insnA = "<end>";
                slice.insnB = code_b[common].str();
                slice.lineB = code_b[common].line;
            }
            return slice;
        }
    }
    // Streams agree everywhere the normalization can see: the
    // divergence is carried by runtime traits (fills, bases, heap
    // policy) rather than by codegen.
    return slice;
}

} // namespace compdiff::semdiff
