#include "minic/token.hh"

namespace compdiff::minic
{

const char *
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::EndOfFile: return "end of file";
      case TokKind::Identifier: return "identifier";
      case TokKind::IntLiteral: return "integer literal";
      case TokKind::FloatLiteral: return "float literal";
      case TokKind::StringLiteral: return "string literal";
      case TokKind::CharLiteral: return "char literal";
      case TokKind::KwVoid: return "'void'";
      case TokKind::KwChar: return "'char'";
      case TokKind::KwInt: return "'int'";
      case TokKind::KwUInt: return "'uint'";
      case TokKind::KwLong: return "'long'";
      case TokKind::KwULong: return "'ulong'";
      case TokKind::KwDouble: return "'double'";
      case TokKind::KwStruct: return "'struct'";
      case TokKind::KwIf: return "'if'";
      case TokKind::KwElse: return "'else'";
      case TokKind::KwWhile: return "'while'";
      case TokKind::KwFor: return "'for'";
      case TokKind::KwReturn: return "'return'";
      case TokKind::KwBreak: return "'break'";
      case TokKind::KwContinue: return "'continue'";
      case TokKind::KwSizeof: return "'sizeof'";
      case TokKind::LParen: return "'('";
      case TokKind::RParen: return "')'";
      case TokKind::LBrace: return "'{'";
      case TokKind::RBrace: return "'}'";
      case TokKind::LBracket: return "'['";
      case TokKind::RBracket: return "']'";
      case TokKind::Semicolon: return "';'";
      case TokKind::Comma: return "','";
      case TokKind::Dot: return "'.'";
      case TokKind::Arrow: return "'->'";
      case TokKind::Plus: return "'+'";
      case TokKind::Minus: return "'-'";
      case TokKind::Star: return "'*'";
      case TokKind::Slash: return "'/'";
      case TokKind::Percent: return "'%'";
      case TokKind::Amp: return "'&'";
      case TokKind::Pipe: return "'|'";
      case TokKind::Caret: return "'^'";
      case TokKind::Tilde: return "'~'";
      case TokKind::Bang: return "'!'";
      case TokKind::Shl: return "'<<'";
      case TokKind::Shr: return "'>>'";
      case TokKind::Less: return "'<'";
      case TokKind::LessEq: return "'<='";
      case TokKind::Greater: return "'>'";
      case TokKind::GreaterEq: return "'>='";
      case TokKind::EqEq: return "'=='";
      case TokKind::BangEq: return "'!='";
      case TokKind::AmpAmp: return "'&&'";
      case TokKind::PipePipe: return "'||'";
      case TokKind::Assign: return "'='";
      case TokKind::PlusAssign: return "'+='";
      case TokKind::MinusAssign: return "'-='";
      case TokKind::StarAssign: return "'*='";
      case TokKind::SlashAssign: return "'/='";
      case TokKind::PercentAssign: return "'%='";
      case TokKind::AmpAssign: return "'&='";
      case TokKind::PipeAssign: return "'|='";
      case TokKind::CaretAssign: return "'^='";
      case TokKind::ShlAssign: return "'<<='";
      case TokKind::ShrAssign: return "'>>='";
      case TokKind::Question: return "'?'";
      case TokKind::Colon: return "':'";
    }
    return "unknown token";
}

} // namespace compdiff::minic
