#pragma once

/**
 * @file
 * Semantic analysis for MiniC.
 *
 * Sema resolves names, assigns local/global ids, computes expression
 * types using C-like conversion rules, resolves struct member offsets,
 * and validates calls. Like C, MiniC deliberately *permits* several
 * dangerous constructs that the paper's benchmark suites rely on
 * (calls with mismatched argument counts, falling off the end of a
 * non-void function, cross-object pointer relations); these produce
 * warnings, not errors, and their run-time meaning is defined by each
 * simulated compiler implementation.
 */

#include <string>
#include <unordered_map>
#include <vector>

#include "minic/ast.hh"
#include "support/diagnostics.hh"

namespace compdiff::minic
{

/**
 * Performs semantic analysis on a parsed Program, annotating the AST
 * in place.
 */
class Sema
{
  public:
    explicit Sema(support::DiagnosticEngine &diags) : diags_(diags) {}

    /**
     * Analyze a whole program.
     *
     * @return true when no errors were recorded (warnings allowed).
     */
    bool analyze(Program &program);

  private:
    struct Symbol
    {
        bool isGlobal = false;
        int id = -1;
        const Type *type = nullptr;
    };

    void analyzeFunction(FunctionDecl &func);
    void analyzeStmt(Stmt &stmt);
    /** Type an expression; returns its (possibly decayed) type. */
    const Type *analyzeExpr(Expr &expr);
    const Type *analyzeCall(CallExpr &call);
    const Type *analyzeBinary(BinaryExpr &bin);
    const Type *analyzeAssign(AssignExpr &assign);

    /** Array-to-pointer decay. */
    const Type *decay(const Type *type);
    /** Usual arithmetic conversions; nullptr when incompatible. */
    const Type *usualArithmetic(const Type *a, const Type *b);
    /** Can a value of type src implicitly initialize dst? */
    bool implicitlyConvertible(const Type *src, const Type *dst,
                               const Expr *src_expr) const;
    bool isLValue(const Expr &expr) const;

    void pushScope();
    void popScope();
    void declareLocal(VarDeclStmt &decl);
    const Symbol *lookup(const std::string &name) const;

    support::DiagnosticEngine &diags_;
    Program *program_ = nullptr;
    FunctionDecl *currentFunc_ = nullptr;
    std::vector<std::unordered_map<std::string, Symbol>> scopes_;
    int loopDepth_ = 0;
};

} // namespace compdiff::minic
