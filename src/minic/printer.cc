#include "minic/printer.hh"

#include <sstream>

namespace compdiff::minic
{

namespace
{

std::string
pad(int indent)
{
    return std::string(static_cast<std::size_t>(indent) * 4, ' ');
}

std::string
escape(const std::string &raw)
{
    std::string out;
    for (char c : raw) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\0': out += "\\0"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

std::string
printExpr(const Expr &expr)
{
    std::ostringstream os;
    switch (expr.kind()) {
      case ExprKind::IntLit: {
        const auto &lit = static_cast<const IntLitExpr &>(expr);
        os << lit.value;
        if (lit.isLong ||
            (expr.type && expr.type->kind() == TypeKind::Long))
            os << "L";
        if (lit.isUnsigned ||
            (expr.type && expr.type->kind() == TypeKind::UInt))
            os << "U";
        return os.str();
      }
      case ExprKind::FloatLit:
        os << static_cast<const FloatLitExpr &>(expr).value;
        return os.str();
      case ExprKind::StrLit:
        return "\"" +
               escape(static_cast<const StrLitExpr &>(expr).bytes) +
               "\"";
      case ExprKind::VarRef:
        return static_cast<const VarRefExpr &>(expr).name;
      case ExprKind::Unary: {
        const auto &un = static_cast<const UnaryExpr &>(expr);
        const char *spelling = "";
        switch (un.op) {
          case UnaryOp::Neg: spelling = "-"; break;
          case UnaryOp::BitNot: spelling = "~"; break;
          case UnaryOp::LogNot: spelling = "!"; break;
          case UnaryOp::Deref: spelling = "*"; break;
          case UnaryOp::AddrOf: spelling = "&"; break;
        }
        return std::string(spelling) + printExpr(*un.operand);
      }
      case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        os << "(" << printExpr(*bin.lhs) << " "
           << binaryOpSpelling(bin.op) << " " << printExpr(*bin.rhs)
           << ")";
        if (bin.widenTo64)
            os << "/*widened*/";
        return os.str();
      }
      case ExprKind::Assign: {
        const auto &assign = static_cast<const AssignExpr &>(expr);
        os << printExpr(*assign.target) << " ";
        if (assign.compoundOp)
            os << binaryOpSpelling(*assign.compoundOp);
        os << "= " << printExpr(*assign.value);
        return os.str();
      }
      case ExprKind::Cond: {
        const auto &cond = static_cast<const CondExpr &>(expr);
        os << "(" << printExpr(*cond.cond) << " ? "
           << printExpr(*cond.thenExpr) << " : "
           << printExpr(*cond.elseExpr) << ")";
        return os.str();
      }
      case ExprKind::Call: {
        const auto &call = static_cast<const CallExpr &>(expr);
        os << call.callee << "(";
        for (std::size_t i = 0; i < call.args.size(); i++) {
            if (i)
                os << ", ";
            os << printExpr(*call.args[i]);
        }
        os << ")";
        return os.str();
      }
      case ExprKind::Index: {
        const auto &index = static_cast<const IndexExpr &>(expr);
        os << printExpr(*index.base) << "["
           << printExpr(*index.index) << "]";
        return os.str();
      }
      case ExprKind::Member: {
        const auto &member = static_cast<const MemberExpr &>(expr);
        os << printExpr(*member.base)
           << (member.isArrow ? "->" : ".") << member.field;
        return os.str();
      }
      case ExprKind::Cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        os << "(" << cast.target->str() << ")"
           << printExpr(*cast.operand);
        return os.str();
      }
      case ExprKind::SizeOf:
        os << "sizeof("
           << static_cast<const SizeOfExpr &>(expr).queried->str()
           << ")";
        return os.str();
    }
    return "?";
}

std::string
printStmt(const Stmt &stmt, int indent)
{
    std::ostringstream os;
    switch (stmt.kind()) {
      case StmtKind::Block: {
        os << pad(indent) << "{\n";
        for (const auto &child :
             static_cast<const BlockStmt &>(stmt).body)
            os << printStmt(*child, indent + 1);
        os << pad(indent) << "}\n";
        return os.str();
      }
      case StmtKind::VarDecl: {
        const auto &decl = static_cast<const VarDeclStmt &>(stmt);
        os << pad(indent);
        if (decl.declType->isArray()) {
            os << decl.declType->element()->str() << " " << decl.name
               << "[" << decl.declType->arrayLength() << "]";
        } else {
            os << decl.declType->str() << " " << decl.name;
        }
        if (decl.init)
            os << " = " << printExpr(*decl.init);
        os << ";\n";
        return os.str();
      }
      case StmtKind::If: {
        const auto &if_stmt = static_cast<const IfStmt &>(stmt);
        os << pad(indent) << "if (" << printExpr(*if_stmt.cond)
           << ")\n"
           << printStmt(*if_stmt.thenStmt, indent);
        if (if_stmt.elseStmt) {
            os << pad(indent) << "else\n"
               << printStmt(*if_stmt.elseStmt, indent);
        }
        return os.str();
      }
      case StmtKind::While: {
        const auto &while_stmt =
            static_cast<const WhileStmt &>(stmt);
        os << pad(indent) << "while (" << printExpr(*while_stmt.cond)
           << ")\n"
           << printStmt(*while_stmt.body, indent);
        return os.str();
      }
      case StmtKind::For: {
        const auto &for_stmt = static_cast<const ForStmt &>(stmt);
        os << pad(indent) << "for (";
        if (for_stmt.init) {
            std::string init = printStmt(*for_stmt.init, 0);
            while (!init.empty() &&
                   (init.back() == '\n' || init.back() == ' '))
                init.pop_back();
            os << init;
        } else {
            os << ";";
        }
        os << " ";
        if (for_stmt.cond)
            os << printExpr(*for_stmt.cond);
        os << "; ";
        if (for_stmt.step)
            os << printExpr(*for_stmt.step);
        os << ")\n" << printStmt(*for_stmt.body, indent);
        return os.str();
      }
      case StmtKind::Return: {
        const auto &ret = static_cast<const ReturnStmt &>(stmt);
        os << pad(indent) << "return";
        if (ret.value)
            os << " " << printExpr(*ret.value);
        os << ";\n";
        return os.str();
      }
      case StmtKind::Break:
        return pad(indent) + "break;\n";
      case StmtKind::Continue:
        return pad(indent) + "continue;\n";
      case StmtKind::ExprStmt:
        return pad(indent) +
               printExpr(*static_cast<const ExprStmt &>(stmt).expr) +
               ";\n";
    }
    return pad(indent) + "?;\n";
}

std::string
printFunction(const FunctionDecl &func)
{
    std::ostringstream os;
    os << func.returnType->str() << " " << func.name << "(";
    for (std::size_t i = 0; i < func.params.size(); i++) {
        if (i)
            os << ", ";
        os << func.params[i].type->str() << " "
           << func.params[i].name;
    }
    os << ")\n";
    if (func.body)
        os << printStmt(*func.body, 0);
    return os.str();
}

std::string
printProgram(const Program &program)
{
    std::ostringstream os;
    for (const StructInfo *info : program.types->allStructs()) {
        os << "struct " << info->name << " {\n";
        for (const auto &field : info->fields) {
            if (field.type->isArray()) {
                os << "    " << field.type->element()->str() << " "
                   << field.name << "["
                   << field.type->arrayLength() << "];\n";
            } else {
                os << "    " << field.type->str() << " "
                   << field.name << ";\n";
            }
        }
        os << "};\n";
    }
    for (const auto &global : program.globals) {
        if (global->type->isArray()) {
            os << global->type->element()->str() << " "
               << global->name << "["
               << global->type->arrayLength() << "]";
        } else {
            os << global->type->str() << " " << global->name;
        }
        if (global->init)
            os << " = " << printExpr(*global->init);
        os << ";\n";
    }
    if (!program.globals.empty())
        os << "\n";
    for (const auto &func : program.functions)
        os << printFunction(*func) << "\n";
    return os.str();
}

} // namespace compdiff::minic
