#pragma once

/**
 * @file
 * Tokens produced by the MiniC lexer.
 */

#include <cstdint>
#include <string>

#include "support/diagnostics.hh"

namespace compdiff::minic
{

/** Token categories. Punctuators carry their spelling in the kind. */
enum class TokKind
{
    EndOfFile,
    Identifier,
    IntLiteral,    ///< value in Token::intValue; suffix in isLong
    FloatLiteral,  ///< value in Token::floatValue
    StringLiteral, ///< decoded bytes in Token::text
    CharLiteral,   ///< value in Token::intValue

    // Keywords.
    KwVoid, KwChar, KwInt, KwUInt, KwLong, KwULong, KwDouble,
    KwStruct, KwIf, KwElse, KwWhile, KwFor, KwReturn, KwBreak,
    KwContinue, KwSizeof,

    // Punctuators.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semicolon, Comma, Dot, Arrow,
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Shl, Shr,
    Less, LessEq, Greater, GreaterEq, EqEq, BangEq,
    AmpAmp, PipePipe,
    Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
    PercentAssign, AmpAssign, PipeAssign, CaretAssign,
    ShlAssign, ShrAssign,
    Question, Colon,
};

/** Human-readable token-kind name ("identifier", "'+='", ...). */
const char *tokKindName(TokKind kind);

/** One lexed token. */
struct Token
{
    TokKind kind = TokKind::EndOfFile;
    support::SourceLoc loc;
    std::string text;          ///< identifier spelling / string bytes
    std::int64_t intValue = 0; ///< integer / char literal value
    double floatValue = 0;     ///< double literal value
    bool isLong = false;       ///< integer literal had an L suffix
    bool isUnsigned = false;   ///< integer literal had a U suffix

    bool is(TokKind k) const { return kind == k; }
};

} // namespace compdiff::minic
