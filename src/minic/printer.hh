#pragma once

/**
 * @file
 * AST pretty-printer: renders an (analyzed or transformed) AST back
 * to readable MiniC-like source. Its main consumer is debugging the
 * optimization passes — print a function before and after a pass to
 * see exactly what the UB-exploiting rewrite did.
 */

#include <string>

#include "minic/ast.hh"

namespace compdiff::minic
{

/** Render one expression. */
std::string printExpr(const Expr &expr);

/** Render one statement subtree with indentation. */
std::string printStmt(const Stmt &stmt, int indent = 0);

/** Render one function definition. */
std::string printFunction(const FunctionDecl &func);

/** Render the whole program (globals + functions). */
std::string printProgram(const Program &program);

} // namespace compdiff::minic
