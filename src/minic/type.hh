#pragma once

/**
 * @file
 * The MiniC type system.
 *
 * MiniC is the C-like language all benchmark and target programs in
 * this repository are written in. Its type system is a compact subset
 * of C's: void, char (signed 8-bit), int/uint (32-bit), long/ulong
 * (64-bit), double, pointers, fixed-size arrays, and structs. Types
 * are interned in a TypeContext and referenced by const pointer, so
 * type equality is pointer equality.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace compdiff::minic
{

class TypeContext;

/** Categories of MiniC types. */
enum class TypeKind
{
    Void,
    Char,   ///< signed 8-bit
    Int,    ///< signed 32-bit
    UInt,   ///< unsigned 32-bit
    Long,   ///< signed 64-bit
    ULong,  ///< unsigned 64-bit
    Double, ///< IEEE-754 binary64
    Pointer,
    Array,
    Struct,
};

struct StructInfo;

/**
 * An interned MiniC type. Instances are owned by a TypeContext and
 * compared by address.
 */
class Type
{
  public:
    TypeKind kind() const { return kind_; }

    /** Pointee type; valid only for pointers. */
    const Type *pointee() const { return pointee_; }

    /** Element type; valid only for arrays. */
    const Type *element() const { return pointee_; }

    /** Array length; valid only for arrays. */
    std::uint64_t arrayLength() const { return arrayLength_; }

    /** Struct layout record; valid only for structs. */
    const StructInfo *structInfo() const { return structInfo_; }

    /** Size of an object of this type in bytes. */
    std::uint64_t size() const;

    /** Natural alignment of this type in bytes. */
    std::uint64_t align() const;

    bool isVoid() const { return kind_ == TypeKind::Void; }
    bool isPointer() const { return kind_ == TypeKind::Pointer; }
    bool isArray() const { return kind_ == TypeKind::Array; }
    bool isStruct() const { return kind_ == TypeKind::Struct; }
    bool isDouble() const { return kind_ == TypeKind::Double; }

    /** Any char/int/uint/long/ulong type. */
    bool isInteger() const;

    /** Integer or double. */
    bool isArithmetic() const { return isInteger() || isDouble(); }

    /** Integer, double, or pointer — usable in conditions. */
    bool isScalar() const { return isArithmetic() || isPointer(); }

    /** True for char/int/long (signed integer types). */
    bool isSigned() const;

    /** True if values fit in 32 bits (char/int/uint). */
    bool is32OrNarrower() const;

    /** C-like rendering, e.g. "int *", "char [16]". */
    std::string str() const;

  private:
    friend class TypeContext;

    TypeKind kind_ = TypeKind::Void;
    const Type *pointee_ = nullptr;
    std::uint64_t arrayLength_ = 0;
    const StructInfo *structInfo_ = nullptr;
};

/** One field inside a struct layout. */
struct StructField
{
    std::string name;
    const Type *type = nullptr;
    std::uint64_t offset = 0;
};

/** Layout record for a struct type (C layout rules, natural align). */
struct StructInfo
{
    std::string name;
    std::vector<StructField> fields;
    std::uint64_t size = 0;
    std::uint64_t align = 1;

    /** Find a field by name; nullptr if absent. */
    const StructField *field(const std::string &field_name) const;
};

/**
 * Owns and interns all types of one parsed program.
 */
class TypeContext
{
  public:
    TypeContext();
    ~TypeContext();

    TypeContext(const TypeContext &) = delete;
    TypeContext &operator=(const TypeContext &) = delete;

    const Type *voidType() const { return basic_[0]; }
    const Type *charType() const { return basic_[1]; }
    const Type *intType() const { return basic_[2]; }
    const Type *uintType() const { return basic_[3]; }
    const Type *longType() const { return basic_[4]; }
    const Type *ulongType() const { return basic_[5]; }
    const Type *doubleType() const { return basic_[6]; }

    /** Basic type for a kind (not Pointer/Array/Struct). */
    const Type *basic(TypeKind kind) const;

    /** Interned pointer-to-pointee type. */
    const Type *pointerTo(const Type *pointee);

    /** Interned array type. */
    const Type *arrayOf(const Type *element, std::uint64_t length);

    /**
     * Declare a new struct and return its (initially empty) info
     * record for the caller to populate, plus the struct type.
     */
    const Type *declareStruct(const std::string &name);

    /** Look up a declared struct type by name; nullptr if unknown. */
    const Type *findStruct(const std::string &name) const;

    /** Mutable layout record of a declared struct. */
    StructInfo *structInfo(const std::string &name);

    /** All declared structs, in declaration order. */
    std::vector<const StructInfo *> allStructs() const;

    /** Finalize a struct's layout from its field list. */
    static void layoutStruct(StructInfo &info);

  private:
    const Type *intern(Type proto);

    const Type *basic_[7];
    std::vector<std::unique_ptr<Type>> owned_;
    std::vector<std::unique_ptr<StructInfo>> structs_;
};

} // namespace compdiff::minic
