#include "minic/type.hh"

#include <sstream>

#include "support/logging.hh"

namespace compdiff::minic
{

using support::panic;

std::uint64_t
Type::size() const
{
    switch (kind_) {
      case TypeKind::Void: return 0;
      case TypeKind::Char: return 1;
      case TypeKind::Int: return 4;
      case TypeKind::UInt: return 4;
      case TypeKind::Long: return 8;
      case TypeKind::ULong: return 8;
      case TypeKind::Double: return 8;
      case TypeKind::Pointer: return 8;
      case TypeKind::Array: return pointee_->size() * arrayLength_;
      case TypeKind::Struct: return structInfo_->size;
    }
    panic("unhandled type kind in size()");
}

std::uint64_t
Type::align() const
{
    switch (kind_) {
      case TypeKind::Void: return 1;
      case TypeKind::Char: return 1;
      case TypeKind::Int: return 4;
      case TypeKind::UInt: return 4;
      case TypeKind::Long: return 8;
      case TypeKind::ULong: return 8;
      case TypeKind::Double: return 8;
      case TypeKind::Pointer: return 8;
      case TypeKind::Array: return pointee_->align();
      case TypeKind::Struct: return structInfo_->align;
    }
    panic("unhandled type kind in align()");
}

bool
Type::isInteger() const
{
    switch (kind_) {
      case TypeKind::Char:
      case TypeKind::Int:
      case TypeKind::UInt:
      case TypeKind::Long:
      case TypeKind::ULong:
        return true;
      default:
        return false;
    }
}

bool
Type::isSigned() const
{
    switch (kind_) {
      case TypeKind::Char:
      case TypeKind::Int:
      case TypeKind::Long:
        return true;
      default:
        return false;
    }
}

bool
Type::is32OrNarrower() const
{
    switch (kind_) {
      case TypeKind::Char:
      case TypeKind::Int:
      case TypeKind::UInt:
        return true;
      default:
        return false;
    }
}

std::string
Type::str() const
{
    switch (kind_) {
      case TypeKind::Void: return "void";
      case TypeKind::Char: return "char";
      case TypeKind::Int: return "int";
      case TypeKind::UInt: return "uint";
      case TypeKind::Long: return "long";
      case TypeKind::ULong: return "ulong";
      case TypeKind::Double: return "double";
      case TypeKind::Pointer: return pointee_->str() + " *";
      case TypeKind::Array: {
        std::ostringstream os;
        os << pointee_->str() << " [" << arrayLength_ << "]";
        return os.str();
      }
      case TypeKind::Struct: return "struct " + structInfo_->name;
    }
    panic("unhandled type kind in str()");
}

const StructField *
StructInfo::field(const std::string &field_name) const
{
    for (const auto &f : fields)
        if (f.name == field_name)
            return &f;
    return nullptr;
}

TypeContext::TypeContext()
{
    const TypeKind kinds[] = {
        TypeKind::Void, TypeKind::Char, TypeKind::Int, TypeKind::UInt,
        TypeKind::Long, TypeKind::ULong, TypeKind::Double,
    };
    for (std::size_t i = 0; i < 7; i++) {
        auto t = std::make_unique<Type>();
        t->kind_ = kinds[i];
        basic_[i] = t.get();
        owned_.push_back(std::move(t));
    }
}

TypeContext::~TypeContext() = default;

const Type *
TypeContext::basic(TypeKind kind) const
{
    switch (kind) {
      case TypeKind::Void: return basic_[0];
      case TypeKind::Char: return basic_[1];
      case TypeKind::Int: return basic_[2];
      case TypeKind::UInt: return basic_[3];
      case TypeKind::Long: return basic_[4];
      case TypeKind::ULong: return basic_[5];
      case TypeKind::Double: return basic_[6];
      default:
        panic("basic() called with derived type kind");
    }
}

const Type *
TypeContext::intern(Type proto)
{
    for (const auto &t : owned_) {
        if (t->kind_ == proto.kind_ && t->pointee_ == proto.pointee_ &&
            t->arrayLength_ == proto.arrayLength_ &&
            t->structInfo_ == proto.structInfo_) {
            return t.get();
        }
    }
    auto t = std::make_unique<Type>(proto);
    const Type *raw = t.get();
    owned_.push_back(std::move(t));
    return raw;
}

const Type *
TypeContext::pointerTo(const Type *pointee)
{
    Type proto;
    proto.kind_ = TypeKind::Pointer;
    proto.pointee_ = pointee;
    return intern(proto);
}

const Type *
TypeContext::arrayOf(const Type *element, std::uint64_t length)
{
    Type proto;
    proto.kind_ = TypeKind::Array;
    proto.pointee_ = element;
    proto.arrayLength_ = length;
    return intern(proto);
}

const Type *
TypeContext::declareStruct(const std::string &name)
{
    if (findStruct(name))
        panic("struct redeclared: " + name);
    auto info = std::make_unique<StructInfo>();
    info->name = name;
    Type proto;
    proto.kind_ = TypeKind::Struct;
    proto.structInfo_ = info.get();
    structs_.push_back(std::move(info));
    return intern(proto);
}

const Type *
TypeContext::findStruct(const std::string &name) const
{
    for (const auto &t : owned_)
        if (t->kind_ == TypeKind::Struct && t->structInfo_->name == name)
            return t.get();
    return nullptr;
}

StructInfo *
TypeContext::structInfo(const std::string &name)
{
    for (const auto &s : structs_)
        if (s->name == name)
            return s.get();
    return nullptr;
}

std::vector<const StructInfo *>
TypeContext::allStructs() const
{
    std::vector<const StructInfo *> out;
    out.reserve(structs_.size());
    for (const auto &s : structs_)
        out.push_back(s.get());
    return out;
}

void
TypeContext::layoutStruct(StructInfo &info)
{
    std::uint64_t offset = 0;
    std::uint64_t align = 1;
    for (auto &f : info.fields) {
        const std::uint64_t fa = f.type->align();
        offset = (offset + fa - 1) / fa * fa;
        f.offset = offset;
        offset += f.type->size();
        align = std::max(align, fa);
    }
    info.align = align;
    info.size = (offset + align - 1) / align * align;
    if (info.size == 0)
        info.size = align;
}

} // namespace compdiff::minic
