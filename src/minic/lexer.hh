#pragma once

/**
 * @file
 * The MiniC lexer.
 */

#include <string>
#include <string_view>
#include <vector>

#include "minic/token.hh"
#include "support/diagnostics.hh"

namespace compdiff::minic
{

/**
 * Converts MiniC source text into a token stream.
 *
 * Supports // and block comments, decimal/hex integer literals with
 * optional U/L suffixes, double literals, character and string
 * literals with the common escapes.
 */
class Lexer
{
  public:
    /**
     * @param source Source text; must outlive the lexer.
     * @param diags  Sink for lexical errors.
     */
    Lexer(std::string_view source, support::DiagnosticEngine &diags);

    /**
     * Lex the entire buffer.
     *
     * @return All tokens, ending with an EndOfFile token. On a lexical
     *         error, the error is recorded and the offending byte is
     *         skipped.
     */
    std::vector<Token> lexAll();

  private:
    char peek(std::size_t ahead = 0) const;
    char advance();
    bool match(char expected);
    support::SourceLoc here() const;

    void lexNumber(std::vector<Token> &out);
    void lexIdentifier(std::vector<Token> &out);
    void lexString(std::vector<Token> &out);
    void lexChar(std::vector<Token> &out);
    int decodeEscape();

    std::string_view source_;
    support::DiagnosticEngine &diags_;
    std::size_t pos_ = 0;
    std::uint32_t line_ = 1;
    std::uint32_t column_ = 1;
};

} // namespace compdiff::minic
