#include "minic/parser.hh"

#include "minic/lexer.hh"
#include "minic/sema.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace compdiff::minic
{

using support::CompileError;

Parser::Parser(std::string_view source, support::DiagnosticEngine &diags)
    : diags_(diags)
{
    Lexer lexer(source, diags_);
    tokens_ = lexer.lexAll();
    if (diags_.hasErrors())
        throw CompileError("lex error:\n" + diags_.str());
}

const Token &
Parser::peek(std::size_t ahead) const
{
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token &
Parser::advance()
{
    const Token &tok = peek();
    if (pos_ + 1 < tokens_.size())
        pos_++;
    return tok;
}

bool
Parser::accept(TokKind kind)
{
    if (!check(kind))
        return false;
    advance();
    return true;
}

const Token &
Parser::expect(TokKind kind, const char *context)
{
    if (!check(kind)) {
        errorHere(std::string("expected ") + tokKindName(kind) +
                  " in " + context + ", got " +
                  tokKindName(peek().kind));
    }
    return advance();
}

void
Parser::errorHere(const std::string &message)
{
    diags_.error(peek().loc, message);
    throw CompileError("parse error:\n" + diags_.str());
}

bool
Parser::atTypeStart() const
{
    switch (peek().kind) {
      case TokKind::KwVoid:
      case TokKind::KwChar:
      case TokKind::KwInt:
      case TokKind::KwUInt:
      case TokKind::KwLong:
      case TokKind::KwULong:
      case TokKind::KwDouble:
      case TokKind::KwStruct:
        return true;
      default:
        return false;
    }
}

const Type *
Parser::parseType()
{
    TypeContext &types = *program_->types;
    const Type *base = nullptr;
    switch (peek().kind) {
      case TokKind::KwVoid: base = types.voidType(); break;
      case TokKind::KwChar: base = types.charType(); break;
      case TokKind::KwInt: base = types.intType(); break;
      case TokKind::KwUInt: base = types.uintType(); break;
      case TokKind::KwLong: base = types.longType(); break;
      case TokKind::KwULong: base = types.ulongType(); break;
      case TokKind::KwDouble: base = types.doubleType(); break;
      case TokKind::KwStruct: {
        advance();
        const Token &name = expect(TokKind::Identifier, "struct type");
        base = types.findStruct(name.text);
        if (!base)
            errorHere("unknown struct '" + name.text + "'");
        goto stars;
      }
      default:
        errorHere("expected a type");
    }
    advance();
  stars:
    while (accept(TokKind::Star))
        base = types.pointerTo(base);
    return base;
}

void
Parser::parseStructDecl()
{
    // Caller consumed nothing; we are at 'struct'.
    advance(); // struct
    const Token &name = expect(TokKind::Identifier, "struct decl");
    expect(TokKind::LBrace, "struct decl");

    TypeContext &types = *program_->types;
    types.declareStruct(name.text);
    StructInfo *info = types.structInfo(name.text);

    while (!accept(TokKind::RBrace)) {
        const Type *field_type = parseType();
        const Token &field_name =
            expect(TokKind::Identifier, "struct field");
        if (accept(TokKind::LBracket)) {
            const Token &len =
                expect(TokKind::IntLiteral, "array field");
            expect(TokKind::RBracket, "array field");
            field_type = types.arrayOf(
                field_type, static_cast<std::uint64_t>(len.intValue));
        }
        expect(TokKind::Semicolon, "struct field");
        info->fields.push_back({field_name.text, field_type, 0});
    }
    expect(TokKind::Semicolon, "struct decl");
    TypeContext::layoutStruct(*info);
}

std::unique_ptr<Program>
Parser::parseProgram()
{
    program_ = std::make_unique<Program>();
    while (!check(TokKind::EndOfFile))
        parseTopLevel();
    return std::move(program_);
}

void
Parser::parseTopLevel()
{
    if (check(TokKind::KwStruct) && peek(1).is(TokKind::Identifier) &&
        peek(2).is(TokKind::LBrace)) {
        parseStructDecl();
        return;
    }

    const Type *type = parseType();
    Token name_tok = expect(TokKind::Identifier, "top-level decl");

    if (check(TokKind::LParen)) {
        program_->functions.push_back(
            parseFunctionRest(type, std::move(name_tok)));
    } else {
        parseGlobalRest(type, std::move(name_tok));
    }
}

std::unique_ptr<FunctionDecl>
Parser::parseFunctionRest(const Type *ret, Token name_tok)
{
    auto func = std::make_unique<FunctionDecl>();
    func->returnType = ret;
    func->name = name_tok.text;
    func->loc = name_tok.loc;

    expect(TokKind::LParen, "function decl");
    if (!check(TokKind::RParen)) {
        do {
            if (check(TokKind::KwVoid) && peek(1).is(TokKind::RParen)) {
                advance();
                break;
            }
            ParamDecl param;
            param.loc = peek().loc;
            param.type = parseType();
            param.name =
                expect(TokKind::Identifier, "parameter").text;
            func->params.push_back(std::move(param));
        } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "function decl");
    func->body = parseBlock();
    return func;
}

void
Parser::parseGlobalRest(const Type *type, Token name_tok)
{
    auto global = std::make_unique<GlobalDecl>();
    global->name = name_tok.text;
    global->loc = name_tok.loc;

    if (accept(TokKind::LBracket)) {
        const Token &len = expect(TokKind::IntLiteral, "global array");
        expect(TokKind::RBracket, "global array");
        type = program_->types->arrayOf(
            type, static_cast<std::uint64_t>(len.intValue));
    }
    global->type = type;

    if (accept(TokKind::Assign))
        global->init = parseAssignment();
    expect(TokKind::Semicolon, "global decl");
    program_->globals.push_back(std::move(global));
}

std::unique_ptr<BlockStmt>
Parser::parseBlock()
{
    const Token &open = expect(TokKind::LBrace, "block");
    auto block = std::make_unique<BlockStmt>(open.loc);
    while (!accept(TokKind::RBrace)) {
        if (check(TokKind::EndOfFile))
            errorHere("unterminated block");
        block->body.push_back(parseStatement());
    }
    return block;
}

StmtPtr
Parser::parseVarDecl()
{
    const auto loc = peek().loc;
    const Type *type = parseType();
    const Token &name = expect(TokKind::Identifier, "declaration");

    const Type *full = type;
    if (accept(TokKind::LBracket)) {
        const Token &len = expect(TokKind::IntLiteral, "array decl");
        expect(TokKind::RBracket, "array decl");
        full = program_->types->arrayOf(
            type, static_cast<std::uint64_t>(len.intValue));
    }

    ExprPtr init;
    if (accept(TokKind::Assign))
        init = parseAssignment();
    expect(TokKind::Semicolon, "declaration");
    return std::make_unique<VarDeclStmt>(loc, full, name.text,
                                         std::move(init));
}

StmtPtr
Parser::parseStatement()
{
    const auto loc = peek().loc;

    if (check(TokKind::LBrace))
        return parseBlock();

    if (atTypeStart())
        return parseVarDecl();

    if (accept(TokKind::KwIf)) {
        expect(TokKind::LParen, "if");
        auto cond = parseExpr();
        expect(TokKind::RParen, "if");
        auto then_stmt = parseStatement();
        StmtPtr else_stmt;
        if (accept(TokKind::KwElse))
            else_stmt = parseStatement();
        return std::make_unique<IfStmt>(loc, std::move(cond),
                                        std::move(then_stmt),
                                        std::move(else_stmt));
    }

    if (accept(TokKind::KwWhile)) {
        expect(TokKind::LParen, "while");
        auto cond = parseExpr();
        expect(TokKind::RParen, "while");
        auto body = parseStatement();
        return std::make_unique<WhileStmt>(loc, std::move(cond),
                                           std::move(body));
    }

    if (accept(TokKind::KwFor)) {
        expect(TokKind::LParen, "for");
        StmtPtr init;
        if (!accept(TokKind::Semicolon)) {
            if (atTypeStart()) {
                init = parseVarDecl(); // consumes ';'
            } else {
                auto e = parseExpr();
                init = std::make_unique<ExprStmt>(loc, std::move(e));
                expect(TokKind::Semicolon, "for init");
            }
        }
        ExprPtr cond;
        if (!check(TokKind::Semicolon))
            cond = parseExpr();
        expect(TokKind::Semicolon, "for condition");
        ExprPtr step;
        if (!check(TokKind::RParen))
            step = parseExpr();
        expect(TokKind::RParen, "for");
        auto body = parseStatement();
        return std::make_unique<ForStmt>(loc, std::move(init),
                                         std::move(cond),
                                         std::move(step),
                                         std::move(body));
    }

    if (accept(TokKind::KwReturn)) {
        ExprPtr value;
        if (!check(TokKind::Semicolon))
            value = parseExpr();
        expect(TokKind::Semicolon, "return");
        return std::make_unique<ReturnStmt>(loc, std::move(value));
    }

    if (accept(TokKind::KwBreak)) {
        expect(TokKind::Semicolon, "break");
        return std::make_unique<BreakStmt>(loc);
    }

    if (accept(TokKind::KwContinue)) {
        expect(TokKind::Semicolon, "continue");
        return std::make_unique<ContinueStmt>(loc);
    }

    auto expr = parseExpr();
    expect(TokKind::Semicolon, "expression statement");
    return std::make_unique<ExprStmt>(loc, std::move(expr));
}

ExprPtr
Parser::parseExpr()
{
    return parseAssignment();
}

namespace
{

std::optional<BinaryOp>
compoundOpFor(TokKind kind)
{
    switch (kind) {
      case TokKind::PlusAssign: return BinaryOp::Add;
      case TokKind::MinusAssign: return BinaryOp::Sub;
      case TokKind::StarAssign: return BinaryOp::Mul;
      case TokKind::SlashAssign: return BinaryOp::Div;
      case TokKind::PercentAssign: return BinaryOp::Rem;
      case TokKind::AmpAssign: return BinaryOp::BitAnd;
      case TokKind::PipeAssign: return BinaryOp::BitOr;
      case TokKind::CaretAssign: return BinaryOp::BitXor;
      case TokKind::ShlAssign: return BinaryOp::Shl;
      case TokKind::ShrAssign: return BinaryOp::Shr;
      default: return std::nullopt;
    }
}

/** Binding power for the binary-operator precedence climber. */
int
precedenceOf(TokKind kind)
{
    switch (kind) {
      case TokKind::PipePipe: return 1;
      case TokKind::AmpAmp: return 2;
      case TokKind::Pipe: return 3;
      case TokKind::Caret: return 4;
      case TokKind::Amp: return 5;
      case TokKind::EqEq:
      case TokKind::BangEq: return 6;
      case TokKind::Less:
      case TokKind::LessEq:
      case TokKind::Greater:
      case TokKind::GreaterEq: return 7;
      case TokKind::Shl:
      case TokKind::Shr: return 8;
      case TokKind::Plus:
      case TokKind::Minus: return 9;
      case TokKind::Star:
      case TokKind::Slash:
      case TokKind::Percent: return 10;
      default: return 0;
    }
}

BinaryOp
binaryOpFor(TokKind kind)
{
    switch (kind) {
      case TokKind::PipePipe: return BinaryOp::LogOr;
      case TokKind::AmpAmp: return BinaryOp::LogAnd;
      case TokKind::Pipe: return BinaryOp::BitOr;
      case TokKind::Caret: return BinaryOp::BitXor;
      case TokKind::Amp: return BinaryOp::BitAnd;
      case TokKind::EqEq: return BinaryOp::Eq;
      case TokKind::BangEq: return BinaryOp::Ne;
      case TokKind::Less: return BinaryOp::Lt;
      case TokKind::LessEq: return BinaryOp::Le;
      case TokKind::Greater: return BinaryOp::Gt;
      case TokKind::GreaterEq: return BinaryOp::Ge;
      case TokKind::Shl: return BinaryOp::Shl;
      case TokKind::Shr: return BinaryOp::Shr;
      case TokKind::Plus: return BinaryOp::Add;
      case TokKind::Minus: return BinaryOp::Sub;
      case TokKind::Star: return BinaryOp::Mul;
      case TokKind::Slash: return BinaryOp::Div;
      case TokKind::Percent: return BinaryOp::Rem;
      default:
        support::panic("binaryOpFor: not a binary operator token");
    }
}

} // namespace

ExprPtr
Parser::parseAssignment()
{
    auto lhs = parseTernary();

    const auto loc = peek().loc;
    if (accept(TokKind::Assign)) {
        auto rhs = parseAssignment();
        return std::make_unique<AssignExpr>(loc, std::move(lhs),
                                            std::move(rhs));
    }
    if (auto op = compoundOpFor(peek().kind)) {
        advance();
        auto rhs = parseAssignment();
        return std::make_unique<AssignExpr>(loc, std::move(lhs),
                                            std::move(rhs), op);
    }
    return lhs;
}

ExprPtr
Parser::parseTernary()
{
    auto cond = parseBinary(1);
    if (!check(TokKind::Question))
        return cond;
    const auto loc = advance().loc;
    auto then_expr = parseExpr();
    expect(TokKind::Colon, "ternary");
    auto else_expr = parseTernary();
    return std::make_unique<CondExpr>(loc, std::move(cond),
                                      std::move(then_expr),
                                      std::move(else_expr));
}

ExprPtr
Parser::parseBinary(int min_prec)
{
    auto lhs = parseUnary();
    for (;;) {
        const int prec = precedenceOf(peek().kind);
        if (prec == 0 || prec < min_prec)
            return lhs;
        const Token &op_tok = advance();
        auto rhs = parseBinary(prec + 1);
        lhs = std::make_unique<BinaryExpr>(op_tok.loc,
                                           binaryOpFor(op_tok.kind),
                                           std::move(lhs),
                                           std::move(rhs));
    }
}

ExprPtr
Parser::parseUnary()
{
    const auto loc = peek().loc;
    switch (peek().kind) {
      case TokKind::Minus:
        advance();
        return std::make_unique<UnaryExpr>(loc, UnaryOp::Neg,
                                           parseUnary());
      case TokKind::Tilde:
        advance();
        return std::make_unique<UnaryExpr>(loc, UnaryOp::BitNot,
                                           parseUnary());
      case TokKind::Bang:
        advance();
        return std::make_unique<UnaryExpr>(loc, UnaryOp::LogNot,
                                           parseUnary());
      case TokKind::Star:
        advance();
        return std::make_unique<UnaryExpr>(loc, UnaryOp::Deref,
                                           parseUnary());
      case TokKind::Amp:
        advance();
        return std::make_unique<UnaryExpr>(loc, UnaryOp::AddrOf,
                                           parseUnary());
      case TokKind::Plus:
        advance();
        return parseUnary();
      case TokKind::KwSizeof: {
        advance();
        expect(TokKind::LParen, "sizeof");
        const Type *queried = parseType();
        expect(TokKind::RParen, "sizeof");
        return std::make_unique<SizeOfExpr>(loc, queried);
      }
      case TokKind::LParen:
        // Cast if a type follows; otherwise grouped expression.
        if (pos_ + 1 < tokens_.size()) {
            switch (peek(1).kind) {
              case TokKind::KwVoid:
              case TokKind::KwChar:
              case TokKind::KwInt:
              case TokKind::KwUInt:
              case TokKind::KwLong:
              case TokKind::KwULong:
              case TokKind::KwDouble:
              case TokKind::KwStruct: {
                advance(); // (
                const Type *target = parseType();
                expect(TokKind::RParen, "cast");
                return std::make_unique<CastExpr>(loc, target,
                                                  parseUnary());
              }
              default:
                break;
            }
        }
        return parsePostfix();
      default:
        return parsePostfix();
    }
}

ExprPtr
Parser::parsePostfix()
{
    auto expr = parsePrimary();
    for (;;) {
        const auto loc = peek().loc;
        if (accept(TokKind::LBracket)) {
            auto index = parseExpr();
            expect(TokKind::RBracket, "subscript");
            expr = std::make_unique<IndexExpr>(loc, std::move(expr),
                                               std::move(index));
        } else if (accept(TokKind::Dot)) {
            const Token &field =
                expect(TokKind::Identifier, "member access");
            expr = std::make_unique<MemberExpr>(loc, std::move(expr),
                                                field.text, false);
        } else if (accept(TokKind::Arrow)) {
            const Token &field =
                expect(TokKind::Identifier, "member access");
            expr = std::make_unique<MemberExpr>(loc, std::move(expr),
                                                field.text, true);
        } else {
            return expr;
        }
    }
}

ExprPtr
Parser::parsePrimary()
{
    const Token &tok = peek();
    switch (tok.kind) {
      case TokKind::IntLiteral: {
        advance();
        auto lit = std::make_unique<IntLitExpr>(tok.loc, tok.intValue);
        lit->isLong = tok.isLong;
        lit->isUnsigned = tok.isUnsigned;
        return lit;
      }
      case TokKind::FloatLiteral:
        advance();
        return std::make_unique<FloatLitExpr>(tok.loc, tok.floatValue);
      case TokKind::CharLiteral:
        advance();
        return std::make_unique<IntLitExpr>(tok.loc, tok.intValue);
      case TokKind::StringLiteral:
        advance();
        return std::make_unique<StrLitExpr>(tok.loc, tok.text);
      case TokKind::Identifier: {
        advance();
        if (check(TokKind::LParen)) {
            advance();
            std::vector<ExprPtr> args;
            if (!check(TokKind::RParen)) {
                do {
                    args.push_back(parseAssignment());
                } while (accept(TokKind::Comma));
            }
            expect(TokKind::RParen, "call");
            return std::make_unique<CallExpr>(tok.loc, tok.text,
                                              std::move(args));
        }
        return std::make_unique<VarRefExpr>(tok.loc, tok.text);
      }
      case TokKind::LParen: {
        advance();
        auto inner = parseExpr();
        expect(TokKind::RParen, "parenthesized expression");
        return inner;
      }
      default:
        errorHere(std::string("unexpected ") +
                  tokKindName(tok.kind) + " in expression");
    }
}

std::unique_ptr<Program>
parseAndCheck(std::string_view source)
{
    support::DiagnosticEngine diags;
    std::unique_ptr<Program> program;
    {
        obs::Span span("minic.parse");
        Parser parser(source, diags);
        program = parser.parseProgram();
        obs::counter("minic.parses").add();
        obs::counter("minic.source_bytes").add(source.size());
    }
    obs::Span span("minic.sema");
    Sema sema(diags);
    if (!sema.analyze(*program))
        throw CompileError("semantic error:\n" + diags.str());
    return program;
}

} // namespace compdiff::minic
