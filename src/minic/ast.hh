#pragma once

/**
 * @file
 * The MiniC abstract syntax tree.
 *
 * The AST is produced by the parser, annotated in place by semantic
 * analysis (types, symbol ids), and then consumed by three independent
 * clients: the static analyzers (read-only), the optimizing compiler
 * (which clones functions per compiler configuration before applying
 * UB-exploiting transforms), and the test-suite generators. Every node
 * therefore supports deep clone() with annotations preserved.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minic/type.hh"
#include "support/diagnostics.hh"

namespace compdiff::minic
{

using support::SourceLoc;

/** Unary operator kinds. */
enum class UnaryOp
{
    Neg,    ///< -x
    BitNot, ///< ~x
    LogNot, ///< !x
    Deref,  ///< *p
    AddrOf, ///< &lvalue
};

/** Binary operator kinds (assignment is a separate node). */
enum class BinaryOp
{
    Add, Sub, Mul, Div, Rem,
    Shl, Shr,
    BitAnd, BitOr, BitXor,
    Lt, Le, Gt, Ge, Eq, Ne,
    LogAnd, LogOr,
};

/** Spelling of a binary operator ("+", "<=", ...). */
const char *binaryOpSpelling(BinaryOp op);

/** True for Lt/Le/Gt/Ge/Eq/Ne. */
bool isComparison(BinaryOp op);

/**
 * Built-in functions recognized by semantic analysis. Their run-time
 * semantics live in the VM; several of them are the hooks through
 * which implementation-defined and undefined behavior enters MiniC
 * programs (cur_line, time_stamp, bad_rand, ...).
 */
enum class Builtin
{
    None,      ///< not a builtin (user-defined function)
    PrintInt,  ///< print_int(int)
    PrintUInt, ///< print_uint(uint)
    PrintLong, ///< print_long(long)
    PrintChar, ///< print_char(int)
    PrintStr,  ///< print_str(char *)
    PrintF,    ///< print_f(double) — %.12g formatting
    PrintHex,  ///< print_hex(ulong)
    PrintPtr,  ///< print_ptr(char *) — prints the raw address
    Newline,   ///< newline()
    InputSize, ///< input_size() -> int
    InputByte, ///< input_byte(int) -> int, -1 when out of range
    ReadByte,  ///< read_byte() -> int, cursor-based, -1 at EOF
    Malloc,    ///< malloc(long) -> char *
    Free,      ///< free(char *)
    Memset,    ///< memset(char *, int, long)
    Memcpy,    ///< memcpy(char *, char *, long) — overlap is UB
    Strlen,    ///< strlen(char *) -> long
    Strcpy,    ///< strcpy(char *, char *)
    Strcmp,    ///< strcmp(char *, char *) -> int
    Exit,      ///< exit(int)
    Abort,     ///< abort()
    CurLine,   ///< cur_line() -> int; implementation-defined value
    PowF,      ///< pow_f(double, double) -> double
    SqrtF,     ///< sqrt_f(double) -> double
    FloorF,    ///< floor_f(double) -> double
    TimeStamp, ///< time_stamp() -> long; varies per execution
    BadRand,   ///< bad_rand() -> int; reads undefined memory
    Probe,     ///< probe(int); ground-truth side channel, no output
};

/** Number of parameters a builtin takes, or -1 if not a builtin. */
int builtinArity(Builtin builtin);

/** Resolve a callee name to a builtin; Builtin::None if unknown. */
Builtin builtinFromName(const std::string &name);

class Expr;
class Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/** Expression node kinds, for switch-based dispatch. */
enum class ExprKind
{
    IntLit, FloatLit, StrLit, VarRef, Unary, Binary, Assign, Cond,
    Call, Index, Member, Cast, SizeOf,
};

/**
 * Base class of all MiniC expressions.
 */
class Expr
{
  public:
    explicit Expr(ExprKind kind, SourceLoc loc)
        : kind_(kind), loc_(loc)
    {}
    virtual ~Expr() = default;

    ExprKind kind() const { return kind_; }
    SourceLoc loc() const { return loc_; }

    /** Deep copy with all semantic annotations preserved. */
    virtual ExprPtr clone() const = 0;

    /** Result type; set by semantic analysis (or by transforms). */
    const Type *type = nullptr;

  protected:
    void copyAnnotations(Expr &dst) const { dst.type = type; }

  private:
    ExprKind kind_;
    SourceLoc loc_;
};

/** Integer literal (also the result of constant folding). */
class IntLitExpr : public Expr
{
  public:
    IntLitExpr(SourceLoc loc, std::int64_t value)
        : Expr(ExprKind::IntLit, loc), value(value)
    {}

    ExprPtr clone() const override;

    std::int64_t value;
    bool isLong = false;     ///< literal had an L suffix
    bool isUnsigned = false; ///< literal had a U suffix
};

/** Double literal. */
class FloatLitExpr : public Expr
{
  public:
    FloatLitExpr(SourceLoc loc, double value)
        : Expr(ExprKind::FloatLit, loc), value(value)
    {}

    ExprPtr clone() const override;

    double value;
};

/** String literal; lowered to a read-only data blob. */
class StrLitExpr : public Expr
{
  public:
    StrLitExpr(SourceLoc loc, std::string bytes)
        : Expr(ExprKind::StrLit, loc), bytes(std::move(bytes))
    {}

    ExprPtr clone() const override;

    /** Raw bytes, NUL terminator not included. */
    std::string bytes;
};

/** Reference to a local, parameter, or global variable. */
class VarRefExpr : public Expr
{
  public:
    VarRefExpr(SourceLoc loc, std::string name)
        : Expr(ExprKind::VarRef, loc), name(std::move(name))
    {}

    ExprPtr clone() const override;

    std::string name;
    bool isGlobal = false; ///< set by sema
    int id = -1;           ///< localId or globalId, set by sema
};

/** Unary operation. */
class UnaryExpr : public Expr
{
  public:
    UnaryExpr(SourceLoc loc, UnaryOp op, ExprPtr operand)
        : Expr(ExprKind::Unary, loc), op(op),
          operand(std::move(operand))
    {}

    ExprPtr clone() const override;

    UnaryOp op;
    ExprPtr operand;
};

/** Binary operation. */
class BinaryExpr : public Expr
{
  public:
    BinaryExpr(SourceLoc loc, BinaryOp op, ExprPtr lhs, ExprPtr rhs)
        : Expr(ExprKind::Binary, loc), op(op), lhs(std::move(lhs)),
          rhs(std::move(rhs))
    {}

    ExprPtr clone() const override;

    BinaryOp op;
    ExprPtr lhs;
    ExprPtr rhs;

    /**
     * Set by the arithmetic-widening transform: evaluate this 32-bit
     * operation in 64 bits without truncating the intermediate result
     * (legal because signed overflow would be UB).
     */
    bool widenTo64 = false;
};

/** Assignment, simple or compound. The target must be an lvalue. */
class AssignExpr : public Expr
{
  public:
    AssignExpr(SourceLoc loc, ExprPtr target, ExprPtr value,
               std::optional<BinaryOp> compound_op = std::nullopt)
        : Expr(ExprKind::Assign, loc), target(std::move(target)),
          value(std::move(value)), compoundOp(compound_op)
    {}

    ExprPtr clone() const override;

    ExprPtr target;
    ExprPtr value;
    /** For `a op= b`, the underlying op; empty for plain `=`. */
    std::optional<BinaryOp> compoundOp;
};

/** Ternary conditional. */
class CondExpr : public Expr
{
  public:
    CondExpr(SourceLoc loc, ExprPtr cond, ExprPtr then_expr,
             ExprPtr else_expr)
        : Expr(ExprKind::Cond, loc), cond(std::move(cond)),
          thenExpr(std::move(then_expr)), elseExpr(std::move(else_expr))
    {}

    ExprPtr clone() const override;

    ExprPtr cond;
    ExprPtr thenExpr;
    ExprPtr elseExpr;
};

/** Function call (user function or builtin). */
class CallExpr : public Expr
{
  public:
    CallExpr(SourceLoc loc, std::string callee,
             std::vector<ExprPtr> args)
        : Expr(ExprKind::Call, loc), callee(std::move(callee)),
          args(std::move(args))
    {}

    ExprPtr clone() const override;

    std::string callee;
    std::vector<ExprPtr> args;
    Builtin builtin = Builtin::None; ///< set by sema
    int funcIndex = -1;              ///< user function index, by sema
};

/** Array/pointer subscription. */
class IndexExpr : public Expr
{
  public:
    IndexExpr(SourceLoc loc, ExprPtr base, ExprPtr index)
        : Expr(ExprKind::Index, loc), base(std::move(base)),
          index(std::move(index))
    {}

    ExprPtr clone() const override;

    ExprPtr base;
    ExprPtr index;
};

/** Struct member access, `s.f` or `p->f`. */
class MemberExpr : public Expr
{
  public:
    MemberExpr(SourceLoc loc, ExprPtr base, std::string field,
               bool is_arrow)
        : Expr(ExprKind::Member, loc), base(std::move(base)),
          field(std::move(field)), isArrow(is_arrow)
    {}

    ExprPtr clone() const override;

    ExprPtr base;
    std::string field;
    bool isArrow;
    std::uint64_t fieldOffset = 0; ///< set by sema
};

/** C-style cast. */
class CastExpr : public Expr
{
  public:
    CastExpr(SourceLoc loc, const Type *target, ExprPtr operand)
        : Expr(ExprKind::Cast, loc), target(target),
          operand(std::move(operand))
    {}

    ExprPtr clone() const override;

    const Type *target;
    ExprPtr operand;
};

/** sizeof(type); folded to a constant by lowering. */
class SizeOfExpr : public Expr
{
  public:
    SizeOfExpr(SourceLoc loc, const Type *queried)
        : Expr(ExprKind::SizeOf, loc), queried(queried)
    {}

    ExprPtr clone() const override;

    const Type *queried;
};

/** Statement node kinds. */
enum class StmtKind
{
    Block, VarDecl, If, While, For, Return, Break, Continue, ExprStmt,
};

/**
 * Base class of all MiniC statements.
 */
class Stmt
{
  public:
    explicit Stmt(StmtKind kind, SourceLoc loc) : kind_(kind), loc_(loc)
    {}
    virtual ~Stmt() = default;

    StmtKind kind() const { return kind_; }
    SourceLoc loc() const { return loc_; }

    /** Deep copy with all semantic annotations preserved. */
    virtual StmtPtr clone() const = 0;

  private:
    StmtKind kind_;
    SourceLoc loc_;
};

/** `{ ... }` */
class BlockStmt : public Stmt
{
  public:
    explicit BlockStmt(SourceLoc loc) : Stmt(StmtKind::Block, loc) {}

    StmtPtr clone() const override;

    std::vector<StmtPtr> body;
};

/** Local variable declaration with optional initializer. */
class VarDeclStmt : public Stmt
{
  public:
    VarDeclStmt(SourceLoc loc, const Type *decl_type, std::string name,
                ExprPtr init)
        : Stmt(StmtKind::VarDecl, loc), declType(decl_type),
          name(std::move(name)), init(std::move(init))
    {}

    StmtPtr clone() const override;

    const Type *declType;
    std::string name;
    ExprPtr init; ///< may be null (then the storage is uninitialized)
    int localId = -1; ///< set by sema
};

/** `if (...) ... else ...` */
class IfStmt : public Stmt
{
  public:
    IfStmt(SourceLoc loc, ExprPtr cond, StmtPtr then_stmt,
           StmtPtr else_stmt)
        : Stmt(StmtKind::If, loc), cond(std::move(cond)),
          thenStmt(std::move(then_stmt)), elseStmt(std::move(else_stmt))
    {}

    StmtPtr clone() const override;

    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt; ///< may be null
};

/** `while (...) ...` */
class WhileStmt : public Stmt
{
  public:
    WhileStmt(SourceLoc loc, ExprPtr cond, StmtPtr body)
        : Stmt(StmtKind::While, loc), cond(std::move(cond)),
          body(std::move(body))
    {}

    StmtPtr clone() const override;

    ExprPtr cond;
    StmtPtr body;
};

/** `for (init; cond; step) ...` — any clause may be absent. */
class ForStmt : public Stmt
{
  public:
    ForStmt(SourceLoc loc, StmtPtr init, ExprPtr cond, ExprPtr step,
            StmtPtr body)
        : Stmt(StmtKind::For, loc), init(std::move(init)),
          cond(std::move(cond)), step(std::move(step)),
          body(std::move(body))
    {}

    StmtPtr clone() const override;

    StmtPtr init; ///< VarDecl or ExprStmt; may be null
    ExprPtr cond; ///< may be null (infinite)
    ExprPtr step; ///< may be null
    StmtPtr body;
};

/** `return expr;` or `return;` */
class ReturnStmt : public Stmt
{
  public:
    ReturnStmt(SourceLoc loc, ExprPtr value)
        : Stmt(StmtKind::Return, loc), value(std::move(value))
    {}

    StmtPtr clone() const override;

    ExprPtr value; ///< may be null
};

/** `break;` */
class BreakStmt : public Stmt
{
  public:
    explicit BreakStmt(SourceLoc loc) : Stmt(StmtKind::Break, loc) {}
    StmtPtr clone() const override;
};

/** `continue;` */
class ContinueStmt : public Stmt
{
  public:
    explicit ContinueStmt(SourceLoc loc)
        : Stmt(StmtKind::Continue, loc)
    {}
    StmtPtr clone() const override;
};

/** Expression evaluated for its side effects. */
class ExprStmt : public Stmt
{
  public:
    ExprStmt(SourceLoc loc, ExprPtr expr)
        : Stmt(StmtKind::ExprStmt, loc), expr(std::move(expr))
    {}

    StmtPtr clone() const override;

    ExprPtr expr;
};

/** One function parameter. */
struct ParamDecl
{
    const Type *type = nullptr;
    std::string name;
    int localId = -1; ///< set by sema
    SourceLoc loc;
};

/**
 * Storage slot descriptor for a local variable or parameter; the list
 * is populated by semantic analysis and indexed by localId. The
 * backend assigns per-configuration frame offsets from it.
 */
struct LocalSlot
{
    const Type *type = nullptr;
    std::string name;
    bool isParam = false;
};

/** A function definition. */
class FunctionDecl
{
  public:
    const Type *returnType = nullptr;
    std::string name;
    std::vector<ParamDecl> params;
    std::unique_ptr<BlockStmt> body;
    SourceLoc loc;

    int index = -1;                ///< position in Program::functions
    std::vector<LocalSlot> locals; ///< set by sema, indexed by localId

    /** Deep copy (annotations preserved). */
    std::unique_ptr<FunctionDecl> clone() const;
};

/** A global variable definition. */
class GlobalDecl
{
  public:
    const Type *type = nullptr;
    std::string name;
    /** Constant initializer; may be null (then zero-initialized). */
    ExprPtr init;
    SourceLoc loc;
    int globalId = -1; ///< set by sema

    std::unique_ptr<GlobalDecl> clone() const;
};

/**
 * A parsed (and, after Sema, annotated) MiniC program.
 *
 * Owns the TypeContext so that cloned functions can keep referring to
 * the same interned types.
 */
class Program
{
  public:
    Program() : types(std::make_unique<TypeContext>()) {}

    Program(const Program &) = delete;
    Program &operator=(const Program &) = delete;

    std::unique_ptr<TypeContext> types;
    std::vector<std::unique_ptr<GlobalDecl>> globals;
    std::vector<std::unique_ptr<FunctionDecl>> functions;

    /** Find a function by name; nullptr if absent. */
    const FunctionDecl *findFunction(const std::string &name) const;
    FunctionDecl *findFunction(const std::string &name);

    /** Find a global by name; nullptr if absent. */
    const GlobalDecl *findGlobal(const std::string &name) const;
};

} // namespace compdiff::minic
