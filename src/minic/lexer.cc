#include "minic/lexer.hh"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace compdiff::minic
{

Lexer::Lexer(std::string_view source, support::DiagnosticEngine &diags)
    : source_(source), diags_(diags)
{}

char
Lexer::peek(std::size_t ahead) const
{
    const std::size_t i = pos_ + ahead;
    return i < source_.size() ? source_[i] : '\0';
}

char
Lexer::advance()
{
    const char c = peek();
    if (c == '\0')
        return c;
    pos_++;
    if (c == '\n') {
        line_++;
        column_ = 1;
    } else {
        column_++;
    }
    return c;
}

bool
Lexer::match(char expected)
{
    if (peek() != expected)
        return false;
    advance();
    return true;
}

support::SourceLoc
Lexer::here() const
{
    return {line_, column_};
}

std::vector<Token>
Lexer::lexAll()
{
    static const std::unordered_map<std::string_view, TokKind> keywords =
    {
        {"void", TokKind::KwVoid},     {"char", TokKind::KwChar},
        {"int", TokKind::KwInt},       {"uint", TokKind::KwUInt},
        {"long", TokKind::KwLong},     {"ulong", TokKind::KwULong},
        {"double", TokKind::KwDouble}, {"struct", TokKind::KwStruct},
        {"if", TokKind::KwIf},         {"else", TokKind::KwElse},
        {"while", TokKind::KwWhile},   {"for", TokKind::KwFor},
        {"return", TokKind::KwReturn}, {"break", TokKind::KwBreak},
        {"continue", TokKind::KwContinue},
        {"sizeof", TokKind::KwSizeof},
    };

    std::vector<Token> out;
    for (;;) {
        // Skip whitespace and comments.
        for (;;) {
            const char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (peek() != '\n' && peek() != '\0')
                    advance();
            } else if (c == '/' && peek(1) == '*') {
                const auto start = here();
                advance();
                advance();
                while (!(peek() == '*' && peek(1) == '/')) {
                    if (peek() == '\0') {
                        diags_.error(start, "unterminated comment");
                        break;
                    }
                    advance();
                }
                advance();
                advance();
            } else {
                break;
            }
        }

        const auto loc = here();
        const char c = peek();
        if (c == '\0') {
            Token eof;
            eof.kind = TokKind::EndOfFile;
            eof.loc = loc;
            out.push_back(eof);
            return out;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            lexNumber(out);
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            lexIdentifier(out);
            auto &tok = out.back();
            auto it = keywords.find(tok.text);
            if (it != keywords.end())
                tok.kind = it->second;
            continue;
        }
        if (c == '"') {
            lexString(out);
            continue;
        }
        if (c == '\'') {
            lexChar(out);
            continue;
        }

        // Punctuators.
        advance();
        Token tok;
        tok.loc = loc;
        switch (c) {
          case '(': tok.kind = TokKind::LParen; break;
          case ')': tok.kind = TokKind::RParen; break;
          case '{': tok.kind = TokKind::LBrace; break;
          case '}': tok.kind = TokKind::RBrace; break;
          case '[': tok.kind = TokKind::LBracket; break;
          case ']': tok.kind = TokKind::RBracket; break;
          case ';': tok.kind = TokKind::Semicolon; break;
          case ',': tok.kind = TokKind::Comma; break;
          case '.': tok.kind = TokKind::Dot; break;
          case '~': tok.kind = TokKind::Tilde; break;
          case '?': tok.kind = TokKind::Question; break;
          case ':': tok.kind = TokKind::Colon; break;
          case '+':
            tok.kind = match('=') ? TokKind::PlusAssign : TokKind::Plus;
            break;
          case '-':
            if (match('>'))
                tok.kind = TokKind::Arrow;
            else if (match('='))
                tok.kind = TokKind::MinusAssign;
            else
                tok.kind = TokKind::Minus;
            break;
          case '*':
            tok.kind = match('=') ? TokKind::StarAssign : TokKind::Star;
            break;
          case '/':
            tok.kind =
                match('=') ? TokKind::SlashAssign : TokKind::Slash;
            break;
          case '%':
            tok.kind =
                match('=') ? TokKind::PercentAssign : TokKind::Percent;
            break;
          case '&':
            if (match('&'))
                tok.kind = TokKind::AmpAmp;
            else if (match('='))
                tok.kind = TokKind::AmpAssign;
            else
                tok.kind = TokKind::Amp;
            break;
          case '|':
            if (match('|'))
                tok.kind = TokKind::PipePipe;
            else if (match('='))
                tok.kind = TokKind::PipeAssign;
            else
                tok.kind = TokKind::Pipe;
            break;
          case '^':
            tok.kind = match('=') ? TokKind::CaretAssign : TokKind::Caret;
            break;
          case '!':
            tok.kind = match('=') ? TokKind::BangEq : TokKind::Bang;
            break;
          case '=':
            tok.kind = match('=') ? TokKind::EqEq : TokKind::Assign;
            break;
          case '<':
            if (match('<'))
                tok.kind =
                    match('=') ? TokKind::ShlAssign : TokKind::Shl;
            else if (match('='))
                tok.kind = TokKind::LessEq;
            else
                tok.kind = TokKind::Less;
            break;
          case '>':
            if (match('>'))
                tok.kind =
                    match('=') ? TokKind::ShrAssign : TokKind::Shr;
            else if (match('='))
                tok.kind = TokKind::GreaterEq;
            else
                tok.kind = TokKind::Greater;
            break;
          default:
            diags_.error(loc, std::string("unexpected character '") +
                                  c + "'");
            continue;
        }
        out.push_back(std::move(tok));
    }
}

void
Lexer::lexNumber(std::vector<Token> &out)
{
    Token tok;
    tok.loc = here();
    std::string digits;

    bool is_hex = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        is_hex = true;
        while (std::isxdigit(static_cast<unsigned char>(peek())))
            digits += advance();
        if (digits.empty())
            diags_.error(tok.loc, "empty hex literal");
    } else {
        while (std::isdigit(static_cast<unsigned char>(peek())))
            digits += advance();
    }

    bool is_float = false;
    if (!is_hex && peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        digits += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
            digits += advance();
        if (peek() == 'e' || peek() == 'E') {
            digits += advance();
            if (peek() == '+' || peek() == '-')
                digits += advance();
            while (std::isdigit(static_cast<unsigned char>(peek())))
                digits += advance();
        }
    }

    if (is_float) {
        tok.kind = TokKind::FloatLiteral;
        tok.floatValue = std::strtod(digits.c_str(), nullptr);
    } else {
        tok.kind = TokKind::IntLiteral;
        tok.intValue = static_cast<std::int64_t>(
            std::strtoull(digits.c_str(), nullptr, is_hex ? 16 : 10));
        for (;;) {
            if (peek() == 'L' || peek() == 'l') {
                advance();
                tok.isLong = true;
            } else if (peek() == 'U' || peek() == 'u') {
                advance();
                tok.isUnsigned = true;
            } else {
                break;
            }
        }
    }
    out.push_back(std::move(tok));
}

void
Lexer::lexIdentifier(std::vector<Token> &out)
{
    Token tok;
    tok.loc = here();
    tok.kind = TokKind::Identifier;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_') {
        tok.text += advance();
    }
    out.push_back(std::move(tok));
}

int
Lexer::decodeEscape()
{
    // Caller consumed the backslash.
    const char c = advance();
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      case 'x': {
        int value = 0;
        for (int i = 0; i < 2 &&
                        std::isxdigit(static_cast<unsigned char>(peek()));
             i++) {
            const char h = advance();
            value = value * 16 +
                    (std::isdigit(static_cast<unsigned char>(h))
                         ? h - '0'
                         : std::tolower(h) - 'a' + 10);
        }
        return value;
      }
      default:
        diags_.error(here(), std::string("bad escape '\\") + c + "'");
        return c;
    }
}

void
Lexer::lexString(std::vector<Token> &out)
{
    Token tok;
    tok.loc = here();
    tok.kind = TokKind::StringLiteral;
    advance(); // opening quote
    for (;;) {
        const char c = peek();
        if (c == '\0' || c == '\n') {
            diags_.error(tok.loc, "unterminated string literal");
            break;
        }
        if (c == '"') {
            advance();
            break;
        }
        if (c == '\\') {
            advance();
            tok.text += static_cast<char>(decodeEscape());
        } else {
            tok.text += advance();
        }
    }
    out.push_back(std::move(tok));
}

void
Lexer::lexChar(std::vector<Token> &out)
{
    Token tok;
    tok.loc = here();
    tok.kind = TokKind::CharLiteral;
    advance(); // opening quote
    if (peek() == '\\') {
        advance();
        tok.intValue = decodeEscape();
    } else if (peek() == '\0' || peek() == '\n') {
        diags_.error(tok.loc, "unterminated char literal");
    } else {
        tok.intValue = static_cast<unsigned char>(advance());
    }
    if (!match('\''))
        diags_.error(tok.loc, "unterminated char literal");
    out.push_back(std::move(tok));
}

} // namespace compdiff::minic
