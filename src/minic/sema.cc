#include "minic/sema.hh"

#include "support/logging.hh"

namespace compdiff::minic
{

bool
Sema::analyze(Program &program)
{
    program_ = &program;

    // Register globals first so functions can reference them.
    int next_global = 0;
    scopes_.clear();
    pushScope(); // global scope
    for (auto &global : program.globals) {
        if (lookup(global->name)) {
            diags_.error(global->loc,
                         "redefinition of '" + global->name + "'");
            continue;
        }
        global->globalId = next_global++;
        scopes_.back()[global->name] = {true, global->globalId,
                                        global->type};
        if (global->init) {
            const Type *init_type = analyzeExpr(*global->init);
            const ExprKind k = global->init->kind();
            if (k != ExprKind::IntLit && k != ExprKind::FloatLit &&
                k != ExprKind::StrLit) {
                diags_.error(global->loc,
                             "global initializer must be a literal");
            } else if (!implicitlyConvertible(init_type, decay(
                           global->type), global->init.get())) {
                diags_.error(global->loc,
                             "incompatible global initializer");
            }
        }
    }

    // Register function signatures before analyzing bodies so that
    // forward calls work.
    int next_func = 0;
    for (auto &func : program.functions) {
        if (builtinFromName(func->name) != Builtin::None) {
            diags_.error(func->loc, "'" + func->name +
                                        "' is a builtin name");
        }
        for (const auto &other : program.functions) {
            if (other.get() != func.get() && other->name == func->name &&
                other->index >= 0) {
                diags_.error(func->loc,
                             "redefinition of '" + func->name + "'");
            }
        }
        func->index = next_func++;
    }

    for (auto &func : program.functions)
        analyzeFunction(*func);

    popScope();
    program_ = nullptr;
    return !diags_.hasErrors();
}

void
Sema::analyzeFunction(FunctionDecl &func)
{
    currentFunc_ = &func;
    func.locals.clear();

    // By-value aggregates are not supported in calls: like many
    // small C dialects, MiniC passes structs via pointers only.
    if (func.returnType->isStruct() || func.returnType->isArray()) {
        diags_.error(func.loc, "function '" + func.name +
                                   "' cannot return an aggregate "
                                   "by value; return a pointer");
    }

    pushScope();
    for (auto &param : func.params) {
        if (param.type->isStruct() || param.type->isArray()) {
            diags_.error(param.loc,
                         "parameter '" + param.name +
                             "' cannot be an aggregate; pass a "
                             "pointer");
        }
    }
    for (auto &param : func.params) {
        param.localId = static_cast<int>(func.locals.size());
        func.locals.push_back({decay(param.type), param.name, true});
        if (scopes_.back().count(param.name)) {
            diags_.error(param.loc,
                         "duplicate parameter '" + param.name + "'");
        }
        scopes_.back()[param.name] = {false, param.localId,
                                      decay(param.type)};
    }
    if (func.body)
        for (auto &stmt : func.body->body)
            analyzeStmt(*stmt);
    popScope();
    currentFunc_ = nullptr;
}

void
Sema::analyzeStmt(Stmt &stmt)
{
    switch (stmt.kind()) {
      case StmtKind::Block: {
        auto &block = static_cast<BlockStmt &>(stmt);
        pushScope();
        for (auto &child : block.body)
            analyzeStmt(*child);
        popScope();
        return;
      }
      case StmtKind::VarDecl: {
        auto &decl = static_cast<VarDeclStmt &>(stmt);
        declareLocal(decl);
        if (decl.init) {
            const Type *init_type = analyzeExpr(*decl.init);
            if (!implicitlyConvertible(init_type, decay(decl.declType),
                                       decl.init.get())) {
                diags_.error(decl.loc(),
                             "cannot initialize '" +
                                 decl.declType->str() + "' from '" +
                                 init_type->str() + "'");
            }
        }
        return;
      }
      case StmtKind::If: {
        auto &if_stmt = static_cast<IfStmt &>(stmt);
        const Type *cond = analyzeExpr(*if_stmt.cond);
        if (!cond->isScalar())
            diags_.error(if_stmt.loc(), "if condition is not scalar");
        analyzeStmt(*if_stmt.thenStmt);
        if (if_stmt.elseStmt)
            analyzeStmt(*if_stmt.elseStmt);
        return;
      }
      case StmtKind::While: {
        auto &while_stmt = static_cast<WhileStmt &>(stmt);
        const Type *cond = analyzeExpr(*while_stmt.cond);
        if (!cond->isScalar())
            diags_.error(while_stmt.loc(),
                         "while condition is not scalar");
        loopDepth_++;
        analyzeStmt(*while_stmt.body);
        loopDepth_--;
        return;
      }
      case StmtKind::For: {
        auto &for_stmt = static_cast<ForStmt &>(stmt);
        pushScope();
        if (for_stmt.init)
            analyzeStmt(*for_stmt.init);
        if (for_stmt.cond) {
            const Type *cond = analyzeExpr(*for_stmt.cond);
            if (!cond->isScalar())
                diags_.error(for_stmt.loc(),
                             "for condition is not scalar");
        }
        if (for_stmt.step)
            analyzeExpr(*for_stmt.step);
        loopDepth_++;
        analyzeStmt(*for_stmt.body);
        loopDepth_--;
        popScope();
        return;
      }
      case StmtKind::Return: {
        auto &ret = static_cast<ReturnStmt &>(stmt);
        const Type *expected = currentFunc_->returnType;
        if (ret.value) {
            const Type *got = analyzeExpr(*ret.value);
            if (expected->isVoid()) {
                diags_.error(ret.loc(),
                             "returning a value from a void function");
            } else if (!implicitlyConvertible(got, expected,
                                              ret.value.get())) {
                diags_.error(ret.loc(), "cannot return '" + got->str() +
                                          "' as '" + expected->str() +
                                          "'");
            }
        } else if (!expected->isVoid()) {
            diags_.warning(ret.loc(),
                           "return without value in non-void function");
        }
        return;
      }
      case StmtKind::Break:
        if (loopDepth_ == 0)
            diags_.error(stmt.loc(), "break outside of a loop");
        return;
      case StmtKind::Continue:
        if (loopDepth_ == 0)
            diags_.error(stmt.loc(), "continue outside of a loop");
        return;
      case StmtKind::ExprStmt:
        analyzeExpr(*static_cast<ExprStmt &>(stmt).expr);
        return;
    }
    support::panic("unhandled statement kind");
}

const Type *
Sema::decay(const Type *type)
{
    if (type->isArray())
        return program_->types->pointerTo(type->element());
    return type;
}

const Type *
Sema::usualArithmetic(const Type *a, const Type *b)
{
    if (!a->isArithmetic() || !b->isArithmetic())
        return nullptr;
    TypeContext &types = *program_->types;
    if (a->isDouble() || b->isDouble())
        return types.doubleType();

    auto rank = [](const Type *t) {
        switch (t->kind()) {
          case TypeKind::ULong: return 4;
          case TypeKind::Long: return 3;
          case TypeKind::UInt: return 2;
          default: return 1; // char and int promote to int
        }
    };
    const int r = std::max(rank(a), rank(b));
    const bool any_unsigned =
        (rank(a) == r && !a->isSigned() && a->kind() != TypeKind::Char &&
         a->kind() != TypeKind::Int) ||
        (rank(b) == r && !b->isSigned() && b->kind() != TypeKind::Char &&
         b->kind() != TypeKind::Int);
    switch (r) {
      case 4: return types.ulongType();
      case 3: return types.longType();
      case 2: return types.uintType();
      default:
        return any_unsigned ? types.uintType() : types.intType();
    }
}

bool
Sema::implicitlyConvertible(const Type *src, const Type *dst,
                            const Expr *src_expr) const
{
    src = const_cast<Sema *>(this)->decay(src);
    if (src == dst)
        return true;
    if (src->isArithmetic() && dst->isArithmetic())
        return true;
    if (src->isPointer() && dst->isPointer())
        return true; // C would warn on mismatched pointees; we allow.
    // Literal 0 converts to any pointer (null).
    if (dst->isPointer() && src_expr &&
        src_expr->kind() == ExprKind::IntLit &&
        static_cast<const IntLitExpr *>(src_expr)->value == 0) {
        return true;
    }
    return false;
}

bool
Sema::isLValue(const Expr &expr) const
{
    switch (expr.kind()) {
      case ExprKind::VarRef:
      case ExprKind::Index:
      case ExprKind::Member:
        return true;
      case ExprKind::Unary:
        return static_cast<const UnaryExpr &>(expr).op == UnaryOp::Deref;
      default:
        return false;
    }
}

void
Sema::pushScope()
{
    scopes_.emplace_back();
}

void
Sema::popScope()
{
    scopes_.pop_back();
}

void
Sema::declareLocal(VarDeclStmt &decl)
{
    if (scopes_.back().count(decl.name)) {
        diags_.error(decl.loc(), "redefinition of '" + decl.name +
                                   "' in the same scope");
        return;
    }
    if (decl.declType->isVoid()) {
        diags_.error(decl.loc(), "cannot declare a void variable");
        return;
    }
    decl.localId = static_cast<int>(currentFunc_->locals.size());
    currentFunc_->locals.push_back({decl.declType, decl.name, false});
    scopes_.back()[decl.name] = {false, decl.localId, decl.declType};
}

const Sema::Symbol *
Sema::lookup(const std::string &name) const
{
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        auto found = it->find(name);
        if (found != it->end())
            return &found->second;
    }
    return nullptr;
}

const Type *
Sema::analyzeExpr(Expr &expr)
{
    TypeContext &types = *program_->types;
    switch (expr.kind()) {
      case ExprKind::IntLit: {
        auto &lit = static_cast<IntLitExpr &>(expr);
        if (lit.isLong && lit.isUnsigned)
            lit.type = types.ulongType();
        else if (lit.isLong)
            lit.type = types.longType();
        else if (lit.isUnsigned)
            lit.type = types.uintType();
        else if (lit.value > 0x7fffffffLL || lit.value < -0x80000000LL)
            lit.type = types.longType();
        else
            lit.type = types.intType();
        return lit.type;
      }
      case ExprKind::FloatLit:
        expr.type = types.doubleType();
        return expr.type;
      case ExprKind::StrLit:
        expr.type = types.pointerTo(types.charType());
        return expr.type;
      case ExprKind::VarRef: {
        auto &ref = static_cast<VarRefExpr &>(expr);
        const Symbol *sym = lookup(ref.name);
        if (!sym) {
            diags_.error(ref.loc(),
                         "use of undeclared identifier '" + ref.name +
                             "'");
            ref.type = types.intType();
            return ref.type;
        }
        ref.isGlobal = sym->isGlobal;
        ref.id = sym->id;
        ref.type = sym->type;
        return ref.type;
      }
      case ExprKind::Unary: {
        auto &un = static_cast<UnaryExpr &>(expr);
        const Type *operand = analyzeExpr(*un.operand);
        switch (un.op) {
          case UnaryOp::Neg:
            if (!operand->isArithmetic()) {
                diags_.error(un.loc(), "cannot negate '" +
                                           operand->str() + "'");
            }
            un.type = operand->isDouble()
                          ? operand
                          : usualArithmetic(operand, types.intType());
            break;
          case UnaryOp::BitNot:
            if (!operand->isInteger()) {
                diags_.error(un.loc(), "operand of ~ must be integer");
            }
            un.type = usualArithmetic(operand, types.intType());
            if (!un.type)
                un.type = types.intType();
            break;
          case UnaryOp::LogNot:
            if (!operand->isScalar())
                diags_.error(un.loc(), "operand of ! must be scalar");
            un.type = types.intType();
            break;
          case UnaryOp::Deref: {
            const Type *decayed = decay(operand);
            if (!decayed->isPointer() || decayed->pointee()->isVoid()) {
                diags_.error(un.loc(),
                             "cannot dereference '" + operand->str() +
                                 "'");
                un.type = types.intType();
            } else {
                un.type = decayed->pointee();
            }
            break;
          }
          case UnaryOp::AddrOf:
            if (!isLValue(*un.operand)) {
                diags_.error(un.loc(),
                             "cannot take the address of an rvalue");
            }
            un.type = types.pointerTo(operand);
            break;
        }
        return un.type;
      }
      case ExprKind::Binary:
        return analyzeBinary(static_cast<BinaryExpr &>(expr));
      case ExprKind::Assign:
        return analyzeAssign(static_cast<AssignExpr &>(expr));
      case ExprKind::Cond: {
        auto &cond = static_cast<CondExpr &>(expr);
        const Type *c = analyzeExpr(*cond.cond);
        if (!c->isScalar())
            diags_.error(cond.loc(),
                         "ternary condition is not scalar");
        const Type *a = decay(analyzeExpr(*cond.thenExpr));
        const Type *b = decay(analyzeExpr(*cond.elseExpr));
        if (const Type *common = usualArithmetic(a, b)) {
            cond.type = common;
        } else if (a->isPointer() && b->isPointer()) {
            cond.type = a;
        } else {
            diags_.error(cond.loc(), "incompatible ternary arms '" +
                                         a->str() + "' and '" +
                                         b->str() + "'");
            cond.type = a;
        }
        return cond.type;
      }
      case ExprKind::Call:
        return analyzeCall(static_cast<CallExpr &>(expr));
      case ExprKind::Index: {
        auto &index = static_cast<IndexExpr &>(expr);
        const Type *base = analyzeExpr(*index.base);
        const Type *idx = analyzeExpr(*index.index);
        if (!idx->isInteger())
            diags_.error(index.loc(), "array index must be integer");
        const Type *decayed = decay(base);
        if (!decayed->isPointer() || decayed->pointee()->isVoid()) {
            diags_.error(index.loc(), "cannot subscript '" +
                                          base->str() + "'");
            index.type = types.intType();
        } else {
            index.type = decayed->pointee();
        }
        return index.type;
      }
      case ExprKind::Member: {
        auto &member = static_cast<MemberExpr &>(expr);
        const Type *base = analyzeExpr(*member.base);
        const Type *struct_type = nullptr;
        if (member.isArrow) {
            const Type *decayed = decay(base);
            if (decayed->isPointer() && decayed->pointee()->isStruct())
                struct_type = decayed->pointee();
        } else if (base->isStruct()) {
            struct_type = base;
        }
        if (!struct_type) {
            diags_.error(member.loc(),
                         "member access on non-struct '" +
                             base->str() + "'");
            member.type = types.intType();
            return member.type;
        }
        const StructField *field =
            struct_type->structInfo()->field(member.field);
        if (!field) {
            diags_.error(member.loc(),
                         "no field '" + member.field + "' in " +
                             struct_type->str());
            member.type = types.intType();
            return member.type;
        }
        member.fieldOffset = field->offset;
        member.type = field->type;
        return member.type;
      }
      case ExprKind::Cast: {
        auto &cast = static_cast<CastExpr &>(expr);
        const Type *src = decay(analyzeExpr(*cast.operand));
        const Type *dst = cast.target;
        const bool ok =
            (src->isScalar() && dst->isScalar()) || dst->isVoid();
        if (!ok) {
            diags_.error(cast.loc(), "invalid cast from '" +
                                         src->str() + "' to '" +
                                         dst->str() + "'");
        }
        cast.type = dst;
        return cast.type;
      }
      case ExprKind::SizeOf:
        expr.type = types.longType();
        return expr.type;
    }
    support::panic("unhandled expression kind");
}

const Type *
Sema::analyzeBinary(BinaryExpr &bin)
{
    TypeContext &types = *program_->types;
    const Type *lhs = decay(analyzeExpr(*bin.lhs));
    const Type *rhs = decay(analyzeExpr(*bin.rhs));

    switch (bin.op) {
      case BinaryOp::LogAnd:
      case BinaryOp::LogOr:
        if (!lhs->isScalar() || !rhs->isScalar())
            diags_.error(bin.loc(), "logical operands must be scalar");
        bin.type = types.intType();
        return bin.type;
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::Ne:
        if (lhs->isPointer() || rhs->isPointer()) {
            const bool both_ptr = lhs->isPointer() && rhs->isPointer();
            const bool null_cmp =
                (lhs->isPointer() && bin.rhs->kind() == ExprKind::IntLit &&
                 static_cast<IntLitExpr &>(*bin.rhs).value == 0) ||
                (rhs->isPointer() && bin.lhs->kind() == ExprKind::IntLit &&
                 static_cast<IntLitExpr &>(*bin.lhs).value == 0);
            if (!both_ptr && !null_cmp) {
                diags_.error(bin.loc(),
                             "comparison between pointer and integer");
            }
        } else if (!usualArithmetic(lhs, rhs)) {
            diags_.error(bin.loc(), "cannot compare '" + lhs->str() +
                                        "' and '" + rhs->str() + "'");
        }
        bin.type = types.intType();
        return bin.type;
      case BinaryOp::Add:
        if (lhs->isPointer() && rhs->isInteger()) {
            bin.type = lhs;
            return bin.type;
        }
        if (lhs->isInteger() && rhs->isPointer()) {
            bin.type = rhs;
            return bin.type;
        }
        break;
      case BinaryOp::Sub:
        if (lhs->isPointer() && rhs->isInteger()) {
            bin.type = lhs;
            return bin.type;
        }
        if (lhs->isPointer() && rhs->isPointer()) {
            // Pointer difference; UB across distinct objects
            // (CWE-469 territory), checked only at run time.
            bin.type = types.longType();
            return bin.type;
        }
        break;
      case BinaryOp::Shl:
      case BinaryOp::Shr:
        if (!lhs->isInteger() || !rhs->isInteger()) {
            diags_.error(bin.loc(), "shift operands must be integers");
            bin.type = types.intType();
            return bin.type;
        }
        // Shift result has the promoted type of the left operand.
        bin.type = usualArithmetic(lhs, types.intType());
        return bin.type;
      default:
        break;
    }

    if (const Type *common = usualArithmetic(lhs, rhs)) {
        if ((bin.op == BinaryOp::Rem || bin.op == BinaryOp::BitAnd ||
             bin.op == BinaryOp::BitOr || bin.op == BinaryOp::BitXor) &&
            common->isDouble()) {
            diags_.error(bin.loc(),
                         "integer operator applied to doubles");
        }
        bin.type = common;
        return bin.type;
    }

    diags_.error(bin.loc(), std::string("invalid operands to '") +
                                binaryOpSpelling(bin.op) + "': '" +
                                lhs->str() + "' and '" + rhs->str() +
                                "'");
    bin.type = types.intType();
    return bin.type;
}

const Type *
Sema::analyzeAssign(AssignExpr &assign)
{
    const Type *target = analyzeExpr(*assign.target);
    const Type *value = analyzeExpr(*assign.value);

    if (!isLValue(*assign.target)) {
        diags_.error(assign.loc(), "assignment target is not an lvalue");
    } else if (target->isArray()) {
        diags_.error(assign.loc(), "cannot assign to an array");
    } else if (target->isStruct()) {
        diags_.error(assign.loc(),
                     "struct assignment is not supported; copy "
                     "fields or memcpy");
    }

    if (assign.compoundOp) {
        const bool ptr_arith =
            target->isPointer() && value->isInteger() &&
            (*assign.compoundOp == BinaryOp::Add ||
             *assign.compoundOp == BinaryOp::Sub);
        if (!ptr_arith && !usualArithmetic(target, value)) {
            diags_.error(assign.loc(),
                         "invalid compound assignment operands");
        }
    } else if (!implicitlyConvertible(value, target,
                                      assign.value.get())) {
        diags_.error(assign.loc(), "cannot assign '" + value->str() +
                                       "' to '" + target->str() + "'");
    }
    assign.type = target;
    return assign.type;
}

const Type *
Sema::analyzeCall(CallExpr &call)
{
    TypeContext &types = *program_->types;

    for (auto &arg : call.args)
        analyzeExpr(*arg);

    const Builtin builtin = builtinFromName(call.callee);
    if (builtin != Builtin::None) {
        call.builtin = builtin;
        const int arity = builtinArity(builtin);
        if (static_cast<int>(call.args.size()) != arity) {
            diags_.error(call.loc(),
                         "builtin '" + call.callee + "' expects " +
                             std::to_string(arity) + " argument(s)");
        }
        switch (builtin) {
          case Builtin::Malloc:
            call.type = types.pointerTo(types.charType());
            break;
          case Builtin::InputSize:
          case Builtin::InputByte:
          case Builtin::ReadByte:
          case Builtin::Strcmp:
          case Builtin::CurLine:
          case Builtin::BadRand:
            call.type = types.intType();
            break;
          case Builtin::Strlen:
          case Builtin::TimeStamp:
            call.type = types.longType();
            break;
          case Builtin::PowF:
          case Builtin::SqrtF:
          case Builtin::FloorF:
            call.type = types.doubleType();
            break;
          default:
            call.type = types.voidType();
            break;
        }
        return call.type;
    }

    FunctionDecl *callee = program_->findFunction(call.callee);
    if (!callee) {
        diags_.error(call.loc(),
                     "call to undeclared function '" + call.callee +
                         "'");
        call.type = types.intType();
        return call.type;
    }
    call.funcIndex = callee->index;

    // Like pre-prototype C, an argument-count mismatch is legal but
    // dangerous: missing parameters are left uninitialized in the
    // callee frame (CWE-685 relies on this).
    if (call.args.size() != callee->params.size()) {
        diags_.warning(call.loc(),
                       "call to '" + call.callee + "' with " +
                           std::to_string(call.args.size()) +
                           " argument(s), expected " +
                           std::to_string(callee->params.size()));
    }
    const std::size_t checked =
        std::min(call.args.size(), callee->params.size());
    for (std::size_t i = 0; i < checked; i++) {
        const Type *param = decay(callee->params[i].type);
        const Type *arg = call.args[i]->type;
        if (!implicitlyConvertible(arg, param, call.args[i].get())) {
            diags_.error(call.args[i]->loc(),
                         "argument " + std::to_string(i + 1) +
                             " of '" + call.callee + "': cannot pass '" +
                             arg->str() + "' as '" + param->str() + "'");
        }
    }
    call.type = callee->returnType;
    return call.type;
}

} // namespace compdiff::minic
