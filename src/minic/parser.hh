#pragma once

/**
 * @file
 * Recursive-descent parser for MiniC.
 */

#include <memory>
#include <string_view>
#include <vector>

#include "minic/ast.hh"
#include "minic/token.hh"
#include "support/diagnostics.hh"

namespace compdiff::minic
{

/**
 * Parses a MiniC source buffer into a Program.
 *
 * The parser stops at the first syntax error: it records the error in
 * the diagnostic engine and throws support::CompileError. All sources
 * in this repository are machine-generated, so recovery quality is
 * traded for simplicity.
 */
class Parser
{
  public:
    Parser(std::string_view source, support::DiagnosticEngine &diags);

    /**
     * Parse the whole buffer.
     *
     * @return The parsed program (types populated, not yet
     *         semantically analyzed).
     * @throws support::CompileError on any syntax error.
     */
    std::unique_ptr<Program> parseProgram();

  private:
    const Token &peek(std::size_t ahead = 0) const;
    const Token &advance();
    bool check(TokKind kind) const { return peek().is(kind); }
    bool accept(TokKind kind);
    const Token &expect(TokKind kind, const char *context);
    [[noreturn]] void errorHere(const std::string &message);

    /** True if the upcoming tokens start a type. */
    bool atTypeStart() const;

    /** Parse a type: base type plus pointer stars. */
    const Type *parseType();

    void parseStructDecl();
    void parseTopLevel();
    std::unique_ptr<FunctionDecl>
    parseFunctionRest(const Type *ret, Token name_tok);
    void parseGlobalRest(const Type *type, Token name_tok);

    StmtPtr parseStatement();
    std::unique_ptr<BlockStmt> parseBlock();
    StmtPtr parseVarDecl();

    ExprPtr parseExpr();
    ExprPtr parseAssignment();
    ExprPtr parseTernary();
    ExprPtr parseBinary(int min_prec);
    ExprPtr parseUnary();
    ExprPtr parsePostfix();
    ExprPtr parsePrimary();

    std::unique_ptr<Program> program_;
    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    support::DiagnosticEngine &diags_;
};

/**
 * Convenience helper: lex + parse + semantic analysis in one call.
 *
 * @param source MiniC source text.
 * @return Fully analyzed program.
 * @throws support::CompileError on any frontend error, with the
 *         diagnostics rendered into the exception message.
 */
std::unique_ptr<Program> parseAndCheck(std::string_view source);

} // namespace compdiff::minic
