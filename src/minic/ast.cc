#include "minic/ast.hh"

namespace compdiff::minic
{

const char *
binaryOpSpelling(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Rem: return "%";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Ne: return "!=";
      case BinaryOp::LogAnd: return "&&";
      case BinaryOp::LogOr: return "||";
    }
    return "?";
}

bool
isComparison(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::Ne:
        return true;
      default:
        return false;
    }
}

int
builtinArity(Builtin builtin)
{
    switch (builtin) {
      case Builtin::None: return -1;
      case Builtin::PrintInt:
      case Builtin::PrintUInt:
      case Builtin::PrintLong:
      case Builtin::PrintChar:
      case Builtin::PrintStr:
      case Builtin::PrintF:
      case Builtin::PrintHex:
      case Builtin::PrintPtr:
      case Builtin::Free:
      case Builtin::Strlen:
      case Builtin::Exit:
      case Builtin::SqrtF:
      case Builtin::FloorF:
      case Builtin::Malloc:
      case Builtin::InputByte:
      case Builtin::Probe:
        return 1;
      case Builtin::Newline:
      case Builtin::InputSize:
      case Builtin::ReadByte:
      case Builtin::Abort:
      case Builtin::CurLine:
      case Builtin::TimeStamp:
      case Builtin::BadRand:
        return 0;
      case Builtin::Strcpy:
      case Builtin::Strcmp:
      case Builtin::PowF:
        return 2;
      case Builtin::Memset:
      case Builtin::Memcpy:
        return 3;
    }
    return -1;
}

Builtin
builtinFromName(const std::string &name)
{
    if (name == "print_int") return Builtin::PrintInt;
    if (name == "print_uint") return Builtin::PrintUInt;
    if (name == "print_long") return Builtin::PrintLong;
    if (name == "print_char") return Builtin::PrintChar;
    if (name == "print_str") return Builtin::PrintStr;
    if (name == "print_f") return Builtin::PrintF;
    if (name == "print_hex") return Builtin::PrintHex;
    if (name == "print_ptr") return Builtin::PrintPtr;
    if (name == "newline") return Builtin::Newline;
    if (name == "input_size") return Builtin::InputSize;
    if (name == "input_byte") return Builtin::InputByte;
    if (name == "read_byte") return Builtin::ReadByte;
    if (name == "malloc") return Builtin::Malloc;
    if (name == "free") return Builtin::Free;
    if (name == "memset") return Builtin::Memset;
    if (name == "memcpy") return Builtin::Memcpy;
    if (name == "strlen") return Builtin::Strlen;
    if (name == "strcpy") return Builtin::Strcpy;
    if (name == "strcmp") return Builtin::Strcmp;
    if (name == "exit") return Builtin::Exit;
    if (name == "abort") return Builtin::Abort;
    if (name == "cur_line") return Builtin::CurLine;
    if (name == "pow_f") return Builtin::PowF;
    if (name == "sqrt_f") return Builtin::SqrtF;
    if (name == "floor_f") return Builtin::FloorF;
    if (name == "time_stamp") return Builtin::TimeStamp;
    if (name == "bad_rand") return Builtin::BadRand;
    if (name == "probe") return Builtin::Probe;
    return Builtin::None;
}

namespace
{

ExprPtr
cloneOrNull(const ExprPtr &expr)
{
    return expr ? expr->clone() : nullptr;
}

StmtPtr
cloneOrNull(const StmtPtr &stmt)
{
    return stmt ? stmt->clone() : nullptr;
}

} // namespace

ExprPtr
IntLitExpr::clone() const
{
    auto copy = std::make_unique<IntLitExpr>(loc(), value);
    copy->isLong = isLong;
    copy->isUnsigned = isUnsigned;
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
FloatLitExpr::clone() const
{
    auto copy = std::make_unique<FloatLitExpr>(loc(), value);
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
StrLitExpr::clone() const
{
    auto copy = std::make_unique<StrLitExpr>(loc(), bytes);
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
VarRefExpr::clone() const
{
    auto copy = std::make_unique<VarRefExpr>(loc(), name);
    copy->isGlobal = isGlobal;
    copy->id = id;
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
UnaryExpr::clone() const
{
    auto copy =
        std::make_unique<UnaryExpr>(loc(), op, operand->clone());
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
BinaryExpr::clone() const
{
    auto copy = std::make_unique<BinaryExpr>(loc(), op, lhs->clone(),
                                             rhs->clone());
    copy->widenTo64 = widenTo64;
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
AssignExpr::clone() const
{
    auto copy = std::make_unique<AssignExpr>(
        loc(), target->clone(), value->clone(), compoundOp);
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
CondExpr::clone() const
{
    auto copy = std::make_unique<CondExpr>(
        loc(), cond->clone(), thenExpr->clone(), elseExpr->clone());
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
CallExpr::clone() const
{
    std::vector<ExprPtr> cloned_args;
    cloned_args.reserve(args.size());
    for (const auto &a : args)
        cloned_args.push_back(a->clone());
    auto copy = std::make_unique<CallExpr>(loc(), callee,
                                           std::move(cloned_args));
    copy->builtin = builtin;
    copy->funcIndex = funcIndex;
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
IndexExpr::clone() const
{
    auto copy = std::make_unique<IndexExpr>(loc(), base->clone(),
                                            index->clone());
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
MemberExpr::clone() const
{
    auto copy = std::make_unique<MemberExpr>(loc(), base->clone(),
                                             field, isArrow);
    copy->fieldOffset = fieldOffset;
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
CastExpr::clone() const
{
    auto copy =
        std::make_unique<CastExpr>(loc(), target, operand->clone());
    copyAnnotations(*copy);
    return copy;
}

ExprPtr
SizeOfExpr::clone() const
{
    auto copy = std::make_unique<SizeOfExpr>(loc(), queried);
    copyAnnotations(*copy);
    return copy;
}

StmtPtr
BlockStmt::clone() const
{
    auto copy = std::make_unique<BlockStmt>(loc());
    copy->body.reserve(body.size());
    for (const auto &s : body)
        copy->body.push_back(s->clone());
    return copy;
}

StmtPtr
VarDeclStmt::clone() const
{
    auto copy = std::make_unique<VarDeclStmt>(loc(), declType, name,
                                              cloneOrNull(init));
    copy->localId = localId;
    return copy;
}

StmtPtr
IfStmt::clone() const
{
    auto copy = std::make_unique<IfStmt>(loc(), cond->clone(),
                                         thenStmt->clone(),
                                         cloneOrNull(elseStmt));
    return copy;
}

StmtPtr
WhileStmt::clone() const
{
    return std::make_unique<WhileStmt>(loc(), cond->clone(),
                                       body->clone());
}

StmtPtr
ForStmt::clone() const
{
    return std::make_unique<ForStmt>(loc(), cloneOrNull(init),
                                     cloneOrNull(cond),
                                     cloneOrNull(step), body->clone());
}

StmtPtr
ReturnStmt::clone() const
{
    return std::make_unique<ReturnStmt>(loc(), cloneOrNull(value));
}

StmtPtr
BreakStmt::clone() const
{
    return std::make_unique<BreakStmt>(loc());
}

StmtPtr
ContinueStmt::clone() const
{
    return std::make_unique<ContinueStmt>(loc());
}

StmtPtr
ExprStmt::clone() const
{
    return std::make_unique<ExprStmt>(loc(), expr->clone());
}

std::unique_ptr<FunctionDecl>
FunctionDecl::clone() const
{
    auto copy = std::make_unique<FunctionDecl>();
    copy->returnType = returnType;
    copy->name = name;
    copy->params = params;
    copy->loc = loc;
    copy->index = index;
    copy->locals = locals;
    if (body) {
        auto cloned = body->clone();
        copy->body.reset(static_cast<BlockStmt *>(cloned.release()));
    }
    return copy;
}

std::unique_ptr<GlobalDecl>
GlobalDecl::clone() const
{
    auto copy = std::make_unique<GlobalDecl>();
    copy->type = type;
    copy->name = name;
    copy->init = cloneOrNull(init);
    copy->loc = loc;
    copy->globalId = globalId;
    return copy;
}

const FunctionDecl *
Program::findFunction(const std::string &name) const
{
    for (const auto &f : functions)
        if (f->name == name)
            return f.get();
    return nullptr;
}

FunctionDecl *
Program::findFunction(const std::string &name)
{
    for (const auto &f : functions)
        if (f->name == name)
            return f.get();
    return nullptr;
}

const GlobalDecl *
Program::findGlobal(const std::string &name) const
{
    for (const auto &g : globals)
        if (g->name == name)
            return g.get();
    return nullptr;
}

} // namespace compdiff::minic
