#pragma once

/**
 * @file
 * A tiny JSON well-formedness checker.
 *
 * Used by the tests and by `compdiff_cli --validate-json` (the
 * scripts/check.sh smoke step) to confirm that exported Chrome-trace
 * and JSONL telemetry files parse. It validates syntax only — no DOM
 * is built, so arbitrarily large trace files check in one pass.
 */

#include <string>
#include <string_view>

namespace compdiff::obs
{

/**
 * @param text  The candidate JSON document (one value).
 * @param error Optional; receives "offset N: reason" on failure.
 */
bool jsonWellFormed(std::string_view text, std::string *error = nullptr);

/**
 * Validate JSON-lines: every non-empty line must be a JSON value.
 * An empty document is well-formed.
 */
bool jsonlWellFormed(std::string_view text,
                     std::string *error = nullptr);

/**
 * Escape a string for embedding inside a JSON string literal
 * (quotes not included). Shared by every JSON emitter in obs so the
 * event journal's parser and the emitters stay symmetric.
 */
std::string jsonEscape(std::string_view text);

/**
 * Inverse of jsonEscape: decode the escape sequences jsonEscape (and
 * standard JSON) produces. Returns false on a malformed escape; only
 * \u00XX code points below 0x100 are accepted (jsonEscape emits no
 * others).
 */
bool jsonUnescape(std::string_view text, std::string *out);

} // namespace compdiff::obs
