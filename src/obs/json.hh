#pragma once

/**
 * @file
 * A tiny JSON well-formedness checker.
 *
 * Used by the tests and by `compdiff_cli --validate-json` (the
 * scripts/check.sh smoke step) to confirm that exported Chrome-trace
 * and JSONL telemetry files parse. It validates syntax only — no DOM
 * is built, so arbitrarily large trace files check in one pass.
 */

#include <string>
#include <string_view>

namespace compdiff::obs
{

/**
 * @param text  The candidate JSON document (one value).
 * @param error Optional; receives "offset N: reason" on failure.
 */
bool jsonWellFormed(std::string_view text, std::string *error = nullptr);

/**
 * Validate JSON-lines: every non-empty line must be a JSON value.
 * An empty document is well-formed.
 */
bool jsonlWellFormed(std::string_view text,
                     std::string *error = nullptr);

} // namespace compdiff::obs
