#pragma once

/**
 * @file
 * AFL++-style campaign stats export.
 *
 * AFL++ writes two files into every output directory: `fuzzer_stats`
 * (a `key : value` snapshot, rewritten periodically) and `plot_data`
 * (an append-only time series behind afl-plot). Long campaigns are
 * undebuggable without them, so the reproduction mirrors both:
 *
 *   - FuzzerStatsSnapshot: the snapshot structure filled by
 *     fuzz::Fuzzer (and, per target, by targets::runCampaign), with
 *     a renderer and a parser (the parser keeps tests and external
 *     tooling honest about the format).
 *   - PlotWriter: the time-series accumulator. The time axis is the
 *     execution count, not wall-clock — campaigns must stay
 *     deterministic, and the paper's own overhead discussion is
 *     per-execution. Wall-clock throughput (execs/sec) appears only
 *     as a derived, clearly-labeled snapshot field.
 */

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace compdiff::obs
{

/** One `fuzzer_stats`-style snapshot of a campaign. */
struct FuzzerStatsSnapshot
{
    std::string banner = "compdiff-afl";
    /** B_fuzz executions performed (Algorithm 1's budget axis). */
    std::uint64_t execsDone = 0;
    /** Total differential-binary executions (retries included). */
    std::uint64_t compdiffExecs = 0;
    /** Per-implementation execution counts, configuration order;
     *  their sum equals compdiffExecs. */
    std::vector<std::pair<std::string, std::uint64_t>> perConfigExecs;
    std::uint64_t corpusSize = 0;
    std::uint64_t crashes = 0;
    std::uint64_t diffs = 0;
    std::uint64_t edges = 0;
    /** Exec index of the last corpus/crash/diff discovery. */
    std::uint64_t lastFindExec = 0;
    /** Exec index of the last new divergence (0 = none found). */
    std::uint64_t lastDiffExec = 0;
    /** Wall-clock throughput; 0 when unavailable. Derived display
     *  value only — never fed back into the campaign. */
    double execsPerSec = 0;
    /**
     * Cumulative campaign wall-clock seconds. Persistent sessions
     * (src/session) accumulate this across restarts, AFL++-style:
     * a killed-and-resumed campaign reports the total time fuzzed,
     * not the last process's share. 0 when unavailable; display
     * value only.
     */
    double runTimeSecs = 0;
    /** Times the campaign was resumed from a session checkpoint. */
    std::uint64_t restarts = 0;
};

/** Render in AFL++'s `key : value` format. */
std::string renderFuzzerStats(const FuzzerStatsSnapshot &snapshot);

/** Parse renderFuzzerStats output back into a key/value map. */
std::map<std::string, std::string>
parseFuzzerStats(const std::string &text);

/** Parse + repack into the structured snapshot. */
FuzzerStatsSnapshot
snapshotFromFuzzerStats(const std::string &text);

/**
 * `plot_data`-style time series: one row per sample, exec-count time
 * axis.
 */
class PlotWriter
{
  public:
    struct Row
    {
        std::uint64_t execs = 0;
        std::uint64_t corpusSize = 0;
        std::uint64_t crashes = 0;
        std::uint64_t diffs = 0;
        std::uint64_t edges = 0;
        std::uint64_t compdiffExecs = 0;
    };

    void addRow(const Row &row);
    const std::vector<Row> &rows() const { return rows_; }

    /** Replace the series (session resume restores saved rows). */
    void setRows(std::vector<Row> rows) { rows_ = std::move(rows); }

    /** CSV rendering, AFL++-style `# ...` header line included. */
    std::string str() const;

  private:
    std::vector<Row> rows_;
};

/**
 * Write `content` to `path`, creating parent directories as needed.
 * Returns false (after a warn()) on I/O failure instead of throwing:
 * telemetry must never kill a campaign.
 */
bool writeTextFile(const std::string &path,
                   const std::string &content);

/**
 * RAII telemetry scope for the bench programs: enables metrics for
 * its lifetime and, on destruction, writes the registry snapshot to
 * `<name>.telemetry.jsonl` next to the bench's stdout results.
 */
class BenchTelemetry
{
  public:
    explicit BenchTelemetry(std::string name, bool enable = true);
    ~BenchTelemetry();

    BenchTelemetry(const BenchTelemetry &) = delete;
    BenchTelemetry &operator=(const BenchTelemetry &) = delete;

  private:
    std::string name_;
    bool prevMetrics_;
};

} // namespace compdiff::obs
