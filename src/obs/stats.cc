#include "obs/stats.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hh"
#include "support/logging.hh"

namespace compdiff::obs
{

namespace
{

void
line(std::ostringstream &os, const std::string &key,
     const std::string &value)
{
    os << key;
    for (std::size_t i = key.size(); i < 22; i++)
        os << ' ';
    os << ": " << value << "\n";
}

void
line(std::ostringstream &os, const std::string &key,
     std::uint64_t value)
{
    line(os, key, std::to_string(value));
}

/** AFL++-sanitizes config names into stats keys (dots, dashes). */
std::string
keyify(std::string name)
{
    for (auto &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

std::uint64_t
toU64(const std::map<std::string, std::string> &kv,
      const std::string &key)
{
    auto it = kv.find(key);
    if (it == kv.end())
        return 0;
    return std::strtoull(it->second.c_str(), nullptr, 10);
}

} // namespace

std::string
renderFuzzerStats(const FuzzerStatsSnapshot &snapshot)
{
    std::ostringstream os;
    line(os, "banner", snapshot.banner);
    line(os, "execs_done", snapshot.execsDone);
    line(os, "compdiff_execs", snapshot.compdiffExecs);
    line(os, "corpus_count", snapshot.corpusSize);
    line(os, "saved_crashes", snapshot.crashes);
    line(os, "saved_diffs", snapshot.diffs);
    line(os, "edges_found", snapshot.edges);
    line(os, "last_find_execs", snapshot.lastFindExec);
    line(os, "last_diff_execs", snapshot.lastDiffExec);
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f",
                      snapshot.execsPerSec);
        line(os, "execs_per_sec", std::string(buf));
        std::snprintf(buf, sizeof(buf), "%.2f",
                      snapshot.runTimeSecs);
        line(os, "run_time", std::string(buf));
    }
    line(os, "session_restarts", snapshot.restarts);
    for (const auto &[name, execs] : snapshot.perConfigExecs)
        line(os, "execs_impl_" + keyify(name), execs);
    return os.str();
}

std::map<std::string, std::string>
parseFuzzerStats(const std::string &text)
{
    std::map<std::string, std::string> kv;
    std::istringstream is(text);
    std::string row;
    while (std::getline(is, row)) {
        const std::size_t colon = row.find(':');
        if (colon == std::string::npos)
            continue;
        std::string key = row.substr(0, colon);
        std::string value = row.substr(colon + 1);
        while (!key.empty() && key.back() == ' ')
            key.pop_back();
        while (!value.empty() && value.front() == ' ')
            value.erase(value.begin());
        kv[key] = value;
    }
    return kv;
}

FuzzerStatsSnapshot
snapshotFromFuzzerStats(const std::string &text)
{
    const auto kv = parseFuzzerStats(text);
    FuzzerStatsSnapshot snapshot;
    if (auto it = kv.find("banner"); it != kv.end())
        snapshot.banner = it->second;
    snapshot.execsDone = toU64(kv, "execs_done");
    snapshot.compdiffExecs = toU64(kv, "compdiff_execs");
    snapshot.corpusSize = toU64(kv, "corpus_count");
    snapshot.crashes = toU64(kv, "saved_crashes");
    snapshot.diffs = toU64(kv, "saved_diffs");
    snapshot.edges = toU64(kv, "edges_found");
    snapshot.lastFindExec = toU64(kv, "last_find_execs");
    snapshot.lastDiffExec = toU64(kv, "last_diff_execs");
    if (auto it = kv.find("execs_per_sec"); it != kv.end())
        snapshot.execsPerSec = std::strtod(it->second.c_str(),
                                           nullptr);
    if (auto it = kv.find("run_time"); it != kv.end())
        snapshot.runTimeSecs = std::strtod(it->second.c_str(),
                                           nullptr);
    snapshot.restarts = toU64(kv, "session_restarts");
    // Per-implementation counts must come back in *file* order, not
    // key-sorted: the renderer writes them in configuration order
    // and consumers (monitor, tests) rely on the round trip
    // preserving it — so scan the text, not the map.
    std::istringstream is(text);
    std::string row;
    while (std::getline(is, row)) {
        const std::size_t colon = row.find(':');
        if (colon == std::string::npos)
            continue;
        std::string key = row.substr(0, colon);
        while (!key.empty() && key.back() == ' ')
            key.pop_back();
        if (key.rfind("execs_impl_", 0) != 0)
            continue;
        std::string value = row.substr(colon + 1);
        while (!value.empty() && value.front() == ' ')
            value.erase(value.begin());
        snapshot.perConfigExecs.emplace_back(
            key.substr(11),
            std::strtoull(value.c_str(), nullptr, 10));
    }
    return snapshot;
}

void
PlotWriter::addRow(const Row &row)
{
    rows_.push_back(row);
}

std::string
PlotWriter::str() const
{
    std::ostringstream os;
    os << "# execs, corpus_count, saved_crashes, saved_diffs, "
          "edges_found, compdiff_execs\n";
    for (const auto &row : rows_) {
        os << row.execs << ", " << row.corpusSize << ", "
           << row.crashes << ", " << row.diffs << ", " << row.edges
           << ", " << row.compdiffExecs << "\n";
    }
    return os.str();
}

bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::error_code ec;
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(),
                                            ec);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        support::warn("cannot write " + path);
        return false;
    }
    out << content;
    out.flush();
    if (!out) {
        support::warn("short write to " + path);
        return false;
    }
    return true;
}

BenchTelemetry::BenchTelemetry(std::string name, bool enable)
    : name_(std::move(name)), prevMetrics_(metricsEnabled())
{
    if (enable)
        setMetricsEnabled(true);
}

BenchTelemetry::~BenchTelemetry()
{
    const std::string path = name_ + ".telemetry.jsonl";
    const auto snapshot = Registry::global().snapshot();
    if (writeTextFile(path, snapshot.toJsonl()))
        support::inform("telemetry written to " + path);
    setMetricsEnabled(prevMetrics_);
}

} // namespace compdiff::obs
