#pragma once

/**
 * @file
 * Metrics registry: named counters, gauges, and fixed-bucket
 * histograms for the fuzz/diff pipeline.
 *
 * Design constraints (in order):
 *   1. Hot-path bumps must be cheap: a handle bump is one relaxed
 *      atomic load (the global enabled switch) plus one relaxed
 *      atomic add. With metrics disabled the bump is a no-op, so
 *      `overhead_microbench` measures the same inner loop the seed
 *      build did.
 *   2. Zero dependencies beyond src/support.
 *   3. Deterministic: nothing here reads the wall clock; instruction
 *      counts are the pipeline's time axis.
 *
 * Thread safety: the whole registry is safe under real concurrency
 * (the parallel ExecutionService and sharded campaigns bump counters
 * from worker threads). Registration is serialized by a registry
 * mutex; handle bumps are relaxed atomics and never take a lock.
 * Handles returned by Registry::{counter,gauge,histogram} are stable
 * for the registry's lifetime and may be cached across calls.
 * Relaxed ordering means a snapshot taken while workers are mid-
 * flight is a consistent-per-metric (not cross-metric) view; all
 * exporters run after the pool has been joined.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace compdiff::obs
{

/** Is metric recording globally enabled? (default: off) */
bool metricsEnabled();

/** Is span recording globally enabled? (default: off) */
bool tracingEnabled();

/** Flip both the metrics and tracing switches at once. */
void setEnabled(bool enabled);

/** Flip only the metrics switch. */
void setMetricsEnabled(bool enabled);

/** Flip only the tracing switch. */
void setTracingEnabled(bool enabled);

/** Scoped enable/disable of the whole observability layer. */
class EnabledGuard
{
  public:
    explicit EnabledGuard(bool enabled);
    ~EnabledGuard();

    EnabledGuard(const EnabledGuard &) = delete;
    EnabledGuard &operator=(const EnabledGuard &) = delete;

  private:
    bool prevMetrics_;
    bool prevTracing_;
};

/** A monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        if (metricsEnabled())
            value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A point-in-time value (corpus size, budget in force, ...). */
class Gauge
{
  public:
    void set(std::uint64_t v)
    {
        if (metricsEnabled())
            value_.store(v, std::memory_order_relaxed);
    }

    /** Keep the largest value seen (high-water mark). */
    void max(std::uint64_t v)
    {
        if (!metricsEnabled())
            return;
        std::uint64_t cur =
            value_.load(std::memory_order_relaxed);
        while (v > cur &&
               !value_.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed)) {
        }
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A fixed-bucket histogram. Bucket i counts observations with
 * value <= bounds[i]; one implicit overflow bucket counts the rest.
 * Cells are relaxed atomics, so concurrent observe() calls never
 * lose counts; count/sum/bucket reads are per-cell consistent.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<std::uint64_t> bounds);

    void observe(std::uint64_t v);

    const std::vector<std::uint64_t> &bounds() const
    {
        return bounds_;
    }
    /** bounds().size() + 1 cells; last is the overflow bucket. */
    std::vector<std::uint64_t> buckets() const;
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    void reset();

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/** A copy of every registered metric's state at one point in time. */
struct MetricsSnapshot
{
    struct Entry
    {
        std::string name;
        std::string kind; ///< "counter", "gauge", or "histogram"
        std::uint64_t value = 0; ///< counter/gauge value; hist sum
        std::uint64_t count = 0; ///< histogram observation count
        std::vector<std::uint64_t> bounds;
        std::vector<std::uint64_t> buckets;

        /**
         * Estimated q-quantile (0 < q < 1) of a histogram entry,
         * linearly interpolated within the covering bucket
         * (Prometheus histogram_quantile semantics). Observations in
         * the overflow bucket are credited to the highest bound —
         * the estimate is clamped there. 0 when the entry is not a
         * histogram or holds no observations.
         */
        double quantile(double q) const;
    };

    std::vector<Entry> entries; ///< sorted by name

    /** One JSON object per line; histograms carry p50/p90/p99
     *  alongside their raw buckets; "" when there are no entries. */
    std::string toJsonl() const;

    /** Aligned ASCII rendering via support::TextTable. */
    std::string toTable() const;

    const Entry *find(std::string_view name) const;
};

/**
 * The process-wide metric registry. Metrics are registered on first
 * use and persist (values included) until reset(). Registration,
 * snapshot(), reset(), and size() are serialized by an internal
 * mutex; bumping previously obtained handles is lock-free.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    /**
     * @param bounds Upper bucket bounds, strictly increasing; an
     *               empty vector selects the default power-of-4
     *               instruction-count scale.
     */
    Histogram &histogram(std::string_view name,
                         std::vector<std::uint64_t> bounds = {});

    MetricsSnapshot snapshot() const;

    /** Zero every value; registrations (and handles) survive. */
    void reset();

    std::size_t size() const;

    ~Registry();

  private:
    Registry() = default;
    struct Impl;
    /** Must be called with mu_ held. */
    Impl *impl();
    const Impl *impl() const;
    mutable std::mutex mu_;
    mutable Impl *impl_ = nullptr;
};

/** Shorthand for Registry::global().counter(name). */
Counter &counter(std::string_view name);
/** Shorthand for Registry::global().gauge(name). */
Gauge &gauge(std::string_view name);
/** Shorthand for Registry::global().histogram(name). */
Histogram &histogram(std::string_view name);

} // namespace compdiff::obs
