#include "obs/events.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "support/hash.hh"
#include "support/logging.hh"

namespace compdiff::obs
{

namespace
{

/** The checksum suffix every line ends with. */
constexpr std::string_view kCrcMarker = ",\"crc\":\"";

bool
fail(std::string *error, std::string why)
{
    if (error)
        *error = std::move(why);
    return false;
}

/** Parse `"key"` at `pos`; advances past the closing quote. */
bool
parseKey(std::string_view text, std::size_t &pos, std::string *key)
{
    if (pos >= text.size() || text[pos] != '"')
        return false;
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string_view::npos)
        return false;
    // Keys are emitted unescaped (identifiers only), so a plain
    // substring read is exact.
    *key = std::string(text.substr(pos + 1, end - pos - 1));
    pos = end + 1;
    return true;
}

/** Parse a string or unsigned-number value at `pos`. */
bool
parseValue(std::string_view text, std::size_t &pos,
           std::string *value, bool *quoted)
{
    if (pos >= text.size())
        return false;
    if (text[pos] == '"') {
        std::size_t end = pos + 1;
        while (end < text.size() && text[end] != '"') {
            if (text[end] == '\\')
                end++; // skip the escaped character
            end++;
        }
        if (end >= text.size())
            return false;
        *quoted = true;
        const std::string_view raw =
            text.substr(pos + 1, end - pos - 1);
        pos = end + 1;
        return jsonUnescape(raw, value);
    }
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == '-')) {
        pos++;
    }
    if (pos == start)
        return false;
    *quoted = false;
    *value = std::string(text.substr(start, pos - start));
    return true;
}

} // namespace

std::string
hex16(std::uint64_t value)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

CampaignEvent &
CampaignEvent::num(std::string key, std::uint64_t value)
{
    details.push_back({std::move(key), std::to_string(value), false});
    return *this;
}

CampaignEvent &
CampaignEvent::text(std::string key, std::string value)
{
    details.push_back({std::move(key), std::move(value), true});
    return *this;
}

CampaignEvent &
CampaignEvent::hex(std::string key, std::uint64_t value)
{
    details.push_back({std::move(key), hex16(value), true});
    return *this;
}

const CampaignEvent::Detail *
CampaignEvent::find(std::string_view key) const
{
    for (const auto &detail : details)
        if (detail.key == key)
            return &detail;
    return nullptr;
}

std::uint64_t
CampaignEvent::numOr(std::string_view key,
                     std::uint64_t fallback) const
{
    const Detail *detail = find(key);
    if (!detail)
        return fallback;
    return std::strtoull(detail->value.c_str(), nullptr, 10);
}

std::string
renderEventLine(const CampaignEvent &event)
{
    std::ostringstream os;
    os << "{\"v\":" << kEventFormatVersion << ",\"kind\":\""
       << jsonEscape(event.kind) << "\",\"exec\":" << event.exec;
    for (const auto &detail : event.details) {
        os << ",\"" << detail.key << "\":";
        if (detail.quoted)
            os << '"' << jsonEscape(detail.value) << '"';
        else
            os << detail.value;
    }
    const std::string body = os.str();
    return body + std::string(kCrcMarker) +
           hex16(support::murmurHash64(body)) + "\"}";
}

bool
parseEventLine(std::string_view line, CampaignEvent *out,
               std::string *error)
{
    // Verify and strip the checksum suffix first: the rest of the
    // parse only runs over bytes the writer vouched for.
    const std::size_t crc_at = line.rfind(kCrcMarker);
    if (crc_at == std::string_view::npos)
        return fail(error, "no crc suffix");
    const std::string_view body = line.substr(0, crc_at);
    const std::string_view tail =
        line.substr(crc_at + kCrcMarker.size());
    if (tail.size() != 18 || tail.substr(16) != "\"}")
        return fail(error, "malformed crc suffix");
    if (std::string(tail.substr(0, 16)) !=
        hex16(support::murmurHash64(body))) {
        return fail(error, "checksum mismatch");
    }

    const std::string expect_prefix =
        "{\"v\":" + std::to_string(kEventFormatVersion) +
        ",\"kind\":";
    if (body.substr(0, expect_prefix.size()) != expect_prefix)
        return fail(error, "bad header (version or layout)");

    CampaignEvent event;
    std::size_t pos = expect_prefix.size();
    bool quoted = false;
    if (!parseValue(body, pos, &event.kind, &quoted) || !quoted)
        return fail(error, "bad kind");
    const std::string_view exec_key = ",\"exec\":";
    if (body.substr(pos, exec_key.size()) != exec_key)
        return fail(error, "missing exec");
    pos += exec_key.size();
    std::string exec_text;
    if (!parseValue(body, pos, &exec_text, &quoted) || quoted)
        return fail(error, "bad exec");
    event.exec = std::strtoull(exec_text.c_str(), nullptr, 10);

    while (pos < body.size()) {
        if (body[pos] != ',')
            return fail(error, "expected ','");
        pos++;
        CampaignEvent::Detail detail;
        if (!parseKey(body, pos, &detail.key))
            return fail(error, "bad detail key");
        if (pos >= body.size() || body[pos] != ':')
            return fail(error, "expected ':'");
        pos++;
        if (!parseValue(body, pos, &detail.value, &detail.quoted))
            return fail(error, "bad detail value");
        event.details.push_back(std::move(detail));
    }
    *out = std::move(event);
    return true;
}

EventLog
readEventLog(const std::string &path)
{
    EventLog log;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return log; // missing file == empty log (telemetry)
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::size_t line_start = 0;
    while (line_start < text.size()) {
        std::size_t line_end = text.find('\n', line_start);
        const bool torn = line_end == std::string::npos;
        if (torn)
            line_end = text.size();
        const std::string_view line(text.data() + line_start,
                                    line_end - line_start);
        CampaignEvent event;
        if (line.empty()) {
            line_start = line_end + 1;
            continue;
        }
        if (torn || !parseEventLine(line, &event)) {
            // Write-ahead discipline: the first invalid line starts
            // the (crash-artifact) tail; keep everything before it.
            log.droppedTail = true;
            break;
        }
        log.events.push_back(std::move(event));
        line_start = line_end + 1;
    }
    return log;
}

bool
appendEventLines(const std::string &path,
                 const std::vector<CampaignEvent> &events)
{
    if (events.empty())
        return true;
    std::error_code ec;
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(),
                                            ec);
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) {
        support::warn("cannot append events to " + path);
        return false;
    }
    for (const auto &event : events)
        out << renderEventLine(event) << "\n";
    out.flush();
    if (!out) {
        support::warn("short event append to " + path);
        return false;
    }
    return true;
}

bool
writeEventLog(const std::string &path,
              const std::vector<CampaignEvent> &events)
{
    std::ostringstream os;
    for (const auto &event : events)
        os << renderEventLine(event) << "\n";
    // Write-then-rename: a crash mid-rewrite leaves either the old
    // log or the new one, never a hybrid.
    const std::string tmp = path + ".tmp";
    std::error_code ec;
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(),
                                            ec);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            support::warn("cannot write " + tmp);
            return false;
        }
        out << os.str();
        out.flush();
        if (!out) {
            support::warn("short write to " + tmp);
            return false;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        support::warn("cannot rename " + tmp + " over " + path +
                      ": " + ec.message());
        return false;
    }
    return true;
}

} // namespace compdiff::obs
