#include "obs/json.hh"

#include <cctype>
#include <cstdio>

namespace compdiff::obs
{

namespace
{

/** Recursive-descent syntax checker over a string_view. */
class JsonChecker
{
  public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    bool check(std::string *error)
    {
        skipWs();
        if (!value()) {
            fill(error);
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            fail_ = "trailing content";
            fill(error);
            return false;
        }
        return true;
    }

  private:
    void fill(std::string *error) const
    {
        if (error) {
            *error = "offset " + std::to_string(pos_) + ": " +
                     (fail_.empty() ? "invalid JSON" : fail_);
        }
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return atEnd() ? '\0' : text_[pos_]; }

    void skipWs()
    {
        while (!atEnd() && (text_[pos_] == ' ' ||
                            text_[pos_] == '\t' ||
                            text_[pos_] == '\n' ||
                            text_[pos_] == '\r')) {
            pos_++;
        }
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            fail_ = "bad literal";
            return false;
        }
        pos_ += word.size();
        return true;
    }

    bool value()
    {
        if (depth_ > 256) {
            fail_ = "nesting too deep";
            return false;
        }
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool object()
    {
        pos_++; // '{'
        depth_++;
        skipWs();
        if (peek() == '}') {
            pos_++;
            depth_--;
            return true;
        }
        while (true) {
            skipWs();
            if (peek() != '"') {
                fail_ = "expected object key";
                return false;
            }
            if (!string())
                return false;
            skipWs();
            if (peek() != ':') {
                fail_ = "expected ':'";
                return false;
            }
            pos_++;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            if (peek() == '}') {
                pos_++;
                depth_--;
                return true;
            }
            fail_ = "expected ',' or '}'";
            return false;
        }
    }

    bool array()
    {
        pos_++; // '['
        depth_++;
        skipWs();
        if (peek() == ']') {
            pos_++;
            depth_--;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            if (peek() == ']') {
                pos_++;
                depth_--;
                return true;
            }
            fail_ = "expected ',' or ']'";
            return false;
        }
    }

    bool string()
    {
        pos_++; // '"'
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c == '"') {
                pos_++;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail_ = "control character in string";
                return false;
            }
            if (c == '\\') {
                pos_++;
                if (atEnd())
                    break;
                const char esc = text_[pos_];
                if (esc == 'u') {
                    for (int i = 1; i <= 4; i++) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i]))) {
                            fail_ = "bad \\u escape";
                            return false;
                        }
                    }
                    pos_ += 4;
                } else if (esc != '"' && esc != '\\' &&
                           esc != '/' && esc != 'b' && esc != 'f' &&
                           esc != 'n' && esc != 'r' && esc != 't') {
                    fail_ = "bad escape";
                    return false;
                }
            }
            pos_++;
        }
        fail_ = "unterminated string";
        return false;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            pos_++;
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
            fail_ = "expected value";
            pos_ = start;
            return false;
        }
        while (std::isdigit(static_cast<unsigned char>(peek())))
            pos_++;
        if (peek() == '.') {
            pos_++;
            if (!std::isdigit(static_cast<unsigned char>(peek()))) {
                fail_ = "bad fraction";
                return false;
            }
            while (std::isdigit(static_cast<unsigned char>(peek())))
                pos_++;
        }
        if (peek() == 'e' || peek() == 'E') {
            pos_++;
            if (peek() == '+' || peek() == '-')
                pos_++;
            if (!std::isdigit(static_cast<unsigned char>(peek()))) {
                fail_ = "bad exponent";
                return false;
            }
            while (std::isdigit(static_cast<unsigned char>(peek())))
                pos_++;
        }
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string fail_;
};

} // namespace

bool
jsonWellFormed(std::string_view text, std::string *error)
{
    return JsonChecker(text).check(error);
}

bool
jsonlWellFormed(std::string_view text, std::string *error)
{
    std::size_t line_start = 0;
    std::size_t line_no = 1;
    while (line_start <= text.size()) {
        std::size_t line_end = text.find('\n', line_start);
        if (line_end == std::string_view::npos)
            line_end = text.size();
        const std::string_view line =
            text.substr(line_start, line_end - line_start);
        if (!line.empty()) {
            std::string inner;
            if (!jsonWellFormed(line, &inner)) {
                if (error) {
                    *error = "line " + std::to_string(line_no) +
                             ": " + inner;
                }
                return false;
            }
        }
        line_start = line_end + 1;
        line_no++;
    }
    return true;
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
jsonUnescape(std::string_view text, std::string *out)
{
    out->clear();
    out->reserve(text.size());
    for (std::size_t i = 0; i < text.size(); i++) {
        const char c = text[i];
        if (c != '\\') {
            out->push_back(c);
            continue;
        }
        if (++i >= text.size())
            return false;
        switch (text[i]) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (i + 4 >= text.size())
                return false;
            unsigned code = 0;
            for (int k = 1; k <= 4; k++) {
                const char h = text[i + static_cast<std::size_t>(k)];
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return false;
            }
            if (code > 0xFF)
                return false;
            out->push_back(static_cast<char>(code));
            i += 4;
            break;
          }
          default:
            return false;
        }
    }
    return true;
}

} // namespace compdiff::obs
