#pragma once

/**
 * @file
 * Structured campaign event journal.
 *
 * A campaign emits a stream of discrete happenings — corpus
 * discoveries, divergences, crashes, checkpoints, reduce milestones.
 * The event journal persists that stream as append-only,
 * per-line-checksummed JSONL so external tooling (compdiff_monitor,
 * ad-hoc jq pipelines) can follow a campaign without linking against
 * the binary formats:
 *
 *   {"v":1,"kind":"divergence","exec":412,"signature":"00ab...","crc":"9f3c..."}
 *
 * The format borrows session/checkpoint's write-ahead discipline,
 * restated for a line-oriented file: every line carries a
 * murmurHash64 checksum of its own body (everything before the
 * `,"crc"` suffix), appends are flushed before the writer moves on,
 * and readers keep the longest prefix of fully-valid lines, silently
 * dropping a torn or checksum-failing tail. Unlike the binary
 * journals, a missing or unparsable file is *not* an error here —
 * events are telemetry, and telemetry must never kill a campaign (or
 * a monitor): every entry point returns a best-effort result after a
 * warn() instead of throwing.
 *
 * Determinism: per-shard campaign events (discovery/divergence/
 * crash) are keyed on the execution index, the pipeline's
 * deterministic time axis — no wall-clock, no pid. The session layer
 * rewrites a shard's event log from restored state on resume, so a
 * campaign killed anywhere and resumed produces a byte-identical
 * event file to an uninterrupted run (tested in test_session.cc).
 * The session-scope ops log (`events.jsonl` at the session root)
 * reuses the same line format but records process history —
 * restarts, checkpoints, cache traffic — which is legitimately not
 * replay-invariant.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace compdiff::obs
{

/** Event-journal line format version. */
constexpr std::uint32_t kEventFormatVersion = 1;

/**
 * One journal event: a kind, the execution index it happened at,
 * and an *ordered* list of extra key/value details (order is part of
 * the byte format — rendering is reproducible, never map-sorted).
 */
struct CampaignEvent
{
    std::string kind;
    std::uint64_t exec = 0;

    struct Detail
    {
        std::string key;
        /** Unescaped value; rendered raw (numbers) or as an escaped
         *  JSON string (quoted). */
        std::string value;
        bool quoted = false;
    };
    std::vector<Detail> details;

    CampaignEvent() = default;
    CampaignEvent(std::string kind_, std::uint64_t exec_)
        : kind(std::move(kind_)), exec(exec_)
    {}

    /** Append an unsigned numeric detail (builder style). */
    CampaignEvent &num(std::string key, std::uint64_t value);
    /** Append a quoted string detail. */
    CampaignEvent &text(std::string key, std::string value);
    /** Append a 16-hex-digit detail (signatures, fingerprints). */
    CampaignEvent &hex(std::string key, std::uint64_t value);

    /** First detail with this key, or nullptr. */
    const Detail *find(std::string_view key) const;
    /** Numeric detail value, or `fallback` when absent. */
    std::uint64_t numOr(std::string_view key,
                        std::uint64_t fallback = 0) const;
};

/** Render one journal line (checksum included, no newline). */
std::string renderEventLine(const CampaignEvent &event);

/**
 * Parse one journal line: syntax, version, and checksum are all
 * verified. Returns false (with an optional diagnostic) on any
 * mismatch — callers treat a bad line as the start of a torn tail.
 */
bool parseEventLine(std::string_view line, CampaignEvent *out,
                    std::string *error = nullptr);

/** What readEventLog recovered. */
struct EventLog
{
    std::vector<CampaignEvent> events;
    /** True when a torn/corrupt tail was dropped. */
    bool droppedTail = false;
};

/**
 * Read the longest valid prefix of an event journal. A missing file
 * reads as an empty log; an invalid line ends the prefix (everything
 * after it is dropped and droppedTail is set).
 */
EventLog readEventLog(const std::string &path);

/** Append events (flushed); returns false after a warn() on I/O
 *  failure instead of throwing. */
bool appendEventLines(const std::string &path,
                      const std::vector<CampaignEvent> &events);

/**
 * Replace the journal wholesale (write-then-rename, so a crash
 * leaves either the old log or the new one). The session layer uses
 * this on resume to rewind a shard's event stream to its restored
 * checkpoint.
 */
bool writeEventLog(const std::string &path,
                   const std::vector<CampaignEvent> &events);

/** 16-hex-digit rendering of a 64-bit value (zero padded). */
std::string hex16(std::uint64_t value);

} // namespace compdiff::obs
