#include "obs/metrics.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <tuple>

#include "obs/json.hh"
#include "support/logging.hh"
#include "support/table.hh"

namespace compdiff::obs
{

namespace
{

std::atomic<bool> metricsFlag{false};
std::atomic<bool> tracingFlag{false};

/** Power-of-4 scale covering one VM run's instruction counts. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::vector<std::uint64_t>
defaultBounds()
{
    std::vector<std::uint64_t> bounds;
    for (std::uint64_t b = 64; b <= (1ull << 24); b *= 4)
        bounds.push_back(b);
    return bounds;
}

} // namespace

bool
metricsEnabled()
{
    return metricsFlag.load(std::memory_order_relaxed);
}

bool
tracingEnabled()
{
    return tracingFlag.load(std::memory_order_relaxed);
}

void
setEnabled(bool enabled)
{
    setMetricsEnabled(enabled);
    setTracingEnabled(enabled);
}

void
setMetricsEnabled(bool enabled)
{
    metricsFlag.store(enabled, std::memory_order_relaxed);
}

void
setTracingEnabled(bool enabled)
{
    tracingFlag.store(enabled, std::memory_order_relaxed);
}

EnabledGuard::EnabledGuard(bool enabled)
    : prevMetrics_(metricsEnabled()), prevTracing_(tracingEnabled())
{
    setEnabled(enabled);
}

EnabledGuard::~EnabledGuard()
{
    setMetricsEnabled(prevMetrics_);
    setTracingEnabled(prevTracing_);
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    for (std::size_t i = 1; i < bounds_.size(); i++) {
        if (bounds_[i] <= bounds_[i - 1])
            support::panic("histogram bounds must increase");
    }
}

void
Histogram::observe(std::uint64_t v)
{
    if (!metricsEnabled())
        return;
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        i++;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t>
Histogram::buckets() const
{
    std::vector<std::uint64_t> cells(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); i++)
        cells[i] = buckets_[i].load(std::memory_order_relaxed);
    return cells;
}

void
Histogram::reset()
{
    for (auto &cell : buckets_)
        cell.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

double
MetricsSnapshot::Entry::quantile(double q) const
{
    if (count == 0 || buckets.empty() || q <= 0 || q >= 1)
        return 0;
    // The continuous rank of the q-quantile in `count` observations.
    const double rank = q * static_cast<double>(count);
    double cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); i++) {
        const double cell = static_cast<double>(buckets[i]);
        if (cell == 0 || cumulative + cell < rank) {
            cumulative += cell;
            continue;
        }
        if (i >= bounds.size()) {
            // Overflow bucket: no upper bound to interpolate toward.
            return bounds.empty()
                       ? 0
                       : static_cast<double>(bounds.back());
        }
        const double lo =
            i == 0 ? 0 : static_cast<double>(bounds[i - 1]);
        const double hi = static_cast<double>(bounds[i]);
        const double frac = (rank - cumulative) / cell;
        return lo + frac * (hi - lo);
    }
    return bounds.empty() ? 0 : static_cast<double>(bounds.back());
}

const MetricsSnapshot::Entry *
MetricsSnapshot::find(std::string_view name) const
{
    for (const auto &entry : entries)
        if (entry.name == name)
            return &entry;
    return nullptr;
}

std::string
MetricsSnapshot::toJsonl() const
{
    std::ostringstream os;
    for (const auto &entry : entries) {
        os << "{\"name\":\"" << jsonEscape(entry.name)
           << "\",\"kind\":\"" << entry.kind << "\"";
        if (entry.kind == "histogram") {
            os << ",\"count\":" << entry.count
               << ",\"sum\":" << entry.value << ",\"bounds\":[";
            for (std::size_t i = 0; i < entry.bounds.size(); i++)
                os << (i ? "," : "") << entry.bounds[i];
            os << "],\"buckets\":[";
            for (std::size_t i = 0; i < entry.buckets.size(); i++)
                os << (i ? "," : "") << entry.buckets[i];
            os << "],\"p50\":" << fmtDouble(entry.quantile(0.50))
               << ",\"p90\":" << fmtDouble(entry.quantile(0.90))
               << ",\"p99\":" << fmtDouble(entry.quantile(0.99));
        } else {
            os << ",\"value\":" << entry.value;
        }
        os << "}\n";
    }
    return os.str();
}

std::string
MetricsSnapshot::toTable() const
{
    support::TextTable table;
    table.setHeader(
        {"metric", "kind", "value", "count", "p50", "p90", "p99"});
    table.setAlign({support::Align::Left, support::Align::Left,
                    support::Align::Right, support::Align::Right,
                    support::Align::Right, support::Align::Right,
                    support::Align::Right});
    for (const auto &entry : entries) {
        const bool hist = entry.kind == "histogram";
        table.addRow({entry.name, entry.kind,
                      std::to_string(entry.value),
                      hist ? std::to_string(entry.count)
                           : std::string("-"),
                      hist ? fmtDouble(entry.quantile(0.50))
                           : std::string("-"),
                      hist ? fmtDouble(entry.quantile(0.90))
                           : std::string("-"),
                      hist ? fmtDouble(entry.quantile(0.99))
                           : std::string("-")});
    }
    return table.str();
}

/**
 * Node-stable storage: std::map never moves its mapped values, so
 * the Counter&/Gauge&/Histogram& handles we give out stay valid for
 * the registry's lifetime, and iteration is name-sorted for free.
 * All access to these maps happens under Registry::mu_; the mapped
 * values themselves are internally atomic, so handles handed out
 * earlier stay safe to bump while another thread registers.
 */
struct Registry::Impl
{
    std::map<std::string, Counter, std::less<>> counters;
    std::map<std::string, Gauge, std::less<>> gauges;
    std::map<std::string, Histogram, std::less<>> histograms;
};

Registry::Impl *
Registry::impl()
{
    if (!impl_)
        impl_ = new Impl();
    return impl_;
}

const Registry::Impl *
Registry::impl() const
{
    return const_cast<Registry *>(this)->impl();
}

Registry::~Registry()
{
    delete impl_;
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Counter &
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &counters = impl()->counters;
    auto it = counters.find(name);
    if (it == counters.end())
        it = counters.try_emplace(std::string(name)).first;
    return it->second;
}

Gauge &
Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &gauges = impl()->gauges;
    auto it = gauges.find(name);
    if (it == gauges.end())
        it = gauges.try_emplace(std::string(name)).first;
    return it->second;
}

Histogram &
Registry::histogram(std::string_view name,
                    std::vector<std::uint64_t> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &histograms = impl()->histograms;
    auto it = histograms.find(name);
    if (it == histograms.end()) {
        if (bounds.empty())
            bounds = defaultBounds();
        it = histograms
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(std::string(name)),
                          std::forward_as_tuple(std::move(bounds)))
                 .first;
    }
    return it->second;
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    const Impl *state = impl();
    for (const auto &[name, counter] : state->counters) {
        snap.entries.push_back(
            {name, "counter", counter.value(), 0, {}, {}});
    }
    for (const auto &[name, gauge] : state->gauges) {
        snap.entries.push_back(
            {name, "gauge", gauge.value(), 0, {}, {}});
    }
    for (const auto &[name, hist] : state->histograms) {
        snap.entries.push_back({name, "histogram", hist.sum(),
                                hist.count(), hist.bounds(),
                                hist.buckets()});
    }
    std::sort(snap.entries.begin(), snap.entries.end(),
              [](const auto &a, const auto &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    Impl *state = impl();
    for (auto &[name, counter] : state->counters)
        counter.reset();
    for (auto &[name, gauge] : state->gauges)
        gauge.reset();
    for (auto &[name, hist] : state->histograms)
        hist.reset();
}

std::size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    const Impl *state = impl();
    return state->counters.size() + state->gauges.size() +
           state->histograms.size();
}

Counter &
counter(std::string_view name)
{
    return Registry::global().counter(name);
}

Gauge &
gauge(std::string_view name)
{
    return Registry::global().gauge(name);
}

Histogram &
histogram(std::string_view name)
{
    return Registry::global().histogram(name);
}

} // namespace compdiff::obs
