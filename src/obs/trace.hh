#pragma once

/**
 * @file
 * Tracing spans with a ring-buffer recorder.
 *
 * A Span is an RAII marker around one pipeline phase (parse, per-
 * config compile, per-implementation execute, normalize, compare,
 * mutate, triage, ...). Spans nest via a thread-local stack; on
 * destruction each span appends one complete event to a bounded
 * recorder: the head of the run (setup and per-config compiles) is
 * pinned, the rest is a ring buffer whose oldest events are
 * overwritten in place. Tracing a million-exec campaign therefore
 * costs a fixed amount of memory and the export always shows how
 * the run started plus how it was going at the end.
 *
 * The recorder exports two views:
 *   - Chrome-trace JSON ("traceEvents" with ph:"X" complete events),
 *     loadable in chrome://tracing / Perfetto;
 *   - a flame summary (per-name call count and total duration)
 *     rendered with support::TextTable.
 *
 * Span timestamps come from a steady monotonic clock. They never
 * feed back into fuzzing decisions or comparisons, so campaign
 * determinism is unaffected.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hh"

namespace compdiff::obs
{

/** One completed span. */
struct TraceEvent
{
    std::string name;
    std::uint64_t startUs = 0; ///< microseconds since recorder epoch
    std::uint64_t durUs = 0;
    std::uint32_t tid = 0;   ///< small per-thread ordinal
    std::uint32_t depth = 0; ///< nesting depth at entry (0 = root)
};

/** Bounded recorder of completed spans. */
class TraceRecorder
{
  public:
    static TraceRecorder &global();

    /** Drop all recorded events and restart the epoch. */
    void clear();

    /**
     * Resize the recorder (drops recorded events); 1/16 of the
     * capacity pins the head of the run. The default of 65536
     * events keeps the recorder near 4 MB worst-case.
     */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const;

    /** Completed events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const;

    /** chrome://tracing JSON ({"traceEvents":[...]}). */
    std::string chromeTraceJson() const;

    /** Per-name aggregate (calls, total/avg duration), sorted by
     *  total duration descending. */
    std::string flameSummary() const;

    void append(TraceEvent event);

    /** Microseconds since the recorder epoch (monotonic). */
    std::uint64_t nowUs() const;

  private:
    TraceRecorder();
    struct Impl;
    Impl *impl_;
};

/**
 * RAII span. Construction is a no-op unless tracingEnabled(); a span
 * constructed while tracing is off stays inert even if tracing is
 * switched on before it dies.
 */
class Span
{
  public:
    explicit Span(std::string_view name);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    std::string name_;
    std::uint64_t startUs_ = 0;
    std::uint32_t depth_ = 0;
    bool active_ = false;
};

} // namespace compdiff::obs
