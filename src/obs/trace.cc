#include "obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <sstream>

#include "support/table.hh"

namespace compdiff::obs
{

namespace
{

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return out;
}

std::atomic<std::uint32_t> nextTid{0};

struct ThreadState
{
    std::uint32_t tid;
    std::uint32_t depth = 0;

    ThreadState() : tid(nextTid.fetch_add(1) + 1) {}
};

ThreadState &
threadState()
{
    thread_local ThreadState state;
    return state;
}

} // namespace

struct TraceRecorder::Impl
{
    /**
     * The head of the run (setup, per-config compiles) is pinned so
     * a long campaign cannot rotate it out; the tail lives in the
     * ring. Together: "how the run started and how it was going".
     *
     * Guards every field below: spans complete on worker threads
     * when the ExecutionService dispatches executions in parallel.
     */
    mutable std::mutex mu;
    std::vector<TraceEvent> pinned;
    std::size_t pinnedCapacity = 4096;
    std::vector<TraceEvent> ring;
    std::size_t capacity = 65536;
    std::size_t head = 0; ///< next write position once full
    std::uint64_t droppedCount = 0;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

TraceRecorder::TraceRecorder() : impl_(new Impl()) {}

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder instance;
    return instance;
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->pinned.clear();
    impl_->ring.clear();
    impl_->head = 0;
    impl_->droppedCount = 0;
    impl_->epoch = std::chrono::steady_clock::now();
}

void
TraceRecorder::setCapacity(std::size_t capacity)
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->capacity = std::max<std::size_t>(capacity, 1);
        impl_->pinnedCapacity = impl_->capacity / 16;
    }
    clear();
}

std::size_t
TraceRecorder::capacity() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->capacity;
}

std::uint64_t
TraceRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->droppedCount;
}

std::uint64_t
TraceRecorder::nowUs() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - impl_->epoch)
            .count());
}

void
TraceRecorder::append(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    Impl &state = *impl_;
    if (state.pinned.size() < state.pinnedCapacity) {
        state.pinned.push_back(std::move(event));
        return;
    }
    if (state.ring.size() < state.capacity) {
        state.ring.push_back(std::move(event));
        return;
    }
    state.ring[state.head] = std::move(event);
    state.head = (state.head + 1) % state.capacity;
    state.droppedCount++;
}

std::vector<TraceEvent>
TraceRecorder::events() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    const Impl &state = *impl_;
    std::vector<TraceEvent> out;
    out.reserve(state.pinned.size() + state.ring.size());
    out.insert(out.end(), state.pinned.begin(), state.pinned.end());
    for (std::size_t i = 0; i < state.ring.size(); i++) {
        out.push_back(
            state.ring[(state.head + i) % state.ring.size()]);
    }
    return out;
}

std::string
TraceRecorder::chromeTraceJson() const
{
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &event : events()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << jsonEscape(event.name)
           << "\",\"cat\":\"compdiff\",\"ph\":\"X\",\"ts\":"
           << event.startUs << ",\"dur\":" << event.durUs
           << ",\"pid\":1,\"tid\":" << event.tid << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"dropped\":" << dropped() << "}}\n";
    return os.str();
}

std::string
TraceRecorder::flameSummary() const
{
    struct Agg
    {
        std::uint64_t calls = 0;
        std::uint64_t totalUs = 0;
    };
    std::map<std::string, Agg> byName;
    for (const auto &event : events()) {
        Agg &agg = byName[event.name];
        agg.calls++;
        agg.totalUs += event.durUs;
    }
    std::vector<std::pair<std::string, Agg>> rows(byName.begin(),
                                                  byName.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.totalUs > b.second.totalUs;
              });

    support::TextTable table;
    table.setHeader({"span", "calls", "total_us", "avg_us"});
    table.setAlign({support::Align::Left, support::Align::Right,
                    support::Align::Right, support::Align::Right});
    for (const auto &[name, agg] : rows) {
        table.addRow({name, std::to_string(agg.calls),
                      std::to_string(agg.totalUs),
                      std::to_string(agg.calls
                                         ? agg.totalUs / agg.calls
                                         : 0)});
    }
    return table.str();
}

Span::Span(std::string_view name)
{
    if (!tracingEnabled())
        return;
    active_ = true;
    name_ = name;
    startUs_ = TraceRecorder::global().nowUs();
    ThreadState &thread = threadState();
    depth_ = thread.depth++;
}

Span::~Span()
{
    if (!active_)
        return;
    ThreadState &thread = threadState();
    thread.depth--;
    const std::uint64_t end = TraceRecorder::global().nowUs();
    TraceRecorder::global().append(
        {name_, startUs_, end - startUs_, thread.tid, depth_});
}

} // namespace compdiff::obs
